//! Per-group aggregates.
//!
//! A sampling query's groups carry conventional aggregates — `count(*)`,
//! `sum(len)`, `min`/`max`, and `first`/`last` (Gigascope extensions the
//! heavy-hitter query relies on: `first(current_bucket())` remembers the
//! bucket in which the group was created).
//!
//! Aggregate *argument* expressions are evaluated in the tuple phase, so
//! they may reference input columns, group-by variables, and stateful
//! functions.

use sso_types::Value;

use crate::error::OpError;
use crate::expr::{EvalCtx, Expr};

/// Specification of one aggregate slot.
#[derive(Debug, Clone)]
pub enum AggSpec {
    /// `count(*)`.
    Count,
    /// `sum(expr)`.
    Sum(Expr),
    /// `min(expr)`.
    Min(Expr),
    /// `max(expr)`.
    Max(Expr),
    /// `first(expr)`: the argument's value on the group's first tuple.
    First(Expr),
    /// `last(expr)`: the argument's value on the group's latest tuple.
    Last(Expr),
}

impl AggSpec {
    /// Fresh state for a new group.
    pub fn init(&self) -> AggState {
        match self {
            AggSpec::Count => AggState::Count(0),
            AggSpec::Sum(_) => AggState::Sum(Value::Null),
            AggSpec::Min(_) => AggState::Min(Value::Null),
            AggSpec::Max(_) => AggState::Max(Value::Null),
            AggSpec::First(_) => AggState::First(Value::Null),
            AggSpec::Last(_) => AggState::Last(Value::Null),
        }
    }

    /// The argument expression, if any.
    fn arg(&self) -> Option<&Expr> {
        match self {
            AggSpec::Count => None,
            AggSpec::Sum(e)
            | AggSpec::Min(e)
            | AggSpec::Max(e)
            | AggSpec::First(e)
            | AggSpec::Last(e) => Some(e),
        }
    }

    /// Update `state` with one tuple, evaluating the argument in `ctx`.
    pub fn update(&self, state: &mut AggState, ctx: &mut EvalCtx<'_>) -> Result<(), OpError> {
        let arg = match self.arg() {
            Some(e) => Some(e.eval(ctx)?),
            None => None,
        };
        match (state, arg) {
            (AggState::Count(c), None) => *c += 1,
            (AggState::Sum(acc), Some(v)) => {
                *acc = if acc.is_null() { v } else { acc.add(&v)? };
            }
            (AggState::Min(acc), Some(v)) => {
                if acc.is_null() || v.compare(acc)? == std::cmp::Ordering::Less {
                    *acc = v;
                }
            }
            (AggState::Max(acc), Some(v)) => {
                if acc.is_null() || v.compare(acc)? == std::cmp::Ordering::Greater {
                    *acc = v;
                }
            }
            (AggState::First(acc), Some(v)) => {
                if acc.is_null() {
                    *acc = v;
                }
            }
            (AggState::Last(acc), Some(v)) => *acc = v,
            _ => {
                return Err(OpError::InvalidSpec(
                    "aggregate state does not match its spec".to_string(),
                ))
            }
        }
        Ok(())
    }
}

/// Runtime state of one aggregate slot.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// `count(*)` accumulator.
    Count(u64),
    /// `sum` accumulator (`Null` before the first value).
    Sum(Value),
    /// `min` accumulator.
    Min(Value),
    /// `max` accumulator.
    Max(Value),
    /// `first` latch.
    First(Value),
    /// `last` latch.
    Last(Value),
}

impl AggState {
    /// The aggregate's current value.
    pub fn value(&self) -> Value {
        match self {
            AggState::Count(c) => Value::U64(*c),
            AggState::Sum(v)
            | AggState::Min(v)
            | AggState::Max(v)
            | AggState::First(v)
            | AggState::Last(v) => v.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_types::Tuple;

    fn update_with(spec: &AggSpec, state: &mut AggState, tuple_vals: Vec<Value>) {
        let t = Tuple::new(tuple_vals);
        let mut ctx = EvalCtx { tuple: Some(&t), ..EvalCtx::empty("AGG") };
        spec.update(state, &mut ctx).unwrap();
    }

    #[test]
    fn count_counts() {
        let spec = AggSpec::Count;
        let mut s = spec.init();
        for _ in 0..3 {
            update_with(&spec, &mut s, vec![]);
        }
        assert_eq!(s.value(), Value::U64(3));
    }

    #[test]
    fn sum_accumulates() {
        let spec = AggSpec::Sum(Expr::Column(0));
        let mut s = spec.init();
        assert_eq!(s.value(), Value::Null);
        update_with(&spec, &mut s, vec![Value::U64(10)]);
        update_with(&spec, &mut s, vec![Value::U64(32)]);
        assert_eq!(s.value(), Value::U64(42));
    }

    #[test]
    fn min_max_track_extremes() {
        let min = AggSpec::Min(Expr::Column(0));
        let max = AggSpec::Max(Expr::Column(0));
        let mut smin = min.init();
        let mut smax = max.init();
        for v in [5u64, 2, 9, 3] {
            update_with(&min, &mut smin, vec![Value::U64(v)]);
            update_with(&max, &mut smax, vec![Value::U64(v)]);
        }
        assert_eq!(smin.value(), Value::U64(2));
        assert_eq!(smax.value(), Value::U64(9));
    }

    #[test]
    fn first_latches_then_ignores() {
        let spec = AggSpec::First(Expr::Column(0));
        let mut s = spec.init();
        update_with(&spec, &mut s, vec![Value::U64(7)]);
        update_with(&spec, &mut s, vec![Value::U64(99)]);
        assert_eq!(s.value(), Value::U64(7));
    }

    #[test]
    fn last_tracks_latest() {
        let spec = AggSpec::Last(Expr::Column(0));
        let mut s = spec.init();
        update_with(&spec, &mut s, vec![Value::U64(7)]);
        update_with(&spec, &mut s, vec![Value::U64(99)]);
        assert_eq!(s.value(), Value::U64(99));
    }

    #[test]
    fn sum_over_expression() {
        // sum(len * 2)
        let spec = AggSpec::Sum(Expr::Column(0).add(Expr::Column(0)));
        let mut s = spec.init();
        update_with(&spec, &mut s, vec![Value::U64(3)]);
        update_with(&spec, &mut s, vec![Value::U64(4)]);
        assert_eq!(s.value(), Value::U64(14));
    }

    #[test]
    fn mismatched_state_errors() {
        let spec = AggSpec::Count;
        let mut s = AggState::Sum(Value::Null);
        let t = Tuple::new(vec![]);
        let mut ctx = EvalCtx { tuple: Some(&t), ..EvalCtx::empty("AGG") };
        assert!(spec.update(&mut s, &mut ctx).is_err());
    }
}
