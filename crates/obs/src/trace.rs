//! Sampled span tracing.
//!
//! A [`SampledSpan`] wraps a histogram (raw per-span nanoseconds) and a
//! counter (total busy nanoseconds) from the registry. [`SampledSpan::
//! start`] is the *only* hot-path cost when tracing is disabled: one
//! `Relaxed` load of the registry's enabled flag and a `None` return.
//! When enabled, a shared call counter selects every `1/2^k`-th call to
//! actually take an `Instant` pair; the measured duration is recorded
//! raw into the histogram and scaled back up (`× 2^k`) into the busy
//! counter, so busy time stays an unbiased estimate of total time spent
//! in the span.
//!
//! This replaces the bespoke 1-in-64 timing hack that used to live in
//! the Gigascope sharded engine.

use sso_sync::Ordering::Relaxed;
use sso_sync::{SyncBool, SyncU64};
use std::sync::Arc;

use crate::hist::Histogram;
use crate::registry::{Counter, Registry};
use crate::time::Stopwatch;

/// A named span that samples 1 in `2^k` entries.
#[derive(Debug, Clone)]
pub struct SampledSpan {
    enabled: Arc<SyncBool>,
    calls: Arc<SyncU64>,
    mask: u64,
    hist: Histogram,
    busy: Counter,
}

impl SampledSpan {
    /// Register a span in `registry`: raw durations land in the
    /// histogram `<name>_ns`, scaled busy time in the counter
    /// `<name>_busy_ns` under `label`. `sample_shift` is `k`: sample 1
    /// in `2^k` entries (0 = every entry).
    pub fn register(
        registry: &Registry,
        hist_name: &'static str,
        busy_name: &'static str,
        label: impl Into<String> + Clone,
        sample_shift: u32,
    ) -> Self {
        SampledSpan {
            enabled: Arc::new(SyncBool::new(registry.is_enabled())),
            calls: Arc::new(SyncU64::new(0)),
            mask: (1u64 << sample_shift) - 1,
            hist: registry.histogram_labeled(hist_name, label.clone()),
            busy: registry.counter_labeled(busy_name, label),
        }
    }

    /// The busy-time counter this span scales its samples into. Callers
    /// can add unsampled work to the same cell (e.g. a finish pass) and
    /// read the combined estimate back.
    pub fn busy_counter(&self) -> &Counter {
        &self.busy
    }

    /// Enter the span. `None` when tracing is disabled or this entry is
    /// not sampled; hold the guard for the duration of the work.
    #[inline]
    pub fn start(&self) -> Option<SpanGuard> {
        if !self.enabled.load(Relaxed) {
            return None;
        }
        if self.calls.fetch_add(1, Relaxed) & self.mask != 0 {
            return None;
        }
        Some(SpanGuard {
            hist: self.hist.clone(),
            busy: self.busy.clone(),
            scale: self.mask + 1,
            sw: Stopwatch::start(),
        })
    }
}

/// An open sampled span; records on drop.
///
/// Owns clones of the destination handles (cheap `Arc` bumps, paid only
/// on the sampled path) so a guard can be held across `&mut self` calls
/// on the instrumented object.
#[derive(Debug)]
pub struct SpanGuard {
    hist: Histogram,
    busy: Counter,
    scale: u64,
    sw: Stopwatch,
}

impl SpanGuard {
    /// Finish explicitly (identical to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.sw.elapsed_ns();
        self.hist.record(ns);
        self.busy.add(ns.saturating_mul(self.scale));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_never_samples() {
        let r = Registry::disabled();
        let span = SampledSpan::register(&r, "t_ns", "t_busy_ns", "", 0);
        for _ in 0..100 {
            assert!(span.start().is_none());
        }
        let snap = r.snapshot();
        assert_eq!(snap.get("t_ns").unwrap().hits(), 0);
    }

    #[test]
    fn samples_one_in_2k_and_scales_busy() {
        let r = Registry::new();
        let span = SampledSpan::register(&r, "t_ns", "t_busy_ns", "", 3);
        let mut taken = 0;
        for _ in 0..64 {
            if let Some(g) = span.start() {
                taken += 1;
                g.finish();
            }
        }
        assert_eq!(taken, 8, "1 in 2^3 of 64 calls");
        let snap = r.snapshot();
        let hist = snap.get("t_ns").unwrap();
        assert_eq!(hist.hits(), 8);
        // Busy is the histogram's raw sum scaled by 2^3.
        assert_eq!(snap.value("t_busy_ns"), hist.scalar() * 8.0);
    }

    #[test]
    fn shift_zero_records_every_entry() {
        let r = Registry::new();
        let span = SampledSpan::register(&r, "t_ns", "t_busy_ns", "x", 0);
        for _ in 0..5 {
            span.start();
        }
        assert_eq!(r.snapshot().get_labeled("t_ns", "x").unwrap().hits(), 5);
    }
}
