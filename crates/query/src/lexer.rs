//! Tokenizer for the sampling-query language.
//!
//! Keywords are case-insensitive. Identifiers may carry the paper's `$`
//! suffix marking superaggregates (`count_distinct$`). Both `GROUP BY`
//! and the paper's occasional `GROUP_BY` spelling are accepted.

use crate::error::QueryError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Keywords.
    /// `SELECT`
    Select,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `GROUP`
    Group,
    /// `BY`
    By,
    /// `AS`
    As,
    /// `SUPERGROUP`
    Supergroup,
    /// `HAVING`
    Having,
    /// `CLEANING`
    Cleaning,
    /// `WHEN`
    When,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    // Values and names.
    /// An identifier.
    Ident(String),
    /// A `$`-suffixed identifier (superaggregate reference).
    DollarIdent(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal.
    Str(String),
    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

/// A token plus its byte range in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub position: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
}

/// The tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over the query text.
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Spanned>, QueryError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token()? {
            out.push(t);
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn next_token(&mut self) -> Result<Option<Spanned>, QueryError> {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
        // Comments: `--` to end of line.
        if self.src[self.pos..].starts_with(b"--") {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
            return self.next_token();
        }
        let start = self.pos;
        let Some(c) = self.bump() else {
            return Ok(None);
        };
        let token = match c {
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b',' => Token::Comma,
            b'*' => Token::Star,
            b'/' => Token::Slash,
            b'%' => Token::Percent,
            b'+' => Token::Plus,
            b'-' => Token::Minus,
            b'=' => Token::Eq,
            b'<' => match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    Token::Ne
                }
                Some(b'=') => {
                    self.pos += 1;
                    Token::Le
                }
                _ => Token::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Token::Ge
                }
                _ => Token::Gt,
            },
            b'!' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Token::Ne
                }
                _ => {
                    return Err(QueryError::Lex {
                        position: start,
                        message: "unexpected '!'".to_string(),
                    })
                }
            },
            b'\'' => {
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => break,
                        Some(ch) => s.push(ch as char),
                        None => {
                            return Err(QueryError::Lex {
                                position: start,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                    }
                }
                Token::Str(s)
            }
            b'0'..=b'9' => {
                let mut end = self.pos;
                while matches!(self.src.get(end), Some(b'0'..=b'9')) {
                    end += 1;
                }
                let mut is_float = false;
                if self.src.get(end) == Some(&b'.')
                    && matches!(self.src.get(end + 1), Some(b'0'..=b'9'))
                {
                    is_float = true;
                    end += 1;
                    while matches!(self.src.get(end), Some(b'0'..=b'9')) {
                        end += 1;
                    }
                }
                // The matched range is pure ASCII digits (and at most
                // one '.'), so build the text bytewise — no fallible
                // UTF-8 step.
                let text: String = self.src[start..end].iter().map(|&b| b as char).collect();
                self.pos = end;
                if is_float {
                    Token::Float(text.parse().map_err(|e| QueryError::Lex {
                        position: start,
                        message: format!("bad float literal: {e}"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|e| QueryError::Lex {
                        position: start,
                        message: format!("bad integer literal: {e}"),
                    })?)
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut end = self.pos;
                while matches!(
                    self.src.get(end),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                ) {
                    end += 1;
                }
                // Identifier characters are pure ASCII, so build the
                // word bytewise — no fallible UTF-8 step.
                let word: String = self.src[start..end].iter().map(|&b| b as char).collect();
                self.pos = end;
                // The paper's `$` superaggregate suffix.
                if self.peek() == Some(b'$') {
                    self.pos += 1;
                    return Ok(Some(Spanned {
                        token: Token::DollarIdent(word),
                        position: start,
                        end: self.pos,
                    }));
                }
                match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Token::Select,
                    "FROM" => Token::From,
                    "WHERE" => Token::Where,
                    "GROUP" => Token::Group,
                    // The paper writes GROUP_BY in some examples.
                    "GROUP_BY" => Token::Group,
                    "BY" => Token::By,
                    "AS" => Token::As,
                    "SUPERGROUP" => Token::Supergroup,
                    "HAVING" => Token::Having,
                    "CLEANING" => Token::Cleaning,
                    "WHEN" => Token::When,
                    "AND" => Token::And,
                    "OR" => Token::Or,
                    "NOT" => Token::Not,
                    "TRUE" => Token::True,
                    "FALSE" => Token::False,
                    _ => Token::Ident(word),
                }
            }
            other => {
                return Err(QueryError::Lex {
                    position: start,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        };
        Ok(Some(Spanned { token, position: start, end: self.pos }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(toks("select FROM Where"), vec![Token::Select, Token::From, Token::Where]);
        assert_eq!(toks("cleaning when"), vec![Token::Cleaning, Token::When]);
    }

    #[test]
    fn group_by_variants() {
        assert_eq!(toks("GROUP BY"), vec![Token::Group, Token::By]);
        assert_eq!(toks("GROUP_BY"), vec![Token::Group]);
    }

    #[test]
    fn identifiers_and_dollar_suffix() {
        assert_eq!(
            toks("srcIP count_distinct$ Kth_smallest_value$"),
            vec![
                Token::Ident("srcIP".into()),
                Token::DollarIdent("count_distinct".into()),
                Token::DollarIdent("Kth_smallest_value".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42 3.5 0"), vec![Token::Int(42), Token::Float(3.5), Token::Int(0)]);
        // A bare '.' (no fraction digits) is not part of the language.
        assert!(Lexer::new("7.").tokenize().is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= <> <= >= < > + - * / % != ( ) ,"),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Ne,
                Token::LParen,
                Token::RParen,
                Token::Comma,
            ]
        );
    }

    #[test]
    fn strings_and_errors() {
        assert_eq!(toks("'abc'"), vec![Token::Str("abc".into())]);
        assert!(matches!(
            Lexer::new("'abc").tokenize(),
            Err(QueryError::Lex { message, .. }) if message.contains("unterminated")
        ));
        assert!(matches!(
            Lexer::new("a # b").tokenize(),
            Err(QueryError::Lex { message, .. }) if message.contains("unexpected character")
        ));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("SELECT -- a comment\n x"), vec![Token::Select, Token::Ident("x".into())]);
    }

    #[test]
    fn positions_are_byte_offsets() {
        let spanned = Lexer::new("SELECT tb").tokenize().unwrap();
        assert_eq!(spanned[0].position, 0);
        assert_eq!(spanned[0].end, 6);
        assert_eq!(spanned[1].position, 7);
        assert_eq!(spanned[1].end, 9);
    }

    #[test]
    fn spans_cover_multibyte_tokens() {
        let spanned = Lexer::new("count_distinct$ <= 3.25").tokenize().unwrap();
        // `count_distinct$` spans 0..15 including the `$`.
        assert_eq!((spanned[0].position, spanned[0].end), (0, 15));
        assert_eq!((spanned[1].position, spanned[1].end), (16, 18));
        assert_eq!((spanned[2].position, spanned[2].end), (19, 23));
    }

    proptest::proptest! {
        /// The lexer never panics, whatever bytes it gets: it either
        /// tokenizes or returns a positioned error.
        #[test]
        fn lexer_never_panics(input in "\\PC{0,200}") {
            let _ = Lexer::new(&input).tokenize();
        }

        /// Tokenizing valid identifier soup always succeeds and returns
        /// one token per word.
        #[test]
        fn identifier_soup_tokenizes(words in proptest::collection::vec("[a-zA-Z_][a-zA-Z0-9_]{0,10}", 1..20)) {
            let text = words.join(" ");
            let toks = Lexer::new(&text).tokenize().unwrap();
            proptest::prop_assert_eq!(toks.len(), words.len());
        }
    }

    #[test]
    fn paper_query_fragment_lexes() {
        let q = "WHERE HX <= Kth_smallest_value$(HX, 100)";
        let t = toks(q);
        assert_eq!(t[0], Token::Where);
        assert_eq!(t[2], Token::Le);
        assert_eq!(t[3], Token::DollarIdent("Kth_smallest_value".into()));
    }
}
