//! Byte codecs for durable operator state.
//!
//! `sso-store` persists three kinds of operator payload, all encoded
//! here or via the per-library SFUN codecs:
//!
//! * **window outputs** — the emitted rows of each closed window, so a
//!   recovered run can re-publish results without reprocessing;
//! * **aggregate states** — the group table's per-group values, paged to
//!   a spill file when live state exceeds the configured budget;
//! * **window stats / degradation** — the counters attached to each
//!   output, so recovered windows are indistinguishable from live ones.
//!
//! Everything rides on the little-endian, variant-tagged primitives of
//! [`sso_types::wire`]; re-encoding a decoded value reproduces the
//! original bytes exactly.

use sso_types::wire::{
    put_bytes, put_f64, put_tuple, put_u32, put_u64, take_tuple, Reader, WireError,
};
use sso_types::Value;

use crate::agg::AggState;
use crate::operator::{Degradation, WindowOutput, WindowStats};

/// Spill-page payload size: a sealed page of the paged group table holds
/// up to this many bytes of encoded group entries. Also the unit the
/// static audit uses to convert a certified state ceiling into a page
/// count.
pub const PAGE_BYTES: usize = 64 * 1024;

/// Variant tags for [`AggState`].
const TAG_COUNT: u8 = 0;
const TAG_SUM: u8 = 1;
const TAG_MIN: u8 = 2;
const TAG_MAX: u8 = 3;
const TAG_FIRST: u8 = 4;
const TAG_LAST: u8 = 5;

fn err<T>(message: impl Into<String>) -> Result<T, WireError> {
    Err(WireError { message: message.into() })
}

/// Append one [`AggState`], variant tag first.
pub fn put_agg_state(out: &mut Vec<u8>, s: &AggState) {
    let put_v = |out: &mut Vec<u8>, tag: u8, v: &Value| {
        out.push(tag);
        sso_types::wire::put_value(out, v);
    };
    match s {
        AggState::Count(n) => {
            out.push(TAG_COUNT);
            put_u64(out, *n);
        }
        AggState::Sum(v) => put_v(out, TAG_SUM, v),
        AggState::Min(v) => put_v(out, TAG_MIN, v),
        AggState::Max(v) => put_v(out, TAG_MAX, v),
        AggState::First(v) => put_v(out, TAG_FIRST, v),
        AggState::Last(v) => put_v(out, TAG_LAST, v),
    }
}

/// Read one [`AggState`].
pub fn take_agg_state(r: &mut Reader<'_>) -> Result<AggState, WireError> {
    let tag = r.take_u8()?;
    Ok(match tag {
        TAG_COUNT => AggState::Count(r.take_u64()?),
        TAG_SUM => AggState::Sum(sso_types::wire::take_value(r)?),
        TAG_MIN => AggState::Min(sso_types::wire::take_value(r)?),
        TAG_MAX => AggState::Max(sso_types::wire::take_value(r)?),
        TAG_FIRST => AggState::First(sso_types::wire::take_value(r)?),
        TAG_LAST => AggState::Last(sso_types::wire::take_value(r)?),
        t => return err(format!("unknown aggregate-state tag {t}")),
    })
}

/// Append a count-prefixed aggregate-state vector (one group entry).
pub fn put_agg_states(out: &mut Vec<u8>, states: &[AggState]) {
    put_u32(out, states.len() as u32);
    for s in states {
        put_agg_state(out, s);
    }
}

/// Read a count-prefixed aggregate-state vector.
pub fn take_agg_states(r: &mut Reader<'_>) -> Result<Vec<AggState>, WireError> {
    let n = r.take_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(take_agg_state(r)?);
    }
    Ok(out)
}

fn put_window_stats(out: &mut Vec<u8>, s: &WindowStats) {
    put_u64(out, s.tuples);
    put_u64(out, s.admitted);
    put_u64(out, s.cleaning_phases);
    put_u64(out, s.groups_created);
    put_u64(out, s.evictions);
    put_u64(out, s.output_rows);
}

fn take_window_stats(r: &mut Reader<'_>) -> Result<WindowStats, WireError> {
    Ok(WindowStats {
        tuples: r.take_u64()?,
        admitted: r.take_u64()?,
        cleaning_phases: r.take_u64()?,
        groups_created: r.take_u64()?,
        evictions: r.take_u64()?,
        output_rows: r.take_u64()?,
    })
}

/// Append one closed window's full output record.
pub fn put_window_output(out: &mut Vec<u8>, w: &WindowOutput) {
    put_tuple(out, &w.window);
    put_u32(out, w.rows.len() as u32);
    for row in &w.rows {
        put_tuple(out, row);
    }
    put_window_stats(out, &w.stats);
    put_f64(out, w.degradation.coverage);
    out.push(u8::from(w.degradation.degraded));
}

/// Read one window-output record.
pub fn take_window_output(r: &mut Reader<'_>) -> Result<WindowOutput, WireError> {
    let window = take_tuple(r)?;
    let n = r.take_u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        rows.push(take_tuple(r)?);
    }
    let stats = take_window_stats(r)?;
    let degradation = Degradation { coverage: r.take_f64()?, degraded: r.take_u8()? != 0 };
    Ok(WindowOutput { window, rows, stats, degradation })
}

/// Append a length-prefixed opaque section (used by the store's record
/// framing for carry-over and library-auxiliary payloads).
pub fn put_section(out: &mut Vec<u8>, bytes: &[u8]) {
    put_bytes(out, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_types::Tuple;

    fn round_trip_state(s: &AggState) -> AggState {
        let mut buf = Vec::new();
        put_agg_state(&mut buf, s);
        let mut r = Reader::new(&buf);
        let out = take_agg_state(&mut r).unwrap();
        assert!(r.is_empty());
        out
    }

    #[test]
    fn agg_states_round_trip() {
        for s in [
            AggState::Count(42),
            AggState::Sum(Value::F64(2.5)),
            AggState::Min(Value::I64(-7)),
            AggState::Max(Value::U64(u64::MAX)),
            AggState::First(Value::Str("a".into())),
            AggState::Last(Value::Null),
        ] {
            assert_eq!(round_trip_state(&s), s);
        }
    }

    #[test]
    fn agg_state_vectors_round_trip() {
        let states = vec![AggState::Count(1), AggState::Sum(Value::U64(9))];
        let mut buf = Vec::new();
        put_agg_states(&mut buf, &states);
        let mut r = Reader::new(&buf);
        assert_eq!(take_agg_states(&mut r).unwrap(), states);
        assert!(r.is_empty());
    }

    #[test]
    fn window_outputs_round_trip() {
        let w = WindowOutput {
            window: Tuple::new(vec![Value::U64(3)]),
            rows: vec![
                Tuple::new(vec![Value::U64(3), Value::Str("k".into()), Value::F64(1.25)]),
                Tuple::new(vec![Value::U64(3), Value::Null, Value::I64(-1)]),
            ],
            stats: WindowStats {
                tuples: 10,
                admitted: 8,
                cleaning_phases: 1,
                groups_created: 2,
                evictions: 1,
                output_rows: 2,
            },
            degradation: Degradation { coverage: 0.75, degraded: true },
        };
        let mut buf = Vec::new();
        put_window_output(&mut buf, &w);
        let mut r = Reader::new(&buf);
        let out = take_window_output(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(out.window, w.window);
        assert_eq!(out.rows, w.rows);
        assert_eq!(out.stats, w.stats);
        assert_eq!(out.degradation, w.degradation);

        // Re-encoding reproduces the original bytes exactly.
        let mut again = Vec::new();
        put_window_output(&mut again, &out);
        assert_eq!(buf, again);
    }

    #[test]
    fn unknown_tag_errors() {
        let mut r = Reader::new(&[99]);
        assert!(take_agg_state(&mut r).is_err());
    }
}
