//! Property-based integration tests: invariants of the operator stack
//! over randomized packet streams.

use proptest::prelude::*;
use stream_sampler::operator::libs::subset_sum::SubsetSumOpConfig;
use stream_sampler::prelude::*;

/// Arbitrary packet streams: a few seconds, random per-second rates,
/// random flow keys and heavy-tailed lengths.
fn arb_packets() -> impl Strategy<Value = Vec<Packet>> {
    (
        proptest::collection::vec(1u64..400, 2..6), // per-second packet counts
        any::<u64>(),
    )
        .prop_map(|(rates, seed)| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            for (sec, &n) in rates.iter().enumerate() {
                for i in 0..n {
                    let len = if rng.gen::<f64>() < 0.05 {
                        rng.gen_range(1500..9000)
                    } else {
                        rng.gen_range(40..1500)
                    };
                    out.push(Packet {
                        uts: sec as u64 * 1_000_000_000 + i * (1_000_000_000 / n) + 1,
                        src_ip: rng.gen_range(0..16),
                        dest_ip: rng.gen_range(0..16),
                        src_port: rng.gen_range(0..4),
                        dest_port: 80,
                        proto: stream_sampler::types::Protocol::Udp,
                        len,
                    });
                }
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The subset-sum operator's per-window estimate is within the
    /// deterministic counter scheme's error envelope of the true volume:
    /// each counter phase (one per cleaning, plus admission and the
    /// final pass) loses at most its threshold, and thresholds only grow
    /// within a window, so
    /// `actual − (cleanings+2)·z_final ≤ estimate ≤ actual + z_final`.
    #[test]
    fn subset_sum_estimate_error_is_bounded(packets in arb_packets()) {
        let query = "
            SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()),
                   sscleanings(), ssthreshold()
            FROM PKT
            WHERE ssample(len, 30) = TRUE
            GROUP BY time/1 as tb, srcIP, destIP, uts
            HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
            CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
            CLEANING BY ssclean_with(sum(len)) = TRUE";
        let cfg = SubsetSumOpConfig { target: 0, initial_z: 1.0, ..Default::default() };
        let mut op = compile(
            query,
            &Packet::schema(),
            &stream_sampler::query::PlannerConfig::with_configs(cfg, Default::default()),
        )
        .unwrap();
        let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
        let mut truth = std::collections::HashMap::<u64, u64>::new();
        for p in &packets {
            *truth.entry(p.time()).or_default() += p.len as u64;
        }
        let windows = op.run(tuples.iter()).unwrap();
        for w in &windows {
            let tb = w.window.get(0).as_u64().unwrap();
            let actual = truth[&tb] as f64;
            let est: f64 = w.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
            if w.rows.is_empty() {
                // Everything metered away: the loss is below z, which is
                // at most initial_z here (no cleanings without samples).
                continue;
            }
            let cleanings = w.rows[0].get(4).as_u64().unwrap() as f64;
            let z_final = w.rows[0].get(5).as_f64().unwrap();
            prop_assert!(
                est <= actual + z_final + 1e-6,
                "window {tb}: over-estimate {est:.0} vs {actual:.0} (z {z_final:.1})"
            );
            prop_assert!(
                est >= actual - (cleanings + 2.0) * z_final - 1e-6,
                "window {tb}: under-estimate {est:.0} vs {actual:.0} \
                 (z {z_final:.1}, cleanings {cleanings})"
            );
        }
    }

    /// The group table never exceeds γ·N + 1 live groups for the
    /// per-packet subset-sum query, regardless of input.
    #[test]
    fn subset_sum_group_table_is_bounded(packets in arb_packets()) {
        let cfg = SubsetSumOpConfig { target: 25, initial_z: 0.0, ..Default::default() };
        let spec = queries::subset_sum_query(1, cfg, false).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let bound = (cfg.gamma * 25.0) as usize + 1;
        for p in &packets {
            op.process(&p.to_tuple()).unwrap();
            prop_assert!(
                op.group_count() <= bound,
                "group table grew to {} (bound {bound})",
                op.group_count()
            );
        }
    }

    /// The min-hash query's per-source output is always the k smallest
    /// hashes of that source's distinct destinations.
    #[test]
    fn minhash_output_is_exactly_k_smallest(packets in arb_packets()) {
        use std::collections::{HashMap, HashSet};
        const K: usize = 4;
        let query = format!(
            "SELECT tb, srcIP, HX FROM PKT
             WHERE HX <= Kth_smallest_value$(HX, {K})
             GROUP BY time/100 as tb, srcIP, H(destIP) as HX
             SUPERGROUP srcIP
             HAVING HX <= Kth_smallest_value$(HX, {K})
             CLEANING WHEN count_distinct$(*) > {K}
             CLEANING BY HX <= Kth_smallest_value$(HX, {K})"
        );
        let mut op = compile(&query, &Packet::schema(), &PlannerConfig::empty()).unwrap();
        let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
        let windows = op.run(tuples.iter()).unwrap();
        prop_assert_eq!(windows.len(), 1);
        let mut got: HashMap<u64, Vec<u64>> = HashMap::new();
        for r in &windows[0].rows {
            got.entry(r.get(1).as_u64().unwrap())
                .or_default()
                .push(r.get(2).as_u64().unwrap());
        }
        let mut dests: HashMap<u64, HashSet<u32>> = HashMap::new();
        for p in &packets {
            dests.entry(p.src_ip as u64).or_default().insert(p.dest_ip);
        }
        for (src, set) in dests {
            let mut expected: Vec<u64> = set
                .into_iter()
                .map(|d| stream_sampler::sampling::hash::splitmix64(d as u64))
                .collect();
            expected.sort_unstable();
            expected.truncate(K);
            let mut actual = got.remove(&src).unwrap_or_default();
            actual.sort_unstable();
            prop_assert_eq!(actual, expected, "source {}", src);
        }
        prop_assert!(got.is_empty(), "no phantom sources");
    }

    /// Plain aggregation through the whole stack is exact, whatever the
    /// stream.
    #[test]
    fn aggregation_is_exact(packets in arb_packets()) {
        let mut op = SamplingOperator::new(queries::total_sum_query(1)).unwrap();
        let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
        let mut truth = std::collections::HashMap::<u64, (u64, u64)>::new();
        for p in &packets {
            let e = truth.entry(p.time()).or_default();
            e.0 += p.len as u64;
            e.1 += 1;
        }
        let windows = op.run(tuples.iter()).unwrap();
        let mut seen = 0;
        for w in &windows {
            let tb = w.window.get(0).as_u64().unwrap();
            let (sum, cnt) = truth[&tb];
            prop_assert_eq!(w.rows[0].get(1), &Value::U64(sum));
            prop_assert_eq!(w.rows[0].get(2), &Value::U64(cnt));
            seen += 1;
        }
        prop_assert_eq!(seen, truth.len());
    }

    /// The reservoir query returns min(n, distinct keys) rows and only
    /// keys that actually appeared.
    #[test]
    fn reservoir_sample_is_a_subset_of_the_stream(packets in arb_packets()) {
        use std::collections::HashSet;
        let cfg = stream_sampler::prelude::ReservoirOpConfig { n: 8, ..Default::default() };
        let spec = queries::reservoir_query(1000, cfg).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
        let windows = op.run(tuples.iter()).unwrap();
        let keys: HashSet<(u64, u64)> = packets
            .iter()
            .map(|p| (p.src_ip as u64, p.dest_ip as u64))
            .collect();
        for w in &windows {
            prop_assert!(w.rows.len() <= 8);
            for r in &w.rows {
                let key = (r.get(1).as_u64().unwrap(), r.get(2).as_u64().unwrap());
                prop_assert!(keys.contains(&key), "sampled key {key:?} never appeared");
            }
        }
    }
}
