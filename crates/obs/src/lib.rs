//! # sso-obs
//!
//! The telemetry subsystem: a lock-free metrics registry, a sampled
//! span-tracing facade, snapshot exporters (JSON, Prometheus text), and
//! the **self-monitoring meta-stream** — snapshots rendered as tuples
//! with a published [`Schema`](sso_types::Schema) so the sampling
//! operator can query its own telemetry, mirroring Gigascope's use of
//! the DSMS to monitor the DSMS.
//!
//! ## Design
//!
//! * **Sharded handles, merged on read.** Every call to
//!   [`Registry::counter`] (or `gauge`/`histogram`) registers a fresh
//!   *cell* — its own cache line of atomics — under the metric's name.
//!   Writers touch only their own cell with `Relaxed` atomics; a
//!   [`Registry::snapshot`] merges cells with the same `(name, label)`
//!   at read time. Per-shard code simply registers its own handle and
//!   never contends with its siblings.
//! * **One branch when disabled.** [`SampledSpan::start`] loads one
//!   atomic flag and returns `None` when the registry's tracing is off;
//!   when on, only every `1/2^k`-th call pays the `Instant` pair, and
//!   the measured duration is scaled back up into the busy counter.
//! * **Memory ordering.** All hot-path operations are `Relaxed`:
//!   snapshots are statistical reads that tolerate a few in-flight
//!   increments. Where exactness matters (final per-shard stats), the
//!   reader runs after a channel close + thread join, which provide the
//!   happens-before edge; no `Acquire`/`Release` is needed on the
//!   counters themselves. See DESIGN.md §Telemetry.

pub mod detect;
pub mod export;
pub mod hist;
pub mod meta;
pub mod registry;
pub mod time;
pub mod trace;

pub use detect::{UndersampleConfig, UndersampleDetector};
pub use hist::{HistSnapshot, Histogram};
pub use meta::{metrics_schema, snapshot_tuples, METRICS_STREAM};
pub use registry::{Counter, Gauge, Metric, MetricKind, MetricValue, Registry, Snapshot};
pub use time::Stopwatch;
pub use trace::{SampledSpan, SpanGuard};
