//! Offline stand-in for `serde_derive`.
//!
//! Derives the stub `serde::Serialize` (a direct JSON writer) for
//! structs with named fields — the only shape this workspace derives.
//! The input is parsed with plain `proc_macro` tokens (no syn/quote,
//! since the registry is unreachable): we scan for the struct name,
//! then walk the brace group collecting the ident before each
//! top-level `:`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let field_pairs: String = fields
        .iter()
        .map(|f| format!("(\"{f}\", &self.{f} as &dyn ::serde::Serialize),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut String, indent: usize) {{\n\
                 ::serde::ser::write_struct(out, indent, &[{field_pairs}]);\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derived Serialize impl tokenizes")
}

/// Extract the struct name and its named-field idents.
fn parse_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(i) if i.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive(Serialize): expected struct name, got {other:?}"),
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive(Serialize): input is not a struct");
    // The next brace group holds the fields; anything else (tuple or
    // unit struct, generics) is out of scope for the stub.
    for tt in tokens {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return (name, field_names(g.stream()));
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("derive(Serialize): generic structs are not supported by the offline stub")
            }
            _ => {}
        }
    }
    panic!("derive(Serialize): only named-field structs are supported by the offline stub")
}

/// Field idents from a brace-group body: the ident right before each
/// `:` at zero angle-bracket depth (so `Vec<u64>`-style types and
/// `HashMap<K, V>` commas don't confuse the scan).
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut in_type = false;
    let mut last_ident: Option<String> = None;
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if !in_type && angle_depth == 0 => {
                    // `::` only occurs inside type paths, never after a
                    // field name; a lone `:` ends the name position.
                    if matches!(tokens.peek(), Some(TokenTree::Punct(q)) if q.as_char() == ':') {
                        tokens.next();
                    } else if let Some(name) = last_ident.take() {
                        fields.push(name);
                        in_type = true;
                    }
                }
                ',' if angle_depth == 0 => in_type = false,
                '#' if !in_type => {
                    tokens.next(); // field attribute group
                }
                _ => {}
            },
            TokenTree::Ident(i) if !in_type => {
                let s = i.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            TokenTree::Group(_) | TokenTree::Ident(_) | TokenTree::Literal(_) => {}
        }
    }
    fields
}
