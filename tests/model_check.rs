//! Exhaustive concurrency model checks for the three hand-rolled
//! lock-free structures (`sso check`'s dynamic sibling): the metrics
//! registry write/snapshot-fold path, the SPSC shard ring under both
//! backpressure policies, and the merge-finalize barrier.
//!
//! Each positive test asserts `complete == true`: the bounded
//! interleaving space was *exhausted* with zero reported races, not
//! sampled. The two `seeded_bug_*` tests plant real ordering bugs
//! (a `Relaxed` store where `Release` is required; an off-by-one slot
//! index) and assert the checker catches them, printing the replayable
//! schedule — the detector is itself under test.
//!
//! Configurations are deliberately tiny (2–3 threads, 2–4 ops each):
//! exhaustive exploration is exponential, and these shapes already
//! cover every ordering the production code paths exercise.

use std::sync::Arc;

use sso_sync::hint::spin_yield;
use sso_sync::model::{check, FailureKind, Model};
use sso_sync::Ordering::{Acquire, Relaxed, Release};
use sso_sync::{thread, SyncCell, SyncUsize};
use stream_sampler::obs::Registry;
use stream_sampler::runtime::{ring, MergeBarrier, PushError};

// ---------------------------------------------------------------------------
// Registry: sharded-handle writes vs the snapshot fold
// ---------------------------------------------------------------------------

/// Two shard handles under one name write while the main thread
/// snapshots: the fold must never observe a torn (name,label) merge —
/// each key appears exactly once, and the merged counter is one of the
/// totals an atomic history allows.
#[test]
fn registry_snapshot_never_tears_the_fold() {
    let explored = check(|| {
        let r = Registry::new();
        let c0 = r.counter_labeled("rt.tuples", "shard=0");
        let r2 = r.clone();
        let worker = thread::spawn(move || {
            // A shard registering its handle and writing, concurrently
            // with the snapshot: the registration path and the fold
            // share the cell-table mutex.
            let c1 = r2.counter_labeled("rt.tuples", "shard=0");
            c1.add(2);
        });
        c0.inc();
        let snap = r.snapshot();
        // The fold merges cells by (name, label): however the mutex
        // interleaved, "rt.tuples"/"shard=0" must be a single metric.
        let folded: Vec<_> =
            snap.metrics.iter().filter(|m| m.name == "rt.tuples" && m.label == "shard=0").collect();
        assert!(folded.len() <= 1, "torn fold: {} entries for one key", folded.len());
        let v = snap.get("rt.tuples").map(|m| m.scalar()).unwrap_or(0.0);
        assert!([0.0, 1.0, 2.0, 3.0].contains(&v), "snapshot saw impossible counter total {v}");
        worker.join();
        // After the join, everything is visible: the final fold is exact.
        assert_eq!(r.snapshot().get("rt.tuples").unwrap().scalar(), 3.0);
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete, "exploration must be exhaustive: {explored:?}");
    assert!(explored.schedules > 1, "interleavings explored: {explored:?}");
}

/// Gauge cells: `set` is a blind store (legitimate — last writer wins),
/// `add` is a CAS loop. Concurrent `add`s must not be flagged as lost
/// updates, and must both land.
#[test]
fn registry_gauge_cas_loop_is_lossless() {
    let explored = check(|| {
        let r = Registry::new();
        let g = r.gauge("rt.ring_depth");
        let g2 = r.gauge("rt.ring_depth");
        let worker = thread::spawn(move || {
            g2.add(2.0);
        });
        g.add(1.0);
        worker.join();
        assert_eq!(r.snapshot().value("rt.ring_depth"), 3.0);
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete);
}

// ---------------------------------------------------------------------------
// Shard ring
// ---------------------------------------------------------------------------

/// Block policy: every pushed tuple arrives exactly once, in order,
/// through a ring smaller than the stream (so wraparound and the full
/// ring + blocked producer path are explored).
#[test]
fn ring_block_neither_loses_nor_duplicates() {
    let explored = check(|| {
        // Capacity 1 with two pushes: the second push finds the ring
        // full whenever the consumer lags, so the blocked-producer and
        // slot-reuse (wraparound) paths are both inside the explored
        // space while the schedule count stays exhaustible.
        let (mut tx, mut rx) = ring::<u32>(1);
        let producer = thread::spawn(move || {
            for i in 0..2 {
                tx.push(i).expect("consumer alive");
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.pop() {
            got.push(v);
        }
        producer.join();
        assert_eq!(got, vec![0, 1], "Block must be lossless and FIFO");
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete, "exploration must be exhaustive: {explored:?}");
}

/// DropNewest policy: whatever interleaving the router and worker land
/// in, attempted == delivered + dropped, delivered values keep stream
/// order, and the drop counter (an obs counter, like `rt.dropped`)
/// agrees with the handed-back values.
#[test]
fn ring_drop_newest_accounts_attempted_minus_delivered() {
    let explored = check(|| {
        let r = Registry::disabled();
        let dropped = r.counter("rt.dropped");
        let d2 = dropped.clone();
        let (mut tx, mut rx) = ring::<u32>(1);
        let producer = thread::spawn(move || {
            for i in 0..2u32 {
                match tx.try_push(i) {
                    Ok(()) => {}
                    Err(PushError::Full(_)) => d2.inc(),
                    Err(PushError::Closed(_)) => unreachable!("consumer outlives producer"),
                }
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.pop() {
            got.push(v);
        }
        producer.join();
        assert_eq!(
            got.len() as u64 + dropped.get(),
            2,
            "drops must equal attempted - delivered (got {got:?})"
        );
        assert!(got.windows(2).all(|w| w[0] < w[1]), "delivered keeps order: {got:?}");
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete, "exploration must be exhaustive: {explored:?}");
}

/// Stall accounting (`rt.stalls`): one full-ring wait is ONE stall,
/// however many spin iterations the wait took. `push_tracked` returns a
/// single bool per call, so counting per `Full` observation (the bug
/// this pins against) is structurally impossible; what the exhaustive
/// exploration verifies is the other face of the contract — a push that
/// never waited must not report a stall — plus lossless FIFO hand-off.
#[test]
fn ring_push_tracked_counts_one_stall_per_wait() {
    let explored = check(|| {
        let (mut tx, mut rx) = ring::<u32>(1);
        let producer = thread::spawn(move || {
            // Asserted in-thread: a shared stall cell would add atomic
            // events and push the schedule space past exhaustion. One
            // call returns one bool, so a wait structurally cannot
            // count twice; what needs checking is that a wait-free push
            // never reports a stall.
            let first = tx.push_tracked(0).expect("consumer alive");
            assert!(!first, "first push into an empty capacity-1 ring cannot stall");
            let _second_may_stall = tx.push_tracked(1).expect("consumer alive");
        });
        let mut got = Vec::new();
        while let Some(v) = rx.pop() {
            got.push(v);
        }
        producer.join();
        assert_eq!(got, vec![0, 1], "push_tracked must stay lossless and FIFO");
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete, "exploration must be exhaustive: {explored:?}");
    assert!(explored.schedules > 1, "interleavings explored: {explored:?}");
}

/// Multi-router drain order: a shard owns one SPSC ring PER router
/// lane, and the worker drains ring 0 to closure before ever reading
/// ring 1 — exactly the engine's per-shard consume loop. The drained
/// sequence must be lane 0's batches in FIFO order followed by lane
/// 1's, with nothing lost: lane order plus the lanes' strided batch
/// ids is what makes R-router runs byte-identical to single-router
/// runs. Lane 0 is pre-filled and closed from the main thread — the
/// two lanes share no cells, so a second *live* producer adds no new
/// dependency pairs, only spin-loop schedules past the budget; the
/// race under test is lane 1 pushing while the consumer retires lane 0.
#[test]
fn multi_router_rings_drain_in_lane_order() {
    let explored = check(|| {
        let (mut tx0, mut rx0) = ring::<u32>(2);
        let (mut tx1, mut rx1) = ring::<u32>(1);
        for i in 0..2u32 {
            tx0.try_push(i).expect("capacity 2 holds both");
        }
        drop(tx0); // lane 0 finished its segment; ring 0 is closed
        let lane1 = thread::spawn(move || {
            for i in 10..12u32 {
                tx1.push(i).expect("worker alive");
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx0.pop() {
            got.push(v);
        }
        while let Some(v) = rx1.pop() {
            got.push(v);
        }
        lane1.join();
        assert_eq!(got, vec![0, 1, 10, 11], "drain is FIFO within a lane, lanes in index order");
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete, "exploration must be exhaustive: {explored:?}");
    assert!(explored.schedules > 1, "interleavings explored: {explored:?}");
}

// ---------------------------------------------------------------------------
// Merge-finalize barrier
// ---------------------------------------------------------------------------

/// The merge thread must observe every shard's *final* partial: each
/// worker fills its window vector (a plain cell write) and publishes;
/// wait_all's Acquire must order every fill before the fold.
#[test]
fn merge_barrier_observes_every_shards_final_partial() {
    let explored = check(|| {
        let barrier: Arc<MergeBarrier<Vec<u64>>> = MergeBarrier::new(2);
        let workers: Vec<_> = (0..2)
            .map(|shard| {
                let barrier = barrier.clone();
                thread::spawn(move || {
                    let shard = shard as u64;
                    // The shard's final partial, built up then published.
                    let mut windows = vec![shard * 10];
                    windows.push(shard * 10 + 1);
                    barrier.publish(shard as usize, windows);
                })
            })
            .collect();
        let partials = barrier.wait_all();
        assert_eq!(partials, vec![vec![0, 1], vec![10, 11]], "a shard's last write was missed");
        for w in workers {
            w.join();
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete, "exploration must be exhaustive: {explored:?}");
}

// ---------------------------------------------------------------------------
// Seeded bugs: the detector must detect
// ---------------------------------------------------------------------------

/// A miniature of the ring's publish path with the one bug the `Release`
/// in `Producer::try_push` prevents: the tail store downgraded to
/// `Relaxed`. The consumer's slot read then races with the producer's
/// slot write, and the checker must say so.
#[test]
fn seeded_bug_relaxed_tail_store_is_reported() {
    struct BuggySlot {
        slot: SyncCell<Option<u32>>,
        tail: SyncUsize,
    }
    let failure = check(|| {
        let ring = Arc::new(BuggySlot { slot: SyncCell::new(None), tail: SyncUsize::new(0) });
        let r2 = ring.clone();
        let producer = thread::spawn(move || {
            unsafe { r2.slot.with_mut(|s| *s = Some(7)) };
            // BUG: must be `Release` to publish the slot write.
            r2.tail.store(1, Relaxed);
        });
        if ring.tail.load(Acquire) == 1 {
            let v = unsafe { ring.slot.with(|s| *s) };
            assert_eq!(v, Some(7));
        }
        producer.join();
    })
    .expect_err("a Relaxed tail store must be reported as a race");
    eprintln!("{failure}"); // the replayable schedule, for the log
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(!failure.schedule.is_empty());
    assert!(!failure.trace.is_empty());
}

/// A miniature ring with an off-by-one slot index: the producer writes
/// `(tail + 1) % cap` instead of `tail % cap`, so the consumer pops a
/// slot nobody filled — caught as a torn hand-off. Also proves the
/// printed schedule replays to the same failure.
#[test]
fn seeded_bug_off_by_one_ring_index_is_reported() {
    const CAP: usize = 2;
    struct BuggyRing {
        slots: [SyncCell<Option<u32>>; CAP],
        head: SyncUsize,
        tail: SyncUsize,
    }
    let scenario = || {
        let ring = Arc::new(BuggyRing {
            slots: [SyncCell::new(None), SyncCell::new(None)],
            head: SyncUsize::new(0),
            tail: SyncUsize::new(0),
        });
        let r2 = ring.clone();
        let producer = thread::spawn(move || {
            for i in 0..2u32 {
                let tail = r2.tail.load(Relaxed);
                while tail.wrapping_sub(r2.head.load(Acquire)) >= CAP {
                    spin_yield();
                }
                // BUG: fills the *next* slot, not the one `tail` names.
                unsafe { r2.slots[(tail + 1) % CAP].with_mut(|s| *s = Some(i)) };
                r2.tail.store(tail.wrapping_add(1), Release);
            }
        });
        for expect in 0..2u32 {
            let head = ring.head.load(Relaxed);
            while ring.tail.load(Acquire) == head {
                spin_yield();
            }
            let v = unsafe { ring.slots[head % CAP].with_mut(|s| s.take()) };
            assert_eq!(v, Some(expect), "ring handed over a torn or empty slot");
            ring.head.store(head.wrapping_add(1), Release);
        }
        producer.join();
    };
    let failure = check(scenario).expect_err("off-by-one slot index must be caught");
    eprintln!("{failure}"); // the replayable schedule, for the log
    assert!(
        matches!(failure.kind, FailureKind::Panic | FailureKind::DataRace),
        "unexpected failure kind: {failure}"
    );
    assert!(!failure.schedule.is_empty());
    let replayed = Model::new()
        .replay(failure.schedule.clone())
        .check(scenario)
        .expect_err("replaying the printed schedule reproduces the bug");
    assert_eq!(replayed.kind, failure.kind);
}

// ---------------------------------------------------------------------------
// Profile lanes: record + one-Release publish vs a concurrent collector
// ---------------------------------------------------------------------------

/// The flight-recorder lane protocol (`sso-profile`): a writer records
/// a batch of events with `Relaxed` stores and publishes them with one
/// `Release` head store; a concurrent collector `Acquire`-loads the
/// head. The collector must see the batch all-or-nothing — never a
/// prefix, never a torn event — and the post-join read is exact.
#[test]
fn profile_lane_publish_is_all_or_nothing() {
    use stream_sampler::profile::{DumpReason, Event, LaneKind, Profiler, ProfilerConfig, Stage};
    let explored = check(|| {
        let p = Profiler::new(ProfilerConfig { ring_capacity: 4, dump_path: None });
        let writer = {
            let mut lane = p.lane(LaneKind::Worker, 0);
            thread::spawn(move || {
                // One batch: two records, one publish — the engine's
                // per-batch budget (Process + Flush, then publish).
                lane.record(Event::new(Stage::Process, 1, 2).shard(0).window(0).batch(0).aux(7));
                lane.record(Event::new(Stage::Flush, 3, 1).shard(0).window(0));
                lane.publish();
            })
        };
        let live = p.dump(DumpReason::Manual);
        assert_eq!(live.lanes.len(), 1);
        let seen = &live.lanes[0].events;
        // Head moves 0 -> 2 in one Release store: a racing collector
        // sees the whole batch or nothing, and what it sees is intact.
        assert!(seen.is_empty() || seen.len() == 2, "partial batch visible: {}", seen.len());
        if seen.len() == 2 {
            assert_eq!(seen[0].stage, Stage::Process);
            assert_eq!(seen[0].aux, 7, "Acquire head load must order slot reads after stores");
            assert_eq!(seen[1].stage, Stage::Flush);
        }
        writer.join();
        let settled = p.dump(DumpReason::Manual);
        assert_eq!(settled.lanes[0].events.len(), 2, "post-join read is authoritative");
        assert_eq!(settled.lanes[0].dropped, 0);
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete, "exploration must be exhaustive: {explored:?}");
    assert!(explored.schedules > 1, "interleavings explored: {explored:?}");
}

/// The ring-depth accounting protocol around `push_tracked_with`
/// (regression for the gauge sampled only at batch boundaries): the
/// router counts a batch *at wait entry* — the moment the hook runs —
/// or at the post-push boundary, never both and never twice. Counts
/// travel back through `join` rather than a shared gauge cell: every
/// extra shared write bumps the model's wake epoch and re-runs both
/// spin loops, pushing the schedule space past exhaustion, and the
/// balance property only needs the totals.
#[test]
fn ring_depth_accounting_balances_across_wait_entry() {
    let explored = check(|| {
        let (mut tx, mut rx) = ring::<u32>(1);
        let producer = thread::spawn(move || {
            let (mut at_wait_entry, mut at_boundary) = (0usize, 0usize);
            for item in 0..2u32 {
                let mut waited = false;
                let stalled = tx
                    .push_tracked_with(item, || {
                        waited = true;
                        // Wait entry: the batch is counted resident
                        // *now*, not at the next batch boundary.
                        at_wait_entry += 1;
                    })
                    .expect("consumer alive");
                assert_eq!(stalled, waited, "hook must fire exactly on stalled pushes");
                if !waited {
                    at_boundary += 1;
                }
            }
            (at_wait_entry, at_boundary)
        });
        let mut popped = 0usize;
        while rx.pop().is_some() {
            popped += 1;
        }
        let (at_wait_entry, at_boundary) = producer.join();
        assert_eq!(popped, 2);
        // Balance: every batch the consumer drained was counted into
        // the gauge exactly once — at wait entry or at the boundary —
        // so a decrement-per-pop scheme returns the depth to zero.
        assert_eq!(
            at_wait_entry + at_boundary,
            popped,
            "each resident batch counted exactly once ({at_wait_entry} waits, {at_boundary} boundary)"
        );
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(explored.complete, "exploration must be exhaustive: {explored:?}");
    assert!(explored.schedules > 1, "interleavings explored: {explored:?}");
}
