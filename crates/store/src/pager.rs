//! The spill-to-disk paged group table.
//!
//! Implements [`sso_core::PagedBackend`]: group entries live in
//! fixed-size pages (sealed at [`PAGE_BYTES`] of modeled bytes); when
//! resident state exceeds the budget, clock (second-chance) eviction
//! encodes a victim page and appends it to the shard's spill file. A
//! lookup that lands on a spilled page faults it back in.
//!
//! Two pages are never evicted: the *open* page (still filling with new
//! groups) and the page just touched by the current operation. The
//! practical floor for a useful budget is therefore about two pages —
//! the static audit's W206 lint warns below that.
//!
//! Byte accounting uses the same per-entry model as the static audit
//! (`VALUE_BYTES`, `AGG_STATE_BYTES`, …), so a certified in-RAM ceiling
//! from `sso audit` translates directly into a page count here.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use rustc_hash::FxHashMap;
use sso_core::operator::{AGG_STATE_BYTES, HASH_SLOT_BYTES, TUPLE_HEADER_BYTES, VALUE_BYTES};
use sso_core::snapshot::{put_agg_states, take_agg_states, PAGE_BYTES};
use sso_core::{AggState, PagedBackend};
use sso_types::wire::{put_tuple, put_u32, take_tuple, Reader};
use sso_types::Tuple;

/// Modeled resident bytes of one group entry (key + aggregate states +
/// hash slot), matching `OperatorSpec::group_entry_bytes`.
fn entry_bytes(key: &Tuple, aggs: &[AggState]) -> u64 {
    (TUPLE_HEADER_BYTES
        + key.arity() * VALUE_BYTES
        + TUPLE_HEADER_BYTES
        + aggs.len() * AGG_STATE_BYTES
        + HASH_SLOT_BYTES) as u64
}

/// One page of group entries.
struct Page {
    /// Resident entries; `None` when the page lives in the spill file.
    entries: Option<FxHashMap<Tuple, Vec<AggState>>>,
    /// Modeled bytes of this page's entries.
    bytes: u64,
    /// Sealed pages accept no new entries and are eviction candidates.
    sealed: bool,
    /// Second-chance bit: set on touch, cleared by a passing clock hand.
    refbit: bool,
    /// Spill-file location of the last written copy, if any.
    disk: Option<(u64, u32)>,
    /// Has the resident copy diverged from the disk copy?
    dirty: bool,
}

impl Page {
    fn fresh() -> Self {
        Page {
            entries: Some(FxHashMap::default()),
            bytes: 0,
            sealed: false,
            refbit: true,
            disk: None,
            dirty: false,
        }
    }
}

/// A group table bounded to `budget` modeled resident bytes, spilling
/// overflow pages to a file.
pub struct PagedGroupTable {
    file: File,
    budget: u64,
    index: FxHashMap<Tuple, u32>,
    pages: Vec<Page>,
    open_page: u32,
    resident: u64,
    peak_resident: u64,
    faults: u64,
    file_len: u64,
    hand: usize,
}

impl PagedGroupTable {
    /// Create a paged table backed by `path` (truncated) with the given
    /// resident-byte budget.
    pub fn new(path: &Path, budget: u64) -> io::Result<Self> {
        let file =
            OpenOptions::new().create(true).read(true).write(true).truncate(true).open(path)?;
        Ok(PagedGroupTable {
            file,
            budget,
            index: FxHashMap::default(),
            pages: vec![Page::fresh()],
            open_page: 0,
            resident: 0,
            peak_resident: 0,
            faults: 0,
            file_len: 0,
            hand: 0,
        })
    }

    /// Create the table on a shard's spill file inside a durable-run
    /// directory.
    pub fn for_shard(dir: &Path, shard: usize, budget: u64) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Self::new(&crate::wal::spill_path(dir, shard), budget)
    }

    fn encode_page(entries: &FxHashMap<Tuple, Vec<AggState>>) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, entries.len() as u32);
        for (key, aggs) in entries {
            put_tuple(&mut out, key);
            put_agg_states(&mut out, aggs);
        }
        out
    }

    fn decode_page(bytes: &[u8]) -> io::Result<FxHashMap<Tuple, Vec<AggState>>> {
        let bad = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
        let mut r = Reader::new(bytes);
        let n = r.take_u32().map_err(|e| bad(e.to_string()))? as usize;
        let mut entries = FxHashMap::default();
        entries.reserve(n);
        for _ in 0..n {
            let key = take_tuple(&mut r).map_err(|e| bad(e.to_string()))?;
            let aggs = take_agg_states(&mut r).map_err(|e| bad(e.to_string()))?;
            entries.insert(key, aggs);
        }
        if !r.is_empty() {
            return Err(bad("trailing bytes in spill page".into()));
        }
        Ok(entries)
    }

    /// Write a page's entries to the spill file (append-only) and drop
    /// the resident copy.
    fn evict(&mut self, pid: usize) -> io::Result<()> {
        let page = &mut self.pages[pid];
        let entries = page.entries.take().expect("evicting a resident page");
        if page.dirty || page.disk.is_none() {
            let encoded = Self::encode_page(&entries);
            self.file.seek(SeekFrom::Start(self.file_len))?;
            self.file.write_all(&encoded)?;
            page.disk = Some((self.file_len, encoded.len() as u32));
            page.dirty = false;
            self.file_len += encoded.len() as u64;
        }
        self.resident -= page.bytes;
        Ok(())
    }

    /// Fault a spilled page back in.
    fn ensure_resident(&mut self, pid: usize) -> io::Result<()> {
        if self.pages[pid].entries.is_some() {
            return Ok(());
        }
        let (off, len) = self.pages[pid].disk.expect("spilled page has a disk copy");
        let mut buf = vec![0u8; len as usize];
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut buf)?;
        let entries = Self::decode_page(&buf)?;
        let page = &mut self.pages[pid];
        page.entries = Some(entries);
        self.resident += page.bytes;
        self.faults += 1;
        Ok(())
    }

    /// Clock eviction until resident bytes fit the budget. `pinned`
    /// pages (the open page and the page the current operation
    /// touched) are skipped; if only pinned pages remain resident the
    /// table runs over budget rather than thrash.
    fn enforce_budget(&mut self, pinned: [u32; 2]) -> io::Result<()> {
        let mut sweeps = 0usize;
        while self.resident > self.budget && sweeps < 2 * self.pages.len() {
            let pid = self.hand % self.pages.len();
            self.hand = self.hand.wrapping_add(1);
            sweeps += 1;
            let evictable = self.pages[pid].sealed
                && self.pages[pid].entries.is_some()
                && !pinned.contains(&(pid as u32));
            if !evictable {
                continue;
            }
            if self.pages[pid].refbit {
                self.pages[pid].refbit = false;
                continue;
            }
            self.evict(pid)?;
        }
        self.peak_resident = self.peak_resident.max(self.resident);
        Ok(())
    }
}

impl PagedBackend for PagedGroupTable {
    fn contains(&mut self, key: &Tuple) -> bool {
        self.index.contains_key(key)
    }

    fn insert(&mut self, key: Tuple, aggs: Vec<AggState>) {
        let pid = self.open_page as usize;
        let eb = entry_bytes(&key, &aggs);
        let page = &mut self.pages[pid];
        page.entries.as_mut().expect("open page is resident").insert(key.clone(), aggs);
        page.bytes += eb;
        page.refbit = true;
        page.dirty = true;
        self.resident += eb;
        self.index.insert(key, self.open_page);
        if self.pages[pid].bytes >= PAGE_BYTES as u64 {
            self.pages[pid].sealed = true;
            self.pages.push(Page::fresh());
            self.open_page = (self.pages.len() - 1) as u32;
        }
        let pins = [self.open_page, pid as u32];
        // A full spill file is unrecoverable mid-stream anyway; treat
        // I/O failure as fatal here rather than silently running
        // unbounded.
        self.enforce_budget(pins).expect("spill write failed");
    }

    fn aggs_mut(&mut self, key: &Tuple) -> Option<&mut Vec<AggState>> {
        let pid = *self.index.get(key)? as usize;
        self.ensure_resident(pid).expect("spill read failed");
        self.pages[pid].refbit = true;
        self.pages[pid].dirty = true;
        self.enforce_budget([self.open_page, pid as u32]).expect("spill write failed");
        self.pages[pid].entries.as_mut().expect("page faulted in").get_mut(key)
    }

    fn remove(&mut self, key: &Tuple) -> Option<Vec<AggState>> {
        let pid = *self.index.get(key)? as usize;
        self.ensure_resident(pid).expect("spill read failed");
        self.index.remove(key);
        let page = &mut self.pages[pid];
        let aggs = page.entries.as_mut().expect("page faulted in").remove(key)?;
        let eb = entry_bytes(key, &aggs);
        page.bytes -= eb;
        page.dirty = true;
        self.resident -= eb;
        Some(aggs)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn clear(&mut self) {
        self.index.clear();
        self.pages = vec![Page::fresh()];
        self.open_page = 0;
        self.resident = 0;
        self.hand = 0;
        self.file_len = 0;
        let _ = self.file.set_len(0);
    }

    fn reserve(&mut self, additional: usize) {
        self.index.reserve(additional);
    }

    fn resident_bytes(&self) -> u64 {
        self.resident
    }

    fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident
    }

    fn page_faults(&self) -> u64 {
        self.faults
    }

    fn spilled_pages(&self) -> u64 {
        self.pages.iter().filter(|p| p.entries.is_none()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_types::Value;

    fn key(i: u64) -> Tuple {
        Tuple::new(vec![Value::U64(i / 100), Value::U64(i)])
    }

    fn aggs(i: u64) -> Vec<AggState> {
        vec![AggState::Count(i), AggState::Sum(Value::U64(i * 3))]
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sso-pager-{tag}-{}.spill", std::process::id()))
    }

    #[test]
    fn acts_like_a_map_within_budget() {
        let p = tmp("map");
        let mut t = PagedGroupTable::new(&p, u64::MAX).unwrap();
        for i in 0..100 {
            assert!(!t.contains(&key(i)));
            t.insert(key(i), aggs(i));
            assert!(t.contains(&key(i)));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.aggs_mut(&key(7)).unwrap()[0], AggState::Count(7));
        assert_eq!(t.remove(&key(7)).unwrap()[1], AggState::Sum(Value::U64(21)));
        assert!(!t.contains(&key(7)));
        assert_eq!(t.len(), 99);
        assert_eq!(t.page_faults(), 0, "nothing spilled under an infinite budget");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn spills_under_budget_and_faults_back() {
        let p = tmp("spill");
        // Each entry models ~240 bytes; 2000 entries ≈ 7 pages. Budget
        // of 3 pages forces spilling.
        let budget = (3 * PAGE_BYTES) as u64;
        let mut t = PagedGroupTable::new(&p, budget).unwrap();
        let n = 2000u64;
        for i in 0..n {
            t.insert(key(i), aggs(i));
        }
        assert!(t.spilled_pages() > 0, "budget forced spilling");
        assert!(t.resident_bytes() <= budget, "resident {} > budget {budget}", t.resident_bytes());
        assert!(t.peak_resident_bytes() <= budget);
        // Every entry is still retrievable, exactly.
        for i in 0..n {
            let a = t.aggs_mut(&key(i)).unwrap_or_else(|| panic!("entry {i} lost"));
            assert_eq!(a[0], AggState::Count(i));
            assert_eq!(a[1], AggState::Sum(Value::U64(i * 3)));
        }
        assert!(t.page_faults() > 0);
        assert!(t.resident_bytes() <= budget);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn mutations_survive_eviction() {
        let p = tmp("mut");
        let budget = (2 * PAGE_BYTES) as u64;
        let mut t = PagedGroupTable::new(&p, budget).unwrap();
        for i in 0..1500 {
            t.insert(key(i), aggs(i));
        }
        // Mutate an early (likely spilled) entry, then force more
        // eviction traffic, then verify the mutation persisted.
        t.aggs_mut(&key(3)).unwrap()[0] = AggState::Count(999_999);
        for i in 1500..3000 {
            t.insert(key(i), aggs(i));
        }
        assert_eq!(t.aggs_mut(&key(3)).unwrap()[0], AggState::Count(999_999));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn clear_resets_table_and_spill_file() {
        let p = tmp("clear");
        let budget = (2 * PAGE_BYTES) as u64;
        let mut t = PagedGroupTable::new(&p, budget).unwrap();
        for i in 0..1500 {
            t.insert(key(i), aggs(i));
        }
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.resident_bytes(), 0);
        assert_eq!(t.spilled_pages(), 0);
        assert!(!t.contains(&key(3)));
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 0, "spill file truncated");
        // Reusable after clear.
        t.insert(key(1), aggs(1));
        assert_eq!(t.aggs_mut(&key(1)).unwrap()[0], AggState::Count(1));
        let _ = std::fs::remove_file(&p);
    }
}
