//! Positional tuples of [`Value`]s.

use crate::error::TypeError;
use crate::schema::Schema;
use crate::value::Value;

/// A positional row of values, interpreted against a [`Schema`].
///
/// Group keys are also represented as `Tuple`s (of the group-by
/// expression values), so `Tuple` implements `Hash`/`Eq` with the
/// cross-signedness equivalence of [`Value`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// An empty tuple (the key of the `ALL` supergroup).
    pub fn empty() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// `true` if the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at `idx`, or `Null` past the end.
    pub fn get(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.values.get(idx).unwrap_or(&NULL)
    }

    /// The value of the named column under `schema`.
    pub fn get_named(&self, schema: &Schema, name: &str) -> Result<&Value, TypeError> {
        let idx = schema.index_of(name)?;
        if idx >= self.values.len() {
            return Err(TypeError::ArityMismatch {
                expected: schema.arity(),
                actual: self.values.len(),
            });
        }
        Ok(&self.values[idx])
    }

    /// Check that this tuple matches the schema's arity.
    pub fn check_arity(&self, schema: &Schema) -> Result<(), TypeError> {
        if self.values.len() == schema.arity() {
            Ok(())
        } else {
            Err(TypeError::ArityMismatch { expected: schema.arity(), actual: self.values.len() })
        }
    }

    /// Overwrite the value at `idx` (e.g. a sampling stage adjusting a
    /// tuple's measure attribute, as basic subset-sum sampling does when
    /// it "sets t.x to z").
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// Project the given indices into a new tuple (used to build group and
    /// supergroup keys).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.get(i).clone()).collect())
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

// Lets hash maps keyed by `Tuple` be probed with a borrowed value slice,
// so per-tuple hot paths can look up group keys without allocating a
// `Tuple`. Sound because the derived `Hash`/`Eq` delegate to the inner
// `Vec<Value>`, which hashes and compares exactly like its slice.
impl std::borrow::Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        &self.values
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, FieldType};

    fn schema() -> Schema {
        Schema::new("T", vec![Field::new("a", FieldType::U64), Field::new("b", FieldType::Str)])
    }

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn named_access() {
        let tup = t(vec![Value::U64(1), Value::str("x")]);
        let s = schema();
        assert_eq!(tup.get_named(&s, "a").unwrap(), &Value::U64(1));
        assert_eq!(tup.get_named(&s, "b").unwrap(), &Value::str("x"));
        assert!(tup.get_named(&s, "c").is_err());
    }

    #[test]
    fn arity_mismatch_detected() {
        let tup = t(vec![Value::U64(1)]);
        let s = schema();
        assert!(tup.check_arity(&s).is_err());
        assert!(matches!(tup.get_named(&s, "b"), Err(TypeError::ArityMismatch { .. })));
        let ok = t(vec![Value::U64(1), Value::str("x")]);
        assert!(ok.check_arity(&s).is_ok());
    }

    #[test]
    fn out_of_range_get_is_null() {
        let tup = t(vec![Value::U64(1)]);
        assert_eq!(tup.get(5), &Value::Null);
    }

    #[test]
    fn projection_builds_keys() {
        let tup = t(vec![Value::U64(1), Value::U64(2), Value::U64(3)]);
        assert_eq!(tup.project(&[2, 0]), t(vec![Value::U64(3), Value::U64(1)]));
        assert_eq!(tup.project(&[]), Tuple::empty());
    }

    #[test]
    fn display() {
        let tup = t(vec![Value::U64(1), Value::str("x")]);
        assert_eq!(tup.to_string(), "(1, x)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn tuples_hash_as_group_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(t(vec![Value::U64(5)]));
        // Mixed-signedness equal values must dedupe.
        assert!(!set.insert(t(vec![Value::I64(5)])));
        assert!(set.insert(t(vec![Value::I64(-5)])));
    }
}
