//! The sharded runtime: a router thread hash-partitions tuples by the
//! plan's partition key and feeds per-shard batched bounded rings; each
//! shard runs its own operator instance; window outputs are merged by
//! the plan's rule after the workers drain.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use rustc_hash::FxHasher;
use sso_core::{
    panic_message, EvalCtx, Expr, OpError, OperatorMetrics, OperatorSpec, SamplingOperator,
    ShardPlan, WindowOutput,
};
use sso_obs::{Counter, Gauge, Registry, Stopwatch};
use sso_types::Tuple;

use crate::barrier::MergeBarrier;
use crate::ring::{ring, PushError};

/// What the router does when a shard's ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for the worker (lossless; counts a stall per wait).
    Block,
    /// Discard the newest batch (lossy; counts every dropped tuple) —
    /// the behaviour of a real NIC ring under overload.
    DropNewest,
}

/// Sharded-runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker shards (operator instances).
    pub shards: usize,
    /// Ring depth per shard, in batches.
    pub ring_capacity: usize,
    /// Tuples per batch.
    pub batch_size: usize,
    /// Full-ring policy.
    pub backpressure: Backpressure,
    /// Seed for randomized window merges (reservoir); per-shard sampler
    /// seeds come from the spec factory instead.
    pub seed: u64,
    /// Telemetry registry to record into. `None` = a private disabled
    /// registry: counters still land (so [`ShardStats`] stays exact)
    /// but span tracing is off and nothing is exported.
    pub registry: Option<Registry>,
}

impl RuntimeConfig {
    /// A config with `shards` workers and the default ring shape:
    /// 16 batches of 1024 tuples, blocking backpressure. (Same 16K-tuple
    /// ring depth as 64x256, but fewer handoffs per tuple; larger
    /// batches start thrashing cache.)
    pub fn new(shards: usize) -> Self {
        RuntimeConfig {
            shards,
            ring_capacity: 16,
            batch_size: 1024,
            backpressure: Backpressure::Block,
            seed: 0x5eed_00d5,
            registry: None,
        }
    }

    /// Record this run's telemetry into `registry`.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }
}

/// Per-shard accounting: a thin view over this shard's registry cells
/// (`rt.*` metrics labeled `shard=N`). The workers and the router write
/// the cells directly, so mid-run snapshots of the shared registry see
/// live values; the accessors here read the same cells and are exact
/// once the run has joined its workers.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    tuples: Counter,
    windows: Counter,
    stalls: Counter,
    dropped: Counter,
    busy_ns: Counter,
}

impl ShardStats {
    fn register(registry: &Registry, shard: usize) -> Self {
        let label = format!("shard={shard}");
        ShardStats {
            shard,
            tuples: registry.counter_labeled("rt.tuples", label.clone()),
            windows: registry.counter_labeled("rt.windows", label.clone()),
            stalls: registry.counter_labeled("rt.stalls", label.clone()),
            dropped: registry.counter_labeled("rt.dropped", label.clone()),
            busy_ns: registry.counter_labeled("rt.busy_ns", label),
        }
    }

    /// Tuples the worker processed.
    pub fn tuples(&self) -> u64 {
        self.tuples.get()
    }

    /// Windows the worker closed.
    pub fn windows(&self) -> u64 {
        self.windows.get()
    }

    /// Times the router blocked on this shard's full ring.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }

    /// Tuples dropped at this shard's full ring
    /// ([`Backpressure::DropNewest`] only).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Worker busy time, updated per batch (not only at worker join).
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.get())
    }
}

/// Why a sharded run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A shard's operator returned an error.
    Op {
        /// Shard index.
        shard: usize,
        /// The operator error.
        source: OpError,
    },
    /// A shard's worker thread panicked.
    WorkerPanic {
        /// Shard index.
        shard: usize,
        /// Panic payload message.
        message: String,
    },
    /// The configuration is unusable (zero shards, zero batch size).
    BadConfig(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Op { shard, source } => write!(f, "shard {shard}: {source}"),
            RuntimeError::WorkerPanic { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
            RuntimeError::BadConfig(msg) => write!(f, "bad runtime config: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The result of a sharded run: merged windows plus per-shard accounting.
#[derive(Debug)]
pub struct ShardedReport {
    /// Window outputs after merge-finalize, in window order.
    pub windows: Vec<WindowOutput>,
    /// Per-shard accounting, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ShardedReport {
    /// Total tuples dropped at full rings.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Total router stalls on full rings.
    pub fn stalls(&self) -> u64 {
        self.shards.iter().map(|s| s.stalls()).sum()
    }
}

/// Map a partition-key hash to a shard; hot enough on the router thread
/// that the power-of-two mask (vs a 64-bit division) is measurable.
#[inline]
fn pick_shard(hash: u64, shards: usize) -> usize {
    if shards.is_power_of_two() {
        (hash as usize) & (shards - 1)
    } else {
        (hash % shards as u64) as usize
    }
}

/// How the router picks a shard for a tuple.
enum Router {
    /// No partition key: deal batches out cyclically (valid only with a
    /// key-free merge rule).
    RoundRobin { next: usize },
    /// Every partition expression is a plain input column.
    Columns(Vec<usize>),
    /// General tuple-phase expressions.
    Exprs(Vec<Expr>),
}

impl Router {
    fn new(plan: &ShardPlan) -> Router {
        if plan.partition_exprs.is_empty() {
            return Router::RoundRobin { next: 0 };
        }
        let cols: Option<Vec<usize>> = plan
            .partition_exprs
            .iter()
            .map(|e| match e {
                Expr::Column(i) => Some(*i),
                _ => None,
            })
            .collect();
        match cols {
            Some(cols) => Router::Columns(cols),
            None => Router::Exprs(plan.partition_exprs.clone()),
        }
    }

    fn route(&mut self, tuple: &Tuple, shards: usize) -> usize {
        match self {
            Router::RoundRobin { next } => {
                let s = *next;
                *next = (*next + 1) % shards;
                s
            }
            Router::Columns(cols) => {
                let mut h = FxHasher::default();
                for &c in cols.iter() {
                    tuple.get(c).hash(&mut h);
                }
                pick_shard(h.finish(), shards)
            }
            Router::Exprs(exprs) => {
                let mut h = FxHasher::default();
                for e in exprs.iter() {
                    let mut ctx = EvalCtx { tuple: Some(tuple), ..EvalCtx::empty("GROUP BY") };
                    match e.eval(&mut ctx) {
                        Ok(v) => v.hash(&mut h),
                        // The worker evaluates the same expression in its
                        // GROUP BY and will surface the error; any shard
                        // will do for the faulty tuple.
                        Err(_) => return 0,
                    }
                }
                pick_shard(h.finish(), shards)
            }
        }
    }
}

/// Run `tuples` through `cfg.shards` operator instances partitioned and
/// merged per `plan`, returning the merged windows.
///
/// `make_spec` builds one fresh [`OperatorSpec`] per shard (shard index
/// passed in): per-shard specs must not share stateful-function
/// libraries, both so sampler RNG streams stay deterministic per shard
/// and so no state is accidentally shared across threads.
///
/// The router runs on the calling thread; workers run under
/// [`std::thread::scope`]. A worker panic or operator error aborts the
/// run with the shard index attached.
pub fn run_sharded<F, I>(
    plan: &ShardPlan,
    make_spec: F,
    cfg: &RuntimeConfig,
    tuples: I,
) -> Result<ShardedReport, RuntimeError>
where
    F: Fn(usize) -> Result<OperatorSpec, OpError>,
    I: IntoIterator<Item = Tuple>,
{
    if cfg.shards == 0 {
        return Err(RuntimeError::BadConfig("shards must be positive".into()));
    }
    if cfg.batch_size == 0 || cfg.ring_capacity == 0 {
        return Err(RuntimeError::BadConfig(
            "batch size and ring capacity must be positive".into(),
        ));
    }

    // A run without a caller-supplied registry records into a private
    // disabled one: ShardStats cells still work, spans stay off.
    let registry = cfg.registry.clone().unwrap_or_else(Registry::disabled);
    let mut operators = Vec::with_capacity(cfg.shards);
    for shard in 0..cfg.shards {
        let spec = make_spec(shard).map_err(|source| RuntimeError::Op { shard, source })?;
        let mut op =
            SamplingOperator::new(spec).map_err(|source| RuntimeError::Op { shard, source })?;
        op.set_metrics(OperatorMetrics::register(&registry, format!("shard={shard}")));
        operators.push(op);
    }

    let stats: Vec<ShardStats> =
        (0..cfg.shards).map(|shard| ShardStats::register(&registry, shard)).collect();
    // Ring depth is maintained by hand (inc on enqueue, dec on dequeue):
    // the channel exposes no len(), and per-shard gauge cells sum to the
    // total queued batches at snapshot time.
    let ring_depths: Vec<Gauge> = (0..cfg.shards)
        .map(|shard| registry.gauge_labeled("rt.ring_depth", format!("shard={shard}")))
        .collect();
    let batch_hist = registry.histogram("rt.batch_tuples");

    // Workers deposit their final partials here; the router thread
    // waits on it after the joins, so the merge observes every shard's
    // last window through the barrier's Release/Acquire protocol.
    let barrier: std::sync::Arc<MergeBarrier<Vec<WindowOutput>>> = MergeBarrier::new(cfg.shards);
    let per_shard: Vec<Vec<WindowOutput>> = std::thread::scope(|s| {
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for (shard, mut op) in operators.into_iter().enumerate() {
            let (tx, mut rx) = ring::<Vec<Tuple>>(cfg.ring_capacity);
            txs.push(tx);
            let stats = stats[shard].clone();
            let depth = ring_depths[shard].clone();
            let barrier = barrier.clone();
            handles.push(s.spawn(move || -> Result<(), OpError> {
                let mut windows = Vec::new();
                while let Some(batch) = rx.pop() {
                    depth.add(-1.0);
                    let sw = Stopwatch::start();
                    for tuple in &batch {
                        if let Some(w) = op.process(tuple)? {
                            stats.windows.inc();
                            windows.push(w);
                        }
                    }
                    stats.tuples.add(batch.len() as u64);
                    stats.busy_ns.add(sw.elapsed_ns());
                }
                let sw = Stopwatch::start();
                if let Some(w) = op.finish()? {
                    stats.windows.inc();
                    windows.push(w);
                }
                stats.busy_ns.add(sw.elapsed_ns());
                barrier.publish(shard, windows);
                Ok(())
            }));
        }

        let mut router = Router::new(plan);
        let mut batches: Vec<Vec<Tuple>> =
            (0..cfg.shards).map(|_| Vec::with_capacity(cfg.batch_size)).collect();
        let mut send_batch = |shard: usize, batch: Vec<Tuple>| {
            let len = batch.len() as u64;
            match cfg.backpressure {
                Backpressure::Block => match txs[shard].try_push(batch) {
                    Ok(()) => {
                        batch_hist.record(len);
                        ring_depths[shard].add(1.0);
                    }
                    Err(PushError::Full(batch)) => {
                        stats[shard].stalls.inc();
                        // Worker death closes the ring; the join below
                        // surfaces its error.
                        if txs[shard].push(batch).is_ok() {
                            batch_hist.record(len);
                            ring_depths[shard].add(1.0);
                        }
                    }
                    Err(PushError::Closed(_)) => {}
                },
                Backpressure::DropNewest => match txs[shard].try_push(batch) {
                    Ok(()) => {
                        batch_hist.record(len);
                        ring_depths[shard].add(1.0);
                    }
                    Err(PushError::Full(_)) => {
                        stats[shard].dropped.add(len);
                    }
                    Err(PushError::Closed(_)) => {}
                },
            }
        };

        for tuple in tuples {
            let shard = router.route(&tuple, cfg.shards);
            batches[shard].push(tuple);
            if batches[shard].len() >= cfg.batch_size {
                let batch =
                    std::mem::replace(&mut batches[shard], Vec::with_capacity(cfg.batch_size));
                send_batch(shard, batch);
            }
        }
        for (shard, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                send_batch(shard, batch);
            }
        }
        drop(txs);

        for (shard, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(source)) => return Err(RuntimeError::Op { shard, source }),
                Err(payload) => {
                    return Err(RuntimeError::WorkerPanic {
                        shard,
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
        }
        // Every worker joined cleanly, so every shard published and
        // this returns immediately with all partials in shard order.
        Ok(barrier.wait_all())
    })?;

    let windows = crate::merge::merge_windows(per_shard, &plan.rule, cfg.seed);
    Ok(ShardedReport { windows, shards: stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_core::{queries, shard_plan};
    use sso_types::{Packet, Protocol, Value};

    fn stream(secs: u64, per_sec: u64, n_src: u32) -> Vec<Tuple> {
        let mut out = Vec::new();
        let mut i = 0u64;
        for sec in 0..secs {
            for j in 0..per_sec {
                let p = Packet {
                    uts: sec * 1_000_000_000 + j * (1_000_000_000 / per_sec) + 1,
                    src_ip: (i % n_src as u64) as u32,
                    dest_ip: 9,
                    src_port: 1000,
                    dest_port: 80,
                    proto: Protocol::Tcp,
                    len: 100 + (i % 7) as u32 * 100,
                };
                out.push(p.to_tuple());
                i += 1;
            }
        }
        out
    }

    fn run_exact(shards: usize) -> Vec<WindowOutput> {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let cfg = RuntimeConfig::new(shards);
        run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, stream(3, 1000, 16))
            .unwrap()
            .windows
    }

    #[test]
    fn round_robin_combine_is_exact_for_any_shard_count() {
        let single = run_exact(1);
        for shards in [2, 3, 8] {
            let sharded = run_exact(shards);
            assert_eq!(single.len(), sharded.len());
            for (a, b) in single.iter().zip(&sharded) {
                assert_eq!(a.window, b.window);
                assert_eq!(a.rows, b.rows, "{shards} shards must not drift");
                assert_eq!(a.stats.tuples, b.stats.tuples);
            }
        }
    }

    #[test]
    fn key_partitioned_concat_is_exact() {
        let spec = queries::heavy_hitters_query(1, 1 << 20, None).unwrap();
        let plan = shard_plan(&spec).unwrap();
        let make = |_| queries::heavy_hitters_query(1, 1 << 20, None);
        let tuples = stream(2, 2000, 32);
        let single =
            run_sharded(&plan, make, &RuntimeConfig::new(1), tuples.clone()).unwrap().windows;
        let sharded = run_sharded(&plan, make, &RuntimeConfig::new(4), tuples).unwrap().windows;
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!(a.rows, b.rows);
        }
    }

    #[test]
    fn worker_errors_carry_the_shard_index() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let make = |shard: usize| {
            let mut spec = queries::total_sum_query(1);
            if shard == 1 {
                spec.where_clause = Some(Expr::Scalar {
                    name: "BOOM",
                    fun: std::sync::Arc::new(|_: &[Value]| Err("shard fault".to_string())),
                    args: vec![],
                });
            }
            Ok(spec)
        };
        // Round-robin routing guarantees shard 1 receives tuples.
        let err = run_sharded(&plan, make, &RuntimeConfig::new(3), stream(1, 600, 4)).unwrap_err();
        match err {
            RuntimeError::Op { shard, source } => {
                assert_eq!(shard, 1);
                assert!(source.to_string().contains("shard fault"));
            }
            other => panic!("expected Op error, got {other}"),
        }
    }

    #[test]
    fn worker_panics_are_reported_not_aborted() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let make = |shard: usize| {
            let mut spec = queries::total_sum_query(1);
            if shard == 0 {
                spec.where_clause = Some(Expr::Scalar {
                    name: "PANIC",
                    fun: std::sync::Arc::new(|_: &[Value]| panic!("injected shard panic")),
                    args: vec![],
                });
            }
            Ok(spec)
        };
        let err = run_sharded(&plan, make, &RuntimeConfig::new(2), stream(1, 600, 4)).unwrap_err();
        match err {
            RuntimeError::WorkerPanic { shard: 0, message } => {
                assert!(message.contains("injected shard panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    #[test]
    fn drop_newest_accounts_every_lost_tuple() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let mut cfg = RuntimeConfig::new(1);
        cfg.ring_capacity = 1;
        cfg.batch_size = 16;
        cfg.backpressure = Backpressure::DropNewest;
        // A worker that can't keep up: every tuple takes a busy-loop hit.
        let make = |_| {
            let mut spec = queries::total_sum_query(1);
            spec.where_clause = Some(Expr::Scalar {
                name: "SLOW",
                fun: std::sync::Arc::new(|_: &[Value]| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    Ok(Value::Bool(true))
                }),
                args: vec![],
            });
            Ok(spec)
        };
        let tuples = stream(1, 5000, 4);
        let n = tuples.len() as u64;
        let report = run_sharded(&plan, make, &cfg, tuples).unwrap();
        let processed: u64 = report.shards.iter().map(|s| s.tuples()).sum();
        assert!(report.dropped() > 0, "1-deep ring must overflow");
        assert_eq!(processed + report.dropped(), n, "drops must be fully accounted");
    }

    #[test]
    fn blocking_backpressure_is_lossless_and_counts_stalls() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let mut cfg = RuntimeConfig::new(2);
        cfg.ring_capacity = 1;
        cfg.batch_size = 8;
        let tuples = stream(1, 4000, 4);
        let n = tuples.len() as u64;
        let report = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples).unwrap();
        let processed: u64 = report.shards.iter().map(|s| s.tuples()).sum();
        assert_eq!(processed, n, "blocking mode must be lossless");
        assert_eq!(report.dropped(), 0);
    }

    #[test]
    fn supplied_registry_collects_runtime_and_operator_metrics() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let registry = Registry::new();
        let cfg = RuntimeConfig::new(2).with_registry(registry.clone());
        let tuples = stream(2, 1000, 8);
        let n = tuples.len() as f64;
        let report = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples).unwrap();
        let snap = registry.snapshot();
        // Merged across shard labels the totals must match the report.
        let rt_tuples: f64 = report.shards.iter().map(|s| s.tuples() as f64).sum();
        assert_eq!(rt_tuples, n);
        let merged: f64 =
            snap.metrics.iter().filter(|m| m.name == "rt.tuples").map(|m| m.scalar()).sum();
        assert_eq!(merged, n);
        // The per-shard operators flushed their window counters too.
        let op_tuples: f64 =
            snap.metrics.iter().filter(|m| m.name == "op.tuples").map(|m| m.scalar()).sum();
        assert_eq!(op_tuples, n);
        // Busy time was recorded per batch, and rings drained to depth 0.
        assert!(report.shards.iter().all(|s| s.busy() > Duration::ZERO));
        let depth: f64 =
            snap.metrics.iter().filter(|m| m.name == "rt.ring_depth").map(|m| m.scalar()).sum();
        assert_eq!(depth, 0.0);
        // Router batch sizes were recorded.
        let batches = snap.get("rt.batch_tuples").unwrap();
        assert!(batches.hits() > 0);
    }

    #[test]
    fn rejects_zero_shards() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let err =
            run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &RuntimeConfig::new(0), [])
                .unwrap_err();
        assert!(matches!(err, RuntimeError::BadConfig(_)));
    }
}
