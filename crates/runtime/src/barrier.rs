//! The window-aligned merge-finalize barrier.
//!
//! Each worker shard deposits its final per-run partial (its window
//! outputs) into its own slot and announces it with one `Release`
//! increment of the published count; the merging thread waits for the
//! count to reach the shard total with an `Acquire` load and only then
//! reads the slots. The increments form a single release sequence on
//! the counter, so the final `Acquire` load synchronizes with *every*
//! publisher — the merge can never observe a shard's slot before that
//! shard's last write to it. The `model_check` suite verifies exactly
//! this invariant (and that downgrading the increment to `Relaxed` is
//! reported as a data race).

use std::sync::Arc;

use sso_sync::hint::Backoff;
use sso_sync::Ordering::{Acquire, Release};
use sso_sync::{SyncBool, SyncCell, SyncUsize};

/// Collects one `T` per shard; see the module docs for the protocol.
pub struct MergeBarrier<T> {
    slots: Box<[SyncCell<Option<T>>]>,
    /// Per-slot published flags, for the deadline path: `take_ready`
    /// must know *which* slots are safe to read, not just how many.
    ready: Box<[SyncBool]>,
    published: SyncUsize,
}

impl<T: Send> MergeBarrier<T> {
    /// A barrier expecting one publish per shard.
    pub fn new(shards: usize) -> Arc<Self> {
        Arc::new(MergeBarrier {
            slots: (0..shards).map(|_| SyncCell::new(None)).collect(),
            ready: (0..shards).map(|_| SyncBool::new(false)).collect(),
            published: SyncUsize::new(0),
        })
    }

    /// Deposit shard `shard`'s final partial. Call at most once per
    /// shard; the slot write is exclusive because each shard owns its
    /// own index.
    pub fn publish(&self, shard: usize, value: T) {
        // SAFETY: shard-indexed slot, written only by that shard's
        // worker, before the Release stores below publish it.
        unsafe { self.slots[shard].with_mut(|slot| *slot = Some(value)) };
        self.ready[shard].store(true, Release);
        self.published.fetch_add(1, Release);
    }

    /// How many shards have published so far (`Acquire`, monotonic).
    pub fn published(&self) -> usize {
        self.published.load(Acquire)
    }

    /// Wait until every shard has published, then take all partials in
    /// shard order (`None` entries would mean a double-take and panic).
    pub fn wait_all(&self) -> Vec<T> {
        let mut backoff = Backoff::new();
        while self.published.load(Acquire) < self.slots.len() {
            backoff.wait();
        }
        self.slots
            .iter()
            .enumerate()
            .map(|(shard, slot)| {
                // SAFETY: the Acquire load above synchronized with every
                // publisher's Release increment, so all slot writes
                // happened-before these reads and no writer remains.
                unsafe { slot.with_mut(|s| s.take()) }
                    .unwrap_or_else(|| panic!("shard {shard} never published"))
            })
            .collect()
    }

    /// Take the partials of every shard that has published *so far*,
    /// leaving `None` in the positions of shards that have not — the
    /// window-deadline finalize path, where stragglers are cut off
    /// rather than waited for. Each taken slot's read is ordered after
    /// its publisher's write by the per-slot `Acquire`/`Release` flag;
    /// unpublished slots are never touched, so a straggler publishing
    /// concurrently with this call is safe (its flag is simply seen as
    /// false and its slot left alone).
    pub fn take_ready(&self) -> Vec<Option<T>> {
        self.ready
            .iter()
            .zip(self.slots.iter())
            .map(|(ready, slot)| {
                if ready.load(Acquire) {
                    // SAFETY: the Acquire load of this slot's flag
                    // synchronized with its publisher's Release store,
                    // so the slot write happened-before this take.
                    unsafe { slot.with_mut(|s| s.take()) }
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_in_shard_order() {
        let b = MergeBarrier::new(3);
        b.publish(2, "c");
        b.publish(0, "a");
        assert_eq!(b.published(), 2);
        b.publish(1, "b");
        assert_eq!(b.wait_all(), vec!["a", "b", "c"]);
    }

    #[test]
    fn waits_for_concurrent_publishers() {
        let b = MergeBarrier::new(4);
        let handles: Vec<_> = (0..4)
            .map(|shard| {
                let b = b.clone();
                sso_sync::thread::spawn(move || b.publish(shard, shard * 10))
            })
            .collect();
        let got = b.wait_all();
        assert_eq!(got, vec![0, 10, 20, 30]);
        for h in handles {
            h.join();
        }
    }

    #[test]
    fn take_ready_skips_stragglers_and_sees_late_publishers() {
        let b = MergeBarrier::new(3);
        b.publish(2, "c");
        b.publish(0, "a");
        assert_eq!(b.take_ready(), vec![Some("a"), None, Some("c")]);
        // A straggler publishing after the cut still lands; a second
        // take picks it up (taken slots stay empty).
        b.publish(1, "b");
        assert_eq!(b.take_ready(), vec![None, Some("b"), None]);
    }

    #[test]
    #[should_panic(expected = "never published")]
    fn double_take_is_a_bug() {
        let b = MergeBarrier::new(1);
        b.publish(0, 7);
        b.wait_all();
        b.wait_all();
    }
}
