//! The profiler handle threaded through the runtime.
//!
//! A [`Profiler`] is a cheap `Arc` clone shared by the router, every
//! worker shard, and the merge path. Each thread opens its own
//! [`LaneWriter`]; the profiler itself only holds the lane table (a
//! mutex touched at lane *creation*, never on the record path), the
//! epoch stopwatch, the dump trigger, and the dump destination.
//!
//! Dump triggers are first-CAS-wins: the first of panic / straggle /
//! shed / crash to fire names the dump's reason; later triggers are
//! no-ops. Triggering only raises a flag — the dump itself is written
//! by the runtime **after** worker joins, when every lane is quiescent
//! and the `Release`-published heads are authoritative.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use sso_obs::{Registry, Stopwatch};
use sso_sync::Ordering::{Acquire, Relaxed};
use sso_sync::{SyncMutex, SyncU64};

use crate::collect::ProfileReport;
use crate::dump::{write_dump_file, Dump};
use crate::lane::{new_lane, LaneKind, LaneShared, LaneWriter};

/// Why a flight-recorder dump was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DumpReason {
    /// Explicit request (`--profile=FILE` at end of run).
    Manual = 0,
    /// A worker shard panicked into quarantine.
    Panic = 1,
    /// A shard missed the window deadline.
    Straggle = 2,
    /// Shed backpressure activated (threshold left zero).
    Shed = 3,
    /// A `crash at=N` fault fired.
    Crash = 4,
}

impl DumpReason {
    pub fn as_str(self) -> &'static str {
        match self {
            DumpReason::Manual => "manual",
            DumpReason::Panic => "panic",
            DumpReason::Straggle => "straggle",
            DumpReason::Shed => "shed",
            DumpReason::Crash => "crash",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<DumpReason> {
        match v {
            0 => Some(DumpReason::Manual),
            1 => Some(DumpReason::Panic),
            2 => Some(DumpReason::Straggle),
            3 => Some(DumpReason::Shed),
            4 => Some(DumpReason::Crash),
            _ => None,
        }
    }
}

/// Profiler construction knobs.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Events retained per lane (the flight recorder's "last N").
    pub ring_capacity: usize,
    /// Where a triggered (or manual) dump lands; `None` disables dumps
    /// but keeps live attribution.
    pub dump_path: Option<PathBuf>,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig { ring_capacity: 8192, dump_path: None }
    }
}

struct Inner {
    epoch: Stopwatch,
    capacity: usize,
    lanes: SyncMutex<Vec<Arc<LaneShared>>>,
    /// 0 = untriggered, else `DumpReason as u8 + 1`.
    trigger: SyncU64,
    dump_path: Option<PathBuf>,
}

/// The shared causal-tracing handle. Clones share all state.
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("capacity", &self.inner.capacity)
            .field("dump_path", &self.inner.dump_path)
            .field("triggered", &self.triggered())
            .finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new(ProfilerConfig::default())
    }
}

impl Profiler {
    pub fn new(cfg: ProfilerConfig) -> Profiler {
        Profiler {
            inner: Arc::new(Inner {
                epoch: Stopwatch::start(),
                capacity: cfg.ring_capacity,
                lanes: SyncMutex::new(Vec::new()),
                trigger: SyncU64::new(0),
                dump_path: cfg.dump_path,
            }),
        }
    }

    /// Nanoseconds since the profiler epoch — every stamp's clock.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed_ns()
    }

    /// Open a new lane for the calling thread. Locks the lane table
    /// (creation-time only; recording never locks).
    pub fn lane(&self, kind: LaneKind, index: u32) -> LaneWriter {
        let (writer, shared) = new_lane(kind, index, self.inner.capacity);
        self.inner.lanes.lock().push(shared);
        writer
    }

    /// Raise the dump trigger; the first caller's reason wins.
    pub fn trigger(&self, reason: DumpReason) {
        let _ = self.inner.trigger.compare_exchange(0, reason as u64 + 1, Relaxed, Relaxed);
    }

    /// The winning trigger, if any fired.
    pub fn triggered(&self) -> Option<DumpReason> {
        match self.inner.trigger.load(Acquire) {
            0 => None,
            v => DumpReason::from_u8((v - 1) as u8),
        }
    }

    /// Where dumps go, if anywhere.
    pub fn dump_path(&self) -> Option<&Path> {
        self.inner.dump_path.as_deref()
    }

    /// Snapshot every lane's published suffix.
    pub fn dump(&self, reason: DumpReason) -> Dump {
        let lanes = self.inner.lanes.lock();
        let mut out: Vec<_> = lanes.iter().map(|l| l.collect()).collect();
        drop(lanes);
        out.sort_by_key(|l| (l.kind as u8, l.index));
        Dump { reason, lanes: out }
    }

    /// Write the current state to `path` (triggered reason, else the
    /// given fallback).
    pub fn write_dump(&self, path: &Path, fallback: DumpReason) -> std::io::Result<()> {
        let reason = self.triggered().unwrap_or(fallback);
        write_dump_file(path, &self.dump(reason))
    }

    /// If a trigger fired and a dump path is configured, write the dump
    /// and return its path. Called by the runtime after worker joins.
    pub fn write_dump_if_triggered(&self) -> std::io::Result<Option<PathBuf>> {
        match (self.triggered(), &self.inner.dump_path) {
            (Some(reason), Some(path)) => {
                write_dump_file(path, &self.dump(reason))?;
                Ok(Some(path.clone()))
            }
            _ => Ok(None),
        }
    }

    /// Fold all lanes into a stage-attribution report.
    pub fn report(&self) -> ProfileReport {
        ProfileReport::from_dump(&self.dump(self.triggered().unwrap_or(DumpReason::Manual)))
    }

    /// Register `prof.*` metrics (per-stage and end-to-end window
    /// latency histograms) into an `sso-obs` registry, feeding
    /// `sso top` and the METRICS meta-stream.
    pub fn fold_into(&self, registry: &Registry) {
        crate::collect::fold_into(
            &self.dump(self.triggered().unwrap_or(DumpReason::Manual)),
            registry,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Stage};

    #[test]
    fn first_trigger_wins() {
        let p = Profiler::new(ProfilerConfig::default());
        assert_eq!(p.triggered(), None);
        p.trigger(DumpReason::Shed);
        p.trigger(DumpReason::Crash);
        assert_eq!(p.triggered(), Some(DumpReason::Shed));
    }

    #[test]
    fn dump_orders_lanes() {
        let p = Profiler::new(ProfilerConfig { ring_capacity: 16, dump_path: None });
        let mut w1 = p.lane(LaneKind::Worker, 1);
        let mut r = p.lane(LaneKind::Router, 0);
        let mut w0 = p.lane(LaneKind::Worker, 0);
        r.record(Event::new(Stage::Ingest, 0, 1));
        w0.record(Event::new(Stage::Process, 1, 1).shard(0));
        w1.record(Event::new(Stage::Process, 2, 1).shard(1));
        r.publish();
        w0.publish();
        w1.publish();
        let d = p.dump(DumpReason::Manual);
        let keys: Vec<_> = d.lanes.iter().map(|l| (l.kind, l.index)).collect();
        assert_eq!(keys, vec![(LaneKind::Router, 0), (LaneKind::Worker, 0), (LaneKind::Worker, 1)]);
    }

    #[test]
    fn write_dump_if_untriggered_is_noop() {
        let p = Profiler::new(ProfilerConfig {
            ring_capacity: 4,
            dump_path: Some(std::env::temp_dir().join("never-written.ssoprof")),
        });
        assert!(p.write_dump_if_triggered().unwrap().is_none());
    }
}
