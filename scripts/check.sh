#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "All checks passed."
