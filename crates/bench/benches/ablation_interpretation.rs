//! Ablation: the cost of generality (DESIGN.md).
//!
//! The paper's whole argument is that one *generic* operator — with
//! interpreted expressions, a group table, superaggregates, and
//! dyn-dispatched stateful functions — is cheap enough to host any
//! sampling algorithm at line rate. This ablation measures exactly what
//! that generality costs by running dynamic subset-sum sampling twice
//! over the same packets:
//!
//! 1. hosted on the sampling operator (the §6.1 query), and
//! 2. as a hand-coded monomorphic loop over `DynamicSubsetSum`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{queries, SamplingOperator};
use sso_netgen::datacenter_feed;
use sso_sampling::subset_sum::{DynamicSubsetSum, SubsetSumConfig};
use sso_types::{Packet, Tuple};

fn bench_interpretation(c: &mut Criterion) {
    let packets: Vec<Packet> = datacenter_feed(55).take_seconds(1);
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let n = packets.len() as u64;

    let mut group = c.benchmark_group("cost_of_generality");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function("operator_hosted", |b| {
        b.iter(|| {
            let cfg = SubsetSumOpConfig { target: 1000, initial_z: 50.0, ..Default::default() };
            let mut op =
                SamplingOperator::new(queries::subset_sum_query(20, cfg, false).unwrap()).unwrap();
            for t in &tuples {
                op.process(std::hint::black_box(t)).unwrap();
            }
            op.finish().unwrap().map(|w| w.rows.len())
        })
    });

    group.bench_function("hand_coded_loop", |b| {
        b.iter(|| {
            let cfg = SubsetSumConfig::new(1000).with_initial_z(50.0);
            let mut ss = DynamicSubsetSum::new(cfg);
            for p in &packets {
                ss.offer((p.src_ip, p.dest_ip), std::hint::black_box(p.len as u64));
            }
            ss.end_window().samples.len()
        })
    });

    // Also isolate the tuple-conversion (copy) cost the low-level node
    // pays per forwarded packet.
    group.bench_function("tuple_conversion_only", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for p in &packets {
                total += std::hint::black_box(p.to_tuple()).arity() as u64;
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_interpretation);
criterion_main!(benches);
