//! Distinct sampling on the operator (Gibbons VLDB'01, the paper's
//! reference [19]): estimate the number of distinct client hosts per
//! window from a bounded sample, and cross-check against both the exact
//! count and the reference `DistinctSampler`.
//!
//! ```sh
//! cargo run --release --example distinct_sources
//! ```

use std::collections::HashSet;

use stream_sampler::prelude::*;
use stream_sampler::sampling::DistinctSampler;

fn main() {
    const CAPACITY: usize = 256;
    let query = format!(
        "SELECT tb, srcIP, count(*), dscale(), count_distinct$(*)
         FROM PKT
         WHERE dsample(srcIP, {CAPACITY}) = TRUE
         GROUP BY time/30 as tb, srcIP
         CLEANING WHEN ddo_clean(count_distinct$(*)) = TRUE
         CLEANING BY dclean_with(srcIP) = TRUE"
    );
    let mut op = compile(&query, &Packet::schema(), &PlannerConfig::standard())
        .expect("distinct-sampling query compiles");

    let packets = research_feed(71).take_seconds(120);
    println!("feed: {} packets over 120s", packets.len());

    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();

    println!(
        "\n{:>7} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "window", "retained", "scale", "estimate", "reference", "exact"
    );
    for w in &windows {
        let tb = w.window.get(0).as_u64().unwrap();
        // Exact distinct sources and the reference sampler over the same
        // window.
        let mut exact = HashSet::new();
        let mut reference = DistinctSampler::new(CAPACITY);
        for p in packets.iter().filter(|p| p.time() / 30 == tb) {
            exact.insert(p.src_ip);
            reference.insert(p.src_ip as u64);
        }
        let (retained, scale) = match w.rows.first() {
            Some(r) => (r.get(4).as_f64().unwrap(), r.get(3).as_f64().unwrap()),
            None => (0.0, 1.0),
        };
        let estimate = retained * scale;
        println!(
            "{:>7} {:>10} {:>10} {:>12.0} {:>12.0} {:>12}",
            tb,
            retained,
            scale,
            estimate,
            reference.distinct_estimate(),
            exact.len()
        );
        if !exact.is_empty() {
            let rel = (estimate - exact.len() as f64).abs() / exact.len() as f64;
            assert!(rel < 0.5, "window {tb}: estimate {estimate} vs {}", exact.len());
        }
    }
    println!(
        "\nboth the operator-hosted sampler and the reference estimate the distinct\n\
         source count from at most {CAPACITY} retained hosts per window."
    );
}
