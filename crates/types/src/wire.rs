//! Byte-level wire codec for [`Value`] and [`Tuple`].
//!
//! The durable-state subsystem (`sso-store`) snapshots operator state to
//! disk and must round-trip it *byte-identically*: a value decoded from
//! a snapshot and re-encoded produces the same bytes. Everything here is
//! little-endian, length-prefixed, and variant-tagged — `F64` travels as
//! its IEEE bit pattern (`to_bits`), so NaNs and signed zeros survive,
//! and `U64`/`I64` keep their exact variant even where `PartialEq`
//! would treat them as equal.

use crate::tuple::Tuple;
use crate::value::Value;

/// A decode failure: truncated input or an unknown tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn err<T>(message: impl Into<String>) -> Result<T, WireError> {
    Err(WireError { message: message.into() })
}

/// Append a `u32` (little-endian).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` (little-endian two's complement).
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// A cursor over encoded bytes; every `take_*` advances it.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return err(format!("need {n} bytes, have {}", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `i64`.
    pub fn take_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.take_u32()? as usize;
        self.take(n)
    }
}

/// Variant tags (one byte each) for [`Value`].
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_U64: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;

/// Append one [`Value`], variant tag first.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::U64(n) => {
            out.push(TAG_U64);
            put_u64(out, *n);
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            put_i64(out, *n);
        }
        Value::F64(f) => {
            out.push(TAG_F64);
            put_f64(out, *f);
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_bytes(out, s.as_bytes());
        }
    }
}

/// Read one [`Value`].
pub fn take_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    let tag = r.take(1)?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(r.take(1)?[0] != 0),
        TAG_U64 => Value::U64(r.take_u64()?),
        TAG_I64 => Value::I64(r.take_i64()?),
        TAG_F64 => Value::F64(r.take_f64()?),
        TAG_STR => {
            let bytes = r.take_bytes()?;
            match std::str::from_utf8(bytes) {
                Ok(s) => Value::Str(s.into()),
                Err(_) => return err("string value is not UTF-8"),
            }
        }
        t => return err(format!("unknown value tag {t}")),
    })
}

/// Append one [`Tuple`] (arity-prefixed values).
pub fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u32(out, t.arity() as u32);
    for v in t.values() {
        put_value(out, v);
    }
}

/// Read one [`Tuple`].
pub fn take_tuple(r: &mut Reader<'_>) -> Result<Tuple, WireError> {
    let n = r.take_u32()? as usize;
    let mut vals = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        vals.push(take_value(r)?);
    }
    Ok(Tuple::new(vals))
}

/// FNV-1a 64-bit checksum — the frame integrity check for snapshot and
/// WAL records. Not cryptographic; it detects torn writes and bit rot.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut buf = Vec::new();
        put_value(&mut buf, v);
        let mut r = Reader::new(&buf);
        let out = take_value(&mut r).unwrap();
        assert!(r.is_empty());
        out
    }

    #[test]
    fn values_round_trip_exactly() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::U64(0),
            Value::U64(u64::MAX),
            Value::I64(-42),
            Value::F64(3.5),
            Value::F64(-0.0),
            Value::F64(f64::NAN),
            Value::Str("hello wire".into()),
            Value::Str("".into()),
        ] {
            let out = round_trip(&v);
            // Compare through re-encoding so NaN and -0.0 count as equal
            // to themselves (PartialEq would not).
            let (mut a, mut b) = (Vec::new(), Vec::new());
            put_value(&mut a, &v);
            put_value(&mut b, &out);
            assert_eq!(a, b, "{v:?}");
        }
    }

    #[test]
    fn variant_is_preserved_across_eq_classes() {
        // U64(5) == I64(5) under PartialEq, but the wire keeps variants.
        let mut a = Vec::new();
        let mut b = Vec::new();
        put_value(&mut a, &Value::U64(5));
        put_value(&mut b, &Value::I64(5));
        assert_ne!(a, b);
        let mut r = Reader::new(&a);
        assert!(matches!(take_value(&mut r).unwrap(), Value::U64(5)));
    }

    #[test]
    fn tuples_round_trip() {
        let t = Tuple::new(vec![Value::U64(7), Value::Str("x".into()), Value::Null]);
        let mut buf = Vec::new();
        put_tuple(&mut buf, &t);
        let mut r = Reader::new(&buf);
        assert_eq!(take_tuple(&mut r).unwrap(), t);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::U64(7));
        buf.truncate(buf.len() - 1);
        let mut r = Reader::new(&buf);
        assert!(take_value(&mut r).is_err());
        assert!(Reader::new(&[99]).take_u32().is_err());
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"sso-store");
        assert_eq!(a, checksum(b"sso-store"));
        assert_ne!(a, checksum(b"sso-storf"));
        assert_ne!(checksum(b""), 0);
    }
}
