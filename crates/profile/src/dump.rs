//! The flight-recorder dump format.
//!
//! `sso-store`-style framing: a magic + version preamble, then FNV-1a
//! checksummed length-prefixed frames —
//!
//! ```text
//! "SSOPROF1"  u32 version
//! frame 0: u8 reason | u32 lane_count
//! frame k: u8 kind | u32 index | u64 dropped | u32 count | count × 32B events
//! ```
//!
//! each frame on the wire as `u64 fnv_checksum | u32 len | payload`.
//! Events travel as their four packed little-endian `u64` words, so
//! encode → decode → encode is byte-identical (the round-trip proptest)
//! and a truncated or bit-flipped file fails loudly instead of decoding
//! garbage. Files are written `.tmp` + atomic rename, like checkpoints.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use sso_types::wire::{checksum, put_u32, put_u64, Reader};

use crate::event::Event;
use crate::lane::LaneKind;
use crate::profiler::DumpReason;

/// File magic.
pub const MAGIC: &[u8; 8] = b"SSOPROF1";
/// Format version.
pub const VERSION: u32 = 1;
/// Default dump file name inside a directory (e.g. `--durable DIR`).
pub const DUMP_FILE: &str = "flight.ssoprof";

/// One lane's recorded suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneDump {
    pub kind: LaneKind,
    pub index: u32,
    /// Events lost to ring wrap-around before the dump.
    pub dropped: u64,
    /// Oldest first.
    pub events: Vec<Event>,
}

/// A decoded flight-recorder dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dump {
    pub reason: DumpReason,
    pub lanes: Vec<LaneDump>,
}

impl Dump {
    /// Total events across lanes.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Total wrap-around losses across lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }
}

fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u64(out, checksum(payload));
    put_u32(out, payload.len() as u32);
    out.extend_from_slice(payload);
}

fn take_frame<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], String> {
    let want = r.take_u64().map_err(|e| e.to_string())?;
    let payload = r.take_bytes().map_err(|e| e.to_string())?;
    if checksum(payload) != want {
        return Err("frame checksum mismatch".into());
    }
    Ok(payload)
}

/// Encode a dump to its canonical byte form.
pub fn encode_dump(dump: &Dump) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);

    let mut header = Vec::new();
    header.push(dump.reason as u8);
    put_u32(&mut header, dump.lanes.len() as u32);
    put_frame(&mut out, &header);

    for lane in &dump.lanes {
        let mut p = Vec::with_capacity(17 + lane.events.len() * 32);
        p.push(lane.kind as u8);
        put_u32(&mut p, lane.index);
        put_u64(&mut p, lane.dropped);
        put_u32(&mut p, lane.events.len() as u32);
        for e in &lane.events {
            for w in e.to_words() {
                put_u64(&mut p, w);
            }
        }
        put_frame(&mut out, &p);
    }
    out
}

/// Decode a dump; strict — bad magic, version, checksum, stage byte, or
/// trailing bytes all fail.
pub fn decode_dump(bytes: &[u8]) -> Result<Dump, String> {
    let mut r = Reader::new(bytes);
    let magic: Vec<u8> =
        (0..8).map(|_| r.take_u8()).collect::<Result<_, _>>().map_err(|e| e.to_string())?;
    if magic != MAGIC {
        return Err("not a flight-recorder dump (bad magic)".into());
    }
    let version = r.take_u32().map_err(|e| e.to_string())?;
    if version != VERSION {
        return Err(format!("unsupported dump version {version} (expected {VERSION})"));
    }

    let header = take_frame(&mut r)?;
    let mut hr = Reader::new(header);
    let reason = DumpReason::from_u8(hr.take_u8().map_err(|e| e.to_string())?)
        .ok_or_else(|| "unknown dump reason".to_string())?;
    let lane_count = hr.take_u32().map_err(|e| e.to_string())?;
    if !hr.is_empty() {
        return Err("trailing bytes in header frame".into());
    }

    let mut lanes = Vec::with_capacity(lane_count as usize);
    for _ in 0..lane_count {
        let frame = take_frame(&mut r)?;
        let mut fr = Reader::new(frame);
        let kind = LaneKind::from_u8(fr.take_u8().map_err(|e| e.to_string())?)
            .ok_or_else(|| "unknown lane kind".to_string())?;
        let index = fr.take_u32().map_err(|e| e.to_string())?;
        let dropped = fr.take_u64().map_err(|e| e.to_string())?;
        let count = fr.take_u32().map_err(|e| e.to_string())?;
        let mut events = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut w = [0u64; 4];
            for word in &mut w {
                *word = fr.take_u64().map_err(|e| e.to_string())?;
            }
            events.push(
                Event::from_words(w).ok_or_else(|| "corrupt event (bad stage byte)".to_string())?,
            );
        }
        if !fr.is_empty() {
            return Err("trailing bytes in lane frame".into());
        }
        lanes.push(LaneDump { kind, index, dropped, events });
    }
    if !r.is_empty() {
        return Err("trailing bytes after last lane frame".into());
    }
    Ok(Dump { reason, lanes })
}

/// Write a dump with the checkpoint discipline: temp file, flush, sync,
/// atomic rename — a crash mid-write leaves the previous dump intact.
pub fn write_dump_file(path: &Path, dump: &Dump) -> io::Result<()> {
    let bytes = encode_dump(dump);
    let tmp = path.with_extension("ssoprof.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Read and decode a dump file.
pub fn read_dump_file(path: &Path) -> io::Result<Dump> {
    let bytes = fs::read(path)?;
    decode_dump(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;

    fn sample() -> Dump {
        Dump {
            reason: DumpReason::Crash,
            lanes: vec![
                LaneDump {
                    kind: LaneKind::Router,
                    index: 0,
                    dropped: 3,
                    events: vec![
                        Event::new(Stage::Ingest, 100, 50).aux(7),
                        Event::new(Stage::Route, 150, 10).shard(1).batch(0).aux(1024),
                    ],
                },
                LaneDump { kind: LaneKind::Worker, index: 1, dropped: 0, events: vec![] },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let d = sample();
        let bytes = encode_dump(&d);
        let back = decode_dump(&bytes).expect("decodes");
        assert_eq!(back, d);
        assert_eq!(encode_dump(&back), bytes);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode_dump(&sample());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(decode_dump(&bytes).is_err());
        assert!(decode_dump(&bytes[..bytes.len() - 2]).is_err(), "torn tail");
        assert!(decode_dump(b"NOTADUMP").is_err());
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("ssoprof-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(DUMP_FILE);
        let d = sample();
        write_dump_file(&path, &d).unwrap();
        assert_eq!(read_dump_file(&path).unwrap(), d);
        assert!(!path.with_extension("ssoprof.tmp").exists(), "tmp renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }
}
