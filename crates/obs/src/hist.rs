//! Fixed-bucket log-scale histograms.
//!
//! Buckets are powers of two: bucket `i` counts values `v` with
//! `2^i <= v < 2^(i+1)` (bucket 0 also takes `v = 0`). 48 buckets cover
//! `1 ns` to `~3.26 days` when recording nanoseconds, and any realistic
//! batch size when recording counts. Recording is two `Relaxed`
//! `fetch_add`s — no locks, no allocation, and safely shareable across
//! threads via the handle's internal [`Arc`].

use std::sync::Arc;

use sso_sync::Ordering::Relaxed;
use sso_sync::SyncU64;

/// Number of power-of-two buckets.
pub const BUCKETS: usize = 48;

#[derive(Debug)]
pub(crate) struct HistCore {
    pub(crate) buckets: [SyncU64; BUCKETS],
    pub(crate) count: SyncU64,
    pub(crate) sum: SyncU64,
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| SyncU64::new(0)),
            count: SyncU64::new(0),
            sum: SyncU64::new(0),
        }
    }
}

/// A writer handle to one histogram cell. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Arc<HistCore>);

/// The bucket index of a value: `floor(log2(max(v, 1)))`, clamped.
#[inline]
fn bucket_of(v: u64) -> usize {
    ((63 - (v | 1).leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram(Arc::new(HistCore::default()))
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_of(value)].fetch_add(1, Relaxed);
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(value, Relaxed);
    }

    /// Read the current state (merge-on-read of a single cell).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::default();
        snap.merge_from(&self.0);
        snap
    }
}

/// A point-in-time view of one (possibly merged) histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistSnapshot {
    pub(crate) fn merge_from(&mut self, core: &HistCore) {
        if self.buckets.len() != BUCKETS {
            self.buckets = vec![0; BUCKETS];
        }
        for (acc, b) in self.buckets.iter_mut().zip(core.buckets.iter()) {
            *acc += b.load(Relaxed);
        }
        self.count += core.count.load(Relaxed);
        self.sum += core.sum.load(Relaxed);
    }

    /// Record one observation into an offline snapshot — the same
    /// bucketing as the live [`Histogram`], for collectors that
    /// aggregate after the fact (e.g. `sso-profile` folding per-window
    /// latencies out of a flight-recorder dump).
    pub fn record(&mut self, value: u64) {
        if self.buckets.len() != BUCKETS {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        if i + 1 >= 64 {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// The quantile `q` in `[0, 1]`, estimated as the upper bound of the
    /// bucket where the cumulative count crosses `q * count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(self.buckets.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_and_quantile() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000, 1000, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 1 + 2 + 4 + 8 + 3000 + 100_000);
        // Rank 4 of 8 is the value 8 → bucket [8, 16).
        assert_eq!(s.quantile(0.5), 16);
        // Rank 6 lands in the 1000s bucket [512, 1024).
        assert_eq!(s.quantile(0.75), 1024);
        assert!(s.quantile(1.0) >= 100_000);
        assert_eq!(s.quantile(0.0), 2, "first observation's bucket bound");
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.99), 0);
    }

    #[test]
    fn merge_sums_cells() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(10);
        b.record(1 << 20);
        let mut s = a.snapshot();
        s.merge_from(&b.0);
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[3], 2);
        assert_eq!(s.buckets[20], 1);
    }
}
