//! Subset-sum (threshold) sampling (Duffield, Lund, Thorup — "learn more,
//! sample less"; §4.4 of the paper).
//!
//! Given tuples `(color, weight)`, the sample supports unbiased estimates
//! of `Σ weight` over *any* color subset: every tuple with `weight > z` is
//! kept, and small tuples are sampled one per `z` of accumulated small
//! weight via a deterministic counter, reported at adjusted weight `z`.
//!
//! Three variants, matching the paper:
//!
//! * [`BasicSubsetSum`] — fixed threshold `z`; sample size varies with
//!   load.
//! * [`DynamicSubsetSum`] — fixed *sample size* `N`: collect with the
//!   basic scheme, and whenever the sample exceeds `γ·N`, raise `z`
//!   (aggressive adjustment) and re-subsample the collected sample — the
//!   operator's *cleaning phase*. At the window border a final cleaning
//!   brings the sample to ≈ `N`.
//! * relaxed vs non-relaxed cross-window carry-over ([`ThresholdCarry`]):
//!   the next window's starting threshold is the load-adjusted final
//!   threshold divided by the relaxation factor `f` (paper: `f = 10`).
//!   `f = 1` is the non-relaxed algorithm, which badly *under-estimates*
//!   when load drops sharply — with `z` near the whole window's volume,
//!   the small-tuple counter never crosses `z` and all small traffic is
//!   lost (Figure 2's pathology).

/// A sampled tuple with its original weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedSample<T> {
    /// The sampled item.
    pub item: T,
    /// The item's original (unadjusted) weight.
    pub weight: u64,
}

/// Basic threshold sampling with a fixed threshold `z`.
///
/// The unbiased estimator for the sampled set is `Σ max(weight, z)`.
#[derive(Debug, Clone)]
pub struct BasicSubsetSum {
    z: f64,
    counter: f64,
    offered: u64,
    sampled: u64,
}

impl BasicSubsetSum {
    /// Create with threshold `z` (must be non-negative; `z = 0` samples
    /// every tuple).
    pub fn new(z: f64) -> Self {
        assert!(z >= 0.0 && z.is_finite(), "threshold must be finite and non-negative");
        BasicSubsetSum { z, counter: 0.0, offered: 0, sampled: 0 }
    }

    /// Decide whether to sample a tuple of the given weight.
    ///
    /// Large tuples (`weight > z`) are always sampled; small tuples are
    /// sampled once per `z` of accumulated small weight.
    #[inline]
    pub fn offer(&mut self, weight: u64) -> bool {
        self.offered += 1;
        let w = weight as f64;
        let keep = if w > self.z {
            true
        } else {
            self.counter += w;
            if self.counter > self.z {
                self.counter -= self.z;
                true
            } else {
                false
            }
        };
        if keep {
            self.sampled += 1;
        }
        keep
    }

    /// The threshold.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The estimator weight of a sampled tuple: `max(weight, z)`.
    pub fn adjusted_weight(&self, weight: u64) -> f64 {
        (weight as f64).max(self.z)
    }

    /// Tuples offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Tuples sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Residual small-tuple weight not yet represented by a sample. This
    /// (bounded by `z`) is the volume the deterministic scheme loses at a
    /// window border — the root cause of the non-relaxed pathology.
    pub fn residual(&self) -> f64 {
        self.counter
    }
}

/// Configuration of the dynamic (fixed-size) subset-sum sampler.
#[derive(Debug, Clone, Copy)]
pub struct SubsetSumConfig {
    /// Desired sample size `N` per window.
    pub target: usize,
    /// Cleaning trigger: clean when the sample exceeds `gamma * target`.
    /// The paper uses `γ = 2`.
    pub gamma: f64,
    /// Starting threshold for the first window.
    pub initial_z: f64,
    /// Cross-window relaxation factor `f` (`1.0` = non-relaxed; the paper
    /// recommends `10.0`).
    pub relax_factor: f64,
}

impl SubsetSumConfig {
    /// Paper-default configuration: `γ = 2`, relaxed with `f = 10`.
    pub fn new(target: usize) -> Self {
        SubsetSumConfig { target, gamma: 2.0, initial_z: 0.0, relax_factor: 10.0 }
    }

    /// Disable relaxation (`f = 1`), the paper's "non-relaxed" baseline.
    pub fn non_relaxed(mut self) -> Self {
        self.relax_factor = 1.0;
        self
    }

    /// Set the cleaning-trigger multiplier γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1");
        self.gamma = gamma;
        self
    }

    /// Set the first window's threshold.
    pub fn with_initial_z(mut self, z: f64) -> Self {
        self.initial_z = z;
        self
    }

    /// Set the relaxation factor `f`.
    pub fn with_relax_factor(mut self, f: f64) -> Self {
        assert!(f >= 1.0, "relaxation factor must be at least 1");
        self.relax_factor = f;
        self
    }
}

/// Cross-window threshold carry-over policy (§6.1, §7.1).
///
/// The next window's starting threshold is estimated from the old
/// window's final threshold, scaled down when the window under-sampled,
/// then divided by the relaxation factor `f`.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdCarry {
    /// Relaxation factor `f ≥ 1`.
    pub relax_factor: f64,
}

impl ThresholdCarry {
    /// Compute the next window's starting threshold.
    pub fn next_z(&self, z_end: f64, final_count: usize, target: usize) -> f64 {
        let base = if final_count >= target || target == 0 {
            z_end
        } else if final_count == 0 {
            // Nothing sampled: assume the threshold overshot by at least
            // the full target factor.
            z_end / target as f64
        } else {
            // The paper's downward adjustment: z' = z * (|S| / M).
            z_end * final_count as f64 / target as f64
        };
        base / self.relax_factor
    }
}

/// Result of closing one window of dynamic subset-sum sampling.
#[derive(Debug, Clone)]
pub struct WindowResult<T> {
    /// The final sample (≈ `target` tuples).
    pub samples: Vec<WeightedSample<T>>,
    /// The final threshold; `ssthreshold()` in the paper's query.
    pub z_final: f64,
    /// Cleaning phases run during the window (including the final one).
    pub cleanings: u32,
    /// Tuples admitted to the sample during the window (before cleaning
    /// evictions) — Figure 3's metric.
    pub admissions: u64,
    /// Tuples offered during the window.
    pub offered: u64,
}

impl<T> WindowResult<T> {
    /// Unbiased estimate of the window's total weight:
    /// `Σ max(weight, z_final)`.
    pub fn estimate(&self) -> f64 {
        self.samples.iter().map(|s| (s.weight as f64).max(self.z_final)).sum()
    }
}

/// One shard's contribution to a threshold-sample merge: the sampled
/// items with their *effective* (threshold-adjusted, `max(w, z)`)
/// weights, plus the threshold they were sampled at.
#[derive(Debug, Clone)]
pub struct ThresholdPart<T> {
    /// `(item, effective weight)` pairs.
    pub samples: Vec<(T, f64)>,
    /// The threshold this part was sampled at.
    pub z: f64,
}

/// The result of [`merge_threshold_samples`].
#[derive(Debug, Clone)]
pub struct MergedThresholdSample<T> {
    /// Surviving samples with effective weights updated to
    /// `max(w, z_final)`.
    pub samples: Vec<(T, f64)>,
    /// The merged threshold (`≥` every input part's threshold).
    pub z_final: f64,
    /// Re-subsampling passes run.
    pub passes: u32,
}

impl<T> MergedThresholdSample<T> {
    /// Unbiased estimate of the merged total weight: the sum of the
    /// (already adjusted) effective weights.
    pub fn estimate(&self) -> f64 {
        self.samples.iter().map(|(_, w)| w).sum()
    }
}

/// One deterministic re-subsampling pass at threshold `z`: effective
/// weights above `z` always survive; smaller ones are metered one per
/// `z` of accumulated effective weight and reported at weight `z`.
/// The trigger is `counter ≥ z` (not strict) so that re-sampling a valid
/// threshold sample at its *own* threshold is the identity.
fn threshold_pass<T>(samples: &mut Vec<(T, f64)>, z: f64) {
    if z <= 0.0 {
        return;
    }
    let mut counter = 0.0f64;
    samples.retain_mut(|(_, eff)| {
        if *eff > z {
            true
        } else {
            counter += *eff;
            if counter >= z {
                counter -= z;
                *eff = z;
                true
            } else {
                false
            }
        }
    });
}

/// The aggressive threshold adjustment of [`DynamicSubsetSum::clean`],
/// expressed over effective weights.
fn raise_z<T>(samples: &[(T, f64)], z: f64, target: usize) -> f64 {
    let s = samples.len();
    let b = samples.iter().filter(|(_, eff)| *eff > z).count();
    if z > 0.0 && b < target {
        z * (1.0f64).max((s - b) as f64 / (target - b) as f64)
    } else {
        let total: f64 = samples.iter().map(|(_, eff)| eff.max(z)).sum();
        (total / target as f64).max(z * 1.0000001).max(f64::MIN_POSITIVE)
    }
}

/// Max-threshold merge of per-shard threshold samples (§7.2's partial
/// aggregation applied to subset-sum state): re-subsample every part at
/// the *maximum* of the shard thresholds, then keep raising `z` with the
/// aggressive adjustment until at most `target` samples survive.
///
/// Because each pass treats the previous stage's effective weights as
/// ground truth, the composed estimator stays unbiased (tower property
/// over the per-shard and merge stages), and `z_final ≥ max(zᵢ)`.
pub fn merge_threshold_samples<T>(
    parts: Vec<ThresholdPart<T>>,
    target: usize,
) -> MergedThresholdSample<T> {
    assert!(target > 0, "target sample size must be positive");
    let mut z = parts.iter().map(|p| p.z).fold(0.0f64, f64::max);
    let mut samples: Vec<(T, f64)> = Vec::new();
    for part in parts {
        // Effective weights are clamped up to the part's own threshold,
        // so under-reported inputs cannot bias the merge downward.
        samples.extend(part.samples.into_iter().map(|(t, w)| (t, w.max(part.z))));
    }
    let mut passes = 0u32;
    if z > 0.0 {
        threshold_pass(&mut samples, z);
        passes += 1;
    }
    while samples.len() > target && passes < 100 {
        z = raise_z(&samples, z, target);
        threshold_pass(&mut samples, z);
        passes += 1;
    }
    MergedThresholdSample { samples, z_final: z, passes }
}

/// [`merge_threshold_samples`] lifted to per-window shard results: the
/// merged [`WindowResult`] keeps original weights, carries the merged
/// threshold as `z_final`, and sums the per-shard counters.
pub fn merge_window_results<T: Clone>(parts: &[WindowResult<T>], target: usize) -> WindowResult<T> {
    let merged = merge_threshold_samples(
        parts
            .iter()
            .map(|p| ThresholdPart {
                samples: p
                    .samples
                    .iter()
                    .map(|s| (s.clone(), (s.weight as f64).max(p.z_final)))
                    .collect(),
                z: p.z_final,
            })
            .collect(),
        target,
    );
    WindowResult {
        samples: merged.samples.into_iter().map(|(s, _)| s).collect(),
        z_final: merged.z_final,
        cleanings: parts.iter().map(|p| p.cleanings).sum::<u32>() + merged.passes,
        admissions: parts.iter().map(|p| p.admissions).sum(),
        offered: parts.iter().map(|p| p.offered).sum(),
    }
}

/// Dynamic (fixed-sample-size) subset-sum sampling over successive
/// windows.
#[derive(Debug, Clone)]
pub struct DynamicSubsetSum<T> {
    cfg: SubsetSumConfig,
    z: f64,
    counter: f64,
    samples: Vec<WeightedSample<T>>,
    cleanings: u32,
    admissions: u64,
    offered: u64,
}

impl<T: Clone> DynamicSubsetSum<T> {
    /// Create a sampler; the first window starts at `cfg.initial_z`.
    pub fn new(cfg: SubsetSumConfig) -> Self {
        assert!(cfg.target > 0, "target sample size must be positive");
        DynamicSubsetSum {
            z: cfg.initial_z,
            cfg,
            counter: 0.0,
            samples: Vec::new(),
            cleanings: 0,
            admissions: 0,
            offered: 0,
        }
    }

    /// The current threshold.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The current (uncleaned) sample size.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Cleaning phases run in the current window so far.
    pub fn cleanings(&self) -> u32 {
        self.cleanings
    }

    /// Offer one tuple. Returns `true` if it was admitted to the sample
    /// (it may still be evicted by a later cleaning phase).
    pub fn offer(&mut self, item: T, weight: u64) -> bool {
        self.offered += 1;
        let w = weight as f64;
        let admit = if w > self.z {
            true
        } else {
            self.counter += w;
            if self.counter > self.z {
                self.counter -= self.z;
                true
            } else {
                false
            }
        };
        if admit {
            self.samples.push(WeightedSample { item, weight });
            self.admissions += 1;
            if self.samples.len() as f64 > self.cfg.gamma * self.cfg.target as f64 {
                self.clean();
            }
        }
        admit
    }

    /// The threshold the next cleaning phase would adopt: the paper's
    /// aggressive adjustment `z' = z · max(1, (|S|-B)/(M-B))`, with a
    /// volume-based bootstrap when the formula is unusable (`z = 0` or
    /// `B ≥ M`).
    fn target_z(&self) -> f64 {
        let s = self.samples.len();
        let m = self.cfg.target;
        let b = self.samples.iter().filter(|x| (x.weight as f64) > self.z).count();
        if self.z > 0.0 && b < m {
            self.z * (1.0f64).max((s - b) as f64 / (m - b) as f64)
        } else {
            // Threshold that would retain ~m expected samples: with
            // threshold z', expected samples ≈ Σ min(1, w_eff/z') ≈
            // total_effective / z' when weights are small.
            let total: f64 = self.samples.iter().map(|x| (x.weight as f64).max(self.z)).sum();
            (total / m as f64).max(self.z * 1.0000001).max(f64::MIN_POSITIVE)
        }
    }

    /// Run one cleaning phase: raise `z` and re-subsample the current
    /// sample with the counter scheme, treating each retained sample's
    /// effective weight as `max(weight, z_prev)`.
    fn clean(&mut self) {
        let z_prev = self.z;
        let z_new = self.target_z();
        let mut counter = 0.0f64;
        self.samples.retain(|x| {
            let eff = (x.weight as f64).max(z_prev);
            if eff > z_new {
                true
            } else {
                counter += eff;
                if counter > z_new {
                    counter -= z_new;
                    true
                } else {
                    false
                }
            }
        });
        self.z = z_new;
        self.cleanings += 1;
    }

    /// Close the window: run the final cleaning if over target, compute
    /// the result, and prime the threshold for the next window via
    /// [`ThresholdCarry`].
    pub fn end_window(&mut self) -> WindowResult<T> {
        if self.samples.len() > self.cfg.target {
            self.clean();
        }
        let result = WindowResult {
            samples: std::mem::take(&mut self.samples),
            z_final: self.z,
            cleanings: self.cleanings,
            admissions: self.admissions,
            offered: self.offered,
        };
        let carry = ThresholdCarry { relax_factor: self.cfg.relax_factor };
        self.z = carry.next_z(self.z, result.samples.len(), self.cfg.target);
        self.counter = 0.0;
        self.cleanings = 0;
        self.admissions = 0;
        self.offered = 0;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn basic_always_samples_large_tuples() {
        let mut s = BasicSubsetSum::new(100.0);
        assert!(s.offer(101));
        assert!(s.offer(1_000_000));
        assert_eq!(s.sampled(), 2);
    }

    #[test]
    fn basic_samples_small_tuples_once_per_z() {
        let mut s = BasicSubsetSum::new(100.0);
        // 30+30+30 = 90 <= 100: no samples; +30 -> 120 > 100: sample.
        assert!(!s.offer(30));
        assert!(!s.offer(30));
        assert!(!s.offer(30));
        assert!(s.offer(30));
        assert!((s.residual() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn basic_zero_threshold_samples_everything() {
        let mut s = BasicSubsetSum::new(0.0);
        for w in [1u64, 5, 1000] {
            assert!(s.offer(w));
        }
    }

    #[test]
    fn basic_estimator_is_unbiased_over_small_tuples() {
        // Deterministic counter scheme: number of small samples =
        // floor-ish of total/z, each reported at weight z, so the
        // estimate is within z of the truth.
        let z = 500.0;
        let mut s = BasicSubsetSum::new(z);
        let mut rng = StdRng::seed_from_u64(1);
        let mut truth = 0u64;
        let mut est = 0.0;
        for _ in 0..10_000 {
            let w = rng.gen_range(1..400u64);
            truth += w;
            if s.offer(w) {
                est += s.adjusted_weight(w);
            }
        }
        assert!(
            (est - truth as f64).abs() <= z,
            "estimate {est} vs truth {truth}: off by more than z"
        );
    }

    #[test]
    fn basic_estimator_handles_mixed_sizes() {
        let z = 1000.0;
        let mut s = BasicSubsetSum::new(z);
        let mut rng = StdRng::seed_from_u64(2);
        let mut truth = 0u64;
        let mut est = 0.0;
        for i in 0..20_000u64 {
            // Heavy tail: occasional huge tuples.
            let w = if i % 97 == 0 {
                rng.gen_range(5_000..50_000u64)
            } else {
                rng.gen_range(40..1500u64)
            };
            truth += w;
            if s.offer(w) {
                est += s.adjusted_weight(w);
            }
        }
        let rel = (est - truth as f64).abs() / truth as f64;
        assert!(rel < 0.01, "relative error {rel}");
    }

    #[test]
    fn carry_policy_non_relaxed_keeps_z_when_on_target() {
        let c = ThresholdCarry { relax_factor: 1.0 };
        assert_eq!(c.next_z(800.0, 1000, 1000), 800.0);
        assert_eq!(c.next_z(800.0, 1500, 1000), 800.0);
    }

    #[test]
    fn carry_policy_scales_down_on_undersampling() {
        let c = ThresholdCarry { relax_factor: 1.0 };
        assert_eq!(c.next_z(800.0, 500, 1000), 400.0);
        assert_eq!(c.next_z(800.0, 0, 1000), 0.8);
    }

    #[test]
    fn carry_policy_relaxed_divides_by_f() {
        let c = ThresholdCarry { relax_factor: 10.0 };
        assert_eq!(c.next_z(800.0, 1000, 1000), 80.0);
    }

    #[test]
    fn dynamic_converges_to_target_sample_size() {
        let cfg = SubsetSumConfig::new(100).with_initial_z(1.0);
        let mut d = DynamicSubsetSum::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50_000u64 {
            d.offer((), rng.gen_range(40..1500u64));
        }
        let w = d.end_window();
        assert!(w.cleanings > 0, "cleaning must have triggered");
        assert!(
            w.samples.len() <= 100 && w.samples.len() >= 40,
            "final sample size {} should be near target 100",
            w.samples.len()
        );
    }

    #[test]
    fn dynamic_estimate_tracks_truth_when_cleaned() {
        let cfg = SubsetSumConfig::new(1000).with_initial_z(1.0);
        let mut d = DynamicSubsetSum::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let mut truth = 0u64;
        for _ in 0..200_000u64 {
            let w = rng.gen_range(40..1500u64);
            truth += w;
            d.offer((), w);
        }
        let w = d.end_window();
        let rel = (w.estimate() - truth as f64).abs() / truth as f64;
        // ~1000 samples -> CLT error ~ 3/sqrt(1000) ~ 10%; be generous.
        assert!(rel < 0.15, "relative error {rel:.4}");
    }

    /// The Figure 2 pathology: after a sharp load drop the non-relaxed
    /// carry-over leaves `z` near the whole window's volume, so the
    /// small-tuple counter loses a large fraction of it (expected loss
    /// `z/2` per window, i.e. `drop_factor / (2·N)` of the volume).
    /// Relaxed carry-over divides `z` by `f`, shrinking the loss tenfold.
    #[test]
    fn load_drop_pathology_and_relaxed_fix() {
        // Alternate busy and quiet windows (volume ratio ~100x) and
        // aggregate the estimates over the quiet ones.
        let run = |relax: f64| -> (f64, f64) {
            let cfg = SubsetSumConfig::new(200).with_initial_z(1.0).with_relax_factor(relax);
            let mut d = DynamicSubsetSum::new(cfg);
            let mut rng = StdRng::seed_from_u64(5);
            let mut est_quiet = 0.0;
            let mut truth_quiet = 0u64;
            for _ in 0..10 {
                // Busy window: ~77M bytes.
                for _ in 0..100_000u64 {
                    d.offer((), rng.gen_range(40..1500u64));
                }
                d.end_window();
                // Quiet window: ~0.77M bytes (100x drop).
                for _ in 0..1_000u64 {
                    let w = rng.gen_range(40..1500u64);
                    truth_quiet += w;
                    d.offer((), w);
                }
                est_quiet += d.end_window().estimate();
            }
            (est_quiet, truth_quiet as f64)
        };
        let (est_nr, truth_nr) = run(1.0);
        let (est_rx, truth_rx) = run(10.0);
        let ratio_nr = est_nr / truth_nr;
        let ratio_rx = est_rx / truth_rx;
        assert!(
            ratio_nr < 0.9,
            "non-relaxed should under-estimate quiet windows: ratio {ratio_nr:.3}"
        );
        assert!(
            ratio_rx > 0.9 && ratio_rx < 1.1,
            "relaxed should track the truth: ratio {ratio_rx:.3}"
        );
        assert!(ratio_rx > ratio_nr, "relaxation must improve accuracy");
    }

    /// Figure 4's shape: the relaxed algorithm pays a few extra cleaning
    /// phases per window in steady state.
    #[test]
    fn relaxed_costs_more_cleanings() {
        let run = |relax: f64| -> u32 {
            let cfg = SubsetSumConfig::new(200).with_initial_z(1.0).with_relax_factor(relax);
            let mut d = DynamicSubsetSum::new(cfg);
            let mut rng = StdRng::seed_from_u64(6);
            let mut cleanings = 0;
            for _ in 0..5 {
                for _ in 0..50_000u64 {
                    d.offer((), rng.gen_range(40..1500u64));
                }
                let w = d.end_window();
                cleanings = w.cleanings; // steady-state (last window)
            }
            cleanings
        };
        let relaxed = run(10.0);
        let non_relaxed = run(1.0);
        assert!(
            relaxed > non_relaxed,
            "relaxed ({relaxed}) should clean more than non-relaxed ({non_relaxed})"
        );
        assert!(non_relaxed <= 2, "steady-state non-relaxed cleanings: {non_relaxed}");
    }

    #[test]
    fn admissions_and_offered_are_tracked_per_window() {
        let cfg = SubsetSumConfig::new(10).with_initial_z(1_000_000.0).non_relaxed();
        let mut d = DynamicSubsetSum::new(cfg);
        for _ in 0..100u64 {
            d.offer((), 10);
        }
        let w = d.end_window();
        assert_eq!(w.offered, 100);
        assert_eq!(w.admissions, 0, "z too high: nothing admitted");
        // Counters reset for the next window.
        d.offer((), 10);
        let w2 = d.end_window();
        assert_eq!(w2.offered, 1);
    }

    #[test]
    fn window_result_estimate_uses_final_threshold() {
        let w = WindowResult {
            samples: vec![
                WeightedSample { item: (), weight: 50 },
                WeightedSample { item: (), weight: 2000 },
            ],
            z_final: 100.0,
            cleanings: 0,
            admissions: 2,
            offered: 2,
        };
        assert_eq!(w.estimate(), 100.0 + 2000.0);
    }

    #[test]
    #[should_panic(expected = "target sample size must be positive")]
    fn zero_target_panics() {
        let _ = DynamicSubsetSum::<()>::new(SubsetSumConfig::new(0));
    }

    proptest::proptest! {
        /// Property: basic subset-sum with any threshold over any weight
        /// sequence has estimate within z of truth (deterministic scheme
        /// loses at most the residual counter).
        #[test]
        fn basic_estimate_error_bounded_by_z(
            z in 1.0f64..10_000.0,
            weights in proptest::collection::vec(1u64..5_000, 1..500),
        ) {
            let mut s = BasicSubsetSum::new(z);
            let mut est = 0.0;
            let mut truth = 0u64;
            for &w in &weights {
                truth += w;
                if s.offer(w) {
                    est += s.adjusted_weight(w);
                }
            }
            // Each small sample is reported at z >= its weight, and the
            // residual is < z, so the estimate is within z of the truth
            // from below and within (z - min contribution) above... the
            // tight deterministic bound is |est - truth| <= z.
            proptest::prop_assert!((est - truth as f64).abs() <= z + 1e-6,
                "z={z} est={est} truth={truth}");
        }

        /// Property: dynamic sampler never retains more than gamma*target
        /// + 1 samples at any point.
        #[test]
        fn dynamic_sample_size_is_bounded(
            weights in proptest::collection::vec(1u64..5_000, 1..2000),
            target in 5usize..50,
        ) {
            let cfg = SubsetSumConfig::new(target).with_initial_z(0.0);
            let mut d = DynamicSubsetSum::new(cfg);
            let bound = (cfg.gamma * target as f64) as usize + 1;
            for &w in &weights {
                d.offer((), w);
                proptest::prop_assert!(d.sample_count() <= bound,
                    "sample count {} exceeded bound {bound}", d.sample_count());
            }
        }
    }
}
