//! Per-thread fixed-capacity event rings.
//!
//! Each recording thread owns one [`LaneWriter`] — a single-producer
//! handle over a power-of-two-free circular buffer of packed event
//! words. Recording is four `Relaxed` stores into the writer's private
//! slots; visibility is published by **one** `Release` store of the
//! monotonic head per batch ([`LaneWriter::publish`]). Collectors
//! `Acquire`-load the head and read back the last `min(head, capacity)`
//! events; older ones have been overwritten (counted as `dropped`).
//!
//! Slots are `SyncU64`, not `SyncCell`: a *live* read racing a
//! wrap-around overwrite is a benign atomic race that can at worst
//! yield a torn event (rejected by the stage-byte check), never UB —
//! and the authoritative reads (final report, flight-recorder dump)
//! happen after channel close + thread join or behind the published
//! head's `Release`/`Acquire` edge, so the model checker sees no race.

use std::sync::Arc;

use sso_sync::Ordering::{Acquire, Relaxed, Release};
use sso_sync::SyncU64;

use crate::dump::LaneDump;
use crate::event::Event;

/// Which pipeline thread a lane belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LaneKind {
    /// The router thread's ingest/route/ring-wait stamps.
    Router = 0,
    /// One worker shard's process/flush stamps (`index` = shard).
    Worker = 1,
    /// The merge-finalize path (barrier wait, merge, emit).
    Merge = 2,
    /// Gigascope low-level node accounting.
    Low = 3,
}

impl LaneKind {
    pub fn name(self) -> &'static str {
        match self {
            LaneKind::Router => "router",
            LaneKind::Worker => "worker",
            LaneKind::Merge => "merge",
            LaneKind::Low => "low",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<LaneKind> {
        match v {
            0 => Some(LaneKind::Router),
            1 => Some(LaneKind::Worker),
            2 => Some(LaneKind::Merge),
            3 => Some(LaneKind::Low),
            _ => None,
        }
    }
}

pub(crate) struct LaneShared {
    pub(crate) kind: LaneKind,
    pub(crate) index: u32,
    capacity: usize,
    /// `capacity * 4` packed words.
    words: Box<[SyncU64]>,
    /// Monotonic count of published events; readers see `head` events
    /// total, the last `min(head, capacity)` still resident.
    head: SyncU64,
}

impl LaneShared {
    fn new(kind: LaneKind, index: u32, capacity: usize) -> LaneShared {
        let capacity = capacity.max(1);
        let words =
            (0..capacity * 4).map(|_| SyncU64::new(0)).collect::<Vec<_>>().into_boxed_slice();
        LaneShared { kind, index, capacity, words, head: SyncU64::new(0) }
    }

    /// Read the published suffix of the lane, oldest first.
    pub(crate) fn collect(&self) -> LaneDump {
        let head = self.head.load(Acquire);
        let resident = head.min(self.capacity as u64);
        let mut events = Vec::with_capacity(resident as usize);
        for seq in (head - resident)..head {
            let slot = (seq % self.capacity as u64) as usize * 4;
            let w = [
                self.words[slot].load(Relaxed),
                self.words[slot + 1].load(Relaxed),
                self.words[slot + 2].load(Relaxed),
                self.words[slot + 3].load(Relaxed),
            ];
            // A torn live read can produce an invalid stage byte; the
            // post-join authoritative read never does.
            if let Some(e) = Event::from_words(w) {
                events.push(e);
            }
        }
        LaneDump { kind: self.kind, index: self.index, dropped: head - resident, events }
    }
}

/// The single-owner writing half of one lane. Not `Clone`: one
/// recording thread per lane, which is what makes `Relaxed` slot
/// stores sufficient.
pub struct LaneWriter {
    shared: Arc<LaneShared>,
    /// Next sequence number to write (private to the writer; `head`
    /// trails it until the next `publish`).
    next: u64,
}

impl LaneWriter {
    pub(crate) fn new(shared: Arc<LaneShared>) -> LaneWriter {
        LaneWriter { next: 0, shared }
    }

    /// Record one event: four `Relaxed` stores, no fence, not yet
    /// visible to collectors.
    #[inline]
    pub fn record(&mut self, event: Event) {
        let slot = (self.next % self.shared.capacity as u64) as usize * 4;
        let w = event.to_words();
        self.shared.words[slot].store(w[0], Relaxed);
        self.shared.words[slot + 1].store(w[1], Relaxed);
        self.shared.words[slot + 2].store(w[2], Relaxed);
        self.shared.words[slot + 3].store(w[3], Relaxed);
        self.next += 1;
    }

    /// Publish everything recorded so far: the one `Release` store per
    /// batch the disabled-path budget allows.
    #[inline]
    pub fn publish(&mut self) {
        self.shared.head.store(self.next, Release);
    }
}

impl Drop for LaneWriter {
    fn drop(&mut self) {
        // Never lose a recorded tail to an early exit (panic unwind,
        // crash-fault drain): publishing is idempotent.
        self.publish();
    }
}

pub(crate) fn new_lane(
    kind: LaneKind,
    index: u32,
    capacity: usize,
) -> (LaneWriter, Arc<LaneShared>) {
    let shared = Arc::new(LaneShared::new(kind, index, capacity));
    (LaneWriter::new(Arc::clone(&shared)), shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;

    #[test]
    fn record_publish_collect() {
        let (mut w, shared) = new_lane(LaneKind::Router, 0, 8);
        w.record(Event::new(Stage::Ingest, 10, 5));
        w.record(Event::new(Stage::Route, 15, 2).shard(3).batch(0).aux(100));
        // Unpublished events are invisible.
        assert_eq!(shared.collect().events.len(), 0);
        w.publish();
        let d = shared.collect();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.dropped, 0);
        assert_eq!(d.events[1].stage, Stage::Route);
        assert_eq!(d.events[1].aux, 100);
    }

    #[test]
    fn wraparound_keeps_last_capacity_events() {
        let (mut w, shared) = new_lane(LaneKind::Worker, 2, 4);
        for i in 0..10u64 {
            w.record(Event::new(Stage::Process, i, 1).aux(i));
        }
        w.publish();
        let d = shared.collect();
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.dropped, 6);
        assert_eq!(d.events.iter().map(|e| e.aux).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn drop_publishes_tail() {
        let (mut w, shared) = new_lane(LaneKind::Merge, 0, 4);
        w.record(Event::new(Stage::Emit, 1, 0));
        drop(w);
        assert_eq!(shared.collect().events.len(), 1);
    }
}
