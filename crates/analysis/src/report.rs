//! Machine-readable audit output.
//!
//! A [`BoundsReport`] is the certificate the audit emits: per-statement
//! state ceilings plus the verdicts (skew class, mergeability, deletion
//! safety) the runtime and CI consume. The JSON rendering is hand-rolled
//! and field-stable — `scripts/check.sh` validates the schema, so adding
//! or renaming a key is a deliberate, reviewed change.

use sso_core::SizingHints;

use crate::bounds::SamplerKind;
use crate::domain::{Card, DeletionSafety, SkewClass};

/// Certified bounds for one audited statement.
#[derive(Debug, Clone)]
pub struct StatementBounds {
    /// Statement label (`stmt0`, `stmt1`, … in file order).
    pub name: String,
    /// The FROM stream.
    pub stream: String,
    /// The classified sampling family.
    pub sampler: SamplerKind,
    /// Tumbling-window length from `GROUP BY <ordered>/n`, when the
    /// query has that canonical shape.
    pub window_secs: Option<u64>,
    /// Peak input rate from the feed envelope.
    pub rows_per_sec: Card,
    /// Rows per window: rate × window length.
    pub rows_per_window: Card,
    /// Product of group-by key cardinalities.
    pub key_cardinality: Card,
    /// Product of supergroup key cardinalities.
    pub supergroup_cardinality: Card,
    /// The sampler's per-supergroup live-group cap.
    pub per_supergroup_bound: Card,
    /// Certified ceiling on simultaneously live groups.
    pub groups_bound: Card,
    /// Estimated bytes per group-table entry.
    pub group_entry_bytes: u64,
    /// Estimated bytes per supergroup-state entry.
    pub supergroup_entry_bytes: u64,
    /// Certified ceiling on operator state bytes.
    pub state_bytes: Card,
    /// Router-skew verdict at the audited shard count.
    pub skew: SkewClass,
    /// Whether the plan shards/merges (`shard_plan` succeeds).
    pub mergeable: bool,
    /// Whether the state survives turnstile deletions.
    pub deletion_safety: DeletionSafety,
}

impl StatementBounds {
    /// Pre-sizing hints for the runtime: reserve the certified group
    /// and supergroup ceilings up front (capped at
    /// [`SizingHints::MAX_RESERVE`]), and size each (router, shard)
    /// ring for about a second of that lane's batches at the certified
    /// input rate — each of a shard's `routers` rings carries 1/routers
    /// of the shard's traffic, so the per-shard buffering stays one
    /// second of input however many lanes feed it. Unbounded dimensions
    /// reserve nothing and keep the configured ring.
    pub fn sizing_hints(&self, shards: usize, routers: usize, batch_size: usize) -> SizingHints {
        let cap = |c: Card| -> usize {
            c.finite().map(|n| (n as usize).min(SizingHints::MAX_RESERVE)).unwrap_or(0)
        };
        let supergroups = self.supergroup_cardinality.min(self.rows_per_window);
        let ring_batches = self.rows_per_sec.finite().map(|r| {
            let per_lane =
                r / (batch_size.max(1) as u64) / (shards.max(1) as u64) / (routers.max(1) as u64);
            (per_lane as usize).clamp(16, 256)
        });
        SizingHints { groups: cap(self.groups_bound), supergroups: cap(supergroups), ring_batches }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"stream\":{},\"sampler\":{},\"window_secs\":{},",
                "\"rows_per_sec\":{},\"rows_per_window\":{},\"key_cardinality\":{},",
                "\"supergroup_cardinality\":{},\"per_supergroup_bound\":{},",
                "\"groups_bound\":{},\"group_entry_bytes\":{},",
                "\"supergroup_entry_bytes\":{},\"state_bytes\":{},\"skew\":{},",
                "\"mergeable\":{},\"deletion_safe\":{}}}"
            ),
            json_str(&self.name),
            json_str(&self.stream),
            json_str(&self.sampler.label()),
            self.window_secs.map(|w| w.to_string()).unwrap_or_else(|| "null".into()),
            self.rows_per_sec.to_json(),
            self.rows_per_window.to_json(),
            self.key_cardinality.to_json(),
            self.supergroup_cardinality.to_json(),
            self.per_supergroup_bound.to_json(),
            self.groups_bound.to_json(),
            self.group_entry_bytes,
            self.supergroup_entry_bytes,
            self.state_bytes.to_json(),
            json_str(self.skew.as_str()),
            self.mergeable,
            self.deletion_safety.is_safe(),
        )
    }
}

/// Fixed per-checkpoint overhead beyond the state payload: magic,
/// version, the meta frame's header and fixed fields.
pub const SNAPSHOT_HEADER_BYTES: u64 = 64;

/// Fixed per-WAL-record overhead: the frame header (checksum + length),
/// the sequence number, and the three section length prefixes.
pub const WAL_RECORD_OVERHEAD: u64 = 32;

/// Certified durable-state overheads for a `--durable` run: what the
/// store writes per closed window, and what the spill pager needs to
/// stay under a `--state-budget`.
#[derive(Debug, Clone)]
pub struct DurableBounds {
    /// Ceiling on checkpoint snapshot bytes per window: the certified
    /// state-bytes ceiling plus [`SNAPSHOT_HEADER_BYTES`].
    pub snapshot_bytes_per_window: Card,
    /// Ceiling on WAL bytes appended per window: one carry-over record
    /// per live supergroup plus [`WAL_RECORD_OVERHEAD`].
    pub wal_bytes_per_window: Card,
    /// Spill pages needed to hold the certified state ceiling.
    pub spill_pages: Card,
    /// Per-run working-set floor for `--state-budget`: the pager pins
    /// two pages per shard, so budgets below this cannot be enforced
    /// (the W206 lint fires).
    pub min_state_budget: u64,
    /// The audited `--state-budget`, if one was given.
    pub state_budget: Option<u64>,
}

impl DurableBounds {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"snapshot_bytes_per_window\":{},\"wal_bytes_per_window\":{},",
                "\"spill_pages\":{},\"min_state_budget\":{},\"state_budget\":{}}}"
            ),
            self.snapshot_bytes_per_window.to_json(),
            self.wal_bytes_per_window.to_json(),
            self.spill_pages.to_json(),
            self.min_state_budget,
            self.state_budget.map(|b| b.to_string()).unwrap_or_else(|| "null".into()),
        )
    }
}

/// The audit's certificate for one file: every statement's bounds under
/// one feed envelope and shard count.
#[derive(Debug, Clone)]
pub struct BoundsReport {
    /// Feed envelope the bounds were certified against.
    pub feed: String,
    /// Shard count the skew/mergeability verdicts assume.
    pub shards: usize,
    /// The `--budget` limit, if one was given.
    pub budget: Option<u64>,
    /// The `--state-budget` limit, if one was given (recorded in the
    /// `durable` section; drives W206).
    pub state_budget: Option<u64>,
    /// Per-statement bounds, in file order.
    pub statements: Vec<StatementBounds>,
}

impl BoundsReport {
    /// Certified ceiling on total state bytes across all statements
    /// (unbounded if any statement is).
    pub fn total_state_bytes(&self) -> Card {
        self.statements.iter().fold(Card::Finite(0), |acc, s| acc + s.state_bytes)
    }

    /// Certified durable-run overheads derived from the state bounds.
    pub fn durable(&self) -> DurableBounds {
        let state = self.total_state_bytes();
        let wal = self.statements.iter().fold(Card::Finite(0), |acc, s| {
            let supergroup_bound = s.supergroup_cardinality.min(s.rows_per_window);
            acc + supergroup_bound.times(s.supergroup_entry_bytes)
                + Card::Finite(WAL_RECORD_OVERHEAD)
        });
        let page = sso_core::snapshot::PAGE_BYTES as u64;
        let spill_pages = match state.finite() {
            Some(b) => Card::Finite(b.div_ceil(page)),
            None => Card::Unbounded,
        };
        DurableBounds {
            snapshot_bytes_per_window: state + Card::Finite(SNAPSHOT_HEADER_BYTES),
            wal_bytes_per_window: wal,
            spill_pages,
            min_state_budget: 2 * page * self.shards.max(1) as u64,
            state_budget: self.state_budget,
        }
    }

    /// Field-stable JSON rendering.
    pub fn to_json(&self) -> String {
        let stmts: Vec<String> = self.statements.iter().map(|s| s.to_json()).collect();
        format!(
            concat!(
                "{{\"feed\":{},\"shards\":{},\"budget\":{},",
                "\"total_state_bytes\":{},\"durable\":{},\"statements\":[{}]}}"
            ),
            json_str(&self.feed),
            self.shards,
            self.budget.map(|b| b.to_string()).unwrap_or_else(|| "null".into()),
            self.total_state_bytes().to_json(),
            self.durable().to_json(),
            stmts.join(","),
        )
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_statement() -> StatementBounds {
        StatementBounds {
            name: "stmt0".into(),
            stream: "PKT".into(),
            sampler: SamplerKind::Reservoir { n: 25, cleaning: true },
            window_secs: Some(60),
            rows_per_sec: Card::Finite(25_000),
            rows_per_window: Card::Finite(1_500_000),
            key_cardinality: Card::Unbounded,
            supergroup_cardinality: Card::Finite(61),
            per_supergroup_bound: Card::Finite(626),
            groups_bound: Card::Finite(38_186),
            group_entry_bytes: 160,
            supergroup_entry_bytes: 256,
            state_bytes: Card::Finite(6_125_376),
            skew: SkewClass::Spread,
            mergeable: true,
            deletion_safety: DeletionSafety::Safe,
        }
    }

    #[test]
    fn json_is_field_stable() {
        let report = BoundsReport {
            feed: "research".into(),
            shards: 4,
            budget: Some(8_000_000),
            state_budget: None,
            statements: vec![sample_statement()],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"feed\":\"research\",\"shards\":4,\"budget\":8000000,"));
        assert!(json.contains("\"sampler\":\"reservoir(n=25)\""));
        assert!(json.contains("\"key_cardinality\":null"), "unbounded renders as null");
        assert!(json.contains("\"total_state_bytes\":6125376"));
        assert!(json.contains("\"durable\":{\"snapshot_bytes_per_window\":"));
        assert!(json.contains("\"deletion_safe\":true"));
    }

    #[test]
    fn durable_bounds_track_state_and_pages() {
        let page = sso_core::snapshot::PAGE_BYTES as u64;
        let report = BoundsReport {
            feed: "research".into(),
            shards: 4,
            budget: None,
            state_budget: Some(page),
            statements: vec![sample_statement()],
        };
        let d = report.durable();
        assert_eq!(d.snapshot_bytes_per_window.finite(), Some(6_125_376 + SNAPSHOT_HEADER_BYTES));
        // 61 supergroups × 256 bytes + one record's frame overhead.
        assert_eq!(d.wal_bytes_per_window.finite(), Some(61 * 256 + WAL_RECORD_OVERHEAD));
        assert_eq!(d.spill_pages.finite(), Some(6_125_376u64.div_ceil(page)));
        assert_eq!(d.min_state_budget, 2 * page * 4);
        assert_eq!(d.state_budget, Some(page));

        let mut unbounded = sample_statement();
        unbounded.state_bytes = Card::Unbounded;
        let report = BoundsReport {
            feed: "research".into(),
            shards: 1,
            budget: None,
            state_budget: None,
            statements: vec![unbounded],
        };
        let d = report.durable();
        assert!(!d.snapshot_bytes_per_window.is_finite());
        assert!(!d.spill_pages.is_finite());
    }

    #[test]
    fn sizing_hints_cap_and_ring() {
        let s = sample_statement();
        let hints = s.sizing_hints(4, 1, 1024);
        assert_eq!(hints.groups, 38_186);
        assert_eq!(hints.supergroups, 61);
        // 25k rows/s ÷ 1024 batch ÷ 4 shards ÷ 1 router ≈ 6 → clamped up to 16.
        assert_eq!(hints.ring_batches, Some(16));
        // A single shard fed by one lane keeps a second of batches:
        // 25k ÷ 1024 ≈ 24 — the deep ring that absorbs feed bursts
        // instead of thrashing `push_tracked` waits.
        assert_eq!(s.sizing_hints(1, 1, 1024).ring_batches, Some(24));
        // Two lanes each carry half the shard's traffic; the per-lane
        // ring halves (floor at 16) so total buffering is unchanged.
        assert_eq!(s.sizing_hints(1, 2, 1024).ring_batches, Some(16));

        let mut unbounded = sample_statement();
        unbounded.groups_bound = Card::Unbounded;
        unbounded.rows_per_sec = Card::Unbounded;
        let hints = unbounded.sizing_hints(4, 1, 1024);
        assert_eq!(hints.groups, 0, "unbounded reserves nothing");
        assert_eq!(hints.ring_batches, None);
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
