//! Low-level **partial aggregation** — the second early-reduction
//! operator real Gigascope supports ("currently only selection and
//! (partial) aggregation are supported", §7.2), and the one the paper's
//! conclusion recommends for the heavy-hitters algorithm ("the
//! Manku–Motwani heavy hitters algorithm would be best supported by
//! aggregation at the low-level queries", §8).
//!
//! [`PartialAggNode`] groups packets by (srcIP, destIP) in a bounded
//! table and emits one *partial* tuple per group per flush epoch, in the
//! [`PartialAggNode::schema`] stream `PKTAGG(time, srcIP, destIP, len,
//! cnt)` where `len` is the partial byte sum and `cnt` the partial
//! packet count. Flushes happen whenever the packet clock advances one
//! second (so any ≥1s high-level window sees correctly-attributed
//! partials) or when the table reaches its bound.
//!
//! A high-level query over `PKTAGG` re-aggregates exactly:
//! `sum(len)` and `sum(cnt)` over partials equal `sum(len)` and
//! `count(*)` over raw packets — at a fraction of the tuple flow.

use std::collections::VecDeque;

use rustc_hash::FxHashMap;
use sso_types::{Field, FieldType, Packet, Schema, Tuple, Value};

use crate::nodes::LowLevelQuery;

/// Low-level partial-aggregation node.
pub struct PartialAggNode {
    /// Maximum live groups before an early flush.
    max_groups: usize,
    groups: FxHashMap<(u32, u32), (u64, u64)>,
    /// Insertion order, so emitted partials are deterministic.
    order: Vec<(u32, u32)>,
    pending: VecDeque<Tuple>,
    current_second: Option<u64>,
}

impl PartialAggNode {
    /// Create a node with the given group-table bound.
    ///
    /// # Panics
    /// Panics if `max_groups == 0`.
    pub fn new(max_groups: usize) -> Self {
        assert!(max_groups > 0, "partial aggregation needs a positive group bound");
        PartialAggNode {
            max_groups,
            groups: FxHashMap::default(),
            order: Vec::new(),
            pending: VecDeque::new(),
            current_second: None,
        }
    }

    /// The output stream schema: `PKTAGG(time increasing, srcIP,
    /// destIP, len, cnt)`.
    pub fn schema() -> Schema {
        Schema::new(
            "PKTAGG",
            vec![
                Field::increasing("time", FieldType::U64),
                Field::new("srcIP", FieldType::U64),
                Field::new("destIP", FieldType::U64),
                Field::new("len", FieldType::U64),
                Field::new("cnt", FieldType::U64),
            ],
        )
    }

    fn flush(&mut self, second: u64) {
        for key in self.order.drain(..) {
            let (len, cnt) = self.groups.remove(&key).expect("ordered key in table");
            self.pending.push_back(Tuple::new(vec![
                Value::U64(second),
                Value::U64(key.0 as u64),
                Value::U64(key.1 as u64),
                Value::U64(len),
                Value::U64(cnt),
            ]));
        }
    }
}

impl LowLevelQuery for PartialAggNode {
    fn name(&self) -> &'static str {
        "partial-aggregation"
    }

    fn process(&mut self, pkt: &Packet) -> Option<Tuple> {
        let second = pkt.time();
        match self.current_second {
            Some(s) if s != second => {
                // The packet clock advanced: flush the finished second so
                // high-level windows see correctly-attributed partials.
                self.flush(s);
                self.current_second = Some(second);
            }
            None => self.current_second = Some(second),
            _ => {}
        }
        let key = (pkt.src_ip, pkt.dest_ip);
        let entry = self.groups.entry(key).or_insert_with(|| {
            self.order.push(key);
            (0, 0)
        });
        entry.0 += pkt.len as u64;
        entry.1 += 1;
        if self.groups.len() >= self.max_groups {
            self.flush(second);
        }
        self.pending.pop_front()
    }

    fn finish(&mut self) -> Vec<Tuple> {
        if let Some(s) = self.current_second.take() {
            self.flush(s);
        }
        self.pending.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_plan, TwoLevelPlan};
    use sso_core::SamplingOperator;
    use sso_netgen::datacenter_feed;
    use sso_query::{parse_query, plan, PlannerConfig};
    use std::collections::HashMap;

    fn reaggregate_query(window_secs: u64) -> SamplingOperator {
        let q = parse_query(&format!(
            "SELECT tb, destIP, sum(len), sum(cnt) FROM PKTAGG \
             GROUP BY time/{window_secs} as tb, destIP"
        ))
        .unwrap();
        SamplingOperator::new(plan(&q, &PartialAggNode::schema(), &PlannerConfig::empty()).unwrap())
            .unwrap()
    }

    #[test]
    fn partial_aggregation_is_exact_after_reaggregation() {
        let packets = datacenter_feed(601).take_seconds(4);
        let mut truth: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
        for p in &packets {
            let e = truth.entry((p.time() / 2, p.dest_ip as u64)).or_default();
            e.0 += p.len as u64;
            e.1 += 1;
        }
        let plan2 = TwoLevelPlan::new(Box::new(PartialAggNode::new(8192)), reaggregate_query(2));
        let report = run_plan(plan2, packets).unwrap();
        let mut got = 0usize;
        for w in &report.windows {
            let tb = w.window.get(0).as_u64().unwrap();
            for r in &w.rows {
                let key = (tb, r.get(1).as_u64().unwrap());
                let (len, cnt) = truth[&key];
                assert_eq!(r.get(2), &Value::U64(len), "byte sum exact for {key:?}");
                assert_eq!(r.get(3), &Value::U64(cnt), "packet count exact for {key:?}");
                got += 1;
            }
        }
        assert_eq!(got, truth.len(), "every (window, dest) reported exactly once");
    }

    #[test]
    fn partial_aggregation_slashes_the_tuple_flow() {
        let packets = datacenter_feed(602).take_seconds(2);
        let n = packets.len() as u64;
        let plan2 = TwoLevelPlan::new(Box::new(PartialAggNode::new(8192)), reaggregate_query(1));
        let report = run_plan(plan2, packets).unwrap();
        assert_eq!(report.low.tuples_in, n);
        // Reduction factor is bounded by the per-second key cardinality
        // (~16k (src,dest) pairs on this feed): ~6x here.
        assert!(
            report.low.tuples_out < n / 5,
            "partials ({}) should be far fewer than packets ({n})",
            report.low.tuples_out
        );
    }

    #[test]
    fn bounded_table_flushes_early() {
        // A tiny bound forces mid-second flushes; re-aggregation must
        // still be exact.
        let packets = datacenter_feed(603).take_seconds(1);
        let truth: u64 = packets.iter().map(|p| p.len as u64).sum();
        let plan2 = TwoLevelPlan::new(Box::new(PartialAggNode::new(64)), reaggregate_query(1));
        let report = run_plan(plan2, packets).unwrap();
        let total: u64 =
            report.windows.iter().flat_map(|w| &w.rows).map(|r| r.get(2).as_u64().unwrap()).sum();
        assert_eq!(total, truth);
    }

    #[test]
    fn heavy_hitters_over_partials_matches_heavy_hitters_over_packets() {
        // The §8 transform: run the HH *query shape* over partial
        // aggregates (weighting by cnt) and compare the heavy set to the
        // exact per-destination counts.
        let packets = datacenter_feed(604).take_seconds(3);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for p in &packets {
            *exact.entry(p.dest_ip as u64).or_default() += 1;
        }
        let q = parse_query(
            "SELECT tb, destIP, sum(cnt) FROM PKTAGG \
             GROUP BY time/3 as tb, destIP \
             HAVING sum(cnt) >= 3000",
        )
        .unwrap();
        let hh = SamplingOperator::new(
            plan(&q, &PartialAggNode::schema(), &PlannerConfig::standard()).unwrap(),
        )
        .unwrap();
        let plan2 = TwoLevelPlan::new(Box::new(PartialAggNode::new(8192)), hh);
        let report = run_plan(plan2, packets).unwrap();
        let reported: HashMap<u64, u64> = report
            .windows
            .iter()
            .flat_map(|w| &w.rows)
            .map(|r| (r.get(1).as_u64().unwrap(), r.get(2).as_u64().unwrap()))
            .collect();
        for (&dest, &cnt) in &exact {
            if cnt >= 3000 {
                assert_eq!(reported.get(&dest), Some(&cnt), "heavy dest {dest}");
            } else {
                assert!(!reported.contains_key(&dest), "light dest {dest} reported");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive group bound")]
    fn zero_bound_panics() {
        let _ = PartialAggNode::new(0);
    }
}
