//! Subnet traffic report: heavy-hitting /24 client subnets per minute,
//! with average packet size — showing the query language's scalar
//! functions (`prefix`) and the `avg` rewrite on top of the operator's
//! lossy-counting machinery.
//!
//! ```sh
//! cargo run --release --example subnet_report
//! ```

use stream_sampler::prelude::*;

fn main() {
    let query = "
        SELECT tb, net, sum(len), count(*), avg(len)
        FROM PKT
        GROUP BY time/60 as tb, prefix(srcIP, 24) as net
        HAVING count(*) >= 10000
        CLEANING WHEN local_count(1000) = TRUE
        CLEANING BY count(*) + first(current_bucket()) > current_bucket()";

    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard())
        .expect("subnet query compiles");

    let packets = datacenter_feed(61).take_seconds(60);
    println!("feed: {} packets over 60s", packets.len());

    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();

    for w in &windows {
        println!(
            "\nwindow {}: {} heavy subnets (of {} tracked at peak; {} cleaning phases)",
            w.window,
            w.rows.len(),
            w.stats.groups_created,
            w.stats.cleaning_phases
        );
        let mut rows: Vec<_> = w.rows.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.get(2).as_u64().unwrap()));
        println!("{:<18} {:>14} {:>10} {:>10}", "subnet", "bytes", "pkts", "avg len");
        for row in rows.iter().take(10) {
            println!(
                "{:<18} {:>14} {:>10} {:>10.1}",
                format!("{}/24", format_ipv4(row.get(1).as_u64().unwrap() as u32)),
                row.get(2).as_u64().unwrap(),
                row.get(3).as_u64().unwrap(),
                row.get(4).as_f64().unwrap(),
            );
        }
    }
}
