//! Property tests for the durable state codecs: for every sampler
//! family with a persistence codec (subset-sum, reservoir, lossy
//! counting, distinct sampling), drive an operator over an arbitrary
//! packet stream spanning several windows, export its carry-over state
//! and library aux, decode both into a fresh operator, and re-encode —
//! the bytes must come back identical. This is the invariant the
//! recovery path stands on: `decode(encode(s))` re-encodes to
//! `encode(s)`, so a restarted worker's persisted state is
//! indistinguishable from the original's.

use proptest::prelude::*;
use stream_sampler::operator::{OpError, OperatorSpec};
use stream_sampler::prelude::*;
use stream_sampler::types::Protocol;

const WINDOW: u64 = 2;

fn packet(time: u64, seq: u64, src: u32, dst: u32, len: u32) -> Packet {
    Packet {
        uts: time * 1_000_000_000 + seq % 1_000_000_000,
        src_ip: src,
        dest_ip: dst,
        src_port: 80,
        dest_port: 443,
        proto: Protocol::Tcp,
        len,
    }
}

/// An arbitrary stream that always spans at least two windows (so the
/// operator has closed a window and populated its carry-over state).
fn stream_strategy() -> impl Strategy<Value = Vec<Packet>> {
    proptest::collection::vec((0u64..3 * WINDOW, 0u32..8, 0u32..8, 40u32..1500), 20..120).prop_map(
        |mut raw| {
            raw.sort_by_key(|&(t, ..)| t);
            // Pin the first and last packet into different windows.
            if let Some(first) = raw.first_mut() {
                first.0 = 0;
            }
            if let Some(last) = raw.last_mut() {
                last.0 = 3 * WINDOW - 1;
            }
            raw.iter()
                .enumerate()
                .map(|(i, &(t, s, d, len))| packet(t, i as u64, s, d, len))
                .collect()
        },
    )
}

/// Drive `make`'s operator over the stream, then round-trip its carry
/// and aux through a fresh operator: encode → decode → encode must be
/// byte-identical.
fn assert_roundtrip<F>(make: F, pkts: &[Packet], family: &str)
where
    F: Fn() -> Result<OperatorSpec, OpError>,
{
    let mut op = SamplingOperator::new(make().expect("spec builds")).expect("operator builds");
    assert!(op.can_persist(), "{family}: persistence codec must be registered");
    for p in pkts {
        op.process(&p.to_tuple()).expect("process");
    }
    let carry = op.export_carry().expect("carry encodes");
    let aux = op.export_aux();

    let mut fresh = SamplingOperator::new(make().expect("spec builds")).expect("operator builds");
    fresh.import_carry(&carry).expect("carry decodes");
    fresh.import_aux(&aux).expect("aux decodes");
    assert_eq!(
        carry,
        fresh.export_carry().expect("carry re-encodes"),
        "{family}: carry encode→decode→encode must be byte-identical"
    );
    assert_eq!(
        aux,
        fresh.export_aux(),
        "{family}: aux encode→decode→encode must be byte-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn subset_sum_state_roundtrips(pkts in stream_strategy()) {
        assert_roundtrip(|| queries::basic_subset_sum_query(WINDOW, 300.0), &pkts, "subset-sum");
    }

    #[test]
    fn reservoir_state_roundtrips(pkts in stream_strategy()) {
        assert_roundtrip(
            || queries::reservoir_query(
                WINDOW,
                ReservoirOpConfig { n: 8, seed: 99, ..Default::default() },
            ),
            &pkts,
            "reservoir",
        );
    }

    #[test]
    fn lossy_counting_state_roundtrips(pkts in stream_strategy()) {
        assert_roundtrip(|| queries::heavy_hitters_query(WINDOW, 16, None), &pkts, "lossy-counting");
    }

    #[test]
    fn distinct_sample_state_roundtrips(pkts in stream_strategy()) {
        assert_roundtrip(
            || queries::distinct_sample_query(
                WINDOW,
                stream_sampler::operator::libs::distinct::DistinctOpConfig {
                    capacity: 16,
                    ..Default::default()
                },
            ),
            &pkts,
            "distinct",
        );
    }
}
