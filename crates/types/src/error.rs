//! Error types for value and schema operations.

use std::fmt;

/// Errors raised by typed operations on [`crate::Value`]s and schema lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A binary or unary operation was applied to operands of unsupported
    /// types, e.g. `"abc" + 1`.
    InvalidOperands {
        /// The operation that failed, e.g. `"+"` or `"AND"`.
        op: &'static str,
        /// Human-readable description of the left (or only) operand type.
        lhs: &'static str,
        /// Human-readable description of the right operand type, if any.
        rhs: Option<&'static str>,
    },
    /// Division or modulus by zero.
    DivisionByZero,
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A tuple had a different arity than its schema.
    ArityMismatch {
        /// Number of fields the schema declares.
        expected: usize,
        /// Number of values the tuple carried.
        actual: usize,
    },
    /// A value could not be converted to the requested Rust type.
    InvalidConversion {
        /// The requested target type.
        target: &'static str,
        /// Description of the actual value kind.
        actual: &'static str,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidOperands { op, lhs, rhs } => match rhs {
                Some(r) => write!(f, "invalid operands for `{op}`: {lhs} and {r}"),
                None => write!(f, "invalid operand for `{op}`: {lhs}"),
            },
            TypeError::DivisionByZero => write!(f, "division by zero"),
            TypeError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TypeError::ArityMismatch { expected, actual } => {
                write!(f, "tuple arity mismatch: schema has {expected} fields, tuple has {actual}")
            }
            TypeError::InvalidConversion { target, actual } => {
                write!(f, "cannot convert {actual} value to {target}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        let e = TypeError::InvalidOperands { op: "+", lhs: "str", rhs: Some("u64") };
        assert_eq!(e.to_string(), "invalid operands for `+`: str and u64");
        let e = TypeError::InvalidOperands { op: "NOT", lhs: "str", rhs: None };
        assert_eq!(e.to_string(), "invalid operand for `NOT`: str");
        assert_eq!(TypeError::DivisionByZero.to_string(), "division by zero");
        assert_eq!(TypeError::UnknownColumn("srcIP".into()).to_string(), "unknown column `srcIP`");
        assert_eq!(
            TypeError::ArityMismatch { expected: 4, actual: 3 }.to_string(),
            "tuple arity mismatch: schema has 4 fields, tuple has 3"
        );
        assert_eq!(
            TypeError::InvalidConversion { target: "u64", actual: "str" }.to_string(),
            "cannot convert str value to u64"
        );
    }
}
