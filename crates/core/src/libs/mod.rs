//! Stateful-function libraries implementing the paper's four
//! representative algorithms on the generic operator.
//!
//! Each library corresponds to one `STATE` declaration plus its `SFUN`s
//! in the paper's runtime-library model (§6.2):
//!
//! * [`subset_sum`] — `ssample`, `ssdo_clean`, `ssclean_with`,
//!   `ssfinal_clean`, `ssthreshold`, `sscleanings` (dynamic subset-sum
//!   sampling, with relaxed/non-relaxed window carry-over);
//! * [`reservoir`] — `rsample`, `rsdo_clean`, `rsclean_with`,
//!   `rsfinal_clean` (candidate-reservoir sampling with random
//!   subsampling cleans);
//! * [`heavy_hitter`] — `local_count`, `current_bucket` (the bucket
//!   machinery of Manku–Motwani lossy counting; the prune rule itself is
//!   an ordinary CLEANING BY expression over `count(*)` and
//!   `first(current_bucket())`);
//! * [`distinct`] — `dsample`, `ddo_clean`, `dclean_with`, `dlevel`,
//!   `dscale` (Gibbons' distinct sampling, reference \[19\] — a bonus
//!   fifth algorithm demonstrating the operator's generality).
//!
//! Min-hash sampling needs no stateful functions: it is expressed with
//! the `H()` scalar and the `Kth_smallest_value$` superaggregate alone
//! (§6.6).

pub mod distinct;
pub mod heavy_hitter;
pub mod reservoir;
pub mod subset_sum;
