//! The facade types. Normal builds: inlined passthrough to `std`.
//! `model` builds: each operation first asks the thread-local model
//! context whether a checker run is driving this thread; if so the
//! operation becomes a scheduler-visible event.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(feature = "model")]
use crate::model::ctx::{self, AtomKind};

/// A `u64` atomic behind the facade.
#[derive(Debug, Default)]
pub struct SyncU64 {
    v: AtomicU64,
}

/// A `usize` atomic behind the facade.
#[derive(Debug, Default)]
pub struct SyncUsize {
    v: AtomicUsize,
}

/// A `bool` atomic behind the facade.
#[derive(Debug, Default)]
pub struct SyncBool {
    v: AtomicBool,
}

macro_rules! forward {
    // Wrap `$body` as a model-visible op of `$kind` at this value's
    // address, or run it raw outside a model run.
    ($self:ident, $kind:ident, $ord:expr, $body:expr) => {{
        #[cfg(feature = "model")]
        if let Some(r) =
            ctx::with(|c| c.atomic($self as *const Self as usize, AtomKind::$kind, $ord, || $body))
        {
            return r;
        }
        $body
    }};
}

impl SyncU64 {
    /// A new atomic holding `v`.
    pub const fn new(v: u64) -> Self {
        SyncU64 { v: AtomicU64::new(v) }
    }

    #[inline]
    pub fn load(&self, ord: Ordering) -> u64 {
        forward!(self, Load, ord, self.v.load(ord))
    }

    #[inline]
    pub fn store(&self, val: u64, ord: Ordering) {
        forward!(self, Store, ord, self.v.store(val, ord))
    }

    #[inline]
    pub fn fetch_add(&self, val: u64, ord: Ordering) -> u64 {
        forward!(self, Rmw, ord, self.v.fetch_add(val, ord))
    }

    #[inline]
    pub fn swap(&self, val: u64, ord: Ordering) -> u64 {
        forward!(self, Rmw, ord, self.v.swap(val, ord))
    }

    /// `compare_exchange_weak`; spurious failures are allowed (and, in a
    /// model run, explored: the model treats a failure as a load with
    /// the failure ordering).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        #[cfg(feature = "model")]
        if let Some(r) = ctx::with(|c| {
            c.cas(self as *const Self as usize, success, failure, || {
                let r = self.v.compare_exchange_weak(current, new, success, failure);
                let ok = r.is_ok();
                (r, ok)
            })
        }) {
            return r;
        }
        self.v.compare_exchange_weak(current, new, success, failure)
    }

    #[inline]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        #[cfg(feature = "model")]
        if let Some(r) = ctx::with(|c| {
            c.cas(self as *const Self as usize, success, failure, || {
                let r = self.v.compare_exchange(current, new, success, failure);
                let ok = r.is_ok();
                (r, ok)
            })
        }) {
            return r;
        }
        self.v.compare_exchange(current, new, success, failure)
    }
}

impl SyncUsize {
    /// A new atomic holding `v`.
    pub const fn new(v: usize) -> Self {
        SyncUsize { v: AtomicUsize::new(v) }
    }

    #[inline]
    pub fn load(&self, ord: Ordering) -> usize {
        forward!(self, Load, ord, self.v.load(ord))
    }

    #[inline]
    pub fn store(&self, val: usize, ord: Ordering) {
        forward!(self, Store, ord, self.v.store(val, ord))
    }

    #[inline]
    pub fn fetch_add(&self, val: usize, ord: Ordering) -> usize {
        forward!(self, Rmw, ord, self.v.fetch_add(val, ord))
    }
}

impl SyncBool {
    /// A new atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        SyncBool { v: AtomicBool::new(v) }
    }

    #[inline]
    pub fn load(&self, ord: Ordering) -> bool {
        forward!(self, Load, ord, self.v.load(ord))
    }

    #[inline]
    pub fn store(&self, val: bool, ord: Ordering) {
        forward!(self, Store, ord, self.v.store(val, ord))
    }
}

/// An atomic memory fence. In a model run, `Release`-class fences stage
/// the thread's clock for publication by subsequent `Relaxed` stores;
/// `Acquire`-class fences join the clocks gathered by prior `Relaxed`
/// loads.
#[inline]
pub fn fence(ord: Ordering) {
    #[cfg(feature = "model")]
    if ctx::with(|c| c.fence(ord)).is_some() {
        return;
    }
    std::sync::atomic::fence(ord);
}

/// Shared mutable state whose exclusion is enforced by an external
/// protocol (ring indices, a publish counter) rather than a lock.
///
/// Normal builds compile accesses to raw `UnsafeCell` reads/writes; the
/// model checker treats them as *non-atomic* accesses and reports a
/// happens-before data race whenever two threads touch the same cell
/// without an ordering path between them — which is precisely how a
/// missing `Release`/`Acquire` pair on the protocol's atomics shows up.
#[derive(Debug, Default)]
pub struct SyncCell<T> {
    v: UnsafeCell<T>,
}

// SAFETY: cross-thread access is the point of the type; exclusion is
// the caller's contract (see `with` / `with_mut`), checked under the
// model feature.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    /// A new cell holding `v`.
    pub const fn new(v: T) -> Self {
        SyncCell { v: UnsafeCell::new(v) }
    }

    /// Read access.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent `with_mut` on this cell;
    /// the surrounding protocol's atomics must order this read after
    /// any write it observes.
    #[inline]
    pub unsafe fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        #[cfg(feature = "model")]
        if ctx::in_model() {
            return ctx::with(|c| c.cell_read(self as *const Self as usize, || f(&*self.v.get())))
                .expect("in_model checked");
        }
        f(&*self.v.get())
    }

    /// Write access.
    ///
    /// # Safety
    /// The caller must guarantee exclusive access for the duration of
    /// `f` — no concurrent `with` or `with_mut` on this cell.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(feature = "model")]
        if ctx::in_model() {
            return ctx::with(|c| {
                c.cell_write(self as *const Self as usize, || f(&mut *self.v.get()))
            })
            .expect("in_model checked");
        }
        f(&mut *self.v.get())
    }

    /// Exclusive access through a unique reference (always safe).
    pub fn get_mut(&mut self) -> &mut T {
        self.v.get_mut()
    }

    /// Consume the cell.
    pub fn into_inner(self) -> T {
        self.v.into_inner()
    }
}

/// A mutex behind the facade. Normal builds: `std::sync::Mutex` (poison
/// panics propagate, matching the previous `.lock().unwrap()` idiom).
/// Model runs: acquisition is a scheduler-visible blocking operation,
/// so schedules where a thread waits on the lock are explored, and the
/// unlock→lock edge contributes to the happens-before relation.
#[derive(Debug, Default)]
pub struct SyncMutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> SyncMutex<T> {
    /// A new mutex holding `v`.
    pub const fn new(v: T) -> Self {
        SyncMutex { inner: std::sync::Mutex::new(v) }
    }

    /// Lock, panicking if a previous holder panicked.
    pub fn lock(&self) -> SyncMutexGuard<'_, T> {
        #[cfg(feature = "model")]
        let modeled = ctx::with(|c| c.mutex_lock(self as *const Self as usize)).is_some();
        #[cfg(not(feature = "model"))]
        let modeled = false;
        // Inside a model run the scheduler has already granted exclusive
        // ownership, so this never blocks.
        let guard = self.inner.lock().expect("SyncMutex poisoned");
        SyncMutexGuard { guard: Some(guard), addr: self as *const Self as usize, modeled }
    }

    /// Exclusive access through a unique reference (always safe).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("SyncMutex poisoned")
    }
}

/// Guard returned by [`SyncMutex::lock`].
pub struct SyncMutexGuard<'a, T> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    addr: usize,
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    modeled: bool,
}

impl<T> std::ops::Deref for SyncMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for SyncMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

impl<T> Drop for SyncMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before telling the model scheduler, so
        // the next model thread granted the mutex can take it.
        self.guard.take();
        #[cfg(feature = "model")]
        if self.modeled {
            ctx::with(|c| c.mutex_unlock(self.addr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn passthrough_atomics_behave_like_std() {
        let a = SyncU64::new(5);
        assert_eq!(a.load(Ordering::Relaxed), 5);
        assert_eq!(a.fetch_add(3, Ordering::Relaxed), 5);
        a.store(42, Ordering::Release);
        assert_eq!(a.swap(7, Ordering::AcqRel), 42);
        assert_eq!(
            a.compare_exchange(7, 9, Ordering::AcqRel, Ordering::Acquire),
            Ok(7),
            "CAS from the current value succeeds"
        );
        assert_eq!(a.compare_exchange(7, 9, Ordering::AcqRel, Ordering::Acquire), Err(9));

        let b = SyncBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));

        let u = SyncUsize::new(1);
        assert_eq!(u.fetch_add(1, Ordering::AcqRel), 1);
        assert_eq!(u.load(Ordering::Acquire), 2);
        fence(Ordering::SeqCst);
    }

    #[test]
    fn cell_and_mutex_round_trip() {
        let c = SyncCell::new(vec![1, 2]);
        unsafe {
            c.with_mut(|v| v.push(3));
            assert_eq!(c.with(|v| v.len()), 3);
        }
        let mut c = c;
        c.get_mut().push(4);
        assert_eq!(c.into_inner(), vec![1, 2, 3, 4]);

        let m = Arc::new(SyncMutex::new(0u64));
        let m2 = m.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                *m2.lock() += 1;
            }
        });
        for _ in 0..100 {
            *m.lock() += 1;
        }
        h.join().unwrap();
        assert_eq!(*m.lock(), 200);
    }
}
