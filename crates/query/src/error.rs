//! Query front-end errors.

use std::fmt;

use sso_core::OpError;

use crate::ast::Span;
use crate::diag::Diagnostic;

/// Errors from lexing, parsing, or planning a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A lexical error at a byte offset.
    Lex {
        /// Byte position in the query text.
        position: usize,
        /// Description.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// Byte position in the query text (approximate: token start).
        position: usize,
        /// Description.
        message: String,
    },
    /// A semantic error (unknown name, clause misuse, ...).
    Semantic(String),
    /// Semantic analysis failed; carries every diagnostic found (errors
    /// *and* warnings), not just the first. Use
    /// [`crate::diag::render`] against the query text for the full
    /// rustc-style report.
    Analysis(Vec<Diagnostic>),
    /// An error surfaced from the operator layer during planning or
    /// instantiation.
    Plan(OpError),
}

impl QueryError {
    /// The byte span in `src` (the query text this error came from)
    /// that the error most precisely points at: lex/parse errors know
    /// their offset, analysis errors carry spans on their diagnostics,
    /// and the rest cover the trimmed statement. Never [`Span::DUMMY`],
    /// so renderers don't silently point at offset 0.
    pub fn primary_span(&self, src: &str) -> Span {
        match self {
            QueryError::Lex { position, .. } | QueryError::Parse { position, .. } => {
                Span::new(*position, position + 1)
            }
            QueryError::Analysis(diags) => diags
                .iter()
                .find(|d| d.is_error())
                .or_else(|| diags.first())
                .map(|d| d.span)
                .filter(|s| !s.is_dummy())
                .unwrap_or_else(|| statement_span(src)),
            QueryError::Semantic(_) | QueryError::Plan(_) => statement_span(src),
        }
    }
}

/// The span of the non-whitespace body of `src` (at least one byte),
/// for errors with no finer position of their own.
fn statement_span(src: &str) -> Span {
    let start = src.len() - src.trim_start().len();
    let end = (start + src.trim().len()).max(start + 1);
    Span::new(start, end)
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lexical error at byte {position}: {message}")
            }
            QueryError::Parse { position, message } => {
                write!(f, "syntax error at byte {position}: {message}")
            }
            QueryError::Semantic(m) => write!(f, "semantic error: {m}"),
            QueryError::Analysis(diags) => {
                let joined = diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ");
                write!(f, "semantic error: {joined}")
            }
            QueryError::Plan(e) => write!(f, "planning error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<OpError> for QueryError {
    fn from(e: OpError) -> Self {
        QueryError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::Lex { position: 3, message: "bad char".into() };
        assert_eq!(e.to_string(), "lexical error at byte 3: bad char");
        let e = QueryError::Semantic("unknown column x".into());
        assert!(e.to_string().contains("unknown column x"));
    }

    #[test]
    fn primary_span_is_never_dummy() {
        use crate::diag::Code;

        let src = "  SELECT x FROM PKT  ";
        let lex = QueryError::Lex { position: 9, message: "bad".into() };
        assert_eq!(lex.primary_span(src), Span::new(9, 10));
        let parse = QueryError::Parse { position: 7, message: "bad".into() };
        assert_eq!(parse.primary_span(src), Span::new(7, 8));

        // Analysis: the first *error* diagnostic's span wins over an
        // earlier warning's.
        let analysis = QueryError::Analysis(vec![
            Diagnostic::new(Code::W005, Span::new(1, 2), "dup"),
            Diagnostic::new(Code::E002, Span::new(9, 10), "unknown"),
        ]);
        assert_eq!(analysis.primary_span(src), Span::new(9, 10));
        // Dummy-spanned diagnostics fall back to the statement body.
        let analysis = QueryError::Analysis(vec![Diagnostic::new(Code::E009, Span::DUMMY, "x")]);
        assert_eq!(analysis.primary_span(src), Span::new(2, 19));

        // Positionless errors cover the trimmed statement.
        let sem = QueryError::Semantic("no".into());
        assert_eq!(sem.primary_span(src), Span::new(2, 19));
        assert!(!sem.primary_span("").is_dummy(), "even empty input gets a 1-byte span");
    }
}
