//! The reservoir-sampling SFUN library (§4.1, §6.6).
//!
//! Vitter's candidate-reservoir formulation: record `t` becomes a
//! *candidate* with probability `n/t`; when the candidate set exceeds
//! `T·n` (the tolerance `10 < T < 40`), a cleaning phase keeps a uniform
//! random `n` of them; the window-border pass does the same. The
//! candidates themselves are the operator's groups — this state only
//! makes the admission and keep decisions.
//!
//! The per-pass exact-subsampling uses Knuth's selection sampling
//! (Algorithm S): group `i` of the pass is kept with probability
//! `still_needed / still_remaining`, which keeps *exactly* `n`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sso_types::wire::{put_u64, Reader};
use sso_types::{Value, ValueKind};

use crate::sfun::args::u64_arg;
use crate::sfun::{state_mut, SfunLibrary, Signature};

/// Configuration for [`library`].
#[derive(Debug, Clone, Copy)]
pub struct ReservoirOpConfig {
    /// Sample size `n`; `0` = take it from `rsample`'s argument.
    pub n: usize,
    /// Candidate tolerance `T` (clean when candidates exceed `T·n`).
    pub t_factor: u32,
    /// Base RNG seed; each supergroup state derives a distinct stream.
    pub seed: u64,
}

impl Default for ReservoirOpConfig {
    fn default() -> Self {
        ReservoirOpConfig { n: 0, t_factor: 25, seed: 0xfeed_5eed }
    }
}

/// The shared state of the reservoir SFUN family.
#[derive(Debug)]
pub struct ReservoirSfunState {
    n: usize,
    t_factor: u32,
    seen: u64,
    rng: StdRng,
    /// Algorithm-S counters of the in-progress cleaning pass.
    keep_left: usize,
    total_left: usize,
    final_started: bool,
    final_subsample: bool,
}

impl ReservoirSfunState {
    /// Serialize, capturing the raw RNG words: `gen_range` rejection
    /// sampling makes draw counts unreproducible, so only exact state
    /// restoration continues the random stream correctly.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(72);
        put_u64(&mut out, self.n as u64);
        put_u64(&mut out, u64::from(self.t_factor));
        put_u64(&mut out, self.seen);
        for w in self.rng.state() {
            put_u64(&mut out, w);
        }
        put_u64(&mut out, self.keep_left as u64);
        put_u64(&mut out, self.total_left as u64);
        out.push(u8::from(self.final_started));
        out.push(u8::from(self.final_subsample));
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let n = r.take_u64().ok()? as usize;
        let t_factor = r.take_u64().ok()? as u32;
        let seen = r.take_u64().ok()?;
        let mut words = [0u64; 4];
        for w in &mut words {
            *w = r.take_u64().ok()?;
        }
        let st = ReservoirSfunState {
            n,
            t_factor,
            seen,
            rng: StdRng::from_state(words),
            keep_left: r.take_u64().ok()? as usize,
            total_left: r.take_u64().ok()? as usize,
            final_started: r.take_u8().ok()? != 0,
            final_subsample: r.take_u8().ok()? != 0,
        };
        r.is_empty().then_some(st)
    }

    fn selection_step(&mut self) -> bool {
        if self.total_left == 0 {
            return false;
        }
        let keep = (self.rng.gen_range(0..self.total_left as u64) as usize) < self.keep_left;
        if keep {
            self.keep_left = self.keep_left.saturating_sub(1);
        }
        self.total_left -= 1;
        keep
    }
}

/// Build the reservoir SFUN library. Reservoir state does not carry
/// across windows; each window samples afresh.
pub fn library(cfg: ReservoirOpConfig) -> SfunLibrary {
    let cfg_n = cfg.n;
    // Distinct deterministic RNG stream per created state. Shared with
    // the persistence hooks so a resumed run hands later states the
    // same per-instance seeds the original run would have.
    let instance = Arc::new(AtomicU64::new(0));
    let aux_enc = Arc::clone(&instance);
    let aux_dec = Arc::clone(&instance);
    SfunLibrary::new("reservoir_sampling_state", move |_prev| {
        let k = instance.fetch_add(1, Ordering::Relaxed);
        Box::new(ReservoirSfunState {
            n: cfg.n,
            t_factor: cfg.t_factor.max(2),
            seen: 0,
            rng: StdRng::seed_from_u64(cfg.seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            keep_left: 0,
            total_left: 0,
            final_started: false,
            final_subsample: false,
        })
    })
    .with_persist(
        |state| state.downcast_ref::<ReservoirSfunState>().map(ReservoirSfunState::encode),
        |bytes| {
            ReservoirSfunState::decode(bytes).map(|s| Box::new(s) as Box<dyn std::any::Any + Send>)
        },
    )
    .with_persist_aux(
        move || {
            let mut out = Vec::with_capacity(8);
            put_u64(&mut out, aux_enc.load(Ordering::Relaxed));
            out
        },
        move |bytes| match Reader::new(bytes).take_u64() {
            Ok(v) => {
                aux_dec.store(v, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        },
    )
    .register(
        "rsample",
        // The sample size argument is only needed when the config does
        // not preset it.
        if cfg_n > 0 {
            Signature::range(0, 1, ValueKind::Bool)
        } else {
            Signature::exact(1, ValueKind::Bool)
        },
        |state, argv| {
            let s = state_mut::<ReservoirSfunState>(state, "rsample")?;
            if s.n == 0 {
                let n = u64_arg("rsample", argv, 0)? as usize;
                if n == 0 {
                    return Err("rsample: sample size must be positive".to_string());
                }
                s.n = n;
            }
            s.seen += 1;
            let admit = if s.seen <= s.n as u64 {
                true
            } else {
                // Candidate with probability n / t.
                (s.rng.gen::<f64>() * s.seen as f64) < s.n as f64
            };
            Ok(Value::Bool(admit))
        },
    )
    .register("rsdo_clean", Signature::exact(1, ValueKind::Bool), |state, argv| {
        let s = state_mut::<ReservoirSfunState>(state, "rsdo_clean")?;
        let count = u64_arg("rsdo_clean", argv, 0)? as usize;
        if s.n > 0 && count > s.t_factor as usize * s.n {
            s.keep_left = s.n;
            s.total_left = count;
            Ok(Value::Bool(true))
        } else {
            Ok(Value::Bool(false))
        }
    })
    .register("rsclean_with", Signature::exact(0, ValueKind::Bool), |state, _argv| {
        let s = state_mut::<ReservoirSfunState>(state, "rsclean_with")?;
        Ok(Value::Bool(s.selection_step()))
    })
    .register("rsfinal_clean", Signature::exact(1, ValueKind::Bool), |state, argv| {
        let s = state_mut::<ReservoirSfunState>(state, "rsfinal_clean")?;
        if !s.final_started {
            s.final_started = true;
            let count = u64_arg("rsfinal_clean", argv, 0)? as usize;
            s.final_subsample = s.n > 0 && count > s.n;
            if s.final_subsample {
                s.keep_left = s.n;
                s.total_left = count;
            }
        }
        let keep = if s.final_subsample { s.selection_step() } else { true };
        Ok(Value::Bool(keep))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    fn call(lib: &SfunLibrary, state: &mut Box<dyn Any + Send>, f: &str, args: &[Value]) -> Value {
        lib.function(f).expect(f)(state.as_mut(), args).unwrap()
    }

    #[test]
    fn rsample_accepts_first_n_unconditionally() {
        let lib = library(ReservoirOpConfig { n: 5, ..Default::default() });
        let mut st = lib.init_state(None);
        for _ in 0..5 {
            assert_eq!(call(&lib, &mut st, "rsample", &[Value::U64(5)]), Value::Bool(true));
        }
    }

    #[test]
    fn rsample_admission_rate_decays_like_n_over_t() {
        let lib = library(ReservoirOpConfig { n: 50, ..Default::default() });
        let mut st = lib.init_state(None);
        let mut admitted = 0u64;
        let total = 20_000u64;
        for _ in 0..total {
            if call(&lib, &mut st, "rsample", &[Value::U64(50)]) == Value::Bool(true) {
                admitted += 1;
            }
        }
        // E[admissions] = n + n*(H_total - H_n) ~ 50 * (1 + ln(400)) ~ 350.
        assert!(admitted > 150 && admitted < 800, "admitted {admitted}");
    }

    #[test]
    fn rsdo_clean_triggers_past_tolerance() {
        let lib = library(ReservoirOpConfig { n: 10, t_factor: 3, ..Default::default() });
        let mut st = lib.init_state(None);
        call(&lib, &mut st, "rsample", &[Value::U64(10)]);
        assert_eq!(call(&lib, &mut st, "rsdo_clean", &[Value::U64(30)]), Value::Bool(false));
        assert_eq!(call(&lib, &mut st, "rsdo_clean", &[Value::U64(31)]), Value::Bool(true));
    }

    #[test]
    fn cleaning_pass_keeps_exactly_n() {
        let lib = library(ReservoirOpConfig { n: 10, t_factor: 3, ..Default::default() });
        let mut st = lib.init_state(None);
        call(&lib, &mut st, "rsample", &[Value::U64(10)]);
        assert_eq!(call(&lib, &mut st, "rsdo_clean", &[Value::U64(40)]), Value::Bool(true));
        let mut kept = 0;
        for _ in 0..40 {
            if call(&lib, &mut st, "rsclean_with", &[]) == Value::Bool(true) {
                kept += 1;
            }
        }
        assert_eq!(kept, 10, "Algorithm S keeps exactly n");
    }

    #[test]
    fn final_clean_keeps_all_when_small_and_exactly_n_when_large() {
        let lib = library(ReservoirOpConfig { n: 5, ..Default::default() });
        let mut st = lib.init_state(None);
        call(&lib, &mut st, "rsample", &[Value::U64(5)]);
        for _ in 0..3 {
            assert_eq!(call(&lib, &mut st, "rsfinal_clean", &[Value::U64(3)]), Value::Bool(true));
        }
        // New state: over target.
        let mut st = lib.init_state(None);
        call(&lib, &mut st, "rsample", &[Value::U64(5)]);
        let mut kept = 0;
        for _ in 0..20 {
            if call(&lib, &mut st, "rsfinal_clean", &[Value::U64(20)]) == Value::Bool(true) {
                kept += 1;
            }
        }
        assert_eq!(kept, 5);
    }

    #[test]
    fn distinct_states_use_distinct_random_streams() {
        let lib = library(ReservoirOpConfig { n: 10, ..Default::default() });
        let mut a = lib.init_state(None);
        let mut b = lib.init_state(None);
        let run = |st: &mut Box<dyn Any + Send>, lib: &SfunLibrary| {
            (0..200)
                .map(|_| call(lib, st, "rsample", &[Value::U64(10)]) == Value::Bool(true))
                .collect::<Vec<_>>()
        };
        assert_ne!(run(&mut a, &lib), run(&mut b, &lib));
    }

    #[test]
    fn zero_n_is_rejected() {
        let lib = library(ReservoirOpConfig::default());
        let mut st = lib.init_state(None);
        let f = lib.function("rsample").unwrap();
        assert!(f(st.as_mut(), &[Value::U64(0)]).unwrap_err().contains("positive"));
    }
}
