//! Shard-merge rules vs the single-stream reference (§7.2 partial
//! aggregation): each merge of per-substream sampler state must match —
//! exactly or distributionally — the same sampler run over the whole
//! stream.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sso_sampling::subset_sum::{merge_threshold_samples, ThresholdPart};
use sso_sampling::{
    merge_window_results, DynamicSubsetSum, KmvSketch, LossyCounter, Reservoir, SubsetSumConfig,
};

/// Round-robin split of a stream into `k` substreams.
fn split<T: Clone>(stream: &[T], k: usize) -> Vec<Vec<T>> {
    let mut parts = vec![Vec::new(); k];
    for (i, item) in stream.iter().enumerate() {
        parts[i % k].push(item.clone());
    }
    parts
}

// ---------------------------------------------------------------- reservoir

#[test]
fn reservoir_merge_has_union_counts_and_full_capacity() {
    let mut rng = StdRng::seed_from_u64(11);
    let stream: Vec<u64> = (0..10_000).collect();
    let mut merged = None;
    for part in split(&stream, 4) {
        let mut r = Reservoir::new(100);
        for x in part {
            r.offer(x, &mut rng);
        }
        merged = Some(match merged {
            None => r,
            Some(m) => r.merge(&m, &mut rng),
        });
    }
    let merged: Reservoir<u64> = merged.unwrap();
    assert_eq!(merged.seen(), 10_000);
    assert_eq!(merged.items().len(), 100);
}

#[test]
fn reservoir_merge_is_uniform_like_the_single_stream_reference() {
    // Inclusion frequency of every item must match the single-reservoir
    // reference: P(in sample) = n/N for the merged sampler too.
    let n = 20usize;
    let big = 400u64; // substream sizes 300 vs 100: asymmetric on purpose
    let trials = 4000usize;
    let mut rng = StdRng::seed_from_u64(12);
    let mut hits = vec![0u32; big as usize];
    for _ in 0..trials {
        let mut a = Reservoir::new(n);
        let mut b = Reservoir::new(n);
        for x in 0..300u64 {
            a.offer(x, &mut rng);
        }
        for x in 300..big {
            b.offer(x, &mut rng);
        }
        for &x in a.merge(&b, &mut rng).items() {
            hits[x as usize] += 1;
        }
    }
    let expected = trials as f64 * n as f64 / big as f64; // = 200
    for (x, &h) in hits.iter().enumerate() {
        let dev = (h as f64 - expected).abs() / expected;
        // ~14 sigma on a binomial(4000, 0.05): fails only if merge is biased.
        assert!(dev < 0.5, "item {x} included {h} times, expected ~{expected:.0}");
    }
    // No systematic bias toward either substream.
    let first: u32 = hits[..300].iter().sum();
    let second: u32 = hits[300..].iter().sum();
    let ratio = first as f64 / (first + second) as f64;
    assert!((ratio - 0.75).abs() < 0.02, "substream share {ratio:.3}, expected 0.75");
}

// ------------------------------------------------------------------- lossy

#[test]
fn lossy_merge_error_bound_is_sum_of_epsilons() {
    let (e1, e2) = (0.004, 0.006);
    let mut rng = StdRng::seed_from_u64(13);
    let stream: Vec<u32> = (0..120_000)
        .map(|_| {
            let r: f64 = rng.gen();
            ((1.0 / (r + 0.004)) as u32).min(500)
        })
        .collect();
    let mut truth: HashMap<u32, u64> = HashMap::new();
    for &x in &stream {
        *truth.entry(x).or_insert(0) += 1;
    }
    let parts = split(&stream, 2);
    let mut a = LossyCounter::new(e1);
    let mut b = LossyCounter::new(e2);
    for &x in &parts[0] {
        a.insert(x);
    }
    for &x in &parts[1] {
        b.insert(x);
    }
    let merged = a.merge(&b);
    assert_eq!(merged.stream_len(), stream.len() as u64);
    assert!((merged.epsilon() - (e1 + e2)).abs() < 1e-12);

    let n = merged.stream_len() as f64;
    let bound = ((e1 + e2) * n).ceil() as u64;
    for (&item, &f) in &truth {
        let est = merged.estimate(&item);
        assert!(est <= f, "merged overcounts {item}: {est} > {f}");
        assert!(f - est <= bound, "undercount for {item}: {est} vs {f} (bound {bound})");
    }
    // No false negatives at support s with the merged epsilon.
    let support = 0.03;
    let reported: HashMap<u32, u64> = merged.query(support).into_iter().collect();
    for (&item, &f) in &truth {
        if f as f64 / n >= support {
            assert!(reported.contains_key(&item), "merged summary missed heavy hitter {item}");
        }
    }
}

#[test]
fn lossy_merge_of_exact_summaries_is_exact() {
    // Streams short enough that neither side ever prunes: the merge must
    // be plain count addition.
    let mut a = LossyCounter::new(0.01);
    let mut b = LossyCounter::new(0.01);
    for _ in 0..30 {
        a.insert("x");
    }
    for _ in 0..12 {
        b.insert("x");
    }
    b.insert("y");
    let merged = a.merge(&b);
    assert_eq!(merged.estimate(&"x"), 42);
    assert_eq!(merged.estimate(&"y"), 1);
}

// --------------------------------------------------------------------- kmv

#[test]
fn kmv_union_matches_single_stream_sketch() {
    let mut parts: Vec<KmvSketch> = (0..4).map(|_| KmvSketch::new(64)).collect();
    let mut reference = KmvSketch::new(64);
    let mut rng = StdRng::seed_from_u64(14);
    for i in 0..50_000u64 {
        let x = rng.gen_range(0..8_000u64);
        parts[(i % 4) as usize].insert(x);
        reference.insert(x);
    }
    let merged = parts.iter().skip(1).fold(parts[0].clone(), |acc, s| acc.merge(s));
    assert_eq!(
        merged.values().collect::<Vec<_>>(),
        reference.values().collect::<Vec<_>>(),
        "union-then-truncate must be exact"
    );
    assert_eq!(merged.kth_smallest(), reference.kth_smallest());
}

// -------------------------------------------------------------- subset-sum

#[test]
fn threshold_merge_takes_the_max_threshold_and_hits_target() {
    let target = 200usize;
    let mut rng = StdRng::seed_from_u64(15);
    let stream: Vec<u64> = (0..80_000).map(|_| rng.gen_range(40..1500u64)).collect();
    let truth: u64 = stream.iter().sum();

    let mut results = Vec::new();
    for part in split(&stream, 4) {
        let cfg = SubsetSumConfig::new(target).with_initial_z(1.0);
        let mut d = DynamicSubsetSum::new(cfg);
        for &w in &part {
            d.offer((), w);
        }
        results.push(d.end_window());
    }
    let z_max = results.iter().map(|r| r.z_final).fold(0.0f64, f64::max);
    let merged = merge_window_results(&results, target);

    assert!(merged.z_final >= z_max, "merged z {} < max shard z {z_max}", merged.z_final);
    assert!(merged.samples.len() <= target, "merged sample {} > target", merged.samples.len());
    assert!(!merged.samples.is_empty());
    let rel = (merged.estimate() - truth as f64).abs() / truth as f64;
    // Single-stream reference at this target stays within ~15%; the
    // two-stage merge pays a little extra variance.
    assert!(rel < 0.2, "merged estimate off by {rel:.3}");
}

#[test]
fn threshold_merge_of_one_part_is_identity() {
    let mut rng = StdRng::seed_from_u64(16);
    let cfg = SubsetSumConfig::new(100).with_initial_z(1.0);
    let mut d = DynamicSubsetSum::new(cfg);
    for _ in 0..30_000 {
        d.offer((), rng.gen_range(40..1500u64));
    }
    let single = d.end_window();
    let merged = merge_window_results(std::slice::from_ref(&single), 100);
    assert_eq!(merged.samples.len(), single.samples.len(), "same-threshold re-pass must keep all");
    assert_eq!(merged.z_final, single.z_final);
    assert!((merged.estimate() - single.estimate()).abs() < 1e-6);
}

#[test]
fn threshold_merge_keeps_all_big_items() {
    // Items with effective weight above the merged threshold always
    // survive the max-threshold merge.
    let parts = vec![
        ThresholdPart { samples: vec![(1u32, 50_000.0), (2, 120.0)], z: 120.0 },
        ThresholdPart { samples: vec![(3, 70_000.0), (4, 300.0)], z: 300.0 },
    ];
    let merged = merge_threshold_samples(parts, 100);
    let items: Vec<u32> = merged.samples.iter().map(|(i, _)| *i).collect();
    assert!(items.contains(&1) && items.contains(&3), "big items must survive: {items:?}");
    assert!(merged.z_final >= 300.0);
    // Surviving small items are reported at the merged threshold.
    for (_, eff) in &merged.samples {
        assert!(*eff >= merged.z_final || *eff > 300.0);
    }
}

#[test]
fn threshold_merge_estimate_is_unbiased_across_many_runs() {
    // Average the merged estimate over shifted streams; the two-stage
    // estimator's mean must track the truth closely.
    let target = 100usize;
    let mut rel_sum = 0.0f64;
    let runs = 30;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let stream: Vec<u64> = (0..20_000).map(|_| rng.gen_range(40..1500u64)).collect();
        let truth: u64 = stream.iter().sum();
        let mut results = Vec::new();
        for part in split(&stream, 4) {
            let mut d = DynamicSubsetSum::new(SubsetSumConfig::new(target).with_initial_z(1.0));
            for &w in &part {
                d.offer((), w);
            }
            results.push(d.end_window());
        }
        rel_sum += merge_window_results(&results, target).estimate() / truth as f64;
    }
    let mean_ratio = rel_sum / runs as f64;
    assert!((mean_ratio - 1.0).abs() < 0.05, "mean estimate ratio {mean_ratio:.4}");
}
