//! The subset-sum sampling SFUN library (§6.1, §6.5).
//!
//! The sample itself lives in the operator's group table (every packet is
//! its own group via `uts`); this state holds only the control variables:
//! the threshold `z`, the previous threshold `z_prev` (used to re-weight
//! retained samples during cleaning), the small-tuple counters, and the
//! bookkeeping needed for the aggressive threshold adjustment and the
//! relaxed/non-relaxed cross-window carry-over.
//!
//! Functions (mirroring the paper's declarations):
//!
//! | SFUN | clause | effect |
//! |---|---|---|
//! | `ssample(len, N)` | WHERE | basic threshold-sampling admission test |
//! | `ssdo_clean(count_distinct$(*))` | CLEANING WHEN | trigger + threshold raise when the sample exceeds `γ·N` |
//! | `ssclean_with(sum(len))` | CLEANING BY | per-group keep decision of the cleaning subsample |
//! | `ssfinal_clean(sum(len), count_distinct$(*))` | HAVING | final subsample at the window border |
//! | `ssthreshold()` | SELECT | the final threshold (for `UMAX(sum(len), ssthreshold())`) |
//! | `sscleanings()` | SELECT | cleaning phases this window (Figure 4's metric) |

use sso_sampling::subset_sum::ThresholdCarry;
use sso_types::wire::{put_f64, put_u32, put_u64, Reader};
use sso_types::{Value, ValueKind};

use crate::sfun::args::{f64_arg, u64_arg};
use crate::sfun::{state_mut, SfunLibrary, SfunTelemetry, Signature};

/// Configuration for [`library`].
#[derive(Debug, Clone, Copy)]
pub struct SubsetSumOpConfig {
    /// Desired samples per window; `0` = take it from `ssample`'s second
    /// argument on first call.
    pub target: usize,
    /// Cleaning trigger multiplier γ (paper: 2).
    pub gamma: f64,
    /// First window's threshold.
    pub initial_z: f64,
    /// Cross-window relaxation factor `f` (1 = non-relaxed, paper: 10).
    pub relax_factor: f64,
}

impl Default for SubsetSumOpConfig {
    fn default() -> Self {
        SubsetSumOpConfig { target: 0, gamma: 2.0, initial_z: 0.0, relax_factor: 10.0 }
    }
}

impl SubsetSumOpConfig {
    /// Non-relaxed variant (`f = 1`).
    pub fn non_relaxed(mut self) -> Self {
        self.relax_factor = 1.0;
        self
    }
}

/// The shared state of the subset-sum SFUN family.
#[derive(Debug, Clone)]
pub struct SubsetSumSfunState {
    cfg: SubsetSumOpConfig,
    target: usize,
    /// Current threshold.
    pub z: f64,
    /// Threshold before the most recent adjustment (re-weighting floor).
    pub z_prev: f64,
    /// Small-tuple admission counter.
    admit_counter: f64,
    /// Small-tuple counter of the in-progress cleaning pass.
    clean_counter: f64,
    /// Σ effective weights of the current sample (for bootstrap adjust).
    sample_weight: f64,
    /// Samples with effective weight above `z`.
    big_count: usize,
    /// Accumulators being rebuilt by an in-progress cleaning pass.
    pass_weight: f64,
    pass_big: usize,
    in_pass: bool,
    /// Whether the final (window-border) pass subsamples or keeps all.
    final_started: bool,
    final_subsample: bool,
    /// Tuples admitted this window (Figure 3's metric).
    pub admissions: u64,
    /// Tuples offered this window.
    pub offered: u64,
    /// Cleaning phases this window, including the final one (Figure 4).
    pub cleanings: u32,
    /// Groups kept by the final pass (drives the carry-over).
    pub final_kept: u64,
}

impl SubsetSumSfunState {
    fn new(cfg: SubsetSumOpConfig, z: f64) -> Self {
        SubsetSumSfunState {
            cfg,
            target: cfg.target,
            z,
            z_prev: z,
            admit_counter: 0.0,
            clean_counter: 0.0,
            sample_weight: 0.0,
            big_count: 0,
            pass_weight: 0.0,
            pass_big: 0,
            in_pass: false,
            final_started: false,
            final_subsample: false,
            admissions: 0,
            offered: 0,
            cleanings: 0,
            final_kept: 0,
        }
    }

    /// Fold a finished cleaning pass's accumulators into the live stats.
    fn fold_pass(&mut self) {
        if self.in_pass {
            self.sample_weight = self.pass_weight;
            self.big_count = self.pass_big;
            self.in_pass = false;
        }
    }

    /// The paper's aggressive threshold adjustment toward `target`
    /// retained samples, given the current sample size `s`.
    fn target_z(&self, s: usize) -> f64 {
        let m = self.target.max(1);
        let b = self.big_count.min(s);
        if self.z > 0.0 && b < m {
            self.z * (1.0f64).max((s.saturating_sub(b)) as f64 / (m - b) as f64)
        } else {
            // Bootstrap (z = 0 or everything is "big"): the threshold
            // under which the sample's total effective weight yields ~m
            // expected samples.
            (self.sample_weight / m as f64).max(self.z * 1.05).max(f64::MIN_POSITIVE)
        }
    }

    /// Begin a cleaning pass at sample size `s`: raise the threshold and
    /// reset the pass accumulators.
    fn begin_clean(&mut self, s: usize) {
        self.fold_pass();
        self.z_prev = self.z;
        self.z = self.target_z(s);
        self.clean_counter = 0.0;
        self.pass_weight = 0.0;
        self.pass_big = 0;
        self.in_pass = true;
        self.cleanings += 1;
    }

    /// One keep decision of a cleaning pass (shared by `ssclean_with`
    /// and the subsampling branch of `ssfinal_clean`).
    fn clean_keep(&mut self, weight: f64) -> bool {
        let eff = weight.max(self.z_prev);
        let keep = if eff > self.z {
            true
        } else {
            self.clean_counter += eff;
            if self.clean_counter > self.z {
                self.clean_counter -= self.z;
                true
            } else {
                false
            }
        };
        if keep {
            self.pass_weight += eff.max(self.z);
            self.pass_big += (eff > self.z) as usize;
        }
        keep
    }

    /// Serialize every field (threshold trajectory, pass accumulators,
    /// counters) so a restored state continues the stream byte-exactly.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(136);
        put_u64(&mut out, self.cfg.target as u64);
        put_f64(&mut out, self.cfg.gamma);
        put_f64(&mut out, self.cfg.initial_z);
        put_f64(&mut out, self.cfg.relax_factor);
        put_u64(&mut out, self.target as u64);
        put_f64(&mut out, self.z);
        put_f64(&mut out, self.z_prev);
        put_f64(&mut out, self.admit_counter);
        put_f64(&mut out, self.clean_counter);
        put_f64(&mut out, self.sample_weight);
        put_u64(&mut out, self.big_count as u64);
        put_f64(&mut out, self.pass_weight);
        put_u64(&mut out, self.pass_big as u64);
        out.push(u8::from(self.in_pass));
        out.push(u8::from(self.final_started));
        out.push(u8::from(self.final_subsample));
        put_u64(&mut out, self.admissions);
        put_u64(&mut out, self.offered);
        put_u32(&mut out, self.cleanings);
        put_u64(&mut out, self.final_kept);
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let cfg = SubsetSumOpConfig {
            target: r.take_u64().ok()? as usize,
            gamma: r.take_f64().ok()?,
            initial_z: r.take_f64().ok()?,
            relax_factor: r.take_f64().ok()?,
        };
        let mut st = SubsetSumSfunState::new(cfg, 0.0);
        st.target = r.take_u64().ok()? as usize;
        st.z = r.take_f64().ok()?;
        st.z_prev = r.take_f64().ok()?;
        st.admit_counter = r.take_f64().ok()?;
        st.clean_counter = r.take_f64().ok()?;
        st.sample_weight = r.take_f64().ok()?;
        st.big_count = r.take_u64().ok()? as usize;
        st.pass_weight = r.take_f64().ok()?;
        st.pass_big = r.take_u64().ok()? as usize;
        st.in_pass = r.take_u8().ok()? != 0;
        st.final_started = r.take_u8().ok()? != 0;
        st.final_subsample = r.take_u8().ok()? != 0;
        st.admissions = r.take_u64().ok()?;
        st.offered = r.take_u64().ok()?;
        st.cleanings = r.take_u32().ok()?;
        st.final_kept = r.take_u64().ok()?;
        r.is_empty().then_some(st)
    }

    /// Admission decision for a tuple of the given weight.
    fn admit(&mut self, weight: f64) -> bool {
        self.fold_pass();
        self.offered += 1;
        let admit = if weight > self.z {
            true
        } else {
            self.admit_counter += weight;
            if self.admit_counter > self.z {
                self.admit_counter -= self.z;
                true
            } else {
                false
            }
        };
        if admit {
            self.admissions += 1;
            self.sample_weight += weight.max(self.z);
            self.big_count += (weight > self.z) as usize;
        }
        admit
    }
}

/// Build the subset-sum SFUN library. Each supergroup gets one
/// [`SubsetSumSfunState`]; a supergroup recurring in the next window
/// inherits a threshold via the configured [`ThresholdCarry`].
pub fn library(cfg: SubsetSumOpConfig) -> SfunLibrary {
    let cfg_target = cfg.target;
    SfunLibrary::new("subsetsum_sampling_state", move |prev| {
        let z = match prev.and_then(|p| p.downcast_ref::<SubsetSumSfunState>()) {
            Some(old) => ThresholdCarry { relax_factor: cfg.relax_factor }.next_z(
                old.z,
                old.final_kept as usize,
                old.target.max(1),
            ),
            None => cfg.initial_z,
        };
        let mut st = SubsetSumSfunState::new(cfg, z);
        if let Some(old) = prev.and_then(|p| p.downcast_ref::<SubsetSumSfunState>()) {
            st.target = old.target;
        }
        Box::new(st)
    })
    .with_window_end(|state| {
        if let Some(s) = state.downcast_mut::<SubsetSumSfunState>() {
            s.fold_pass();
            s.final_started = false;
            s.final_kept = 0;
        }
    })
    .with_persist(
        |state| state.downcast_ref::<SubsetSumSfunState>().map(SubsetSumSfunState::encode),
        |bytes| {
            SubsetSumSfunState::decode(bytes).map(|s| Box::new(s) as Box<dyn std::any::Any + Send>)
        },
    )
    .with_telemetry(|state| {
        state.downcast_ref::<SubsetSumSfunState>().map(|s| SfunTelemetry {
            threshold: s.z,
            achieved: s.final_kept,
            target: s.target as u64,
            offered: s.offered,
            cleanings: s.cleanings as u64,
        })
    })
    .register(
        "ssample",
        // Second (target sample size) argument is only needed when the
        // config does not preset it.
        if cfg_target > 0 {
            Signature::range(1, 2, ValueKind::Bool)
        } else {
            Signature::exact(2, ValueKind::Bool)
        },
        |state, argv| {
            let s = state_mut::<SubsetSumSfunState>(state, "ssample")?;
            let len = f64_arg("ssample", argv, 0)?;
            if s.target == 0 {
                let n = u64_arg("ssample", argv, 1)? as usize;
                if n == 0 {
                    return Err("ssample: sample size must be positive".to_string());
                }
                s.target = n;
            }
            Ok(Value::Bool(s.admit(len)))
        },
    )
    .register("ssdo_clean", Signature::exact(1, ValueKind::Bool), |state, argv| {
        let s = state_mut::<SubsetSumSfunState>(state, "ssdo_clean")?;
        s.fold_pass();
        let count = u64_arg("ssdo_clean", argv, 0)? as usize;
        if s.target > 0 && count as f64 > s.cfg.gamma * s.target as f64 {
            s.begin_clean(count);
            Ok(Value::Bool(true))
        } else {
            Ok(Value::Bool(false))
        }
    })
    .register("ssclean_with", Signature::exact(1, ValueKind::Bool), |state, argv| {
        let s = state_mut::<SubsetSumSfunState>(state, "ssclean_with")?;
        let w = f64_arg("ssclean_with", argv, 0)?;
        Ok(Value::Bool(s.clean_keep(w)))
    })
    .register("ssfinal_clean", Signature::exact(2, ValueKind::Bool), |state, argv| {
        let s = state_mut::<SubsetSumSfunState>(state, "ssfinal_clean")?;
        let w = f64_arg("ssfinal_clean", argv, 0)?;
        let count = u64_arg("ssfinal_clean", argv, 1)? as usize;
        if !s.final_started {
            s.final_started = true;
            s.final_subsample = s.target > 0 && count > s.target;
            if s.final_subsample {
                s.begin_clean(count);
            }
        }
        let keep = if s.final_subsample { s.clean_keep(w) } else { true };
        if keep {
            s.final_kept += 1;
        }
        Ok(Value::Bool(keep))
    })
    .register("ssthreshold", Signature::exact(0, ValueKind::Float), |state, _argv| {
        let s = state_mut::<SubsetSumSfunState>(state, "ssthreshold")?;
        Ok(Value::F64(s.z))
    })
    .register("sscleanings", Signature::exact(0, ValueKind::UInt), |state, _argv| {
        let s = state_mut::<SubsetSumSfunState>(state, "sscleanings")?;
        Ok(Value::U64(s.cleanings as u64))
    })
    .register("ssadmissions", Signature::exact(0, ValueKind::UInt), |state, _argv| {
        let s = state_mut::<SubsetSumSfunState>(state, "ssadmissions")?;
        Ok(Value::U64(s.admissions))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(
        lib: &SfunLibrary,
        state: &mut Box<dyn std::any::Any + Send>,
        f: &str,
        args: &[Value],
    ) -> Value {
        lib.function(f).expect(f)(state.as_mut(), args).unwrap()
    }

    #[test]
    fn ssample_admits_large_and_meters_small() {
        let lib = library(SubsetSumOpConfig { initial_z: 100.0, target: 10, ..Default::default() });
        let mut st = lib.init_state(None);
        assert_eq!(
            call(&lib, &mut st, "ssample", &[Value::U64(500), Value::U64(10)]),
            Value::Bool(true)
        );
        // 40+40 = 80 <= 100 -> no; +40 = 120 > 100 -> yes.
        assert_eq!(
            call(&lib, &mut st, "ssample", &[Value::U64(40), Value::U64(10)]),
            Value::Bool(false)
        );
        assert_eq!(
            call(&lib, &mut st, "ssample", &[Value::U64(40), Value::U64(10)]),
            Value::Bool(false)
        );
        assert_eq!(
            call(&lib, &mut st, "ssample", &[Value::U64(40), Value::U64(10)]),
            Value::Bool(true)
        );
    }

    #[test]
    fn lazy_target_from_ssample_arg() {
        let lib = library(SubsetSumOpConfig::default());
        let mut st = lib.init_state(None);
        call(&lib, &mut st, "ssample", &[Value::U64(40), Value::U64(77)]);
        assert_eq!(st.downcast_ref::<SubsetSumSfunState>().unwrap().target, 77);
    }

    #[test]
    fn ssdo_clean_triggers_past_gamma_target_and_raises_z() {
        let lib = library(SubsetSumOpConfig {
            initial_z: 10.0,
            target: 5,
            gamma: 2.0,
            ..Default::default()
        });
        let mut st = lib.init_state(None);
        // Build up some sample weight so the adjustment has data.
        for _ in 0..12 {
            call(&lib, &mut st, "ssample", &[Value::U64(50), Value::U64(5)]);
        }
        assert_eq!(call(&lib, &mut st, "ssdo_clean", &[Value::U64(10)]), Value::Bool(false));
        assert_eq!(call(&lib, &mut st, "ssdo_clean", &[Value::U64(11)]), Value::Bool(true));
        let s = st.downcast_ref::<SubsetSumSfunState>().unwrap();
        assert!(s.z > 10.0, "z must rise: {}", s.z);
        assert_eq!(s.z_prev, 10.0);
        assert_eq!(s.cleanings, 1);
    }

    #[test]
    fn ssclean_with_keeps_bigs_and_meters_smalls() {
        let lib = library(SubsetSumOpConfig {
            initial_z: 10.0,
            target: 2,
            gamma: 2.0,
            ..Default::default()
        });
        let mut st = lib.init_state(None);
        for _ in 0..5 {
            call(&lib, &mut st, "ssample", &[Value::U64(50), Value::U64(2)]);
        }
        assert_eq!(call(&lib, &mut st, "ssdo_clean", &[Value::U64(5)]), Value::Bool(true));
        let z = st.downcast_ref::<SubsetSumSfunState>().unwrap().z;
        // A sample far above the new threshold is always kept.
        assert_eq!(call(&lib, &mut st, "ssclean_with", &[Value::F64(z * 10.0)]), Value::Bool(true));
        // Small samples are metered: some kept, some dropped.
        let mut kept = 0;
        for _ in 0..10 {
            if call(&lib, &mut st, "ssclean_with", &[Value::U64(50)]) == Value::Bool(true) {
                kept += 1;
            }
        }
        assert!(kept > 0 && kept < 10, "metered small keeps: {kept}");
    }

    #[test]
    fn ssfinal_clean_keeps_all_when_under_target() {
        let lib = library(SubsetSumOpConfig { initial_z: 100.0, target: 10, ..Default::default() });
        let mut st = lib.init_state(None);
        lib.on_window_end(st.as_mut());
        for _ in 0..5 {
            assert_eq!(
                call(&lib, &mut st, "ssfinal_clean", &[Value::U64(40), Value::U64(5)]),
                Value::Bool(true)
            );
        }
        assert_eq!(st.downcast_ref::<SubsetSumSfunState>().unwrap().final_kept, 5);
    }

    #[test]
    fn ssfinal_clean_subsamples_when_over_target() {
        let lib = library(SubsetSumOpConfig { initial_z: 10.0, target: 4, ..Default::default() });
        let mut st = lib.init_state(None);
        for _ in 0..20 {
            call(&lib, &mut st, "ssample", &[Value::U64(15), Value::U64(4)]);
        }
        lib.on_window_end(st.as_mut());
        let mut kept = 0;
        for _ in 0..20 {
            if call(&lib, &mut st, "ssfinal_clean", &[Value::U64(15), Value::U64(20)])
                == Value::Bool(true)
            {
                kept += 1;
            }
        }
        assert!(kept < 20, "final pass must subsample: kept {kept}");
        assert!(kept >= 2, "but not drop everything: kept {kept}");
        let s = st.downcast_ref::<SubsetSumSfunState>().unwrap();
        assert_eq!(s.final_kept as usize, kept);
        assert!(s.cleanings >= 1);
    }

    #[test]
    fn carry_over_relaxed_divides_by_f() {
        let lib = library(SubsetSumOpConfig {
            initial_z: 0.0,
            target: 10,
            relax_factor: 10.0,
            ..Default::default()
        });
        let mut old = lib.init_state(None);
        {
            let s = old.downcast_mut::<SubsetSumSfunState>().unwrap();
            s.z = 500.0;
            s.final_kept = 10; // on target
        }
        let next = lib.init_state(Some(old.as_ref()));
        let s = next.downcast_ref::<SubsetSumSfunState>().unwrap();
        assert!((s.z - 50.0).abs() < 1e-9, "z = {}", s.z);
    }

    #[test]
    fn carry_over_non_relaxed_scales_by_undersampling() {
        let lib = library(SubsetSumOpConfig {
            initial_z: 0.0,
            target: 10,
            relax_factor: 1.0,
            ..Default::default()
        });
        let mut old = lib.init_state(None);
        {
            let s = old.downcast_mut::<SubsetSumSfunState>().unwrap();
            s.z = 500.0;
            s.final_kept = 5; // half the target
        }
        let next = lib.init_state(Some(old.as_ref()));
        let s = next.downcast_ref::<SubsetSumSfunState>().unwrap();
        assert!((s.z - 250.0).abs() < 1e-9, "z = {}", s.z);
        // Target is inherited, too.
        assert_eq!(s.target, 10);
    }

    #[test]
    fn ssthreshold_and_counters_are_queryable() {
        let lib = library(SubsetSumOpConfig { initial_z: 42.0, target: 3, ..Default::default() });
        let mut st = lib.init_state(None);
        assert_eq!(call(&lib, &mut st, "ssthreshold", &[]), Value::F64(42.0));
        assert_eq!(call(&lib, &mut st, "sscleanings", &[]), Value::U64(0));
        assert_eq!(call(&lib, &mut st, "ssadmissions", &[]), Value::U64(0));
        call(&lib, &mut st, "ssample", &[Value::U64(100), Value::U64(3)]);
        assert_eq!(call(&lib, &mut st, "ssadmissions", &[]), Value::U64(1));
    }

    #[test]
    fn bad_args_are_clean_errors() {
        let lib = library(SubsetSumOpConfig::default());
        let mut st = lib.init_state(None);
        let f = lib.function("ssample").unwrap();
        assert!(f(st.as_mut(), &[]).unwrap_err().contains("missing argument"));
        let f = lib.function("ssample").unwrap();
        assert!(f(st.as_mut(), &[Value::U64(1), Value::U64(0)])
            .unwrap_err()
            .contains("must be positive"));
    }
}
