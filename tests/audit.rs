//! Dynamic cross-checks of the static audit pass.
//!
//! `sso-analysis` certifies state ceilings without executing anything;
//! these tests run the same queries on real synthetic traffic, with the
//! telemetry registry attached, and assert the *observed* peak state
//! never exceeds the *certified* ceiling — the soundness contract the
//! abstract interpretation claims.

use stream_sampler::analysis::{audit_file, split_statements, AuditOptions};
use stream_sampler::operator::queries::EXAMPLE_QUERIES;
use stream_sampler::operator::{OpError, OperatorMetrics};
use stream_sampler::prelude::*;

/// Peak live groups / supergroups while processing `packets`, sampled
/// after every tuple (stronger than a gauge read at window close).
fn observed_peak(text: &str, packets: &[Packet]) -> (usize, usize) {
    let mut op = compile(text, &Packet::schema(), &PlannerConfig::standard()).unwrap();
    let registry = Registry::new();
    op.set_metrics(OperatorMetrics::register(&registry, ""));
    let (mut peak_groups, mut peak_supergroups) = (0usize, 0usize);
    for p in packets {
        op.process(&p.to_tuple()).unwrap();
        peak_groups = peak_groups.max(op.group_count());
        peak_supergroups = peak_supergroups.max(op.supergroup_count());
    }
    op.finish().unwrap();
    (peak_groups, peak_supergroups)
}

#[test]
fn observed_peak_state_stays_under_certified_ceiling() {
    // Three sampler families over two full windows of research traffic.
    let packets = research_feed(7).take_seconds(130);
    let opts = AuditOptions::default();
    for name in ["subset_sum_query", "reservoir_query", "distinct_sample_query"] {
        let text = EXAMPLE_QUERIES.iter().find(|(n, _)| *n == name).unwrap().1;
        let out = audit_file(text, &opts);
        assert!(!out.has_errors(), "{name}: {:?}", out.diagnostics);
        let s = &out.report.statements[0];
        let certified = s
            .groups_bound
            .finite()
            .unwrap_or_else(|| panic!("{name}: the audit must certify a finite group ceiling"));
        let (peak_groups, peak_supergroups) = observed_peak(text, &packets);
        assert!(
            peak_groups as u64 <= certified,
            "{name}: observed peak {peak_groups} groups exceeds certified ceiling {certified}"
        );
        if let Some(sg) = s.supergroup_cardinality.min(s.rows_per_window).finite() {
            assert!(
                peak_supergroups as u64 <= sg,
                "{name}: observed {peak_supergroups} supergroups exceeds certified {sg}"
            );
        }
    }
}

#[test]
fn example_corpus_file_matches_library_constant() {
    // scripts/check.sh audits examples/queries.sql; this pins the file
    // to sso_core::EXAMPLE_QUERIES so the CI corpus cannot drift.
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/queries.sql"))
            .unwrap();
    let normalize = |s: &str| -> String {
        let no_comments: String = s
            .lines()
            .map(|l| l.split_once("--").map(|(code, _)| code).unwrap_or(l))
            .collect::<Vec<_>>()
            .join(" ");
        no_comments.split_whitespace().collect::<Vec<_>>().join(" ")
    };
    let statements = split_statements(&text);
    assert_eq!(statements.len(), EXAMPLE_QUERIES.len());
    for ((_, stmt), (name, expected)) in statements.iter().zip(EXAMPLE_QUERIES) {
        assert_eq!(normalize(stmt), normalize(expected), "corpus drifted for {name}");
    }
}

#[test]
fn example_corpus_audits_clean_and_bounded() {
    // The same invariant check.sh enforces with --deny-warnings: the
    // whole corpus certifies finite ceilings with no diagnostics under
    // the research envelope at one shard.
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/queries.sql"))
            .unwrap();
    let out = audit_file(&text, &AuditOptions::default());
    assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    assert_eq!(out.report.statements.len(), EXAMPLE_QUERIES.len());
    for s in &out.report.statements {
        assert!(s.state_bytes.is_finite(), "{}: unbounded state", s.name);
    }
    assert!(out.report.total_state_bytes().is_finite());
}

#[test]
fn sizing_hints_preserve_sharded_output() {
    // Pre-sizing from the certificate is a pure capacity hint. Sharded
    // reservoir output is not bit-identical run to run (worker timing
    // interleaves the per-shard sample draws), so compare structure:
    // same windows, full coverage, and every window within the
    // certified ceiling.
    let (_, text) = EXAMPLE_QUERIES.iter().find(|(n, _)| *n == "reservoir_query").unwrap();
    let packets = research_feed(11).take_seconds(130);
    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let parsed = parse_query(text).unwrap();
    let run = |cfg: &RuntimeConfig| {
        let make = |_shard: usize| {
            stream_sampler::query::plan(&parsed, &schema, &config)
                .map_err(|e| OpError::InvalidSpec(e.to_string()))
        };
        run_plan_sharded(Box::new(SelectionNode::pass_all()), make, cfg, packets.clone()).unwrap()
    };
    let plain = run(&RuntimeConfig::new(2));

    let out = audit_file(text, &AuditOptions { shards: 2, ..AuditOptions::default() });
    let bounds = &out.report.statements[0];
    let cfg = RuntimeConfig::new(2).with_routers(2);
    let hints = bounds.sizing_hints(2, cfg.resolved_routers(), cfg.batch_size);
    assert!(hints.groups > 0, "certificate must yield a reservation");
    let sized = run(&cfg.with_sizing(hints));

    assert_eq!(plain.windows.len(), sized.windows.len());
    let ceiling = bounds.groups_bound.finite().unwrap() as usize;
    for (a, b) in plain.windows.iter().zip(&sized.windows) {
        assert_eq!(a.window, b.window, "same window keys in the same order");
        assert!(!b.rows.is_empty());
        assert!(b.rows.len() <= ceiling, "{} rows > certified {ceiling}", b.rows.len());
    }
    assert_eq!(sized.coverage, 1.0, "pre-sizing must not shed or degrade");
}
