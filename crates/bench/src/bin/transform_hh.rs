//! **§8 operator transform** — "the Manku–Motwani heavy hitters
//! algorithm would be best supported by aggregation at the low-level
//! queries."
//!
//! Two plans compute per-window per-destination traffic over the
//! data-center feed:
//!
//! 1. **selection subquery** → every packet is copied up to the
//!    high-level aggregation;
//! 2. **partial aggregation subquery** → the low-level node pre-sums per
//!    (src, dest) each second and forwards only the partials.
//!
//! Both produce byte-exact results; the transform's payoff is the
//! reduced high-level tuple flow and CPU.

use sso_bench::{header, maybe_json};
use sso_core::SamplingOperator;
use sso_gigascope::{run_plan, PartialAggNode, SelectionNode, TwoLevelPlan};
use sso_netgen::datacenter_feed;
use sso_query::{parse_query, plan, PlannerConfig};

#[derive(serde::Serialize)]
struct Row {
    plan: &'static str,
    low_cpu_pct: f64,
    high_cpu_pct: f64,
    high_tuples_in: u64,
    rows_out: u64,
}

fn main() {
    const SECONDS: u64 = 20;
    const WINDOW: u64 = 10;
    let packets = datacenter_feed(0xf8aa).take_seconds(SECONDS);

    let packet_query = || {
        let q = parse_query(&format!(
            "SELECT tb, destIP, sum(len), count(*) FROM PKT \
             GROUP BY time/{WINDOW} as tb, destIP"
        ))
        .unwrap();
        SamplingOperator::new(
            plan(&q, &sso_types::Packet::schema(), &PlannerConfig::empty()).unwrap(),
        )
        .unwrap()
    };
    let partial_query = || {
        let q = parse_query(&format!(
            "SELECT tb, destIP, sum(len), sum(cnt) FROM PKTAGG \
             GROUP BY time/{WINDOW} as tb, destIP"
        ))
        .unwrap();
        SamplingOperator::new(plan(&q, &PartialAggNode::schema(), &PlannerConfig::empty()).unwrap())
            .unwrap()
    };

    let best = |make: &dyn Fn() -> TwoLevelPlan| {
        let mut best: Option<sso_gigascope::RunReport> = None;
        for _ in 0..3 {
            let r = run_plan(make(), packets.iter().copied()).unwrap();
            if best
                .as_ref()
                .map(|b| r.low.busy + r.high.busy < b.low.busy + b.high.busy)
                .unwrap_or(true)
            {
                best = Some(r);
            }
        }
        best.unwrap()
    };

    let sel = best(&|| TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), packet_query()));
    let agg = best(&|| TwoLevelPlan::new(Box::new(PartialAggNode::new(65_536)), partial_query()));

    // Both plans must agree byte-for-byte.
    let totals = |r: &sso_gigascope::RunReport| -> (u64, u64) {
        let bytes =
            r.windows.iter().flat_map(|w| &w.rows).map(|row| row.get(2).as_u64().unwrap()).sum();
        let rows = r.windows.iter().map(|w| w.rows.len() as u64).sum();
        (bytes, rows)
    };
    let (sel_bytes, sel_rows) = totals(&sel);
    let (agg_bytes, agg_rows) = totals(&agg);
    assert_eq!(sel_bytes, agg_bytes, "the transform must be exact");
    assert_eq!(sel_rows, agg_rows);

    let rows = vec![
        Row {
            plan: "selection subquery",
            low_cpu_pct: sel.low_cpu_pct(),
            high_cpu_pct: sel.high_cpu_pct(),
            high_tuples_in: sel.high.tuples_in,
            rows_out: sel_rows,
        },
        Row {
            plan: "partial-agg subquery",
            low_cpu_pct: agg.low_cpu_pct(),
            high_cpu_pct: agg.high_cpu_pct(),
            high_tuples_in: agg.high.tuples_in,
            rows_out: agg_rows,
        },
    ];
    if maybe_json(&rows) {
        return;
    }
    header("§8 operator transform: aggregation at the low-level query");
    println!(
        "{:>22} {:>10} {:>11} {:>14} {:>10}",
        "plan", "low CPU %", "high CPU %", "high tuples in", "rows out"
    );
    for r in &rows {
        println!(
            "{:>22} {:>10.2} {:>11.2} {:>14} {:>10}",
            r.plan, r.low_cpu_pct, r.high_cpu_pct, r.high_tuples_in, r.rows_out
        );
    }
    println!(
        "\nidentical results ({sel_bytes} bytes over {sel_rows} rows), but the \
         partial-aggregation subquery feeds the high level {}x fewer tuples.",
        sel.high.tuples_in / agg.high.tuples_in.max(1)
    );
}
