//! Offline drop-in subset of `serde_json`: pretty and compact string
//! output over the stub `serde::Serialize` trait (which writes JSON
//! directly, so this crate is a thin shim).

use std::fmt;

/// Serialization error. The stub writer is infallible, so this exists
/// only to keep `serde_json`'s `Result` signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Render a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T>(value: &T) -> Result<String, Error>
where
    T: serde::Serialize + ?Sized,
{
    let mut out = String::new();
    value.write_json(&mut out, 0);
    Ok(out)
}

/// Render a value as JSON. The stub always pretty-prints; output is
/// valid JSON either way.
pub fn to_string<T>(value: &T) -> Result<String, Error>
where
    T: serde::Serialize + ?Sized,
{
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    #[derive(serde::Serialize)]
    struct Row {
        n: usize,
        pct: f64,
    }

    #[test]
    fn pretty_prints_vec_of_structs() {
        let rows = vec![Row { n: 1, pct: 50.0 }, Row { n: 2, pct: 0.5 }];
        let json = super::to_string_pretty(&rows).unwrap();
        assert_eq!(
            json,
            "[\n  {\n    \"n\": 1,\n    \"pct\": 50.0\n  },\n  {\n    \"n\": 2,\n    \"pct\": 0.5\n  }\n]"
        );
    }
}
