//! Deterministic 64-bit hashing utilities shared by the sampling
//! algorithms.
//!
//! Min-hash needs a family of independent hash functions; following the
//! standard construction (and the paper's observation, after Broder, that
//! "a substitute for the minimum of N hash functions is the N minimum
//! values of a single hash function"), we provide:
//!
//! * [`splitmix64`] — a strong single 64-bit mixer, used as *the* hash
//!   function for k-minimum-values signatures;
//! * [`SeededHash`] — a seeded variant giving a cheap family of
//!   pairwise-independent-ish functions for tests and ablations.

/// The finalizer of the SplitMix64 generator: a fast, well-mixed 64-bit
/// permutation. Suitable for hashing integer keys (IP addresses, ports)
/// where adversarial collision resistance is not required.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Map a 64-bit hash to the unit interval `[0, 1)`.
#[inline]
pub fn to_unit(h: u64) -> f64 {
    // 53 high bits -> exactly representable double in [0,1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded hash function: member `seed` of a family of 64-bit hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededHash {
    seed: u64,
}

impl SeededHash {
    /// Construct family member `seed`.
    pub fn new(seed: u64) -> Self {
        SeededHash { seed: splitmix64(seed ^ 0xa076_1d64_78bd_642f) }
    }

    /// Hash a 64-bit key.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        splitmix64(key ^ self.seed)
    }

    /// Hash a byte slice (for string keys).
    pub fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let mut acc = self.seed;
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = splitmix64(acc ^ u64::from_le_bytes(word));
        }
        splitmix64(acc ^ bytes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn splitmix_is_a_bijection_on_small_range() {
        // A permutation has no collisions; sample a window of inputs.
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn to_unit_is_in_range_and_monotone_at_extremes() {
        assert_eq!(to_unit(0), 0.0);
        let max = to_unit(u64::MAX);
        assert!(max < 1.0 && max > 0.9999);
        for k in [1u64, 42, 1 << 40, u64::MAX / 2] {
            let u = to_unit(splitmix64(k));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_values_look_uniform() {
        // Mean of u = h(k)/2^64 over many keys should be near 1/2.
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|k| to_unit(splitmix64(k))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn seeded_family_members_differ() {
        let h1 = SeededHash::new(1);
        let h2 = SeededHash::new(2);
        assert_ne!(h1.hash(123), h2.hash(123));
        assert_eq!(h1.hash(123), SeededHash::new(1).hash(123));
    }

    #[test]
    fn byte_hashing_distinguishes_lengths_and_content() {
        let h = SeededHash::new(7);
        assert_ne!(h.hash_bytes(b""), h.hash_bytes(b"\0"));
        assert_ne!(h.hash_bytes(b"abc"), h.hash_bytes(b"abd"));
        assert_ne!(h.hash_bytes(b"abc"), h.hash_bytes(b"abc\0"));
        assert_eq!(h.hash_bytes(b"abc"), h.hash_bytes(b"abc"));
    }
}
