//! The abstract domain of the audit pass.
//!
//! Every plan node is summarized by a small product lattice:
//! cardinalities ([`Card`]: a flat lattice over `u64` with an explicit
//! top), a partition-skew class ([`SkewClass`]), and a deletion-safety
//! verdict ([`DeletionSafety`]). Transfer functions only ever move *up*
//! the lattice (toward `Unbounded`) when information is lost, so every
//! certified bound is sound: the concrete peak state can never exceed
//! it.

use std::fmt;

/// An upper bound on a count (rows, distinct values, bytes).
///
/// `Finite(n)` certifies "at most `n`"; [`Card::Unbounded`] is the
/// lattice top — nothing is known. Arithmetic saturates into
/// `Unbounded` rather than wrapping, keeping every operation monotone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Card {
    /// At most this many.
    Finite(u64),
    /// No static bound.
    Unbounded,
}

impl Card {
    /// Lattice join: the weaker (larger) of two bounds.
    pub fn join(self, other: Card) -> Card {
        match (self, other) {
            (Card::Finite(a), Card::Finite(b)) => Card::Finite(a.max(b)),
            _ => Card::Unbounded,
        }
    }

    /// Pointwise minimum: both bounds hold, so the tighter one does.
    pub fn min(self, other: Card) -> Card {
        match (self, other) {
            (Card::Finite(a), Card::Finite(b)) => Card::Finite(a.min(b)),
            (Card::Finite(a), Card::Unbounded) | (Card::Unbounded, Card::Finite(a)) => {
                Card::Finite(a)
            }
            (Card::Unbounded, Card::Unbounded) => Card::Unbounded,
        }
    }

    /// Scale by a constant factor.
    pub fn times(self, k: u64) -> Card {
        self * Card::Finite(k)
    }

    /// The bound as a number, if finite.
    pub fn finite(self) -> Option<u64> {
        match self {
            Card::Finite(n) => Some(n),
            Card::Unbounded => None,
        }
    }

    /// Is this bound finite?
    pub fn is_finite(self) -> bool {
        matches!(self, Card::Finite(_))
    }

    /// Does this bound exceed `limit` (an unbounded value always does)?
    pub fn exceeds(self, limit: u64) -> bool {
        match self {
            Card::Finite(n) => n > limit,
            Card::Unbounded => true,
        }
    }

    /// JSON rendering: a number, or `null` for unbounded.
    pub fn to_json(self) -> String {
        match self {
            Card::Finite(n) => n.to_string(),
            Card::Unbounded => "null".to_string(),
        }
    }
}

/// Saturating product (e.g. key-cardinality products, bytes =
/// entries × entry size). `Finite(0)` annihilates even `Unbounded`.
impl std::ops::Mul for Card {
    type Output = Card;
    fn mul(self, other: Card) -> Card {
        match (self, other) {
            (Card::Finite(0), _) | (_, Card::Finite(0)) => Card::Finite(0),
            (Card::Finite(a), Card::Finite(b)) => Card::Finite(a.saturating_mul(b)),
            _ => Card::Unbounded,
        }
    }
}

/// Saturating sum.
impl std::ops::Add for Card {
    type Output = Card;
    fn add(self, other: Card) -> Card {
        match (self, other) {
            (Card::Finite(a), Card::Finite(b)) => Card::Finite(a.saturating_add(b)),
            _ => Card::Unbounded,
        }
    }
}

impl fmt::Display for Card {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Card::Finite(n) => write!(f, "{n}"),
            Card::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// How the router's partition key spreads load across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkewClass {
    /// Empty partition key: the router deals batches round-robin, which
    /// is balanced by construction.
    RoundRobin,
    /// Partition-key cardinality comfortably exceeds the shard count.
    Spread,
    /// Finite cardinality below the shard count: at least one shard is
    /// statically guaranteed to idle while others carry multiple keys.
    Narrow {
        /// The partition key's distinct-value bound.
        cardinality: u64,
    },
    /// A constant partition key: every tuple lands on one shard.
    Constant,
}

impl SkewClass {
    /// Classify a partition-key cardinality against a shard count.
    pub fn classify(partition_card: Card, shards: usize) -> SkewClass {
        match partition_card {
            Card::Finite(1) => SkewClass::Constant,
            Card::Finite(c) if c < shards as u64 => SkewClass::Narrow { cardinality: c },
            _ => SkewClass::Spread,
        }
    }

    /// Is this class a W202 hazard at the given shard count?
    pub fn is_hazard(self) -> bool {
        matches!(self, SkewClass::Narrow { .. } | SkewClass::Constant)
    }

    /// Stable label used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SkewClass::RoundRobin => "round-robin",
            SkewClass::Spread => "spread",
            SkewClass::Narrow { .. } => "narrow",
            SkewClass::Constant => "constant",
        }
    }
}

impl fmt::Display for SkewClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkewClass::Narrow { cardinality } => write!(f, "narrow (cardinality {cardinality})"),
            other => write!(f, "{}", other.as_str()),
        }
    }
}

/// Whether the plan's state can absorb retractions (turnstile-stream
/// deletions) without corrupting the sample distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletionSafety {
    /// Deletions re-derive cleanly (hash-threshold samplers, additive
    /// exact aggregates).
    Safe,
    /// No retraction semantics: once a tuple influenced the state it
    /// cannot be unwound.
    Unsafe(&'static str),
}

impl DeletionSafety {
    /// Is this plan deletion-safe?
    pub fn is_safe(self) -> bool {
        matches!(self, DeletionSafety::Safe)
    }
}

/// The abstract state flowing along a plan edge: what the next operator
/// sees as its input.
#[derive(Debug, Clone)]
pub struct AbstractState {
    /// Peak input rate in rows/second.
    pub rows_per_sec: Card,
    /// Per-column distinct-value bounds, keyed by schema column name.
    /// A column absent from the map is unbounded.
    pub columns: Vec<(String, Card)>,
}

impl AbstractState {
    /// The cardinality bound of a named column (absent = unbounded).
    pub fn column_card(&self, name: &str) -> Card {
        self.columns.iter().find(|(n, _)| n == name).map(|&(_, c)| c).unwrap_or(Card::Unbounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_lattice_ops() {
        let f = Card::Finite;
        assert_eq!(f(3).join(f(5)), f(5));
        assert_eq!(f(3).join(Card::Unbounded), Card::Unbounded);
        assert_eq!(f(3).min(Card::Unbounded), f(3));
        assert_eq!(Card::Unbounded.min(Card::Unbounded), Card::Unbounded);
        assert_eq!(f(u64::MAX) * f(2), f(u64::MAX), "mul saturates");
        assert_eq!(f(0) * Card::Unbounded, f(0), "zero annihilates even top");
        assert_eq!(Card::Unbounded * f(2), Card::Unbounded);
        assert_eq!(f(7) + f(1), f(8));
        assert!(Card::Unbounded.exceeds(u64::MAX));
        assert!(!f(10).exceeds(10));
        assert!(f(11).exceeds(10));
    }

    #[test]
    fn skew_classification() {
        assert_eq!(SkewClass::classify(Card::Finite(1), 4), SkewClass::Constant);
        assert_eq!(SkewClass::classify(Card::Finite(3), 4), SkewClass::Narrow { cardinality: 3 });
        assert_eq!(SkewClass::classify(Card::Finite(4), 4), SkewClass::Spread);
        assert_eq!(SkewClass::classify(Card::Unbounded, 4), SkewClass::Spread);
        assert!(SkewClass::Constant.is_hazard());
        assert!(!SkewClass::RoundRobin.is_hazard());
    }
}
