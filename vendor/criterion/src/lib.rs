//! Offline drop-in subset of `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion::benchmark_group`, `Throughput::Elements`,
//! `sample_size`, `bench_function`, `BenchmarkId::from_parameter`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros — over a plain wall-clock sampler. No statistics engine, no
//! HTML reports: each benchmark warms up briefly, takes `sample_size`
//! timed samples, and prints min/median plus derived throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Read the benchmark-name filter from the command line (any
    /// non-flag argument, as upstream does).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
    }
}

/// Units processed per iteration, for derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (tuples, packets, keys) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Name a benchmark after a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// `function_name/parameter` form.
    pub fn new(function: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{function}/{param}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work size used to derive throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full_name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), budget: self.sample_size };
        f(&mut bencher);
        report(&full_name, &bencher.samples, self.throughput);
        self
    }

    /// End the group (upstream flushes reports here; the stub prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Hands the benchmark routine to the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `routine` over `sample_size` samples (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mut line = format!("{name}: min {}  median {}", fmt_duration(min), fmt_duration(median));
    match throughput {
        Some(Throughput::Elements(n)) if !median.is_zero() => {
            let rate = n as f64 / median.as_secs_f64();
            line.push_str(&format!("  ({} elem/s)", fmt_rate(rate)));
        }
        Some(Throughput::Bytes(n)) if !median.is_zero() => {
            let rate = n as f64 / median.as_secs_f64();
            line.push_str(&format!("  ({} B/s)", fmt_rate(rate)));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Bundle benchmark functions under one group name (same shape as
/// upstream's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("sum", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
