//! Report rendering for `sso optimize`: one-line-per-object JSON (the
//! `--json` machine interface, schema-pinned in check.sh) and a human
//! summary.

use crate::optimize::OptimizeOutcome;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_or_null(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".to_string(),
    }
}

fn nums_1based(indices: &[usize]) -> String {
    let v: Vec<String> = indices.iter().map(|i| (i + 1).to_string()).collect();
    format!("[{}]", v.join(","))
}

/// Render the whole outcome as one JSON object:
/// `{"report":{...},"diagnostics":[...]}`.
pub fn outcome_to_json(o: &OptimizeOutcome) -> String {
    let clusters: Vec<String> = o
        .clusters
        .iter()
        .map(|c| {
            let groups: Vec<String> = c
                .groups
                .iter()
                .map(|g| {
                    format!(
                        "{{\"statements\":{},\"hash\":\"{:016x}\",\"canonical\":\"{}\",\
                         \"mergeable\":{},\"blocked\":{}}}",
                        nums_1based(&g.statements),
                        g.hash,
                        esc(&g.canonical),
                        g.mergeable,
                        str_or_null(&g.blocked)
                    )
                })
                .collect();
            let prefilter = if c.prefilter.is_empty() {
                "null".to_string()
            } else {
                let texts: Vec<String> =
                    c.prefilter.iter().map(|p| format!("\"{}\"", esc(&p.to_string()))).collect();
                format!("[{}]", texts.join(","))
            };
            format!(
                "{{\"stream\":\"{}\",\"members\":{},\"shared_prefilter\":{},\"groups\":[{}]}}",
                esc(&c.stream),
                nums_1based(&c.members),
                prefilter,
                groups.join(",")
            )
        })
        .collect();

    let steps: Vec<String> = o
        .certificate
        .steps
        .iter()
        .map(|s| {
            let before: Vec<String> = s.before.iter().map(|h| format!("\"{h:016x}\"")).collect();
            let conds: Vec<String> =
                s.side_conditions.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!(
                "{{\"rule\":\"{}\",\"statements\":{},\"before\":[{}],\"after\":\"{:016x}\",\
                 \"side_conditions\":[{}]}}",
                esc(&s.rule),
                nums_1based(&s.statements),
                before.join(","),
                s.after,
                conds.join(",")
            )
        })
        .collect();

    let shared: Vec<String> = o
        .shared
        .iter()
        .map(|p| {
            let groups: Vec<String> = p
                .groups
                .iter()
                .map(|g| {
                    let consumers: Vec<String> =
                        g.consumers.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                    format!(
                        "{{\"representative\":{},\"consumers\":[{}]}}",
                        g.representative + 1,
                        consumers.join(",")
                    )
                })
                .collect();
            let prefilter = match &p.prefilter {
                Some(ast) => format!("\"{}\"", esc(&ast.to_string())),
                None => "null".to_string(),
            };
            format!(
                "{{\"stream\":\"{}\",\"prefilter\":{},\"groups\":[{}]}}",
                esc(&p.stream),
                prefilter,
                groups.join(",")
            )
        })
        .collect();

    let diags: Vec<String> = o.diagnostics.iter().map(|d| d.to_json()).collect();

    format!(
        "{{\"report\":{{\"statements\":{},\"skipped\":{},\"clusters\":[{}],\
         \"certificate\":{{\"checksum\":\"{:016x}\",\"steps\":[{}]}},\"shared\":[{}],\
         \"reaudit\":{{\"ok\":{},\"total_state_bytes\":{},\"statements\":{}}}}},\
         \"diagnostics\":[{}]}}",
        o.statements,
        nums_1based(&o.skipped),
        clusters.join(","),
        o.certificate.checksum,
        steps.join(","),
        shared.join(","),
        o.reaudit.ok,
        o.reaudit.total_state_bytes.to_json(),
        o.reaudit.statements,
        diags.join(",")
    )
}

/// Human summary for the default (non-JSON) output mode.
pub fn render_summary(o: &OptimizeOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "optimized {} statement{} in {} cluster{}\n",
        o.statements,
        if o.statements == 1 { "" } else { "s" },
        o.clusters.len(),
        if o.clusters.len() == 1 { "" } else { "s" },
    ));
    for c in &o.clusters {
        let members: Vec<String> = c.members.iter().map(|i| (i + 1).to_string()).collect();
        out.push_str(&format!("  {} <- statements {}\n", c.stream, members.join(", ")));
        if !c.prefilter.is_empty() {
            let texts: Vec<String> = c.prefilter.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!("    shared prefilter: {}\n", texts.join(" AND ")));
        }
        for g in &c.groups {
            if g.statements.len() >= 2 {
                let stmts: Vec<String> = g.statements.iter().map(|i| (i + 1).to_string()).collect();
                let status = if g.mergeable { "deduplicated" } else { "blocked (W303)" };
                out.push_str(&format!(
                    "    identical plans: statements {} [{status}]\n",
                    stmts.join(", ")
                ));
            }
        }
    }
    if o.certificate.is_empty() {
        out.push_str("no rewrites applied; certificate is empty\n");
    } else {
        out.push_str(&format!(
            "certificate: {} step{}, checksum {:016x}\n",
            o.certificate.steps.len(),
            if o.certificate.steps.len() == 1 { "" } else { "s" },
            o.certificate.checksum
        ));
        for s in &o.certificate.steps {
            out.push_str(&format!(
                "  {} on {} ({} side condition{} discharged)\n",
                s.rule,
                s.statements.iter().map(|i| (i + 1).to_string()).collect::<Vec<_>>().join(", "),
                s.side_conditions.len(),
                if s.side_conditions.len() == 1 { "" } else { "s" }
            ));
        }
    }
    out.push_str(&format!(
        "re-audit: {} ({} statement{}, total state {})\n",
        if o.reaudit.ok { "ok" } else { "FAILED" },
        o.reaudit.statements,
        if o.reaudit.statements == 1 { "" } else { "s" },
        o.reaudit.total_state_bytes
    ));
    out
}
