//! The merge-on-read collector: folds every lane's events into a
//! stage-attribution table and per-window end-to-end latency
//! histograms (reusing the `sso-obs` power-of-two buckets).
//!
//! End-to-end window latency is measured causally: the `Emit` stamp's
//! end minus the earliest `Process` start carrying the same window
//! ordinal — i.e. from the first tuple of the window entering a shard
//! operator to the merged window leaving the runtime. Windows whose
//! `Process` stamps were evicted by ring wrap-around are skipped, never
//! guessed.

use sso_obs::{HistSnapshot, Registry};

use crate::dump::Dump;
use crate::event::{Stage, SHARD_NONE, STAGES, WINDOW_NONE};

/// One row of the stage-attribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTotal {
    pub stage: Stage,
    /// Events observed for this stage.
    pub events: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Share of the summed duration across all stages, percent.
    pub share_pct: f64,
}

/// The folded view of one profiled run (or one decoded dump).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Observed stages in causal order.
    pub stages: Vec<StageTotal>,
    /// Sum of every stage's `total_ns`.
    pub total_ns: u64,
    /// End-to-end window latency distribution.
    pub windows: HistSnapshot,
    /// Windows with a measurable end-to-end latency.
    pub window_count: u64,
    /// The stage with the largest total.
    pub dominant: Option<Stage>,
    /// Router-side share (`ingest + route + ring_wait`), percent —
    /// the ROADMAP-item-1 number.
    pub router_share_pct: f64,
    /// Events lost to ring wrap-around (attribution is over the rest).
    pub dropped_events: u64,
}

/// `(window ordinal, emit end, earliest process start)` pairing.
fn window_latencies(dump: &Dump) -> Vec<u64> {
    let mut first_process: Vec<(u32, u64)> = Vec::new();
    let mut emits: Vec<(u32, u64)> = Vec::new();
    for lane in &dump.lanes {
        for e in &lane.events {
            if e.window == WINDOW_NONE {
                continue;
            }
            match e.stage {
                Stage::Process => match first_process.iter_mut().find(|(w, _)| *w == e.window) {
                    Some((_, t)) => *t = (*t).min(e.t_ns),
                    None => first_process.push((e.window, e.t_ns)),
                },
                Stage::Emit => emits.push((e.window, e.end_ns())),
                _ => {}
            }
        }
    }
    let mut out = Vec::with_capacity(emits.len());
    for (w, end) in emits {
        if let Some((_, start)) = first_process.iter().find(|(pw, _)| *pw == w) {
            out.push(end.saturating_sub(*start));
        }
    }
    out
}

impl ProfileReport {
    /// Fold a dump (live or decoded from disk).
    pub fn from_dump(dump: &Dump) -> ProfileReport {
        let mut events = [0u64; STAGES.len()];
        let mut totals = [0u64; STAGES.len()];
        for lane in &dump.lanes {
            for e in &lane.events {
                let i = e.stage as usize;
                events[i] += 1;
                totals[i] = totals[i].saturating_add(e.dur_ns);
            }
        }
        let total_ns: u64 = totals.iter().fold(0u64, |a, &b| a.saturating_add(b));
        let pct = |ns: u64| if total_ns == 0 { 0.0 } else { 100.0 * ns as f64 / total_ns as f64 };

        let stages: Vec<StageTotal> = STAGES
            .iter()
            .filter(|&&s| events[s as usize] > 0)
            .map(|&s| StageTotal {
                stage: s,
                events: events[s as usize],
                total_ns: totals[s as usize],
                share_pct: pct(totals[s as usize]),
            })
            .collect();
        let dominant = stages.iter().max_by_key(|t| t.total_ns).map(|t| t.stage);
        let router_ns = totals[Stage::Ingest as usize]
            .saturating_add(totals[Stage::Route as usize])
            .saturating_add(totals[Stage::RingWait as usize]);

        let mut windows = HistSnapshot::default();
        for lat in window_latencies(dump) {
            windows.record(lat);
        }
        let window_count = windows.count;

        ProfileReport {
            stages,
            total_ns,
            windows,
            window_count,
            dominant,
            router_share_pct: pct(router_ns),
            dropped_events: dump.dropped(),
        }
    }

    /// The attribution table as printable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stage attribution ({} across {} events):\n",
            fmt_ns(self.total_ns),
            self.stages.iter().map(|s| s.events).sum::<u64>()
        ));
        out.push_str(&format!(
            "  {:<12} {:>8} {:>10} {:>7}\n",
            "STAGE", "EVENTS", "TOTAL", "SHARE"
        ));
        for s in &self.stages {
            let mark = if Some(s.stage) == self.dominant { "  << dominant" } else { "" };
            out.push_str(&format!(
                "  {:<12} {:>8} {:>10} {:>6.1}%{}\n",
                s.stage.name(),
                s.events,
                fmt_ns(s.total_ns),
                s.share_pct,
                mark
            ));
        }
        out.push_str(&format!(
            "router share (ingest+route+ring_wait): {:.1}%\n",
            self.router_share_pct
        ));
        if self.window_count > 0 {
            out.push_str(&format!(
                "window latency: p50 {}  p99 {}  mean {}  ({} windows)\n",
                fmt_ns(self.windows.quantile(0.50)),
                fmt_ns(self.windows.quantile(0.99)),
                fmt_ns(self.windows.mean() as u64),
                self.window_count
            ));
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "note: {} events lost to ring wrap-around (attribution covers the rest)\n",
                self.dropped_events
            ));
        }
        out
    }
}

/// `prof.stage.<name>_ns` histogram name for a stage.
fn stage_hist_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Ingest => "prof.stage.ingest_ns",
        Stage::Route => "prof.stage.route_ns",
        Stage::RingWait => "prof.stage.ring_wait_ns",
        Stage::Process => "prof.stage.process_ns",
        Stage::Flush => "prof.stage.flush_ns",
        Stage::BarrierWait => "prof.stage.barrier_wait_ns",
        Stage::Merge => "prof.stage.merge_ns",
        Stage::Emit => "prof.stage.emit_ns",
        Stage::Low => "prof.stage.low_ns",
    }
}

/// Register `prof.*` metrics from a dump into a registry: per-stage
/// duration histograms (worker stages labeled `shard=N`), flat
/// per-stage totals for attribution readers, and the end-to-end
/// `prof.window_ns` latency histogram.
pub fn fold_into(dump: &Dump, registry: &Registry) {
    let mut stage_ns = [0u64; STAGES.len()];
    let mut stage_events = [0u64; STAGES.len()];
    // Each registry handle is a fresh cell — cache one per
    // (stage, shard) instead of registering per event.
    let mut hists: Vec<((Stage, u16), sso_obs::Histogram)> = Vec::new();
    for lane in &dump.lanes {
        for e in &lane.events {
            let key = (e.stage, e.shard);
            let h = match hists.iter().position(|(k, _)| *k == key) {
                Some(i) => &hists[i].1,
                None => {
                    let label = if e.shard == SHARD_NONE {
                        String::new()
                    } else {
                        format!("shard={}", e.shard)
                    };
                    hists.push((key, registry.histogram_labeled(stage_hist_name(e.stage), label)));
                    &hists.last().expect("just pushed").1
                }
            };
            h.record(e.dur_ns);
            stage_ns[e.stage as usize] = stage_ns[e.stage as usize].saturating_add(e.dur_ns);
            stage_events[e.stage as usize] += 1;
        }
    }
    for &s in STAGES.iter() {
        if stage_events[s as usize] == 0 {
            continue;
        }
        registry
            .counter_labeled("prof.stage_ns", format!("stage={}", s.name()))
            .add(stage_ns[s as usize]);
        registry
            .counter_labeled("prof.stage_events", format!("stage={}", s.name()))
            .add(stage_events[s as usize]);
    }
    let win = registry.histogram("prof.window_ns");
    for lat in window_latencies(dump) {
        win.record(lat);
    }
    let dropped = dump.dropped();
    if dropped > 0 {
        registry.counter("prof.dropped_events").add(dropped);
    }
}

/// Render nanoseconds at a human scale.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::LaneDump;
    use crate::event::Event;
    use crate::lane::LaneKind;
    use crate::profiler::DumpReason;

    fn dump() -> Dump {
        Dump {
            reason: DumpReason::Manual,
            lanes: vec![
                LaneDump {
                    kind: LaneKind::Router,
                    index: 0,
                    dropped: 0,
                    events: vec![
                        Event::new(Stage::Ingest, 0, 600).aux(10),
                        Event::new(Stage::Route, 600, 100).shard(0).batch(0).aux(10),
                        Event::new(Stage::RingWait, 700, 300).shard(0).batch(1),
                    ],
                },
                LaneDump {
                    kind: LaneKind::Worker,
                    index: 0,
                    dropped: 2,
                    events: vec![
                        Event::new(Stage::Process, 1_000, 200).shard(0).window(0).batch(0).aux(10),
                        Event::new(Stage::Process, 1_500, 100).shard(0).window(0).batch(1).aux(5),
                    ],
                },
                LaneDump {
                    kind: LaneKind::Merge,
                    index: 0,
                    dropped: 0,
                    events: vec![
                        Event::new(Stage::Merge, 2_000, 50).window(0),
                        Event::new(Stage::Emit, 2_050, 10).window(0).aux(3),
                    ],
                },
            ],
        }
    }

    #[test]
    fn attribution_totals_and_shares() {
        let r = ProfileReport::from_dump(&dump());
        let total = 600 + 100 + 300 + 200 + 100 + 50 + 10;
        assert_eq!(r.total_ns, total);
        assert_eq!(r.dominant, Some(Stage::Ingest));
        // Router = ingest 600 + route 100 + ring_wait 300 of 1360.
        assert!((r.router_share_pct - 100.0 * 1000.0 / total as f64).abs() < 1e-9);
        assert_eq!(r.dropped_events, 2);
        let share_sum: f64 = r.stages.iter().map(|s| s.share_pct).sum();
        assert!((share_sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn window_latency_is_emit_end_minus_first_process() {
        let r = ProfileReport::from_dump(&dump());
        assert_eq!(r.window_count, 1);
        // emit end 2060 - first process start 1000 = 1060 → bucket [1024, 2048).
        assert_eq!(r.windows.sum, 1060);
        assert_eq!(r.windows.quantile(0.5), 2048);
    }

    #[test]
    fn fold_registers_prof_metrics() {
        let reg = Registry::new();
        fold_into(&dump(), &reg);
        let snap = reg.snapshot();
        assert!(snap.get_labeled("prof.stage.process_ns", "shard=0").is_some());
        assert_eq!(snap.get_labeled("prof.stage_ns", "stage=ingest").unwrap().scalar(), 600.0);
        assert_eq!(snap.get_labeled("prof.stage_events", "stage=process").unwrap().scalar(), 2.0);
        assert!(snap.get("prof.window_ns").is_some());
        assert_eq!(snap.get("prof.dropped_events").unwrap().scalar(), 2.0);
    }

    #[test]
    fn render_names_dominant_stage() {
        let r = ProfileReport::from_dump(&dump());
        let text = r.render();
        assert!(text.contains("ingest"));
        assert!(text.contains("<< dominant"));
        assert!(text.contains("router share"));
    }
}
