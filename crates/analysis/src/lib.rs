//! # sso-analysis
//!
//! A static audit pass over compiled query plans: abstract
//! interpretation that certifies, *without executing anything*,
//!
//! * a **memory ceiling** per query — the paper's closed-form state
//!   bounds (reservoir O(T·n), subset-sum O(γ·N), lossy counting
//!   O((1/ε)·log εN), distinct/KMV O(k)) evaluated symbolically against
//!   declared feed envelopes ([`sso_netgen::profile`]),
//! * a **router-skew verdict** — whether the sharded runtime's
//!   partition key can actually reach the requested shard count,
//! * **degradation behavior** — whether load-shed re-weighting is sound
//!   (W204) and whether the state survives turnstile deletions (W205).
//!
//! The pass walks a query file the way the runtime wires it
//! (consecutive statements cascade), carries an abstract state along
//! each edge, and emits a [`BoundsReport`] — a machine-readable
//! certificate the CLI prints as JSON, CI diffs against golden
//! snapshots, and the runtime converts into [`sso_core::SizingHints`]
//! to pre-size group tables and rings.
//!
//! Soundness contract: every transfer function only loses precision
//! upward (toward `Unbounded`), so a `Finite(n)` anywhere in the report
//! is a true upper bound on the concrete peak — the dynamic
//! cross-check tests in the workspace root assert observed peak live
//! groups ≤ certified ceiling on real traffic.
//!
//! The crate's `clippy.toml` bans every execution path (operator
//! instantiation, trace generators, plan runners, threads, clocks):
//! auditing a corpus is pure computation over the plan and must stay
//! fast enough for a pre-commit hook.

pub mod audit;
pub mod bounds;
pub mod domain;
pub mod report;

pub use audit::{audit_file, split_statements, AuditOptions, AuditOutcome};
pub use bounds::{detect_sampler, SamplerInfo, SamplerKind};
pub use domain::{AbstractState, Card, DeletionSafety, SkewClass};
pub use report::{BoundsReport, StatementBounds};

#[cfg(test)]
mod tests {
    use super::*;
    use sso_core::queries::EXAMPLE_QUERIES;
    use sso_query::diag::Code;

    fn audit_example(idx: usize, opts: &AuditOptions) -> AuditOutcome {
        let (name, text) = EXAMPLE_QUERIES[idx];
        let out = audit_file(text, opts);
        assert!(!out.has_errors(), "{name} should audit without errors");
        assert_eq!(out.report.statements.len(), 1, "{name}");
        out
    }

    #[test]
    fn every_mergeable_example_certifies_a_finite_ceiling() {
        let opts = AuditOptions::default();
        for (idx, (name, _)) in EXAMPLE_QUERIES.iter().enumerate() {
            let out = audit_example(idx, &opts);
            let s = &out.report.statements[0];
            if s.mergeable {
                assert!(
                    s.state_bytes.is_finite(),
                    "{name}: mergeable example must certify a finite ceiling, got {:?}",
                    s.state_bytes
                );
            }
        }
    }

    #[test]
    fn golden_bounds_for_every_example_query() {
        // The certified numbers under the research envelope
        // (25k rows/s). These are load-bearing: a planner or library
        // change that silently weakens a bound must show up here.
        let opts = AuditOptions::default();
        let golden: &[(&str, &str, Option<u64>, Option<u64>)] = &[
            // (name, sampler label, groups_bound, per-supergroup bound)
            ("total_sum_query", "exact", Some(1), None),
            ("subset_sum_query", "subset-sum(N=100)", Some(201), Some(201)),
            ("basic_subset_sum_query", "basic-subset-sum(N=1)", Some(1_500_000), None),
            ("heavy_hitters_query", "lossy-count(w=100)", Some(1062), Some(1062)),
            ("minhash_query", "kmv(k=10)", Some(45_056), Some(11)),
            ("distinct_sample_query", "distinct(c=256)", Some(257), Some(257)),
            ("reservoir_query", "reservoir(n=25)", Some(626), Some(626)),
        ];
        for (idx, &(name, sampler, groups, per_sg)) in golden.iter().enumerate() {
            assert_eq!(EXAMPLE_QUERIES[idx].0, name, "example order changed");
            let out = audit_example(idx, &opts);
            let s = &out.report.statements[0];
            assert_eq!(s.sampler.label(), sampler, "{name}");
            assert_eq!(s.groups_bound.finite(), groups, "{name} groups_bound");
            assert_eq!(s.per_supergroup_bound.finite(), per_sg, "{name} per-supergroup");
            assert_eq!(s.window_secs, Some(60), "{name} window");
            assert_eq!(s.rows_per_sec.finite(), Some(25_000), "{name} rate");
        }
    }

    #[test]
    fn report_json_snapshot_is_stable() {
        // One full-report snapshot so schema drift (renamed/removed
        // keys) fails loudly; check.sh validates the same shape.
        let out = audit_file(EXAMPLE_QUERIES[6].1, &AuditOptions::default());
        let json = out.report.to_json();
        for key in [
            "\"feed\":\"research\"",
            "\"shards\":1",
            "\"budget\":null",
            "\"total_state_bytes\":",
            "\"name\":\"stmt0\"",
            "\"stream\":\"TCP\"",
            "\"sampler\":\"reservoir(n=25)\"",
            "\"window_secs\":60",
            "\"rows_per_sec\":25000",
            "\"rows_per_window\":1500000",
            "\"key_cardinality\":",
            "\"supergroup_cardinality\":1",
            "\"per_supergroup_bound\":626",
            "\"groups_bound\":626",
            "\"group_entry_bytes\":",
            "\"supergroup_entry_bytes\":",
            "\"state_bytes\":",
            "\"skew\":",
            "\"mergeable\":true",
            "\"deletion_safe\":false",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn unbounded_group_key_without_sampler_raises_w201() {
        // No window, unbounded key, no sampling clause: nothing caps
        // the group table.
        let out =
            audit_file("SELECT uts, count(*) FROM PKT GROUP BY uts", &AuditOptions::default());
        assert!(!out.has_errors());
        let w201: Vec<_> = out.diagnostics.iter().filter(|d| d.code == Code::W201).collect();
        assert_eq!(w201.len(), 1, "diags: {:?}", out.diagnostics);
        assert!(!out.report.statements[0].state_bytes.is_finite());
    }

    #[test]
    fn narrow_partition_key_raises_w202() {
        // proto has cardinality 2 under every envelope; 8 shards can
        // never all be reached.
        let out = audit_file(
            "SELECT tb, proto, sum(len) FROM PKT GROUP BY time/60 as tb, proto",
            &AuditOptions { shards: 8, ..AuditOptions::default() },
        );
        assert!(out.diagnostics.iter().any(|d| d.code == Code::W202), "{:?}", out.diagnostics);
        assert_eq!(out.report.statements[0].skew.as_str(), "narrow");
    }

    #[test]
    fn w202_verdict_is_stated_per_router_lane() {
        // Same narrow key, multi-router runtime: every lane hashes the
        // key identically, so the verdict names the lane count.
        let query = "SELECT tb, proto, sum(len) FROM PKT GROUP BY time/60 as tb, proto";
        let out = audit_file(query, &AuditOptions { shards: 8, routers: 2, ..Default::default() });
        let w202 = out.diagnostics.iter().find(|d| d.code == Code::W202).expect("W202 fires");
        assert!(
            w202.message.contains("each of 2 router lanes"),
            "per-router verdict missing: {}",
            w202.message
        );
        // Single-router audits keep the original phrasing.
        let out = audit_file(query, &AuditOptions { shards: 8, ..Default::default() });
        let w202 = out.diagnostics.iter().find(|d| d.code == Code::W202).expect("W202 fires");
        assert!(!w202.message.contains("router lanes"), "{}", w202.message);
    }

    #[test]
    fn non_mergeable_plan_with_shards_raises_w203() {
        // Distinct sampling is not shard-mergeable.
        let out = audit_file(
            EXAMPLE_QUERIES[5].1,
            &AuditOptions { shards: 4, ..AuditOptions::default() },
        );
        assert!(out.diagnostics.iter().any(|d| d.code == Code::W203), "{:?}", out.diagnostics);
        assert!(!out.report.statements[0].mergeable);
        // At one shard the same plan is silent.
        let out = audit_file(EXAMPLE_QUERIES[5].1, &AuditOptions::default());
        assert!(out.diagnostics.iter().all(|d| d.code != Code::W203));
    }

    #[test]
    fn unprovable_subset_sum_weight_raises_w204() {
        let out = audit_file(
            "SELECT tb, srcIP, sum(len) FROM PKT WHERE ssample(len - 1500, 10) = TRUE \
             GROUP BY time/60 as tb, srcIP",
            &AuditOptions::default(),
        );
        assert!(out.diagnostics.iter().any(|d| d.code == Code::W204), "{:?}", out.diagnostics);
        // A plain column weight is provably non-negative: no W204.
        let out = audit_file(EXAMPLE_QUERIES[1].1, &AuditOptions::default());
        assert!(out.diagnostics.iter().all(|d| d.code != Code::W204));
    }

    #[test]
    fn deletion_unsafe_sampler_raises_w205_only_under_turnstile() {
        let turnstile = AuditOptions { turnstile: true, ..AuditOptions::default() };
        let out = audit_file(EXAMPLE_QUERIES[6].1, &turnstile);
        assert!(out.diagnostics.iter().any(|d| d.code == Code::W205), "{:?}", out.diagnostics);
        let out = audit_file(EXAMPLE_QUERIES[6].1, &AuditOptions::default());
        assert!(out.diagnostics.iter().all(|d| d.code != Code::W205));
        // Distinct sampling re-derives after deletions: safe even
        // under --turnstile.
        let out = audit_file(EXAMPLE_QUERIES[5].1, &turnstile);
        assert!(out.diagnostics.iter().all(|d| d.code != Code::W205));
    }

    #[test]
    fn tiny_state_budget_raises_w206() {
        let page = sso_core::snapshot::PAGE_BYTES as u64;
        // One page split across 4 shards is under the two-page floor.
        let tiny = AuditOptions { shards: 4, state_budget: Some(page), ..AuditOptions::default() };
        let out = audit_file(EXAMPLE_QUERIES[1].1, &tiny);
        assert!(out.diagnostics.iter().any(|d| d.code == Code::W206), "{:?}", out.diagnostics);
        // Two pages per shard is exactly the floor: silent.
        let ok =
            AuditOptions { shards: 4, state_budget: Some(8 * page), ..AuditOptions::default() };
        let out = audit_file(EXAMPLE_QUERIES[1].1, &ok);
        assert!(out.diagnostics.iter().all(|d| d.code != Code::W206));
        // No budget, no lint.
        let out = audit_file(EXAMPLE_QUERIES[1].1, &AuditOptions::default());
        assert!(out.diagnostics.iter().all(|d| d.code != Code::W206));
    }

    #[test]
    fn budget_verdict() {
        let over = AuditOptions { budget: Some(1), ..AuditOptions::default() };
        let out = audit_file(EXAMPLE_QUERIES[6].1, &over);
        assert!(out.budget_exceeded());
        let under = AuditOptions { budget: Some(u64::MAX), ..AuditOptions::default() };
        let out = audit_file(EXAMPLE_QUERIES[6].1, &under);
        assert!(!out.budget_exceeded());
        // An unbounded statement always violates a finite budget.
        let out = audit_file("SELECT uts, count(*) FROM PKT GROUP BY uts", &over);
        assert!(out.budget_exceeded());
    }

    #[test]
    fn cascade_high_inherits_certified_low_rate() {
        // Low: 60s reservoir per (tb, srcIP); high: per-minute rollup of
        // the low's output. The high's input rate is the low's ceiling
        // amortized over its window.
        let text = "SELECT tb, srcIP, count(*) as cnt FROM TCP \
                    WHERE rsample(25) = TRUE \
                    GROUP BY time/60 as tb, srcIP \
                    CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE \
                    CLEANING BY rsclean_with() = TRUE;\n\
                    SELECT tb, sum(cnt) FROM LOW GROUP BY tb";
        let out = audit_file(text, &AuditOptions::default());
        assert!(!out.has_errors(), "{:?}", out.diagnostics);
        assert_eq!(out.report.statements.len(), 2);
        let low = &out.report.statements[0];
        let high = &out.report.statements[1];
        // 626 groups per 60s window → ceil(626/60) = 11 rows/sec.
        assert_eq!(low.groups_bound, Card::Finite(626));
        assert_eq!(high.rows_per_sec, Card::Finite(11));
        // GROUP BY a bare window passthrough is a 60s window upstream.
        assert_eq!(high.window_secs, Some(60));
        assert!(high.state_bytes.is_finite());
    }

    #[test]
    fn unknown_feed_audits_with_no_envelope() {
        let opts = AuditOptions { feed: "nonexistent".into(), ..AuditOptions::default() };
        let out = audit_file(EXAMPLE_QUERIES[6].1, &opts);
        let s = &out.report.statements[0];
        assert!(!s.rows_per_sec.is_finite());
        // The reservoir cap still bounds state without any envelope.
        assert_eq!(s.groups_bound, Card::Finite(626));
    }
}
