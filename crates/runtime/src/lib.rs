//! # sso-runtime
//!
//! A sharded execution runtime for the sampling operator (§7.2 partial
//! aggregation): the input stream is hash-partitioned on the query's
//! group key across N worker shards, each running its own
//! [`sso_core::SamplingOperator`] instance behind a batched bounded
//! ring, and per-shard window outputs are re-combined by the query's
//! [`sso_core::MergeRule`] at each window boundary.
//!
//! The contract comes from [`sso_core::shard_plan`]: a query is
//! shard-mergeable when its per-window state obeys a partial-aggregation
//! merge rule —
//!
//! * disjoint group keys ⇒ concatenate ([`sso_core::MergeRule::Concat`]);
//! * column-wise combinable aggregates ⇒ sum/min/max per column
//!   ([`sso_core::MergeRule::Combine`]);
//! * threshold (subset-sum) samples ⇒ re-threshold the union at the
//!   maximum per-shard threshold
//!   ([`sso_core::MergeRule::SubsetSum`], backed by
//!   [`sso_sampling::subset_sum::merge_threshold_samples`]);
//! * reservoirs ⇒ hypergeometric weighted re-sample
//!   ([`sso_core::MergeRule::Reservoir`], backed by
//!   [`sso_sampling::Reservoir::merge`]);
//! * min-hash signatures ⇒ union-then-truncate
//!   ([`sso_core::MergeRule::KmvTruncate`], the row-level form of
//!   [`sso_sampling::KmvSketch::merge`]).
//!
//! Producers apply backpressure per shard: block (counting stalls),
//! drop the newest batch (counting drops), or shed below-threshold
//! tuples with exact Horvitz–Thompson accounting
//! ([`engine::Backpressure::Shed`]) — overload is observable instead of
//! silent either way. Worker panics are supervised
//! ([`engine::Supervision`]): the default quarantines the poisoned
//! window, respawns a fresh operator at the next window boundary, and
//! tags the merged output with per-window coverage.

pub mod barrier;
pub mod engine;
pub mod merge;
pub mod ring;

pub use barrier::MergeBarrier;
pub use engine::{
    auto_routers, route_stream, router_cursors, run_sharded, Backpressure, DurabilityConfig,
    RouterStats, RuntimeConfig, RuntimeError, ShardStats, ShardedReport, Supervision,
};
pub use merge::{merge_shard_partials, merge_windows, ShardPartial};
pub use ring::{ring, Consumer, Producer, PushError};
