//! Sampler classification and the paper's closed-form state bounds,
//! evaluated symbolically over the abstract domain.
//!
//! Each sampling family caps its live group count per supergroup with a
//! cleaning phase that fires at a *trigger threshold*; the certified
//! bound is that threshold plus the single admission that trips it:
//!
//! * **subset-sum** (§6.1): `ssdo_clean` fires when the group count
//!   exceeds `γ·N`, so live groups never pass `⌈γ·N⌉ + 1` — the
//!   paper's O(N) footprint with the over-sampling factor made
//!   explicit. Without the cleaning clause (the §6.1 *basic* variant)
//!   the sampler admits a tuple per distinct weight draw and only the
//!   rows-per-window envelope bounds the table.
//! * **reservoir** (the §6.6 reservoir query): `rsdo_clean` fires past
//!   `T·n`, giving `T·n + 1`.
//! * **lossy counting / heavy hitters** (§6.6): with bucket width `w`
//!   over `N` rows, surviving entries obey the classic
//!   `w·(ln(N/w) + 1)` bound (ε = 1/w ⇒ (1/ε)·log εN).
//! * **distinct sampling** (Gibbons, the paper's ref [19]): `ddo_clean` raises the
//!   hash level once the distinct count passes the capacity `c`,
//!   bounding the table at `c + 1`.
//! * **min-hash / KMV** (the §6.6 min-hash query): the k smallest hash values survive
//!   cleaning, so at most `k + 1` groups live per supergroup.
//!
//! Trigger factors (`γ`, `T`) are read from the SFUN libraries' default
//! configs, so a library retune cannot silently invalidate the audit.

use sso_core::libs::reservoir::ReservoirOpConfig;
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_query::ast::{AstExpr, ExprKind, Query};
use sso_types::{FieldType, Schema};

use crate::domain::{Card, DeletionSafety};

/// The sampling family a query's clause structure selects, with the
/// parameters its closed-form state bound needs.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplerKind {
    /// No sampling clauses: exact grouped aggregation.
    Exact,
    /// `ssample(w, N)`; `cleaning` is true when `ssdo_clean` guards a
    /// cleaning phase (the bounded, threshold-relaxing variant).
    SubsetSum {
        /// Target sample size N.
        target: u64,
        /// Whether the `ssdo_clean` cleaning phase is present.
        cleaning: bool,
    },
    /// `rsample(n)` with the same cleaning split.
    Reservoir {
        /// Reservoir size n.
        n: u64,
        /// Whether the `rsdo_clean` cleaning phase is present.
        cleaning: bool,
    },
    /// `local_count(w)` lossy counting with bucket width w.
    LossyCount {
        /// Bucket width (1/ε).
        bucket_width: u64,
    },
    /// `dsample(x, c)` distinct sampling with capacity c.
    Distinct {
        /// Level-raise capacity c.
        capacity: u64,
    },
    /// `Kth_smallest_value$(h, k)` min-hash with a cleaning phase.
    Kmv {
        /// Sketch size k.
        k: u64,
    },
}

impl SamplerKind {
    /// Human/JSON label, e.g. `subset-sum(N=100)`.
    pub fn label(&self) -> String {
        match self {
            SamplerKind::Exact => "exact".to_string(),
            SamplerKind::SubsetSum { target, cleaning: true } => format!("subset-sum(N={target})"),
            SamplerKind::SubsetSum { target, cleaning: false } => {
                format!("basic-subset-sum(N={target})")
            }
            SamplerKind::Reservoir { n, cleaning: true } => format!("reservoir(n={n})"),
            SamplerKind::Reservoir { n, cleaning: false } => format!("basic-reservoir(n={n})"),
            SamplerKind::LossyCount { bucket_width } => format!("lossy-count(w={bucket_width})"),
            SamplerKind::Distinct { capacity } => format!("distinct(c={capacity})"),
            SamplerKind::Kmv { k } => format!("kmv(k={k})"),
        }
    }

    /// The closed-form bound on live groups *per supergroup*, given the
    /// rows-per-window envelope (lossy counting's bound depends on it).
    /// `Unbounded` means the sampler itself imposes no cap and only the
    /// input envelopes bound the table.
    pub fn per_supergroup_bound(&self, rows_per_window: Card) -> Card {
        match *self {
            SamplerKind::Exact => Card::Unbounded,
            SamplerKind::SubsetSum { target, cleaning: true } => {
                let gamma = SubsetSumOpConfig::default().gamma;
                Card::Finite((gamma * target as f64).ceil() as u64 + 1)
            }
            SamplerKind::SubsetSum { cleaning: false, .. } => Card::Unbounded,
            SamplerKind::Reservoir { n, cleaning: true } => {
                let t = ReservoirOpConfig::default().t_factor as u64;
                Card::Finite(t.saturating_mul(n) + 1)
            }
            SamplerKind::Reservoir { cleaning: false, .. } => Card::Unbounded,
            SamplerKind::LossyCount { bucket_width } => match rows_per_window {
                Card::Finite(n) => {
                    let w = bucket_width.max(1);
                    let ratio = (n as f64 / w as f64).max(1.0);
                    Card::Finite((w as f64 * (ratio.ln() + 1.0)).ceil() as u64)
                }
                Card::Unbounded => Card::Unbounded,
            },
            SamplerKind::Distinct { capacity } => Card::Finite(capacity + 1),
            SamplerKind::Kmv { k } => Card::Finite(k + 1),
        }
    }

    /// Deletion (turnstile-retraction) safety of the sampling state,
    /// per the non-strict-turnstile feasibility classification:
    /// hash-threshold samplers re-derive after a deletion, weight- and
    /// position-dependent ones cannot unwind an admission.
    pub fn deletion_safety(&self) -> DeletionSafety {
        match self {
            SamplerKind::Exact => DeletionSafety::Safe,
            SamplerKind::Distinct { .. } => DeletionSafety::Safe,
            SamplerKind::Kmv { .. } => DeletionSafety::Safe,
            SamplerKind::SubsetSum { .. } => DeletionSafety::Unsafe(
                "subset-sum thresholds depend on admission order; a retraction cannot \
                 restore groups discarded under the old threshold",
            ),
            SamplerKind::Reservoir { .. } => DeletionSafety::Unsafe(
                "reservoir occupancy depends on the admission sequence; deleting a \
                 sampled row cannot recall the rows it displaced",
            ),
            SamplerKind::LossyCount { .. } => DeletionSafety::Unsafe(
                "lossy counting forgets evicted buckets; a retraction against an \
                 evicted key under-counts silently",
            ),
        }
    }
}

/// What sampler a query's clauses select, plus the subset-sum weight
/// expression (for the shed-safety check, W204).
#[derive(Debug, Clone)]
pub struct SamplerInfo {
    /// The classified sampling family.
    pub kind: SamplerKind,
    /// `ssample`'s weight argument, when present.
    pub weight_expr: Option<AstExpr>,
}

/// Classify the sampler from the query's clause structure. The SFUN
/// families are disjoint (one state library per query in practice), so
/// the first match wins in WHERE order, then cleaning-only families.
pub fn detect_sampler(q: &Query) -> SamplerInfo {
    let mut info = SamplerInfo { kind: SamplerKind::Exact, weight_expr: None };
    let cleaning_calls = collect_call_names(q.cleaning_when.as_ref());
    if let Some(w) = &q.where_clause {
        let mut kind = None;
        walk(w, &mut |e| {
            if kind.is_some() {
                return;
            }
            let ExprKind::Call { name, superagg, args } = &e.kind else { return };
            let lower = name.to_ascii_lowercase();
            match (lower.as_str(), *superagg) {
                ("ssample", false) => {
                    info.weight_expr = args.first().cloned();
                    let target = int_arg(args, 1).unwrap_or(1);
                    let cleaning = cleaning_calls.iter().any(|c| c == "ssdo_clean");
                    kind = Some(SamplerKind::SubsetSum { target, cleaning });
                }
                ("rsample", false) => {
                    let n = int_arg(args, 0).unwrap_or(0);
                    let cleaning = cleaning_calls.iter().any(|c| c == "rsdo_clean");
                    kind = Some(SamplerKind::Reservoir { n, cleaning });
                }
                ("dsample", false) => {
                    // Capacity comes from the second argument (the
                    // planner's default config leaves it lazy).
                    if let Some(c) = int_arg(args, 1) {
                        kind = Some(SamplerKind::Distinct { capacity: c });
                    }
                }
                // KMV needs the cleaning phase to evict groups
                // stranded above a shrinking k-th smallest hash.
                ("kth_smallest_value", true) if q.cleaning_when.is_some() => {
                    if let Some(k) = int_arg(args, 1) {
                        kind = Some(SamplerKind::Kmv { k });
                    }
                }
                _ => {}
            }
        });
        if let Some(k) = kind {
            info.kind = k;
            return info;
        }
    }
    // Cleaning-only families (no WHERE prefilter): lossy counting.
    if let Some(cw) = &q.cleaning_when {
        let mut kind = None;
        walk(cw, &mut |e| {
            if kind.is_some() {
                return;
            }
            if let ExprKind::Call { name, superagg: false, args } = &e.kind {
                if name.eq_ignore_ascii_case("local_count") {
                    if let Some(w) = int_arg(args, 0) {
                        kind = Some(SamplerKind::LossyCount { bucket_width: w });
                    }
                }
            }
        });
        if let Some(k) = kind {
            info.kind = k;
        }
    }
    info
}

/// Can this tuple-phase expression be proven numeric and non-negative
/// over the schema's column types? Used for the shed-safety check: a
/// weight the shed path cannot trust makes `Backpressure::Shed`
/// re-weighting unsound (W204).
pub fn provably_non_negative(e: &AstExpr, schema: &Schema) -> bool {
    match &e.kind {
        // Integer literals are unsigned at the AST level.
        ExprKind::Int(_) => true,
        ExprKind::Float(v) => *v >= 0.0,
        ExprKind::Ident(name) => {
            matches!(schema.field(name).map(|f| f.ty), Ok(FieldType::U64))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            use sso_query::BinAstOp as B;
            match op {
                B::Add | B::Mul | B::Div | B::Rem => {
                    provably_non_negative(lhs, schema) && provably_non_negative(rhs, schema)
                }
                // Subtraction can underflow u64 semantics into a huge
                // weight; comparisons and logic are not weights.
                _ => false,
            }
        }
        _ => false,
    }
}

/// Cardinality bound of an expression over a per-column environment:
/// any deterministic function of its inputs has at most the product of
/// their cardinalities as distinct outputs; literals are constant.
pub fn expr_cardinality(e: &AstExpr, column_card: &impl Fn(&str) -> Card) -> Card {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Str(_) | ExprKind::Bool(_) => {
            Card::Finite(1)
        }
        ExprKind::Star => Card::Finite(1),
        ExprKind::Ident(name) => column_card(name),
        ExprKind::Neg(inner) | ExprKind::Not(inner) => expr_cardinality(inner, column_card),
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_cardinality(lhs, column_card) * expr_cardinality(rhs, column_card)
        }
        ExprKind::Call { args, .. } => {
            args.iter().fold(Card::Finite(1), |acc, a| acc * expr_cardinality(a, column_card))
        }
    }
}

/// The tumbling-window length in seconds of a window-defining group-by
/// expression, given each ordered column's *period* (seconds between
/// distinct values: 1 for a base stream's `time`, the low query's
/// window length for a cascade's passed-through window variable).
///
/// Recognizes the two canonical shapes: `<ordered>/n` (period × n) and
/// a bare `<ordered>` identifier (one window per distinct value, i.e.
/// the period itself). Anything else is an unknown window length.
pub fn window_seconds(
    e: &AstExpr,
    schema: &Schema,
    period_of: &impl Fn(&str) -> Option<u64>,
) -> Option<u64> {
    match &e.kind {
        ExprKind::Ident(col) if schema.is_ordered(col) => period_of(col),
        ExprKind::Binary { op: sso_query::BinAstOp::Div, lhs, rhs } => {
            if let (ExprKind::Ident(col), ExprKind::Int(n)) = (&lhs.kind, &rhs.kind) {
                if schema.is_ordered(col) && *n > 0 {
                    return period_of(col).map(|p| p.saturating_mul(*n));
                }
            }
            None
        }
        _ => None,
    }
}

/// A positive integer literal argument at `idx`.
fn int_arg(args: &[AstExpr], idx: usize) -> Option<u64> {
    match args.get(idx).map(|a| &a.kind) {
        Some(ExprKind::Int(n)) if *n > 0 => Some(*n),
        _ => None,
    }
}

/// The lower-cased names of every non-superaggregate call in `e`.
fn collect_call_names(e: Option<&AstExpr>) -> Vec<String> {
    let mut names = Vec::new();
    if let Some(e) = e {
        walk(e, &mut |node| {
            if let ExprKind::Call { name, superagg: false, .. } = &node.kind {
                names.push(name.to_ascii_lowercase());
            }
        });
    }
    names
}

/// Depth-first visit of every node in an expression.
fn walk<'e>(e: &'e AstExpr, f: &mut impl FnMut(&'e AstExpr)) {
    f(e);
    match &e.kind {
        ExprKind::Binary { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
        ExprKind::Not(inner) | ExprKind::Neg(inner) => walk(inner, f),
        ExprKind::Call { args, .. } => {
            for a in args {
                walk(a, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_query::parse_query;
    use sso_types::Packet;

    fn detect(text: &str) -> SamplerKind {
        detect_sampler(&parse_query(text).unwrap()).kind
    }

    #[test]
    fn classifies_every_sampler_family() {
        let cases: &[(&str, SamplerKind)] = &[
            (sso_core::queries::EXAMPLE_QUERIES[0].1, SamplerKind::Exact),
            (
                sso_core::queries::EXAMPLE_QUERIES[1].1,
                SamplerKind::SubsetSum { target: 100, cleaning: true },
            ),
            (
                sso_core::queries::EXAMPLE_QUERIES[2].1,
                SamplerKind::SubsetSum { target: 1, cleaning: false },
            ),
            (
                sso_core::queries::EXAMPLE_QUERIES[3].1,
                SamplerKind::LossyCount { bucket_width: 100 },
            ),
            (sso_core::queries::EXAMPLE_QUERIES[4].1, SamplerKind::Kmv { k: 10 }),
            (sso_core::queries::EXAMPLE_QUERIES[5].1, SamplerKind::Distinct { capacity: 256 }),
            (
                sso_core::queries::EXAMPLE_QUERIES[6].1,
                SamplerKind::Reservoir { n: 25, cleaning: true },
            ),
        ];
        for (text, expected) in cases {
            assert_eq!(&detect(text), expected, "query: {text}");
        }
    }

    #[test]
    fn trigger_thresholds_match_library_defaults() {
        // γ = 2 ⇒ subset-sum peaks at 2N+1; T = 25 ⇒ reservoir at 25n+1.
        let ss = SamplerKind::SubsetSum { target: 100, cleaning: true };
        assert_eq!(ss.per_supergroup_bound(Card::Unbounded), Card::Finite(201));
        let rs = SamplerKind::Reservoir { n: 25, cleaning: true };
        assert_eq!(rs.per_supergroup_bound(Card::Unbounded), Card::Finite(626));
        let d = SamplerKind::Distinct { capacity: 256 };
        assert_eq!(d.per_supergroup_bound(Card::Unbounded), Card::Finite(257));
        let kmv = SamplerKind::Kmv { k: 10 };
        assert_eq!(kmv.per_supergroup_bound(Card::Unbounded), Card::Finite(11));
    }

    #[test]
    fn lossy_count_bound_is_logarithmic_in_rows() {
        let lc = SamplerKind::LossyCount { bucket_width: 100 };
        // w(ln(N/w)+1) at N = 1.5M, w = 100: 100·(ln(15000)+1) ≈ 1062.
        let bound = lc.per_supergroup_bound(Card::Finite(1_500_000)).finite().unwrap();
        assert!((1000..1200).contains(&bound), "bound {bound}");
        assert_eq!(lc.per_supergroup_bound(Card::Unbounded), Card::Unbounded);
    }

    #[test]
    fn unbounded_variants_have_no_sampler_cap() {
        let basic = SamplerKind::SubsetSum { target: 1, cleaning: false };
        assert_eq!(basic.per_supergroup_bound(Card::Finite(1000)), Card::Unbounded);
        assert_eq!(SamplerKind::Exact.per_supergroup_bound(Card::Finite(10)), Card::Unbounded);
    }

    #[test]
    fn deletion_safety_classification() {
        assert!(SamplerKind::Distinct { capacity: 1 }.deletion_safety().is_safe());
        assert!(SamplerKind::Kmv { k: 1 }.deletion_safety().is_safe());
        assert!(SamplerKind::Exact.deletion_safety().is_safe());
        assert!(!SamplerKind::SubsetSum { target: 1, cleaning: true }.deletion_safety().is_safe());
        assert!(!SamplerKind::Reservoir { n: 1, cleaning: true }.deletion_safety().is_safe());
        assert!(!SamplerKind::LossyCount { bucket_width: 1 }.deletion_safety().is_safe());
    }

    #[test]
    fn weight_positivity_prover() {
        let schema = Packet::schema();
        let q = |w: &str| {
            let text =
                format!("SELECT tb FROM PKT WHERE ssample({w}, 10) = TRUE GROUP BY time/60 as tb");
            let parsed = parse_query(&text).unwrap();
            detect_sampler(&parsed).weight_expr.unwrap()
        };
        assert!(provably_non_negative(&q("len"), &schema));
        assert!(provably_non_negative(&q("len * 8"), &schema));
        assert!(provably_non_negative(&q("len / 2 + 1"), &schema));
        assert!(!provably_non_negative(&q("len - 1500"), &schema), "subtraction can wrap");
        assert!(!provably_non_negative(&q("prefix(srcIP, 8)"), &schema), "opaque call");
    }

    #[test]
    fn window_seconds_extraction() {
        let schema = Packet::schema();
        let period = |col: &str| if col == "time" { Some(1) } else { None };
        let q = parse_query("SELECT tb FROM PKT GROUP BY time/60 as tb, srcIP").unwrap();
        assert_eq!(window_seconds(&q.group_by[0].expr, &schema, &period), Some(60));
        assert_eq!(window_seconds(&q.group_by[1].expr, &schema, &period), None);
        // A bare ordered identifier windows per distinct value.
        let q = parse_query("SELECT t FROM PKT GROUP BY time as t").unwrap();
        assert_eq!(window_seconds(&q.group_by[0].expr, &schema, &period), Some(1));
        // uts is deliberately unordered; uts/1000 is not a window.
        let q = parse_query("SELECT tb FROM PKT GROUP BY uts/1000 as tb").unwrap();
        assert_eq!(window_seconds(&q.group_by[0].expr, &schema, &period), None);
    }

    #[test]
    fn expr_cardinality_is_multiplicative() {
        let env = |name: &str| match name {
            "srcIP" => Card::Finite(4096),
            "destIP" => Card::Finite(513),
            "uts" => Card::Unbounded,
            _ => Card::Unbounded,
        };
        let card = |text: &str| {
            let q = format!("SELECT x FROM PKT GROUP BY {text} as x");
            expr_cardinality(&parse_query(&q).unwrap().group_by[0].expr, &env)
        };
        assert_eq!(card("srcIP"), Card::Finite(4096));
        assert_eq!(card("srcIP + destIP"), Card::Finite(4096 * 513));
        assert_eq!(card("prefix(srcIP, 24)"), Card::Finite(4096));
        assert_eq!(card("uts"), Card::Unbounded);
    }
}
