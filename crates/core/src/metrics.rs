//! Operator instrumentation: the bundle of registry handles a
//! [`SamplingOperator`](crate::SamplingOperator) writes to.
//!
//! Per-tuple counters are *not* updated per tuple — they stay in the
//! operator's existing [`WindowStats`](crate::WindowStats) accumulator
//! and are flushed here once per window close, so instrumentation adds
//! no per-tuple atomics beyond the (sampled) phase spans. The sampling
//! telemetry probed from SFUN states feeds the under-sampling detector,
//! implementing the paper's bursty-load diagnosis (§6.5 / Figure 2).

use sso_obs::{Counter, Gauge, Registry, SampledSpan, UndersampleConfig, UndersampleDetector};

use crate::operator::WindowStats;
use crate::sfun::SfunTelemetry;

/// Sample 1 in `2^PROCESS_SHIFT` tuple-phase spans; window-close and
/// cleaning spans are rare and recorded unsampled.
const PROCESS_SHIFT: u32 = 6;

/// Registry handles for one operator instance.
#[derive(Debug, Clone)]
pub struct OperatorMetrics {
    tuples: Counter,
    admitted: Counter,
    windows: Counter,
    output_rows: Counter,
    groups_created: Counter,
    cleaning_phases: Counter,
    evictions: Counter,
    groups: Gauge,
    threshold_z: Gauge,
    pub(crate) process_span: SampledSpan,
    pub(crate) clean_span: SampledSpan,
    pub(crate) window_span: SampledSpan,
    pub(crate) finalize_span: SampledSpan,
    detector: UndersampleDetector,
}

impl OperatorMetrics {
    /// Register one operator's metrics under `label` (e.g. `shard=3`;
    /// empty for a single-threaded run).
    pub fn register(registry: &Registry, label: impl Into<String>) -> Self {
        let label: String = label.into();
        OperatorMetrics {
            tuples: registry.counter_labeled("op.tuples", label.clone()),
            admitted: registry.counter_labeled("op.admitted", label.clone()),
            windows: registry.counter_labeled("op.windows", label.clone()),
            output_rows: registry.counter_labeled("op.output_rows", label.clone()),
            groups_created: registry.counter_labeled("op.groups_created", label.clone()),
            cleaning_phases: registry.counter_labeled("op.cleaning_phases", label.clone()),
            evictions: registry.counter_labeled("op.evictions", label.clone()),
            groups: registry.gauge_labeled("op.groups", label.clone()),
            threshold_z: registry.gauge_labeled("op.threshold_z", label.clone()),
            process_span: SampledSpan::register(
                registry,
                "op.process_ns",
                "op.busy_ns",
                label.clone(),
                PROCESS_SHIFT,
            ),
            clean_span: SampledSpan::register(
                registry,
                "op.clean_ns",
                "op.clean_busy_ns",
                label.clone(),
                0,
            ),
            window_span: SampledSpan::register(
                registry,
                "op.window_close_ns",
                "op.window_close_busy_ns",
                label.clone(),
                0,
            ),
            // The end-of-stream force-close is a distinct span from the
            // regular window close: it is where merge-finalize waits on
            // every shard, so its latency lands on the critical path of
            // the whole run rather than overlapping the stream.
            finalize_span: SampledSpan::register(
                registry,
                "op.finalize_ns",
                "op.finalize_busy_ns",
                label.clone(),
                0,
            ),
            detector: UndersampleDetector::register(registry, label, UndersampleConfig::default()),
        }
    }

    /// Flush one closed window's counters and sampling telemetry.
    /// Returns whether the under-sampling detector fired.
    pub fn on_window(&self, w: &WindowStats, groups: u64, telem: Option<&SfunTelemetry>) -> bool {
        self.windows.inc();
        self.tuples.add(w.tuples);
        self.admitted.add(w.admitted);
        self.output_rows.add(w.output_rows);
        self.groups_created.add(w.groups_created);
        self.cleaning_phases.add(w.cleaning_phases);
        self.evictions.add(w.evictions);
        self.groups.set(groups as f64);
        match telem {
            Some(t) => {
                self.threshold_z.set(t.threshold);
                self.detector.observe(t.achieved, t.target, t.offered)
            }
            None => false,
        }
    }

    /// Windows the under-sampling detector has flagged (this operator).
    pub fn undersampled_windows(&self) -> u64 {
        self.detector.fired_windows()
    }
}
