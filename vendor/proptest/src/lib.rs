//! Offline drop-in subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses:
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros, the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_filter`, `prop_recursive` and tuple composition,
//! `collection::vec`, `bool::ANY`, `any::<T>()`, integer/float range
//! strategies, and a small regex-subset strategy for `&str` patterns
//! (char classes, `\PC`, and `{m,n}` repeats).
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! **deterministic** (seeded per test name would require unstable
//! hooks, so a fixed seed stream is used; set `PROPTEST_CASES` to vary
//! the case count) and failing cases are **not shrunk** — the failing
//! input is simply reported via the assertion message.

/// Strategy trait and combinators.
pub mod strategy {
    use std::ops::Range;
    use std::sync::Arc;

    /// The RNG handed to strategies (vendored deterministic StdRng).
    pub type TestRng = rand::rngs::StdRng;

    /// A value generator. Upstream proptest separates strategies from
    /// value trees to support shrinking; this stub generates directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred`. Aborts (panics) if the
        /// predicate rejects too often, mirroring upstream's global
        /// rejection limit.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason: reason.into(), pred }
        }

        /// Build recursive structures: up to `depth` levels of the
        /// strategy produced by `branch` applied over this leaf.
        /// (`_desired_size` and `_expected_branch` shape upstream's
        /// probability schedule; the stub branches 50/50 per level.)
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                strat = Union::new(vec![leaf.clone(), branch(strat).boxed()]).boxed();
            }
            strat
        }

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe view of a strategy (used by [`BoxedStrategy`]).
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always the same value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_filter` adapter (rejection sampling with a retry cap).
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("proptest filter rejected 1000 candidates in a row: {}", self.reason);
        }
    }

    /// Uniform choice among strategies of a common value type
    /// (what `prop_oneof!` builds).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    // String strategies from a regex subset: literals, `[...]` classes
    // with ranges, `\PC` (any printable char), each optionally followed
    // by a `{m,n}` repeat count.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    enum PatElem {
        Literal(char),
        Class(Vec<(char, char)>),
        Printable,
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        use rand::Rng;
        let elems = parse_pattern(pattern);
        let mut out = String::new();
        for (elem, (lo, hi)) in &elems {
            let n = if lo == hi { *lo } else { rng.gen_range(*lo..=*hi) };
            for _ in 0..n {
                out.push(sample_elem(elem, rng));
            }
        }
        out
    }

    fn sample_elem(elem: &PatElem, rng: &mut TestRng) -> char {
        use rand::Rng;
        match elem {
            PatElem::Literal(c) => *c,
            PatElem::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo)
            }
            PatElem::Printable => {
                // Mostly ASCII printable; sometimes multi-byte chars so
                // byte-offset handling gets exercised.
                if rng.gen_bool(0.9) {
                    char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
                } else {
                    const EXOTIC: &[char] = &['é', 'λ', '≤', '→', '߷', '🦀'];
                    EXOTIC[rng.gen_range(0..EXOTIC.len())]
                }
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<(PatElem, (usize, usize))> {
        let mut chars = pattern.chars().peekable();
        let mut elems = Vec::new();
        while let Some(c) = chars.next() {
            let elem = match c {
                '\\' => match (chars.next(), chars.peek().copied()) {
                    (Some('P'), Some('C')) => {
                        chars.next();
                        PatElem::Printable
                    }
                    (Some(esc), _) => PatElem::Literal(esc),
                    (None, _) => PatElem::Literal('\\'),
                },
                '[' => {
                    let mut ranges = Vec::new();
                    while let Some(&m) = chars.peek() {
                        if m == ']' {
                            chars.next();
                            break;
                        }
                        let lo = chars.next().unwrap();
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().unwrap_or(lo);
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(!ranges.is_empty(), "empty char class in pattern {pattern:?}");
                    PatElem::Class(ranges)
                }
                c => PatElem::Literal(c),
            };
            let count = if chars.peek() == Some(&'{') {
                chars.next();
                let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                    None => {
                        let n = body.trim().parse().unwrap();
                        (n, n)
                    }
                };
                (lo, hi)
            } else if chars.peek() == Some(&'*') {
                chars.next();
                (0, 8)
            } else if chars.peek() == Some(&'+') {
                chars.next();
                (1, 8)
            } else {
                (1, 1)
            };
            elems.push((elem, count));
        }
        elems
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            use rand::Rng;
            rng.gen()
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::{Strategy, TestRng};

    /// Strategy for arbitrary booleans.
    pub struct BoolAny;

    /// Any boolean, 50/50.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            use rand::Rng;
            rng.gen()
        }
    }
}

/// Test-case driver.
pub mod test_runner {
    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Per-test configuration (subset of upstream's many knobs).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for struct-update compatibility; unused (the stub
        /// never shrinks).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            ProptestConfig { cases, max_shrink_iters: 0 }
        }
    }

    /// Run `body` for `config.cases` deterministic cases; panic (fail
    /// the test) on the first `Err`.
    pub fn run_cases<F>(config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        for case in 0..config.cases {
            let mut rng =
                TestRng::seed_from_u64(0x5eed_cafe_u64.wrapping_add(0x9E37_79B9 * case as u64));
            if let Err(msg) = body(&mut rng) {
                panic!("proptest case {case}/{} failed: {msg}", config.cases);
            }
        }
    }
}

/// The usual glob import: strategies, config, `any`, and the macros.
pub mod prelude {
    pub use crate::strategy::{Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                __outcome
            });
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Fallible assertion inside `proptest!` bodies: fails the case (not
/// the process) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
                __l, __r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_matches_identifier_shape() {
        use crate::strategy::{Strategy, TestRng};
        use rand::SeedableRng;
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-zA-Z_][a-zA-Z0-9_]{0,10}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "bad first char in {s:?}");
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'), "bad tail in {s:?}");
        }
    }

    #[test]
    fn printable_pattern_is_bounded() {
        use crate::strategy::{Strategy, TestRng};
        use rand::SeedableRng;
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = "\\PC{0,200}".sample(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Ranges, tuples, vec, filter, map and oneof all compose.
        #[test]
        fn combinators_compose(
            (a, b) in (0u64..10, 5usize..8),
            v in crate::collection::vec(1u64..100, 2..6),
            flag in crate::bool::ANY,
            pick in prop_oneof![Just(1u64), (10u64..20), Just(3u64)],
            n in (0u64..100).prop_filter("even", |n| n % 2 == 0).prop_map(|n| n + 1),
        ) {
            prop_assert!(a < 10);
            prop_assert!((5..8).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(flag || !flag);
            prop_assert!(pick == 1 || pick == 3 || (10..20).contains(&pick));
            prop_assert_eq!(n % 2, 1, "filter+map should make {} odd", n);
        }

        /// prop_recursive terminates and produces both leaves and branches.
        #[test]
        fn recursive_strategies_terminate(depth in 0usize..64) {
            #[derive(Debug, Clone, PartialEq)]
            enum Tree { Leaf(u64), Node(Vec<Tree>) }
            fn depth_of(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(kids) => 1 + kids.iter().map(depth_of).max().unwrap_or(0),
                }
            }
            let strat = (0u64..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
            use crate::strategy::{Strategy, TestRng};
            use rand::SeedableRng;
            let mut rng = TestRng::seed_from_u64(depth as u64);
            let t = strat.sample(&mut rng);
            prop_assert!(depth_of(&t) <= 4, "tree too deep: {:?}", t);
        }
    }
}
