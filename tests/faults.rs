//! Fault-injection acceptance: a seeded fault plan panicking one of 16
//! shards mid-window must leave the run alive, the affected window
//! tagged `degraded` with `coverage < 1`, the re-thresholded estimates
//! over the surviving shards *exactly* equal to a fault-free run fed
//! the same surviving tuples, and a same-seed replay byte-identical.
//! Plus the loss-accounting ledger: for every seeded plan and every
//! backpressure mode, `offered == delivered + accounted losses` and
//! `delivered == covered + uncovered`, exactly.

use std::sync::Arc;

use stream_sampler::prelude::*;
use stream_sampler::runtime::route_stream;

const WINDOW: u64 = 2;
const SHARDS: usize = 16;

fn packets() -> Vec<Packet> {
    research_feed(0xfa).take_seconds(6)
}

/// Pick a `(shard, at_tuple)` panic point that lands mid-window in the
/// victim shard's LAST window, plus that window's id. Mid-window makes
/// the poisoned operator's current window unambiguous; last-window keeps
/// the surviving-tuples comparison exact even for sampled queries (no
/// post-fault windows whose per-shard RNG position could differ from
/// the reference run's).
fn pick_panic_point(
    plan: &ShardPlan,
    pkts: &[Packet],
    shard: usize,
) -> (u64 /* at_tuple */, u64 /* window */) {
    let tuples: Vec<Tuple> = pkts.iter().map(|p| p.to_tuple()).collect();
    let routed = route_stream(plan, SHARDS, &tuples);
    let mine: Vec<usize> = (0..pkts.len()).filter(|&i| routed[i] == shard).collect();
    let window_of = |i: usize| pkts[i].time() / WINDOW;
    let last_w = window_of(*mine.last().expect("victim shard sees traffic"));
    let first_in_last =
        mine.iter().position(|&i| window_of(i) == last_w).expect("last window exists");
    // The third tuple of the window: at least two predecessors pin the
    // operator's current window to `last_w` when the panic fires.
    assert!(mine.len() - first_in_last >= 3, "last window too small to hit mid-window");
    ((first_in_last + 3) as u64, last_w)
}

/// The surviving tuples of a mid-window shard panic: everything except
/// the victim shard's share of the poisoned window. Valid only for
/// keyed (content-routed) plans, where removing tuples does not shift
/// any other tuple's shard assignment.
fn surviving_packets(plan: &ShardPlan, pkts: &[Packet], shard: usize, window: u64) -> Vec<Packet> {
    let tuples: Vec<Tuple> = pkts.iter().map(|p| p.to_tuple()).collect();
    let routed = route_stream(plan, SHARDS, &tuples);
    pkts.iter()
        .enumerate()
        .filter(|&(i, p)| !(routed[i] == shard && p.time() / WINDOW == window))
        .map(|(_, p)| *p)
        .collect()
}

fn run<F>(make: F, cfg: &RuntimeConfig, pkts: Vec<Packet>) -> ShardedRunReport
where
    F: Fn(usize) -> Result<OperatorSpec, stream_sampler::operator::OpError> + Sync,
{
    run_plan_sharded(Box::new(SelectionNode::pass_all()), make, cfg, pkts).expect("run completes")
}

fn assert_reports_byte_identical(a: &ShardedRunReport, b: &ShardedRunReport, what: &str) {
    assert_eq!(a.coverage, b.coverage, "{what}: coverage");
    assert_eq!(a.stragglers, b.stragglers, "{what}: stragglers");
    assert_eq!(a.windows.len(), b.windows.len(), "{what}: window count");
    for (x, y) in a.windows.iter().zip(&b.windows) {
        assert_eq!(x.window, y.window, "{what}: window key");
        assert_eq!(x.rows, y.rows, "{what}: rows for {:?}", x.window);
        assert_eq!(x.stats, y.stats, "{what}: stats for {:?}", x.window);
        assert_eq!(x.degradation.coverage, y.degradation.coverage, "{what}: coverage tag");
        assert_eq!(x.degradation.degraded, y.degradation.degraded, "{what}: degraded tag");
    }
}

/// The headline acceptance run, against the paper's threshold sampler:
/// 1 of 16 shards panics mid-window under a seeded plan; the run
/// completes, the poisoned window is tagged, the re-thresholded sample
/// over the surviving shards matches a fault-free run over the same
/// surviving tuples row-for-row, and the same seed replays to the byte.
#[test]
fn shard_panic_degrades_exactly_one_window_with_exact_surviving_estimates() {
    let make = |_| queries::basic_subset_sum_query(WINDOW, 400.0);
    let plan = shard_plan(&make(0).unwrap()).expect("keyed, shard-mergeable");
    let pkts = packets();
    let victim = 5usize;
    let (at_tuple, poisoned_w) = pick_panic_point(&plan, &pkts, victim);

    let mut fault = FaultPlan::empty(42);
    fault.events.push(FaultEvent::WorkerPanic { shard: victim, at_tuple });
    let fault = fault.into_shared();
    let cfg = RuntimeConfig::new(SHARDS).with_faults(fault.clone());

    let report = run(make, &cfg, pkts.clone());
    assert!(report.degraded(), "a lost half-window must degrade the run");
    assert!(report.coverage < 1.0 && report.coverage > 0.9, "{}", report.coverage);
    assert_eq!(report.quarantines(), 1, "one panic, one quarantine");

    // Conservation: delivered == covered + uncovered, exactly.
    let delivered: u64 = report.shards.iter().map(|s| s.tuples()).sum();
    let uncovered: u64 = report.shards.iter().map(|s| s.uncovered()).sum();
    assert_eq!(delivered, pkts.len() as u64);
    assert!(uncovered > 0);

    // Exactly the poisoned window is tagged.
    for w in &report.windows {
        let wid = w.window.get(0).as_u64().expect("tb window key");
        if wid == poisoned_w {
            assert!(w.degradation.degraded, "poisoned window must be tagged");
            assert!(w.degradation.coverage < 1.0);
        } else {
            assert!(!w.degradation.degraded, "window {wid} lost nothing");
            assert_eq!(w.degradation.coverage, 1.0);
        }
    }

    // Unbiasedness check, exact form: the degraded output must equal a
    // fault-free run over the surviving tuples — the merge re-thresholds
    // over surviving shards, it does not invent or lose anything else.
    let reference = run(make, &RuntimeConfig::new(SHARDS), {
        surviving_packets(&plan, &pkts, victim, poisoned_w)
    });
    assert!(!reference.degraded());
    assert_eq!(reference.windows.len(), report.windows.len());
    for (f, r) in report.windows.iter().zip(&reference.windows) {
        assert_eq!(f.window, r.window);
        assert_eq!(
            f.rows, r.rows,
            "window {:?}: degraded output must equal the fault-free run over surviving tuples",
            f.window
        );
        assert_eq!(f.stats.tuples, r.stats.tuples, "covered-tuple accounting for {:?}", f.window);
    }

    // Replayability: the same seed/plan reproduces the result to the byte.
    let replay = run(make, &cfg, pkts);
    assert_reports_byte_identical(&report, &replay, "same-seed replay");
}

/// The same contract holds for an exact (Concat-merge) query, where
/// every row is checkable against ground truth: heavy hitters with a
/// bucket wider than the stream never evicts, so surviving-shard counts
/// must match the filtered reference bit-for-bit.
#[test]
fn shard_panic_keeps_exact_queries_exact_over_survivors() {
    let make = |_| queries::heavy_hitters_query(WINDOW, 1 << 20, None);
    let plan = shard_plan(&make(0).unwrap()).expect("keyed, shard-mergeable");
    let pkts = packets();
    let victim = 11usize;
    let (at_tuple, poisoned_w) = pick_panic_point(&plan, &pkts, victim);

    let mut fault = FaultPlan::empty(7);
    fault.events.push(FaultEvent::WorkerPanic { shard: victim, at_tuple });
    let cfg = RuntimeConfig::new(SHARDS).with_faults(fault.into_shared());

    let report = run(make, &cfg, pkts.clone());
    assert!(report.degraded());
    let reference = run(make, &RuntimeConfig::new(SHARDS), {
        surviving_packets(&plan, &pkts, victim, poisoned_w)
    });
    assert_eq!(report.windows.len(), reference.windows.len());
    for (f, r) in report.windows.iter().zip(&reference.windows) {
        assert_eq!(f.window, r.window);
        assert_eq!(f.rows, r.rows, "window {:?}", f.window);
    }
}

/// Injected stalls are timing-only faults: under blocking backpressure
/// the result must be byte-identical to the fault-free run, at full
/// coverage — latency is the only casualty.
#[test]
fn worker_stalls_change_timing_not_results() {
    let make = |_| Ok(queries::total_sum_query(WINDOW));
    let pkts = research_feed(3).take_seconds(3);
    let mut fault = FaultPlan::empty(9);
    fault.events.push(FaultEvent::WorkerStall { shard: 1, at_tuple: 200, millis: 15 });
    fault.events.push(FaultEvent::WorkerStall { shard: 3, at_tuple: 500, millis: 10 });
    let cfg = RuntimeConfig::new(4).with_faults(fault.into_shared());

    let faulted = run(make, &cfg, pkts.clone());
    let clean = run(make, &RuntimeConfig::new(4), pkts);
    assert!(!faulted.degraded(), "stalls lose nothing");
    assert_eq!(faulted.coverage, 1.0);
    assert_reports_byte_identical(&faulted, &clean, "stalls vs clean");
}

/// The router-lane half of the fault model: a seeded `panic router=R
/// at=N` mid-window leaves the run alive with exactly one degraded
/// window (the victim lane's unrouted remainder of that window counted
/// as `rt.router_uncovered` mass), the re-thresholded estimates equal a
/// fault-free run over the surviving tuples row-for-row, and the same
/// seed replays byte-identically. Content routing makes the surviving
/// set position-computable: the loss is the contiguous slice from the
/// trip index to the next window boundary inside the victim's segment.
#[test]
fn router_panic_degrades_exactly_one_window_with_exact_surviving_estimates() {
    use stream_sampler::runtime::router_cursors;

    // One-second windows over an 8-second feed: the victim lane's
    // segment spans several windows, so the quarantine both opens
    // (mid-window trip) and closes (respawn at the next boundary).
    let window = 1u64;
    let make = move |_| queries::basic_subset_sum_query(window, 400.0);
    let pkts = research_feed(0xfa).take_seconds(8);
    let routers = 2usize;
    let victim = 1usize;
    let seg_start = router_cursors(pkts.len() as u64, routers)[victim] as usize;
    let window_of = |i: usize| pkts[i].time() / window;

    // Trip mid-window in the first window boundary PAST the segment
    // start: fully interior to the lane, with a later window to resume
    // into.
    let boundary = (seg_start..pkts.len())
        .find(|&i| window_of(i) != window_of(seg_start))
        .expect("segment spans a window boundary");
    let trip = boundary + 2;
    let poisoned_w = window_of(trip);
    assert_eq!(poisoned_w, window_of(trip - 1), "trip lands mid-window");
    assert!(poisoned_w < window_of(pkts.len() - 1), "a later window exists to respawn into");
    let lost: Vec<usize> = (trip..pkts.len()).take_while(|&i| window_of(i) == poisoned_w).collect();
    let at_tuple = (trip - seg_start + 1) as u64; // lane-local, 1-based

    let fault = FaultPlan::parse(&format!("panic router={victim} at={at_tuple}"))
        .expect("router grammar parses")
        .into_shared();
    let cfg = RuntimeConfig::new(SHARDS).with_routers(routers).with_faults(fault);

    let report = run(make, &cfg, pkts.clone());
    assert!(report.degraded(), "an unrouted window slice must degrade the run");
    assert_eq!(report.router_quarantines(), 1, "one lane panic, one quarantine");
    assert_eq!(report.quarantines(), 0, "no worker was harmed");
    assert_eq!(report.router_uncovered(), lost.len() as u64, "loss is exactly the window slice");

    // Conservation: offered == delivered + router-uncovered, exactly.
    let delivered: u64 = report.shards.iter().map(|s| s.tuples()).sum();
    assert_eq!(delivered + report.router_uncovered(), pkts.len() as u64);

    // Exactly the poisoned window is tagged.
    for w in &report.windows {
        let wid = w.window.get(0).as_u64().expect("tb window key");
        if wid == poisoned_w {
            assert!(w.degradation.degraded, "poisoned window must be tagged");
            assert!(w.degradation.coverage < 1.0);
        } else {
            assert!(!w.degradation.degraded, "window {wid} lost nothing");
            assert_eq!(w.degradation.coverage, 1.0);
        }
    }

    // Exactness over survivors: content routing is position-free, so
    // dropping the lost slice from the input reproduces the degraded
    // run's estimates bit-for-bit.
    let surviving: Vec<Packet> =
        pkts.iter().enumerate().filter(|(i, _)| !lost.contains(i)).map(|(_, p)| *p).collect();
    let reference = run(make, &RuntimeConfig::new(SHARDS).with_routers(routers), surviving);
    assert!(!reference.degraded());
    assert_eq!(reference.windows.len(), report.windows.len());
    for (f, r) in report.windows.iter().zip(&reference.windows) {
        assert_eq!(f.window, r.window);
        assert_eq!(
            f.rows, r.rows,
            "window {:?}: degraded output must equal the fault-free run over surviving tuples",
            f.window
        );
        assert_eq!(f.stats.tuples, r.stats.tuples, "covered-tuple accounting for {:?}", f.window);
    }

    // Replayability: the same plan reproduces the result to the byte.
    let replay = run(make, &cfg, pkts);
    assert_reports_byte_identical(&report, &replay, "same-seed router-panic replay");
    assert_eq!(report.router_uncovered(), replay.router_uncovered(), "replayed loss mass");
}

/// Router stalls are timing-only faults, exactly like worker stalls:
/// under blocking backpressure a stalled lane delays batches but loses
/// nothing, so the result is byte-identical to the fault-free run.
#[test]
fn router_stalls_change_timing_not_results() {
    let make = |_| Ok(queries::total_sum_query(WINDOW));
    let pkts = research_feed(3).take_seconds(3);
    let fault = FaultPlan::parse("stall router=0 at=100 ms=15\nstall router=1 at=50 ms=10")
        .expect("router stall grammar parses");
    let cfg = RuntimeConfig::new(4).with_routers(2).with_faults(fault.into_shared());

    let faulted = run(make, &cfg, pkts.clone());
    let clean = run(make, &RuntimeConfig::new(4).with_routers(2), pkts);
    assert!(!faulted.degraded(), "stalls lose nothing");
    assert_eq!(faulted.coverage, 1.0);
    assert_eq!(faulted.router_uncovered(), 0);
    assert_reports_byte_identical(&faulted, &clean, "router stalls vs clean");
}

/// The loss ledger with router faults in the mix, across all three
/// backpressure modes: unrouted quarantine mass joins drops and sheds
/// as accounted loss — offered == delivered + dropped + shed +
/// router-uncovered, and delivered == covered + worker-uncovered.
#[test]
fn router_faults_keep_the_ledger_exact() {
    let plan = FaultPlan::parse("panic router=0 at=100\nstall router=1 at=50 ms=5")
        .expect("router grammar parses")
        .into_shared();
    let pkts = research_feed(11).take_seconds(4);
    let offered = pkts.len() as u64;
    for (name, backpressure, ring_capacity) in [
        ("block", Backpressure::Block, 16usize),
        ("drop", Backpressure::DropNewest, 1),
        ("shed", Backpressure::Shed { weight_col: None }, 1),
    ] {
        let mut cfg = RuntimeConfig::new(8).with_routers(2).with_faults(plan.clone());
        cfg.backpressure = backpressure;
        cfg.ring_capacity = ring_capacity;
        cfg.batch_size = 64;
        let report = run(|_| Ok(queries::total_sum_query(WINDOW)), &cfg, pkts.clone());

        let delivered: u64 = report.shards.iter().map(|s| s.tuples()).sum();
        let lost = report.dropped() + report.shed() + report.router_uncovered();
        assert_eq!(
            delivered + lost,
            offered,
            "{name}: offered must equal delivered + accounted losses"
        );
        let covered: u64 = report.windows.iter().map(|w| w.stats.tuples).sum();
        let uncovered: u64 = report.shards.iter().map(|s| s.uncovered()).sum();
        assert_eq!(
            covered + uncovered,
            delivered,
            "{name}: delivered must equal covered + worker-uncovered"
        );
        // The lane panic fires at a fixed segment ordinal, before any
        // backpressure can intervene: it must be caught in every mode.
        assert_eq!(report.router_quarantines(), 1, "{name}: lane panic must be caught");
        assert!(report.router_uncovered() > 0, "{name}: quarantine mass is accounted");
    }
}

/// The loss ledger, over every event type a seeded plan generates and
/// all three backpressure modes: offered == delivered + dropped + shed,
/// and delivered == covered + uncovered. Exact, for every seed.
#[test]
fn seeded_plans_account_for_every_tuple() {
    for seed in [1u64, 7, 13] {
        let plan = Arc::new(FaultPlan::from_seed(seed, 8));
        let pkts = plan.perturb_packets(research_feed(seed).take_seconds(4));
        let offered = pkts.len() as u64;
        for (name, backpressure, ring_capacity) in [
            ("block", Backpressure::Block, 16usize),
            ("drop", Backpressure::DropNewest, 1),
            ("shed", Backpressure::Shed { weight_col: None }, 1),
        ] {
            let mut cfg = RuntimeConfig::new(8).with_faults(plan.clone());
            cfg.backpressure = backpressure;
            cfg.ring_capacity = ring_capacity;
            cfg.batch_size = 64;
            let report = run(|_| Ok(queries::total_sum_query(WINDOW)), &cfg, pkts.clone());

            let delivered: u64 = report.shards.iter().map(|s| s.tuples()).sum();
            let lost = report.dropped() + report.shed();
            assert_eq!(
                delivered + lost,
                offered,
                "seed {seed} {name}: offered must equal delivered + accounted losses"
            );
            let covered: u64 = report.windows.iter().map(|w| w.stats.tuples).sum();
            let uncovered: u64 = report.shards.iter().map(|s| s.uncovered()).sum();
            assert_eq!(
                covered + uncovered,
                delivered,
                "seed {seed} {name}: delivered must equal covered + uncovered"
            );
            // The seeded plan always panics one shard somewhere; under
            // lossy backpressure the victim may never be delivered
            // enough tuples to reach the trigger, so only the lossless
            // mode is guaranteed to trip it.
            if name == "block" {
                assert!(report.quarantines() >= 1, "seed {seed} {name}: panic must be caught");
            }
        }
    }
}

/// Plan round-trip: `Display` output re-parses to the same plan, so a
/// plan written by `--fault-seed` replays identically via `--fault-plan`.
#[test]
fn fault_plans_round_trip_through_text() {
    for seed in [0u64, 5, 99] {
        let plan = FaultPlan::from_seed(seed, 16);
        let text = plan.to_string();
        let reparsed = FaultPlan::parse(&text).expect("round-trip parse");
        assert_eq!(plan, reparsed, "plan text:\n{text}");
    }
}

/// The window deadline converts a straggler into accounted coverage
/// loss instead of an unbounded finalize wait: the undersample detector
/// fires on the METRICS channel and the result is tagged.
#[test]
fn deadline_fires_undersample_alert_for_stragglers() {
    let make = |shard: usize| {
        let mut spec = queries::total_sum_query(WINDOW);
        if shard == 1 {
            spec.where_clause = Some(stream_sampler::operator::Expr::Scalar {
                name: "SLOW",
                fun: std::sync::Arc::new(|_: &[Value]| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    Ok(Value::Bool(true))
                }),
                args: vec![],
            });
        }
        Ok(spec)
    };
    let registry = Registry::new();
    let mut cfg = RuntimeConfig::new(2).with_registry(registry.clone());
    cfg.window_deadline = Some(std::time::Duration::from_millis(10));
    cfg.batch_size = 32;
    let report = run(make, &cfg, research_feed(4).take_seconds(2));
    assert_eq!(report.stragglers, vec![1]);
    assert!(report.degraded());
    let snap = registry.snapshot();
    assert_eq!(snap.value("op.undersampled_windows"), 1.0, "straggler loss must alert");
    let cov = snap.metrics.iter().find(|m| m.name == "rt.coverage").expect("coverage gauge");
    assert!(cov.scalar() < 1.0);
}

/// The flight recorder on the crash path: a seeded `crash at=N` run
/// with a profiler attached must leave a decodable dump on disk whose
/// lanes replay the final window's events in causal order — every
/// batch's router `route` stamp precedes the worker `process` stamp
/// that consumed it — and `sso trace DIR` must render it.
#[test]
fn seeded_crash_dumps_flight_recorder_and_trace_replays_causally() {
    use stream_sampler::profile::{
        read_dump_file, DumpReason, Profiler, ProfilerConfig, Stage, DUMP_FILE,
    };

    let dir = std::env::temp_dir().join(format!("sso-prof-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    let dump_path = dir.join(DUMP_FILE);
    let profiler =
        Profiler::new(ProfilerConfig { dump_path: Some(dump_path.clone()), ..Default::default() });

    let pkts = packets();
    // Kill the run at ~60% of the stream: several windows are fully
    // processed, so the dump holds cross-thread lineage to replay.
    let fault =
        FaultPlan::parse(&format!("crash at={}", (pkts.len() * 3) / 5)).expect("plan parses");
    let cfg =
        RuntimeConfig::new(SHARDS).with_profile(profiler.clone()).with_faults(fault.into_shared());
    let err = run_plan_sharded(
        Box::new(SelectionNode::pass_all()),
        |_| Ok(queries::total_sum_query(WINDOW)),
        &cfg,
        pkts,
    )
    .expect_err("crash fault kills the run");
    assert!(
        matches!(
            err,
            stream_sampler::gigascope::ShardedRunError::Runtime(
                stream_sampler::runtime::RuntimeError::Crashed { .. }
            )
        ),
        "got: {err}"
    );
    assert_eq!(profiler.triggered(), Some(DumpReason::Crash));
    assert!(dump_path.is_file(), "runtime writes the dump after joining workers");

    let dump = read_dump_file(&dump_path).expect("dump decodes");
    assert_eq!(dump.reason, DumpReason::Crash);
    assert!(dump.event_count() > 0, "lanes captured events");
    // Within a lane, publish order is record order: stamps are monotone.
    for lane in &dump.lanes {
        for pair in lane.events.windows(2) {
            assert!(
                pair[0].t_ns <= pair[1].t_ns,
                "lane {:?}/{} out of causal order",
                lane.kind,
                lane.index
            );
        }
    }
    // Across lanes: for every batch of the final window, the router's
    // `route` stamp (push start) precedes the worker's `process` stamp
    // (batch start) — the hand-off is causal, not coincidental.
    let events = || dump.lanes.iter().flat_map(|l| l.events.iter());
    let final_w = events()
        .filter(|e| e.stage == Stage::Process)
        .map(|e| e.window)
        .max()
        .expect("process events recorded");
    let mut checked = 0;
    for p in events().filter(|e| e.stage == Stage::Process && e.window == final_w) {
        if let Some(r) =
            events().find(|e| e.stage == Stage::Route && e.shard == p.shard && e.batch == p.batch)
        {
            assert!(
                r.t_ns <= p.t_ns,
                "batch {} shard {}: route at {} after process at {}",
                p.batch,
                p.shard,
                r.t_ns,
                p.t_ns
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "final window {final_w} has route->process pairs to check");

    // `sso trace DIR` resolves the dump inside the directory and
    // renders the timeline.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_sso"))
        .args(["trace", dir.to_str().expect("utf-8 tempdir")])
        .output()
        .expect("sso trace runs");
    assert!(out.status.success(), "sso trace failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).expect("timeline is utf-8");
    assert!(text.contains("reason=crash"), "timeline names the trigger:\n{text}");
    assert!(text.contains("process"), "timeline shows worker stages");
    let _ = std::fs::remove_dir_all(&dir);
}
