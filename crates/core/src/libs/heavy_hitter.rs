//! The heavy-hitter (lossy counting) SFUN library (§4.2, §6.6).
//!
//! Manku–Motwani lossy counting maps onto the operator with almost no
//! special machinery: the groups *are* the tracked entries, `count(*)`
//! is the entry frequency `f`, and `first(current_bucket())` is the
//! bucket in which the entry was created (so `Δ = first - 1`). The only
//! stateful pieces are the per-window tuple counter and bucket id:
//!
//! * `local_count(w)` — increments the counter; `TRUE` once every `w`
//!   tuples, i.e. at every bucket boundary (the CLEANING WHEN trigger);
//! * `current_bucket()` — the 1-based id of the bucket the *next* tuple
//!   falls in (`count/w + 1`), which equals `⌈i/w⌉` when evaluated
//!   before `local_count` increments for tuple `i`.
//!
//! The prune rule is then the ordinary CLEANING BY expression
//!
//! ```text
//! CLEANING BY count(*) + first(current_bucket()) > current_bucket()
//! ```
//!
//! which is exactly lossy counting's *keep* condition `f + Δ > b`.
//! (The paper's §6.6 example writes the *delete* condition with `<`;
//! under the operator's false-means-evict semantics the keep form above
//! is the consistent one.)

use sso_types::wire::{put_u64, Reader};
use sso_types::{Value, ValueKind};

use crate::sfun::args::u64_arg;
use crate::sfun::{state_mut, SfunLibrary, Signature};

/// The shared state: bucket width and per-window tuple count.
#[derive(Debug, Clone, Default)]
pub struct HeavyHitterState {
    /// Bucket width `w = ⌈1/ε⌉`; set lazily from `local_count`'s
    /// argument.
    pub w: u64,
    /// Tuples processed this window.
    pub count: u64,
}

impl HeavyHitterState {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        put_u64(&mut out, self.w);
        put_u64(&mut out, self.count);
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let st = HeavyHitterState { w: r.take_u64().ok()?, count: r.take_u64().ok()? };
        r.is_empty().then_some(st)
    }
}

/// Build the heavy-hitter SFUN library. State is per-window (no
/// carry-over): the paper's query emits its report every window.
pub fn library() -> SfunLibrary {
    SfunLibrary::new("heavy_hitter_state", |_prev| Box::new(HeavyHitterState::default()))
        .with_persist(
            |state| state.downcast_ref::<HeavyHitterState>().map(HeavyHitterState::encode),
            |bytes| {
                HeavyHitterState::decode(bytes)
                    .map(|s| Box::new(s) as Box<dyn std::any::Any + Send>)
            },
        )
        .register("local_count", Signature::exact(1, ValueKind::Bool), |state, argv| {
            let s = state_mut::<HeavyHitterState>(state, "local_count")?;
            if s.w == 0 {
                let w = u64_arg("local_count", argv, 0)?;
                if w == 0 {
                    return Err("local_count: bucket width must be positive".to_string());
                }
                s.w = w;
            }
            s.count += 1;
            Ok(Value::Bool(s.count % s.w == 0))
        })
        .register("current_bucket", Signature::exact(0, ValueKind::UInt), |state, _argv| {
            let s = state_mut::<HeavyHitterState>(state, "current_bucket")?;
            if s.w == 0 {
                // Before the first local_count call everything is in
                // bucket 1.
                return Ok(Value::U64(1));
            }
            Ok(Value::U64(s.count / s.w + 1))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    fn call(lib: &SfunLibrary, state: &mut Box<dyn Any + Send>, f: &str, args: &[Value]) -> Value {
        lib.function(f).expect(f)(state.as_mut(), args).unwrap()
    }

    #[test]
    fn local_count_fires_every_w_tuples() {
        let lib = library();
        let mut st = lib.init_state(None);
        let mut fires = Vec::new();
        for i in 1..=10u64 {
            if call(&lib, &mut st, "local_count", &[Value::U64(3)]) == Value::Bool(true) {
                fires.push(i);
            }
        }
        assert_eq!(fires, vec![3, 6, 9]);
    }

    #[test]
    fn current_bucket_is_one_before_anything() {
        let lib = library();
        let mut st = lib.init_state(None);
        assert_eq!(call(&lib, &mut st, "current_bucket", &[]), Value::U64(1));
    }

    #[test]
    fn bucket_ids_advance_per_w_tuples() {
        let lib = library();
        let mut st = lib.init_state(None);
        // current_bucket is evaluated before local_count for each tuple
        // (aggregate updates precede CLEANING WHEN in the operator loop).
        let mut seen = Vec::new();
        for _ in 0..7 {
            seen.push(call(&lib, &mut st, "current_bucket", &[]).as_u64().unwrap());
            call(&lib, &mut st, "local_count", &[Value::U64(3)]);
        }
        // Tuples 1..=7 with w=3: buckets 1,1,1,2,2,2,3.
        assert_eq!(seen, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn keep_rule_matches_lossy_counting() {
        // Simulate the CLEANING BY expression f + first > current for an
        // entry inserted in bucket 1 with f = 1: at the end of bucket 1
        // (count = w, current_bucket = 2 after increment... evaluated in
        // the cleaning pass, count/w+1 = 2), keep iff 1 + 1 > 2 = false:
        // pruned, matching f + Δ <= b_current with Δ = 0, b = 1... keep
        // iff f + Δ > b  ⇔  1 + 0 > 1 = false.
        let lib = library();
        let mut st = lib.init_state(None);
        for _ in 0..3 {
            call(&lib, &mut st, "local_count", &[Value::U64(3)]);
        }
        let current = call(&lib, &mut st, "current_bucket", &[]).as_u64().unwrap();
        assert_eq!(current, 2);
        let f = 1u64;
        let first = 1u64;
        assert!(f + first <= current, "singleton from bucket 1 is pruned");
        let f_heavy = 3u64;
        assert!(f_heavy + first > current, "heavy entry survives");
    }

    #[test]
    fn zero_width_rejected() {
        let lib = library();
        let mut st = lib.init_state(None);
        let f = lib.function("local_count").unwrap();
        assert!(f(st.as_mut(), &[Value::U64(0)]).unwrap_err().contains("positive"));
    }
}
