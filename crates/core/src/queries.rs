//! Ready-made [`OperatorSpec`]s for the paper's query examples (§6.1,
//! §6.6), built programmatically against the `PKT` schema. The textual
//! query front end in `sso-query` produces equivalent specs from query
//! strings; these builders exist so the operator can be exercised
//! without the parser, and are what the benchmark harness uses.

use std::sync::Arc;

use sso_types::Packet;

use crate::agg::AggSpec;
use crate::error::OpError;
use crate::expr::Expr;
use crate::libs::subset_sum::SubsetSumOpConfig;
use crate::libs::{heavy_hitter, reservoir, subset_sum};
use crate::operator::OperatorSpec;
use crate::sfun::SfunLibrary;
use crate::superagg::SuperAggSpec;

/// The textual form of every builder in this module, with concrete
/// parameter values, in the surface syntax the `sso-query` front end
/// parses. Each entry is `(builder name, query text)`.
///
/// The query crate's round-trip tests parse each text, pretty-print
/// the AST, and re-parse, asserting structural equality — so the doc
/// comments above the builders cannot silently drift away from what
/// the grammar accepts.
pub const EXAMPLE_QUERIES: &[(&str, &str)] = &[
    ("total_sum_query", "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/60 as tb"),
    (
        "subset_sum_query",
        "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKTS \
         WHERE ssample(len, 100) = TRUE \
         GROUP BY time/60 as tb, srcIP, destIP, uts \
         HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE \
         CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE \
         CLEANING BY ssclean_with(sum(len)) = TRUE",
    ),
    (
        "basic_subset_sum_query",
        "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKTS \
         WHERE ssample(len, 1) = TRUE \
         GROUP BY time/60 as tb, srcIP, destIP, uts",
    ),
    (
        "heavy_hitters_query",
        "SELECT tb, srcIP, sum(len), count(*) FROM TCP \
         GROUP BY time/60 as tb, srcIP \
         HAVING count(*) >= 50 \
         CLEANING WHEN local_count(100) = TRUE \
         CLEANING BY count(*) + first(current_bucket()) > current_bucket()",
    ),
    (
        "minhash_query",
        "SELECT tb, srcIP, HX FROM TCP \
         WHERE HX <= Kth_smallest_value$(HX, 10) \
         GROUP BY time/60 as tb, srcIP, H(destIP) as HX \
         SUPERGROUP tb, srcIP \
         HAVING HX <= Kth_smallest_value$(HX, 10) \
         CLEANING WHEN count_distinct$(*) > 10 \
         CLEANING BY HX <= Kth_smallest_value$(HX, 10)",
    ),
    (
        "distinct_sample_query",
        "SELECT tb, srcIP, count(*), dscale(), count_distinct$(*) FROM PKT \
         WHERE dsample(srcIP, 256) = TRUE \
         GROUP BY time/60 as tb, srcIP \
         CLEANING WHEN ddo_clean(count_distinct$(*)) = TRUE \
         CLEANING BY dclean_with(srcIP) = TRUE",
    ),
    (
        "reservoir_query",
        "SELECT tb, srcIP, destIP FROM TCP \
         WHERE rsample(25) = TRUE \
         GROUP BY time/60 as tb, srcIP, destIP \
         HAVING rsfinal_clean(count_distinct$(*)) = TRUE \
         CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE \
         CLEANING BY rsclean_with() = TRUE",
    ),
];

/// Build an SFUN-call expression against library slot `lib_idx`.
pub fn sfun_expr(
    lib_idx: usize,
    lib: &SfunLibrary,
    name: &'static str,
    args: Vec<Expr>,
) -> Result<Expr, OpError> {
    let fun = lib.function(name).ok_or_else(|| {
        OpError::InvalidSpec(format!("library {} has no function {name}", lib.name()))
    })?;
    Ok(Expr::Sfun { lib: lib_idx, name, fun, args })
}

fn col(name: &str) -> Expr {
    let idx = Packet::schema().index_of(name).expect("PKT column");
    Expr::Column(idx)
}

/// Plain per-window aggregation — the "actual" query of the accuracy
/// experiment:
///
/// ```text
/// SELECT tb, sum(len), count(*)
/// FROM PKT
/// GROUP BY time/<window_secs> as tb
/// ```
pub fn total_sum_query(window_secs: u64) -> OperatorSpec {
    let mut spec = OperatorSpec::aggregation(
        vec![
            ("tb".into(), Expr::GroupVar(0)),
            ("sum_len".into(), Expr::Aggregate(0)),
            ("cnt".into(), Expr::Aggregate(1)),
        ],
        vec![("tb".into(), col("time").div(Expr::lit(window_secs)))],
    );
    spec.window_indices = vec![0];
    spec.aggregates = vec![AggSpec::Sum(col("len")), AggSpec::Count];
    spec
}

/// The dynamic subset-sum sampling query of §6.1:
///
/// ```text
/// SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
/// FROM PKTS
/// WHERE ssample(len, N) = TRUE
/// GROUP BY time/<window_secs> as tb, srcIP, destIP, uts
/// HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
/// CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
/// CLEANING BY ssclean_with(sum(len)) = TRUE
/// ```
///
/// `uts` in the GROUP BY makes every packet its own group. When
/// `with_stats` is set, two extra output columns `cleanings` and
/// `admissions` expose the per-window counters Figures 3–4 chart.
pub fn subset_sum_query(
    window_secs: u64,
    cfg: SubsetSumOpConfig,
    with_stats: bool,
) -> Result<OperatorSpec, OpError> {
    if cfg.target == 0 {
        return Err(OpError::InvalidSpec("subset-sum target sample size must be set".into()));
    }
    let lib = Arc::new(subset_sum::library(cfg));
    let ssample = sfun_expr(0, &lib, "ssample", vec![col("len"), Expr::lit(cfg.target as u64)])?;
    let ssthreshold = sfun_expr(0, &lib, "ssthreshold", vec![])?;
    let ssdo_clean = sfun_expr(0, &lib, "ssdo_clean", vec![Expr::SuperAgg(0)])?;
    let ssclean_with = sfun_expr(0, &lib, "ssclean_with", vec![Expr::Aggregate(0)])?;
    let ssfinal_clean =
        sfun_expr(0, &lib, "ssfinal_clean", vec![Expr::Aggregate(0), Expr::SuperAgg(0)])?;

    let mut select = vec![
        ("tb".to_string(), Expr::GroupVar(0)),
        ("srcIP".to_string(), Expr::GroupVar(1)),
        ("destIP".to_string(), Expr::GroupVar(2)),
        (
            "adj_len".to_string(),
            Expr::Scalar {
                name: "UMAX",
                fun: crate::scalar::umax(),
                args: vec![Expr::Aggregate(0), ssthreshold],
            },
        ),
    ];
    if with_stats {
        select.push(("cleanings".into(), sfun_expr(0, &lib, "sscleanings", vec![])?));
        select.push(("admissions".into(), sfun_expr(0, &lib, "ssadmissions", vec![])?));
    }

    Ok(OperatorSpec {
        select,
        where_clause: Some(ssample),
        group_by: vec![
            ("tb".into(), col("time").div(Expr::lit(window_secs))),
            ("srcIP".into(), col("srcIP")),
            ("destIP".into(), col("destIP")),
            ("uts".into(), col("uts")),
        ],
        window_indices: vec![0],
        supergroup_indices: vec![],
        having: Some(ssfinal_clean),
        cleaning_when: Some(ssdo_clean),
        cleaning_by: Some(ssclean_with),
        aggregates: vec![AggSpec::Sum(col("len"))],
        superaggs: vec![SuperAggSpec::CountDistinct],
        sfun_libs: vec![lib],
    })
}

/// Basic (fixed-threshold) subset-sum sampling expressed as a plain
/// selection-style query — the paper's Figure 5 comparator ("basic
/// subset-sum sampling using a user-defined function in a selection
/// operator"):
///
/// ```text
/// SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
/// FROM PKTS
/// WHERE ssample(len, 1) = TRUE
/// GROUP BY time/<window_secs> as tb, srcIP, destIP, uts
/// ```
///
/// No cleaning clauses: the threshold stays at `z` and the sample size
/// floats with the load.
pub fn basic_subset_sum_query(window_secs: u64, z: f64) -> Result<OperatorSpec, OpError> {
    let cfg = SubsetSumOpConfig {
        target: 1, // unused: no cleaning ever triggers
        initial_z: z,
        relax_factor: 1.0,
        gamma: f64::MAX,
    };
    let lib = Arc::new(subset_sum::library(cfg));
    let ssample = sfun_expr(0, &lib, "ssample", vec![col("len"), Expr::lit(1u64)])?;
    let ssthreshold = sfun_expr(0, &lib, "ssthreshold", vec![])?;
    Ok(OperatorSpec {
        select: vec![
            ("tb".to_string(), Expr::GroupVar(0)),
            ("srcIP".to_string(), Expr::GroupVar(1)),
            ("destIP".to_string(), Expr::GroupVar(2)),
            (
                "adj_len".to_string(),
                Expr::Scalar {
                    name: "UMAX",
                    fun: crate::scalar::umax(),
                    args: vec![Expr::Aggregate(0), ssthreshold],
                },
            ),
        ],
        where_clause: Some(ssample),
        group_by: vec![
            ("tb".into(), col("time").div(Expr::lit(window_secs))),
            ("srcIP".into(), col("srcIP")),
            ("destIP".into(), col("destIP")),
            ("uts".into(), col("uts")),
        ],
        window_indices: vec![0],
        supergroup_indices: vec![],
        having: None,
        cleaning_when: None,
        cleaning_by: None,
        aggregates: vec![AggSpec::Sum(col("len"))],
        superaggs: vec![],
        sfun_libs: vec![lib],
    })
}

/// The heavy-hitters query of §6.6 (Manku–Motwani over the operator):
///
/// ```text
/// SELECT tb, srcIP, sum(len), count(*)
/// FROM TCP
/// GROUP BY time/<window_secs> as tb, srcIP
/// [HAVING count(*) >= <min_count>]
/// CLEANING WHEN local_count(<bucket_width>) = TRUE
/// CLEANING BY count(*) + first(current_bucket()) > current_bucket()
/// ```
///
/// The CLEANING BY expression is lossy counting's keep rule `f + Δ > b`
/// (the paper's example writes the delete rule; see
/// [`crate::libs::heavy_hitter`]).
pub fn heavy_hitters_query(
    window_secs: u64,
    bucket_width: u64,
    min_count: Option<u64>,
) -> Result<OperatorSpec, OpError> {
    let lib = Arc::new(heavy_hitter::library());
    let local_count = sfun_expr(0, &lib, "local_count", vec![Expr::lit(bucket_width)])?;
    let current_bucket_clean = sfun_expr(0, &lib, "current_bucket", vec![])?;
    let current_bucket_agg = sfun_expr(0, &lib, "current_bucket", vec![])?;

    Ok(OperatorSpec {
        select: vec![
            ("tb".into(), Expr::GroupVar(0)),
            ("srcIP".into(), Expr::GroupVar(1)),
            ("sum_len".into(), Expr::Aggregate(0)),
            ("cnt".into(), Expr::Aggregate(1)),
        ],
        where_clause: None,
        group_by: vec![
            ("tb".into(), col("time").div(Expr::lit(window_secs))),
            ("srcIP".into(), col("srcIP")),
        ],
        window_indices: vec![0],
        supergroup_indices: vec![],
        having: min_count.map(|m| Expr::Aggregate(1).ge(Expr::lit(m))),
        cleaning_when: Some(local_count),
        cleaning_by: Some(Expr::Aggregate(1).add(Expr::Aggregate(2)).gt(current_bucket_clean)),
        aggregates: vec![
            AggSpec::Sum(col("len")),
            AggSpec::Count,
            AggSpec::First(current_bucket_agg),
        ],
        superaggs: vec![],
        sfun_libs: vec![lib],
    })
}

/// The min-hash query of §6.6: `k` min-hash values of destination IP per
/// source IP, per window.
///
/// ```text
/// SELECT tb, srcIP, HX
/// FROM TCP
/// WHERE HX <= Kth_smallest_value$(HX, k)
/// GROUP BY time/<window_secs> as tb, srcIP, H(destIP) as HX
/// SUPERGROUP tb, srcIP
/// HAVING HX <= Kth_smallest_value$(HX, k)
/// CLEANING WHEN count_distinct$(*) > k
/// CLEANING BY HX <= Kth_smallest_value$(HX, k)
/// ```
///
/// (The paper triggers on `>= k`; we trigger on `> k` so a full-but-
/// not-overfull signature does not run a no-op cleaning pass per tuple.)
pub fn minhash_query(window_secs: u64, k: usize) -> Result<OperatorSpec, OpError> {
    if k == 0 {
        return Err(OpError::InvalidSpec("min-hash signature size must be positive".into()));
    }
    let hx = || Expr::GroupVar(2);
    let kth = || Expr::SuperAgg(0);
    Ok(OperatorSpec {
        select: vec![
            ("tb".into(), Expr::GroupVar(0)),
            ("srcIP".into(), Expr::GroupVar(1)),
            ("HX".into(), Expr::GroupVar(2)),
        ],
        where_clause: Some(hx().le(kth())),
        group_by: vec![
            ("tb".into(), col("time").div(Expr::lit(window_secs))),
            ("srcIP".into(), col("srcIP")),
            (
                "HX".into(),
                Expr::Scalar {
                    name: "H",
                    fun: crate::scalar::hash_fn(),
                    args: vec![col("destIP")],
                },
            ),
        ],
        window_indices: vec![0],
        supergroup_indices: vec![1],
        having: Some(hx().le(kth())),
        cleaning_when: Some(Expr::SuperAgg(1).gt(Expr::lit(k as u64))),
        cleaning_by: Some(hx().le(kth())),
        aggregates: vec![AggSpec::Count],
        superaggs: vec![
            SuperAggSpec::KthSmallest { expr: Expr::GroupVar(2), k },
            SuperAggSpec::CountDistinct,
        ],
        sfun_libs: vec![],
    })
}

/// Distinct sampling (Gibbons, VLDB 2001 — the paper's reference \[19\])
/// on the operator: a bounded uniform sample of distinct source hosts
/// per window, with `count_distinct$(*) · dscale()` estimating the true
/// distinct count.
///
/// ```text
/// SELECT tb, srcIP, count(*), dscale(), count_distinct$(*)
/// FROM PKT
/// WHERE dsample(srcIP, capacity) = TRUE
/// GROUP BY time/<window_secs> as tb, srcIP
/// CLEANING WHEN ddo_clean(count_distinct$(*)) = TRUE
/// CLEANING BY dclean_with(srcIP) = TRUE
/// ```
pub fn distinct_sample_query(
    window_secs: u64,
    cfg: crate::libs::distinct::DistinctOpConfig,
) -> Result<OperatorSpec, OpError> {
    if cfg.capacity == 0 {
        return Err(OpError::InvalidSpec("distinct sampler capacity must be set".into()));
    }
    let lib = Arc::new(crate::libs::distinct::library(cfg));
    let dsample =
        sfun_expr(0, &lib, "dsample", vec![col("srcIP"), Expr::lit(cfg.capacity as u64)])?;
    let ddo_clean = sfun_expr(0, &lib, "ddo_clean", vec![Expr::SuperAgg(0)])?;
    let dclean_with = sfun_expr(0, &lib, "dclean_with", vec![Expr::GroupVar(1)])?;
    let dscale = sfun_expr(0, &lib, "dscale", vec![])?;
    Ok(OperatorSpec {
        select: vec![
            ("tb".into(), Expr::GroupVar(0)),
            ("srcIP".into(), Expr::GroupVar(1)),
            ("cnt".into(), Expr::Aggregate(0)),
            ("scale".into(), dscale),
            ("retained".into(), Expr::SuperAgg(0)),
        ],
        where_clause: Some(dsample),
        group_by: vec![
            ("tb".into(), col("time").div(Expr::lit(window_secs))),
            ("srcIP".into(), col("srcIP")),
        ],
        window_indices: vec![0],
        supergroup_indices: vec![],
        having: None,
        cleaning_when: Some(ddo_clean),
        cleaning_by: Some(dclean_with),
        aggregates: vec![AggSpec::Count],
        superaggs: vec![SuperAggSpec::CountDistinct],
        sfun_libs: vec![lib],
    })
}

/// The reservoir-sampling query of §6.6: `n` uniform random
/// (srcIP, destIP) samples per window.
///
/// ```text
/// SELECT tb, srcIP, destIP
/// FROM TCP
/// WHERE rsample(n) = TRUE
/// GROUP BY time/<window_secs> as tb, srcIP, destIP
/// HAVING rsfinal_clean(count_distinct$(*)) = TRUE
/// CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
/// CLEANING BY rsclean_with() = TRUE
/// ```
pub fn reservoir_query(
    window_secs: u64,
    cfg: reservoir::ReservoirOpConfig,
) -> Result<OperatorSpec, OpError> {
    if cfg.n == 0 {
        return Err(OpError::InvalidSpec("reservoir sample size must be set".into()));
    }
    let lib = Arc::new(reservoir::library(cfg));
    let rsample = sfun_expr(0, &lib, "rsample", vec![Expr::lit(cfg.n as u64)])?;
    let rsdo_clean = sfun_expr(0, &lib, "rsdo_clean", vec![Expr::SuperAgg(0)])?;
    let rsclean_with = sfun_expr(0, &lib, "rsclean_with", vec![])?;
    let rsfinal_clean = sfun_expr(0, &lib, "rsfinal_clean", vec![Expr::SuperAgg(0)])?;
    Ok(OperatorSpec {
        select: vec![
            ("tb".into(), Expr::GroupVar(0)),
            ("srcIP".into(), Expr::GroupVar(1)),
            ("destIP".into(), Expr::GroupVar(2)),
        ],
        where_clause: Some(rsample),
        group_by: vec![
            ("tb".into(), col("time").div(Expr::lit(window_secs))),
            ("srcIP".into(), col("srcIP")),
            ("destIP".into(), col("destIP")),
        ],
        window_indices: vec![0],
        supergroup_indices: vec![],
        having: Some(rsfinal_clean),
        cleaning_when: Some(rsdo_clean),
        cleaning_by: Some(rsclean_with),
        aggregates: vec![AggSpec::Count],
        superaggs: vec![SuperAggSpec::CountDistinct],
        sfun_libs: vec![lib],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::SamplingOperator;
    use sso_types::{Protocol, Tuple, Value};

    /// A small deterministic packet stream: `count` packets per second
    /// for `secs` seconds, round-robin over `flows` (src,dst) pairs with
    /// the given length pattern.
    fn stream(secs: u64, per_sec: u64, flows: &[(u32, u32)], lens: &[u32]) -> Vec<Tuple> {
        let mut out = Vec::new();
        let mut i = 0u64;
        for s in 0..secs {
            for j in 0..per_sec {
                let (src, dst) = flows[(i % flows.len() as u64) as usize];
                let len = lens[(i % lens.len() as u64) as usize];
                let p = Packet {
                    uts: s * 1_000_000_000 + j * (1_000_000_000 / per_sec) + 1,
                    src_ip: src,
                    dest_ip: dst,
                    src_port: 1000,
                    dest_port: 80,
                    proto: Protocol::Tcp,
                    len,
                };
                out.push(p.to_tuple());
                i += 1;
            }
        }
        out
    }

    #[test]
    fn total_sum_query_matches_manual_sum() {
        let tuples = stream(4, 100, &[(1, 2)], &[100, 200]);
        let mut op = SamplingOperator::new(total_sum_query(2)).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert_eq!(o.rows.len(), 1);
            assert_eq!(o.rows[0].get(1), &Value::U64(200 * 150)); // 200 pkts * mean 150
            assert_eq!(o.rows[0].get(2), &Value::U64(200));
        }
    }

    #[test]
    fn subset_sum_query_estimates_window_volume() {
        // 2000 packets/window of mixed sizes; target 100 samples.
        let tuples = stream(4, 1000, &[(1, 2), (3, 4), (5, 6)], &[40, 1500, 576, 40, 1500]);
        let true_per_window: u64 = 2 * 1000 * (40 + 1500 + 576 + 40 + 1500) / 5; // uniform pattern
        let cfg = SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() };
        let spec = subset_sum_query(2, cfg, true).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert!(o.rows.len() <= 110, "sample should be near target, got {}", o.rows.len());
            let est: f64 = o.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
            let rel = (est - true_per_window as f64).abs() / true_per_window as f64;
            assert!(rel < 0.35, "estimate {est} vs {true_per_window} (rel {rel:.3})");
        }
    }

    #[test]
    fn subset_sum_stats_columns_present() {
        let tuples = stream(1, 500, &[(1, 2)], &[100]);
        let cfg = SubsetSumOpConfig { target: 20, initial_z: 1.0, ..Default::default() };
        let spec = subset_sum_query(1, cfg, true).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        let row = &outs[0].rows[0];
        let cleanings = row.get(4).as_u64().unwrap();
        let admissions = row.get(5).as_u64().unwrap();
        assert!(cleanings > 0, "cleanings should have run");
        assert!(admissions >= 20, "admissions {admissions}");
    }

    #[test]
    fn heavy_hitters_query_finds_the_elephant() {
        // Source 99 sends 60% of packets; sources 1..=40 share the rest.
        let mut flows = vec![(99u32, 1u32); 60];
        for s in 1..=40u32 {
            flows.push((s, 1));
        }
        let tuples = stream(2, 1000, &flows, &[100]);
        let spec = heavy_hitters_query(2, 100, Some(50)).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        let rows = &outs[0].rows;
        assert!(
            rows.iter().any(|r| r.get(1) == &Value::U64(99)),
            "heavy hitter 99 must be reported"
        );
        // The lossy-counting table stays small despite 41 sources.
        assert!(outs[0].stats.cleaning_phases > 0);
    }

    #[test]
    fn minhash_query_emits_k_smallest_hashes_per_source() {
        // One source, 50 distinct destinations, k = 10.
        let flows: Vec<(u32, u32)> = (0..50).map(|d| (7, 100 + d)).collect();
        let tuples = stream(1, 500, &flows, &[100]);
        let spec = minhash_query(1, 10).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        let rows = &outs[0].rows;
        assert_eq!(rows.len(), 10, "exactly k min-hash values");
        // They must be the k smallest hashes of the 50 destinations.
        let mut expected: Vec<u64> =
            (0..50u64).map(|d| sso_sampling::hash::splitmix64(100 + d)).collect();
        expected.sort_unstable();
        expected.truncate(10);
        let mut got: Vec<u64> = rows.iter().map(|r| r.get(2).as_u64().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn minhash_query_is_per_source_supergroup() {
        // Two sources with disjoint destination sets.
        let mut flows: Vec<(u32, u32)> = (0..30).map(|d| (1, 100 + d)).collect();
        flows.extend((0..30).map(|d| (2, 500 + d)));
        let tuples = stream(1, 600, &flows, &[100]);
        let spec = minhash_query(1, 5).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        let per_src =
            |src: u64| outs[0].rows.iter().filter(|r| r.get(1) == &Value::U64(src)).count();
        assert_eq!(per_src(1), 5);
        assert_eq!(per_src(2), 5);
    }

    #[test]
    fn reservoir_query_returns_exactly_n_when_enough_input() {
        let flows: Vec<(u32, u32)> = (0..200).map(|d| (d, d + 1000)).collect();
        let tuples = stream(1, 2000, &flows, &[100]);
        let cfg = reservoir::ReservoirOpConfig { n: 25, ..Default::default() };
        let spec = reservoir_query(1, cfg).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs[0].rows.len(), 25);
    }

    #[test]
    fn reservoir_query_keeps_all_when_short() {
        let flows: Vec<(u32, u32)> = (0..10).map(|d| (d, d + 1000)).collect();
        let tuples = stream(1, 10, &flows, &[100]);
        let cfg = reservoir::ReservoirOpConfig { n: 25, ..Default::default() };
        let spec = reservoir_query(1, cfg).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs[0].rows.len(), 10, "short window keeps everything");
    }

    #[test]
    fn distinct_sample_query_bounds_sample_and_estimates_distinct_count() {
        // 3000 distinct sources, capacity 256.
        let flows: Vec<(u32, u32)> = (0..3000).map(|s| (s, 9)).collect();
        let tuples = stream(1, 9000, &flows, &[100]);
        let cfg = crate::libs::distinct::DistinctOpConfig { capacity: 256, carry_level: true };
        let mut op = SamplingOperator::new(distinct_sample_query(1, cfg).unwrap()).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        let rows = &outs[0].rows;
        assert!(rows.len() <= 256, "sample bounded: {}", rows.len());
        assert!(!rows.is_empty());
        // Estimate = retained * 2^level, read from the output columns.
        let retained = rows[0].get(4).as_f64().unwrap();
        let scale = rows[0].get(3).as_f64().unwrap();
        let est = retained * scale;
        let rel = (est - 3000.0).abs() / 3000.0;
        assert!(rel < 0.35, "distinct estimate {est} vs 3000 (rel {rel:.3})");
        assert!(outs[0].stats.cleaning_phases > 0, "level must have risen");
    }

    #[test]
    fn basic_subset_sum_query_holds_threshold_across_windows() {
        // Fixed z = 600: each window of 200 packets x 150B mean = 30000B
        // yields ~50 samples, every window, with unbiased estimates.
        let tuples = stream(4, 100, &[(1, 2)], &[100, 200]);
        let spec = basic_subset_sum_query(2, 600.0).unwrap();
        let mut op = SamplingOperator::new(spec).unwrap();
        let outs = op.run(tuples.iter()).unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            let est: f64 = o.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
            let truth = 200.0 * 150.0;
            assert!((est - truth).abs() <= 600.0, "estimate {est} vs {truth} beyond one threshold");
            assert_eq!(o.stats.cleaning_phases, 0, "basic variant never cleans");
        }
    }

    #[test]
    fn builders_reject_zero_sizes() {
        assert!(subset_sum_query(20, SubsetSumOpConfig::default(), false).is_err());
        assert!(minhash_query(60, 0).is_err());
        assert!(reservoir_query(60, reservoir::ReservoirOpConfig { n: 0, ..Default::default() })
            .is_err());
    }
}
