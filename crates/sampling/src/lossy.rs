//! Lossy counting (Manku & Motwani, *Approximate frequency counts over
//! data streams*, VLDB 2002) — the paper's representative "heavy hitters"
//! algorithm (§4.2).
//!
//! The stream is conceptually divided into buckets of width `w = ⌈1/ε⌉`.
//! Each tracked element carries `(f, Δ)`: its counted frequency since
//! insertion and the maximum frequency it could have had before insertion
//! (`b_current - 1` at insertion time). At every bucket boundary, entries
//! with `f + Δ ≤ b_current` are pruned.
//!
//! Guarantees (for true frequency `f_e` and support threshold `s`):
//! * every element with `f_e ≥ s·N` is reported (no false negatives);
//! * no element with `f_e < (s - ε)·N` is reported;
//! * estimated frequencies undercount by at most `ε·N`;
//! * space is `O((1/ε)·log(ε·N))`.

use std::collections::HashMap;
use std::hash::Hash;

/// One tracked entry in the lossy-counting sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossyEntry {
    /// Counted occurrences since the element entered the sketch.
    pub frequency: u64,
    /// Maximum possible undercount (`b_current - 1` at insertion).
    pub delta: u64,
}

/// The Manku–Motwani lossy-counting sketch.
#[derive(Debug, Clone)]
pub struct LossyCounter<T: Eq + Hash> {
    epsilon: f64,
    bucket_width: u64,
    stream_len: u64,
    entries: HashMap<T, LossyEntry>,
    prunes: u64,
}

impl<T: Eq + Hash + Clone> LossyCounter<T> {
    /// Create a sketch with error bound `epsilon` (0 < ε < 1).
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        LossyCounter {
            epsilon,
            bucket_width: (1.0 / epsilon).ceil() as u64,
            stream_len: 0,
            entries: HashMap::new(),
            prunes: 0,
        }
    }

    /// The current bucket id, `⌈N / w⌉` (1-based; 0 before any insert).
    pub fn current_bucket(&self) -> u64 {
        self.stream_len.div_ceil(self.bucket_width)
    }

    /// Observe one element.
    pub fn insert(&mut self, item: T) {
        self.stream_len += 1;
        let b_current = self.current_bucket();
        self.entries
            .entry(item)
            .and_modify(|e| e.frequency += 1)
            .or_insert(LossyEntry { frequency: 1, delta: b_current - 1 });
        // Bucket boundary: prune.
        if self.stream_len.is_multiple_of(self.bucket_width) {
            self.entries.retain(|_, e| e.frequency + e.delta > b_current);
            self.prunes += 1;
        }
    }

    /// Elements with estimated frequency at least `(s - ε)·N`, i.e. the
    /// answer to a heavy-hitters query with support `s`.
    pub fn query(&self, support: f64) -> Vec<(T, u64)> {
        let threshold = (support - self.epsilon) * self.stream_len as f64;
        let mut out: Vec<(T, u64)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.frequency as f64 >= threshold)
            .map(|(k, e)| (k.clone(), e.frequency))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// Estimated frequency of `item` (0 if not tracked). Undercounts the
    /// true frequency by at most `ε·N`.
    pub fn estimate(&self, item: &T) -> u64 {
        self.entries.get(item).map(|e| e.frequency).unwrap_or(0)
    }

    /// Total elements observed.
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Number of tracked entries (the sketch's space).
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// How many prune (cleaning) phases have run.
    pub fn prunes(&self) -> u64 {
        self.prunes
    }

    /// The configured error bound.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Bucket width `w = ⌈1/ε⌉`.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Merge two summaries built over *disjoint* substreams into one
    /// summary of the concatenated stream with error bound `ε₁ + ε₂`
    /// (the distributed lossy-counting merge of Manku–Motwani §5).
    ///
    /// For each element, merged `f` is the sum of the per-summary counts
    /// and merged `Δ` the sum of the per-summary maximum undercounts —
    /// `Δᵢ` where tracked, `bᵢ − 1` (that summary's prune ceiling) where
    /// not. Entries whose `f + Δ` cannot reach the combined ceiling are
    /// pruned, exactly like the per-bucket rule. The result answers
    /// [`LossyCounter::query`] / [`LossyCounter::estimate`] with
    /// undercount at most `(ε₁ + ε₂)·(N₁ + N₂)`; it is a window-close
    /// summary combination, not a resumable insertion state.
    ///
    /// # Panics
    /// Panics if `ε₁ + ε₂ ≥ 1`.
    pub fn merge(&self, other: &LossyCounter<T>) -> LossyCounter<T> {
        let epsilon = self.epsilon + other.epsilon;
        assert!(epsilon < 1.0, "merged epsilon must stay below 1");
        // Per-summary ceiling on any untracked element's true count.
        let d1 = self.current_bucket().saturating_sub(1);
        let d2 = other.current_bucket().saturating_sub(1);
        let mut entries: HashMap<T, LossyEntry> = HashMap::new();
        for key in self.entries.keys().chain(other.entries.keys()) {
            if entries.contains_key(key) {
                continue;
            }
            let a = self.entries.get(key);
            let b = other.entries.get(key);
            let frequency = a.map_or(0, |e| e.frequency) + b.map_or(0, |e| e.frequency);
            let delta = a.map_or(d1, |e| e.delta) + b.map_or(d2, |e| e.delta);
            if frequency + delta > d1 + d2 {
                entries.insert(key.clone(), LossyEntry { frequency, delta });
            }
        }
        LossyCounter {
            epsilon,
            bucket_width: (1.0 / epsilon).ceil() as u64,
            stream_len: self.stream_len + other.stream_len,
            entries,
            prunes: self.prunes + other.prunes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn rejects_bad_epsilon() {
        let _ = LossyCounter::<u64>::new(1.5);
    }

    #[test]
    fn bucket_width_is_ceil_inverse_epsilon() {
        assert_eq!(LossyCounter::<u64>::new(0.01).bucket_width(), 100);
        assert_eq!(LossyCounter::<u64>::new(0.3).bucket_width(), 4);
    }

    #[test]
    fn exact_counts_within_first_bucket() {
        let mut lc = LossyCounter::new(0.1); // w = 10
        for _ in 0..3 {
            lc.insert("a");
        }
        lc.insert("b");
        assert_eq!(lc.estimate(&"a"), 3);
        assert_eq!(lc.estimate(&"b"), 1);
        assert_eq!(lc.estimate(&"c"), 0);
    }

    #[test]
    fn prunes_rare_items_at_bucket_boundary() {
        let mut lc = LossyCounter::new(0.25); // w = 4
                                              // Bucket 1: a a a b  -> boundary prunes b (f=1, Δ=0, 1+0 <= 1).
        for item in ["a", "a", "a", "b"] {
            lc.insert(item);
        }
        assert_eq!(lc.estimate(&"b"), 0);
        assert_eq!(lc.estimate(&"a"), 3);
        assert_eq!(lc.prunes(), 1);
    }

    /// The two-sided guarantee on a skewed random stream.
    #[test]
    fn heavy_hitter_guarantees_hold() {
        let epsilon = 0.005;
        let support = 0.02;
        let mut lc = LossyCounter::new(epsilon);
        let mut rng = StdRng::seed_from_u64(42);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let n = 200_000;
        for _ in 0..n {
            // Zipf-ish: item k chosen with probability ~ 1/(k+1).
            let r: f64 = rng.gen();
            let item = ((1.0 / (r + 0.005)) as u32).min(400);
            lc.insert(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        let n = lc.stream_len();
        let reported: HashMap<u32, u64> = lc.query(support).into_iter().collect();
        for (&item, &f) in &truth {
            let frac = f as f64 / n as f64;
            if frac >= support {
                assert!(reported.contains_key(&item), "missed heavy hitter {item} ({frac:.4})");
            }
            if frac < support - epsilon {
                assert!(!reported.contains_key(&item), "false positive {item} ({frac:.4})");
            }
            // Estimate undercounts by at most eps*N.
            let est = lc.estimate(&item);
            assert!(est <= f, "overcount for {item}: est {est} > true {f}");
            assert!(
                f - est <= (epsilon * n as f64).ceil() as u64,
                "undercount too large for {item}: est {est}, true {f}"
            );
        }
    }

    #[test]
    fn space_stays_bounded_on_uniform_stream() {
        // Uniform stream over a large domain is the worst case for naive
        // counting; lossy counting keeps O((1/eps) log(eps N)) entries.
        let epsilon = 0.01;
        let mut lc = LossyCounter::new(epsilon);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100_000u64 {
            lc.insert(rng.gen::<u32>());
        }
        let n = lc.stream_len() as f64;
        let bound = (1.0 / epsilon) * (epsilon * n).ln();
        // Generous multiple of the theoretical bound.
        assert!(
            (lc.tracked() as f64) < 3.0 * bound,
            "tracked {} exceeds 3x bound {bound:.0}",
            lc.tracked()
        );
    }

    #[test]
    fn current_bucket_progression() {
        let mut lc = LossyCounter::new(0.5); // w = 2
        assert_eq!(lc.current_bucket(), 0);
        lc.insert(1u8);
        assert_eq!(lc.current_bucket(), 1);
        lc.insert(1);
        assert_eq!(lc.current_bucket(), 1);
        lc.insert(1);
        assert_eq!(lc.current_bucket(), 2);
    }

    #[test]
    fn query_is_sorted_by_frequency_descending() {
        let mut lc = LossyCounter::new(0.01);
        for _ in 0..5 {
            lc.insert("x");
        }
        for _ in 0..9 {
            lc.insert("y");
        }
        for _ in 0..2 {
            lc.insert("z");
        }
        let out = lc.query(0.05);
        let freqs: Vec<u64> = out.iter().map(|(_, f)| *f).collect();
        let mut sorted = freqs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(freqs, sorted);
    }
}
