//! # sso-sampling
//!
//! Standalone, operator-independent reference implementations of the four
//! stream-sampling algorithm families the paper runs on its generic
//! sampling operator (§4):
//!
//! * [`reservoir`] — fixed-size uniform sampling: Vitter's Algorithm R and
//!   the skip-based Algorithm Z ("generate a skip, jump, replace").
//! * [`lossy`] — the Manku–Motwani lossy-counting heavy-hitters sketch,
//!   and [`sticky`] — the probabilistic sticky-sampling sibling from the
//!   same VLDB 2002 paper.
//! * [`kmv`] — k-minimum-values min-hash signatures with resemblance and
//!   rarity estimators (Broder; Datar–Muthukrishnan).
//! * [`subset_sum`] — Duffield–Lund–Thorup threshold ("subset-sum")
//!   sampling: the basic fixed-threshold form, the dynamic fixed-size form
//!   with aggressive threshold adjustment, and the paper's **relaxed**
//!   cross-window variant (§7.1).
//! * [`distinct`] — Gibbons' distinct sampling (the paper's reference
//!   \[19\]): a bounded uniform sample over distinct values via hash-level
//!   thresholds, for distinct-count and distinct-subset queries.
//! * [`quantile`] — the Greenwald–Khanna quantile summary, the paper's
//!   §8 example of an algorithm whose COMPRESS phase needs inter-sample
//!   communication and therefore does *not* fit the operator (it runs
//!   as a stream UDAF instead).
//!
//! These are the ground-truth baselines: the operator-hosted versions in
//! `sso-core` are tested for distributional agreement against this crate,
//! and the benchmark harness uses these as the "algorithm outside the
//! DSMS" comparators.

pub mod distinct;
pub mod hash;
pub mod kmv;
pub mod lossy;
pub mod quantile;
pub mod reservoir;
pub mod sticky;
pub mod subset_sum;

pub use distinct::DistinctSampler;
pub use kmv::KmvSketch;
pub use lossy::LossyCounter;
pub use quantile::GkSummary;
pub use reservoir::{Reservoir, SkipReservoir};
pub use sticky::StickySampler;
pub use subset_sum::{
    merge_threshold_samples, merge_window_results, BasicSubsetSum, DynamicSubsetSum,
    MergedThresholdSample, SubsetSumConfig, ThresholdCarry, ThresholdPart, WeightedSample,
    WindowResult,
};
