//! Cascaded sampling operators (§8: "cascading one type of stream
//! sampling inside a different type of stream sampling group").
//!
//! A cascade feeds the *output rows* of one sampling operator into a
//! second operator as its input stream: e.g. a flow-aggregation query
//! whose per-window flow records are then subset-sum-sampled, or a
//! heavy-hitters query whose survivors are min-hash-sampled. The first
//! operator's [`sso_core::OperatorSpec::output_schema`] is the second
//! query's input schema, with the window variable still marked ordered
//! so the second operator windows correctly.

use sso_core::{OpError, SamplingOperator, WindowOutput};
use sso_types::Tuple;

/// Two sampling operators in series.
pub struct Cascade {
    /// The upstream operator (e.g. flow aggregation).
    pub first: SamplingOperator,
    /// The downstream operator, running over `first`'s output rows.
    pub second: SamplingOperator,
}

impl Cascade {
    /// Build a cascade. The caller is responsible for planning `second`
    /// against `first.spec().output_schema(..)`.
    pub fn new(first: SamplingOperator, second: SamplingOperator) -> Self {
        Cascade { first, second }
    }

    /// Process one input tuple; returns any window output the *second*
    /// operator produced.
    pub fn process(&mut self, tuple: &Tuple) -> Result<Vec<WindowOutput>, OpError> {
        let mut out = Vec::new();
        if let Some(w1) = self.first.process(tuple)? {
            for row in &w1.rows {
                if let Some(w2) = self.second.process(row)? {
                    out.push(w2);
                }
            }
        }
        Ok(out)
    }

    /// Flush both operators at end of stream.
    pub fn finish(&mut self) -> Result<Vec<WindowOutput>, OpError> {
        let mut out = Vec::new();
        if let Some(w1) = self.first.finish()? {
            for row in &w1.rows {
                if let Some(w2) = self.second.process(row)? {
                    out.push(w2);
                }
            }
        }
        if let Some(w2) = self.second.finish()? {
            out.push(w2);
        }
        Ok(out)
    }

    /// Run a whole tuple stream through the cascade.
    pub fn run<'a>(
        &mut self,
        tuples: impl IntoIterator<Item = &'a Tuple>,
    ) -> Result<Vec<WindowOutput>, OpError> {
        let mut out = Vec::new();
        for t in tuples {
            out.extend(self.process(t)?);
        }
        out.extend(self.finish()?);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_core::libs::subset_sum::SubsetSumOpConfig;
    use sso_core::operator::OperatorSpec;
    use sso_core::Expr;
    use sso_query::{parse_query, plan, PlannerConfig};
    use sso_types::Packet;

    /// First stage: per-window flow aggregation (flows = srcIP/destIP).
    fn flow_agg() -> SamplingOperator {
        let mut spec = OperatorSpec::aggregation(
            vec![
                ("tb".into(), Expr::GroupVar(0)),
                ("srcIP".into(), Expr::GroupVar(1)),
                ("destIP".into(), Expr::GroupVar(2)),
                ("bytes".into(), Expr::Aggregate(0)),
                ("pkts".into(), Expr::Aggregate(1)),
            ],
            vec![
                ("tb".into(), Expr::Column(0).div(Expr::lit(5u64))),
                ("srcIP".into(), Expr::Column(2)),
                ("destIP".into(), Expr::Column(3)),
            ],
        );
        spec.window_indices = vec![0];
        spec.aggregates = vec![sso_core::AggSpec::Sum(Expr::Column(7)), sso_core::AggSpec::Count];
        SamplingOperator::new(spec).unwrap()
    }

    fn packets() -> Vec<Tuple> {
        let mut out = Vec::new();
        for sec in 0..10u64 {
            for i in 0..3000u64 {
                let p = Packet {
                    uts: sec * 1_000_000_000 + i * 300_000,
                    src_ip: (i % 200) as u32,
                    dest_ip: 1000 + (i % 50) as u32,
                    src_port: 1,
                    dest_port: 2,
                    proto: sso_types::Protocol::Tcp,
                    len: 40 + (i % 1460) as u32,
                };
                out.push(p.to_tuple());
            }
        }
        out
    }

    #[test]
    fn output_schema_carries_window_ordering() {
        let op = flow_agg();
        let schema = op.spec().output_schema("FLOWS");
        assert_eq!(schema.arity(), 5);
        assert!(schema.is_ordered("tb"));
        assert!(!schema.is_ordered("bytes"));
        assert_eq!(schema.index_of("pkts").unwrap(), 4);
    }

    #[test]
    fn flow_agg_then_subset_sum_over_flows() {
        // §8's cascade: aggregate packets into flows, then subset-sum
        // sample the *flows* by their byte volume.
        let first = flow_agg();
        let flows_schema = first.spec().output_schema("FLOWS");
        let q = parse_query(
            "SELECT tb2, srcIP, destIP, UMAX(sum(bytes), ssthreshold())
             FROM FLOWS
             WHERE ssample(bytes, 50) = TRUE
             GROUP BY tb/1 as tb2, srcIP, destIP
             HAVING ssfinal_clean(sum(bytes), count_distinct$(*)) = TRUE
             CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
             CLEANING BY ssclean_with(sum(bytes)) = TRUE",
        )
        .unwrap();
        let cfg = PlannerConfig::with_configs(
            SubsetSumOpConfig { target: 50, initial_z: 1.0, ..Default::default() },
            Default::default(),
        );
        let second = SamplingOperator::new(plan(&q, &flows_schema, &cfg).unwrap()).unwrap();

        let mut cascade = Cascade::new(first, second);
        let tuples = packets();
        let windows = cascade.run(tuples.iter()).unwrap();
        assert_eq!(windows.len(), 2, "10s of packets = 2 flow windows");

        // Per-window flow-volume estimates from the sampled flows track
        // the exact per-window totals.
        let mut truth = std::collections::HashMap::<u64, f64>::new();
        for t in &tuples {
            let tb = t.get(0).as_u64().unwrap() / 5;
            *truth.entry(tb).or_default() += t.get(7).as_f64().unwrap();
        }
        for w in &windows {
            let tb = w.window.get(0).as_u64().unwrap();
            let est: f64 = w.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
            let actual = truth[&tb];
            let rel = (est - actual).abs() / actual;
            assert!(rel < 0.35, "window {tb}: est {est:.0} vs {actual:.0} (rel {rel:.3})");
            assert!(w.rows.len() <= 55, "sampled flows bounded: {}", w.rows.len());
        }
    }

    #[test]
    fn flow_agg_then_reservoir_of_flows() {
        let first = flow_agg();
        let flows_schema = first.spec().output_schema("FLOWS");
        let q = parse_query(
            "SELECT tb2, srcIP, destIP
             FROM FLOWS
             WHERE rsample(10) = TRUE
             GROUP BY tb/1 as tb2, srcIP, destIP
             HAVING rsfinal_clean(count_distinct$(*)) = TRUE
             CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
             CLEANING BY rsclean_with() = TRUE",
        )
        .unwrap();
        let second =
            SamplingOperator::new(plan(&q, &flows_schema, &PlannerConfig::standard()).unwrap())
                .unwrap();
        let mut cascade = Cascade::new(first, second);
        let windows = cascade.run(packets().iter()).unwrap();
        assert_eq!(windows.len(), 2);
        for w in &windows {
            assert_eq!(w.rows.len(), 10, "10 uniformly sampled flows per window");
        }
    }

    #[test]
    fn cascade_equals_manual_composition() {
        // Deterministic second stage (plain aggregation over the first
        // stage's rows) must equal running the stages by hand.
        let make_second = || {
            let first = flow_agg();
            let schema = first.spec().output_schema("FLOWS");
            let q = parse_query("SELECT tb2, sum(bytes), count(*) FROM FLOWS GROUP BY tb/1 as tb2")
                .unwrap();
            SamplingOperator::new(plan(&q, &schema, &PlannerConfig::empty()).unwrap()).unwrap()
        };
        let tuples = packets();
        let mut cascade = Cascade::new(flow_agg(), make_second());
        let got = cascade.run(tuples.iter()).unwrap();

        let mut first = flow_agg();
        let mut second = make_second();
        let mut expected = Vec::new();
        let mut w1s = first.run(tuples.iter()).unwrap();
        for w1 in w1s.drain(..) {
            for row in &w1.rows {
                if let Some(w2) = second.process(row).unwrap() {
                    expected.push(w2);
                }
            }
        }
        if let Some(w2) = second.finish().unwrap() {
            expected.push(w2);
        }
        assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(&expected) {
            assert_eq!(a.rows, b.rows);
        }
    }
}
