//! Integration tests for the telemetry subsystem: the under-sampling
//! detector replaying the paper's bursty-load pathology, and the
//! self-monitoring meta-stream (a sampling query over the operator's
//! own telemetry tuples).

use stream_sampler::obs::{snapshot_tuples, Registry, Snapshot};
use stream_sampler::operator::libs::subset_sum::SubsetSumOpConfig;
use stream_sampler::operator::{queries, OperatorMetrics};
use stream_sampler::prelude::*;

/// Run the paper's dynamic subset-sum query over the burst feed with
/// the given relaxation factor, windows aligned to the burst
/// half-period, and return (undersampled windows fired, snapshots).
fn run_burst(relax_factor: f64) -> (u64, Vec<Snapshot>) {
    let pkts = stream_sampler::netgen::burst_feed(11).take_seconds(60);
    let cfg = SubsetSumOpConfig { target: 500, initial_z: 1.0, relax_factor, ..Default::default() };
    let spec = queries::subset_sum_query(10, cfg, false).unwrap();
    let mut op = SamplingOperator::new(spec).unwrap();
    let registry = Registry::new();
    op.set_metrics(OperatorMetrics::register(&registry, ""));
    let mut snapshots = Vec::new();
    for p in &pkts {
        if op.process(&p.to_tuple()).unwrap().is_some() {
            snapshots.push(registry.snapshot());
        }
    }
    op.finish().unwrap();
    snapshots.push(registry.snapshot());
    let fired = snapshots.last().unwrap().value("op.undersampled_windows") as u64;
    (fired, snapshots)
}

/// §7.1: a threshold carried strictly (`f = 1`) out of a busy window is
/// ~50× too high for the quiet window that follows, so the quiet
/// window's achieved sample collapses and the detector fires; the
/// relaxed `f = 10` carry-over recovers within the window and stays
/// quiet.
#[test]
fn undersampling_detector_fires_for_strict_carry_over_only() {
    let (strict_fired, _) = run_burst(1.0);
    let (relaxed_fired, _) = run_burst(10.0);
    assert!(
        strict_fired >= 1,
        "strict carry-over should under-sample at least one quiet window, fired {strict_fired}"
    );
    assert_eq!(relaxed_fired, 0, "relaxed f=10 carry-over should keep every window sampled");
}

/// The detector's registry outputs carry the paper's diagnostic signals:
/// the threshold trajectory z(t) and achieved-vs-target sample sizes.
#[test]
fn telemetry_snapshots_expose_threshold_trajectory() {
    let (_, snapshots) = run_burst(1.0);
    assert!(snapshots.len() >= 4, "one snapshot per closed window plus final");
    let thresholds: Vec<f64> = snapshots.iter().map(|s| s.value("op.threshold_z")).collect();
    assert!(
        thresholds.iter().any(|&z| z > 1.0),
        "busy windows must push the threshold up: {thresholds:?}"
    );
    let last = snapshots.last().unwrap();
    assert!(last.value("op.sample_target") > 0.0);
    assert!(last.value("op.windows") >= 5.0);
    assert!(last.value("op.tuples") > 100_000.0, "burst feed offers >100k tuples");
}

/// The on-theme acceptance path: snapshots rendered as METRICS tuples
/// are fed back through a *sampling operator* — the DSMS querying its
/// own telemetry, as Gigascope monitored Gigascope.
#[test]
fn meta_stream_query_runs_end_to_end() {
    let (_, snapshots) = run_burst(10.0);
    let tuples: Vec<Tuple> = snapshots.iter().flat_map(snapshot_tuples).collect();
    assert!(!tuples.is_empty());

    let mut meta = compile(
        "SELECT sb, metric, sum(value), count(*) FROM METRICS \
         GROUP BY seq/2 as sb, metric",
        &metrics_schema(),
        &PlannerConfig::standard(),
    )
    .unwrap();
    let windows = meta.run(tuples.iter()).unwrap();
    assert!(!windows.is_empty(), "meta query must close at least one window");

    // Every snapshot carries the same metric set, so each meta window
    // groups by metric name; the op.tuples series must appear and its
    // per-window sums must be positive and non-decreasing over time
    // (counters are cumulative).
    let mut tuple_sums = Vec::new();
    for w in &windows {
        for row in &w.rows {
            if row.get(1).as_str() == Ok("op.tuples") {
                tuple_sums.push(row.get(2).as_f64().unwrap());
            }
        }
    }
    assert!(!tuple_sums.is_empty(), "op.tuples series missing from meta output");
    assert!(tuple_sums.windows(2).all(|p| p[1] >= p[0]), "cumulative counter: {tuple_sums:?}");
}
