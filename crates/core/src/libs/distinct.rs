//! The distinct-sampling SFUN library (Gibbons, VLDB 2001 — the paper's
//! reference \[19\]), hosted on the operator.
//!
//! The retained distinct values are the operator's *groups*; this state
//! holds only the hash-level threshold `L`. The query shape is another
//! instance of the paper's admit/clean/finalize skeleton:
//!
//! ```text
//! SELECT tb, x, count(*), dscale()
//! FROM S
//! WHERE dsample(x) = TRUE                     -- level(h(x)) >= L
//! GROUP BY time/w as tb, x
//! CLEANING WHEN ddo_clean(count_distinct$(*)) = TRUE   -- sample overflow
//! CLEANING BY dclean_with(x) = TRUE           -- level(h(x)) >= raised L
//! ```
//!
//! Estimators: distinct count = `count_distinct$(*) · dscale()`; an
//! *event report* for value `x` is `count(*) · dscale()`.

use sso_sampling::hash::splitmix64;
use sso_types::wire::{put_u64, Reader};
use sso_types::{Value, ValueKind};

use crate::sfun::args::u64_arg;
use crate::sfun::{state_mut, SfunLibrary, Signature};

/// Configuration for [`library`].
#[derive(Debug, Clone, Copy)]
pub struct DistinctOpConfig {
    /// Sample-size budget (distinct values retained); `0` = take it
    /// from `dsample`'s second argument on first call.
    pub capacity: usize,
    /// Carry the previous window's level (minus one, as a warm start)
    /// into the next window, analogous to the relaxed subset-sum
    /// threshold carry-over. `false` = restart at level 0 each window.
    pub carry_level: bool,
}

impl Default for DistinctOpConfig {
    fn default() -> Self {
        DistinctOpConfig { capacity: 0, carry_level: true }
    }
}

/// The shared state: the current hash-level threshold.
#[derive(Debug, Clone)]
pub struct DistinctSfunState {
    capacity: usize,
    /// Current level `L`: values with fewer than `L` trailing zero bits
    /// in their hash are rejected.
    pub level: u32,
}

impl DistinctSfunState {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        put_u64(&mut out, self.capacity as u64);
        put_u64(&mut out, u64::from(self.level));
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let st = DistinctSfunState {
            capacity: r.take_u64().ok()? as usize,
            level: r.take_u64().ok()? as u32,
        };
        r.is_empty().then_some(st)
    }
}

fn value_level(v: u64) -> u32 {
    splitmix64(v).trailing_zeros()
}

/// Build the distinct-sampling SFUN library.
pub fn library(cfg: DistinctOpConfig) -> SfunLibrary {
    let cfg_capacity = cfg.capacity;
    SfunLibrary::new("distinct_sampling_state", move |prev| {
        let level = match prev.and_then(|p| p.downcast_ref::<DistinctSfunState>()) {
            Some(old) if cfg.carry_level => old.level.saturating_sub(1),
            _ => 0,
        };
        let capacity = prev
            .and_then(|p| p.downcast_ref::<DistinctSfunState>())
            .map(|o| o.capacity)
            .unwrap_or(cfg.capacity);
        Box::new(DistinctSfunState { capacity, level })
    })
    .with_persist(
        |state| state.downcast_ref::<DistinctSfunState>().map(DistinctSfunState::encode),
        |bytes| {
            DistinctSfunState::decode(bytes).map(|s| Box::new(s) as Box<dyn std::any::Any + Send>)
        },
    )
    .register(
        "dsample",
        // Second (capacity) argument is only needed when the config
        // does not preset it.
        if cfg_capacity > 0 {
            Signature::range(1, 2, ValueKind::Bool)
        } else {
            Signature::exact(2, ValueKind::Bool)
        },
        |state, argv| {
            let s = state_mut::<DistinctSfunState>(state, "dsample")?;
            let v = u64_arg("dsample", argv, 0)?;
            if s.capacity == 0 {
                let cap = u64_arg("dsample", argv, 1)? as usize;
                if cap == 0 {
                    return Err("dsample: capacity must be positive".to_string());
                }
                s.capacity = cap;
            }
            Ok(Value::Bool(value_level(v) >= s.level))
        },
    )
    .register("ddo_clean", Signature::exact(1, ValueKind::Bool), |state, argv| {
        let s = state_mut::<DistinctSfunState>(state, "ddo_clean")?;
        let count = u64_arg("ddo_clean", argv, 0)? as usize;
        if s.capacity > 0 && count > s.capacity {
            s.level += 1;
            Ok(Value::Bool(true))
        } else {
            Ok(Value::Bool(false))
        }
    })
    .register("dclean_with", Signature::exact(1, ValueKind::Bool), |state, argv| {
        let s = state_mut::<DistinctSfunState>(state, "dclean_with")?;
        let v = u64_arg("dclean_with", argv, 0)?;
        Ok(Value::Bool(value_level(v) >= s.level))
    })
    .register("dlevel", Signature::exact(0, ValueKind::UInt), |state, _argv| {
        let s = state_mut::<DistinctSfunState>(state, "dlevel")?;
        Ok(Value::U64(s.level as u64))
    })
    .register("dscale", Signature::exact(0, ValueKind::UInt), |state, _argv| {
        let s = state_mut::<DistinctSfunState>(state, "dscale")?;
        Ok(Value::U64(1u64 << s.level))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    fn call(lib: &SfunLibrary, state: &mut Box<dyn Any + Send>, f: &str, args: &[Value]) -> Value {
        lib.function(f).expect(f)(state.as_mut(), args).unwrap()
    }

    #[test]
    fn level_zero_admits_everything() {
        let lib = library(DistinctOpConfig { capacity: 100, ..Default::default() });
        let mut st = lib.init_state(None);
        for v in 0..50u64 {
            assert_eq!(call(&lib, &mut st, "dsample", &[Value::U64(v)]), Value::Bool(true));
        }
        assert_eq!(call(&lib, &mut st, "dscale", &[]), Value::U64(1));
    }

    #[test]
    fn ddo_clean_raises_level_on_overflow() {
        let lib = library(DistinctOpConfig { capacity: 10, ..Default::default() });
        let mut st = lib.init_state(None);
        assert_eq!(call(&lib, &mut st, "ddo_clean", &[Value::U64(10)]), Value::Bool(false));
        assert_eq!(call(&lib, &mut st, "ddo_clean", &[Value::U64(11)]), Value::Bool(true));
        assert_eq!(call(&lib, &mut st, "dlevel", &[]), Value::U64(1));
        assert_eq!(call(&lib, &mut st, "dscale", &[]), Value::U64(2));
    }

    #[test]
    fn clean_with_rejects_about_half_at_level_one() {
        let lib = library(DistinctOpConfig { capacity: 1, ..Default::default() });
        let mut st = lib.init_state(None);
        call(&lib, &mut st, "ddo_clean", &[Value::U64(2)]); // -> level 1
        let kept = (0..10_000u64)
            .filter(|&v| call(&lib, &mut st, "dclean_with", &[Value::U64(v)]) == Value::Bool(true))
            .count();
        let frac = kept as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "level-1 keep fraction {frac}");
    }

    #[test]
    fn lazy_capacity_from_dsample() {
        let lib = library(DistinctOpConfig::default());
        let mut st = lib.init_state(None);
        call(&lib, &mut st, "dsample", &[Value::U64(1), Value::U64(64)]);
        assert_eq!(st.downcast_ref::<DistinctSfunState>().unwrap().capacity, 64);
        let f = lib.function("dsample").unwrap();
        let mut st2 = lib.init_state(None);
        assert!(f(st2.as_mut(), &[Value::U64(1), Value::U64(0)]).unwrap_err().contains("positive"));
    }

    #[test]
    fn carry_over_warm_starts_one_level_below() {
        let lib = library(DistinctOpConfig { capacity: 8, carry_level: true });
        let mut old = lib.init_state(None);
        old.downcast_mut::<DistinctSfunState>().unwrap().level = 5;
        let next = lib.init_state(Some(old.as_ref()));
        assert_eq!(next.downcast_ref::<DistinctSfunState>().unwrap().level, 4);

        let lib = library(DistinctOpConfig { capacity: 8, carry_level: false });
        let mut old = lib.init_state(None);
        old.downcast_mut::<DistinctSfunState>().unwrap().level = 5;
        let next = lib.init_state(Some(old.as_ref()));
        assert_eq!(next.downcast_ref::<DistinctSfunState>().unwrap().level, 0);
    }
}
