//! Shard-mergeability diagnostics (W102): every example query is
//! classified, and the one genuinely non-mergeable query is flagged with
//! an explanation rather than an opaque refusal.

use sso_core::queries::EXAMPLE_QUERIES;
use sso_query::{check_shard_mergeable, diag, Code, PlannerConfig, Severity};
use sso_types::Packet;

fn text_of(name: &str) -> &'static str {
    EXAMPLE_QUERIES.iter().find(|(n, _)| *n == name).map(|(_, t)| *t).unwrap()
}

#[test]
fn mergeable_examples_pass_clean() {
    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    for name in [
        "total_sum_query",
        "subset_sum_query",
        "basic_subset_sum_query",
        "heavy_hitters_query",
        "minhash_query",
        "reservoir_query",
    ] {
        let diags = check_shard_mergeable(text_of(name), &schema, &config);
        assert!(diags.is_empty(), "{name} should be shard-mergeable: {diags:?}");
    }
}

#[test]
fn distinct_sampling_is_flagged_w102_with_reason() {
    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let diags = check_shard_mergeable(text_of("distinct_sample_query"), &schema, &config);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::W102);
    assert_eq!(diags[0].code.severity(), Severity::Warning);
    let help = diags[0].help.as_deref().unwrap_or("");
    assert!(help.contains("global hash level"), "help should explain: {help}");
}

#[test]
fn unparsable_queries_fall_back_to_standard_diagnostics() {
    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let diags = check_shard_mergeable("SELECT FROM WHERE", &schema, &config);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code != Code::W102));
}

#[test]
fn w102_renders_like_other_warnings() {
    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let text = text_of("distinct_sample_query");
    let diags = check_shard_mergeable(text, &schema, &config);
    let rendered = diag::render(text, "distinct_sample_query", &diags);
    assert!(rendered.contains("W102"), "{rendered}");
    assert!(rendered.contains("warning"), "{rendered}");
}
