//! The parsed query representation, plus a pretty-printer used for
//! diagnostics and round-trip tests.
//!
//! Every expression node carries a byte-offset [`Span`] into the source
//! text so the analyzer can point diagnostics at the offending
//! characters. Spans are *not* part of structural equality: two ASTs
//! parsed from differently-spaced sources compare equal, which is what
//! the parse → pretty-print → re-parse round-trip tests rely on.

use std::fmt;

/// A half-open byte range `[start, end)` into the query source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A placeholder span for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Build a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// `true` for the placeholder span of synthesized nodes.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }
}

/// An identifier with its source span, used for positions that name
/// things rather than compute them (`FROM`, `SUPERGROUP`). Equality
/// ignores the span.
#[derive(Debug, Clone, Eq)]
pub struct Name {
    /// The identifier text.
    pub text: String,
    /// Where it appeared.
    pub span: Span,
}

impl Name {
    /// A name with a placeholder span (for programmatic construction).
    pub fn synthetic(text: impl Into<String>) -> Self {
        Name { text: text.into(), span: Span::DUMMY }
    }

    /// A name at a source location.
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        Name { text: text.into(), span }
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        &self.text == other
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinAstOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinAstOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinAstOp::Add => "+",
            BinAstOp::Sub => "-",
            BinAstOp::Mul => "*",
            BinAstOp::Div => "/",
            BinAstOp::Rem => "%",
            BinAstOp::Eq => "=",
            BinAstOp::Ne => "<>",
            BinAstOp::Lt => "<",
            BinAstOp::Le => "<=",
            BinAstOp::Gt => ">",
            BinAstOp::Ge => ">=",
            BinAstOp::And => "AND",
            BinAstOp::Or => "OR",
        }
    }

    /// `true` for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinAstOp::Eq | BinAstOp::Ne | BinAstOp::Lt | BinAstOp::Le | BinAstOp::Gt | BinAstOp::Ge
        )
    }

    /// `true` for `AND` / `OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinAstOp::And | BinAstOp::Or)
    }
}

/// The shape of an unresolved expression (see [`AstExpr`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(u64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// A name: column, group-by variable — resolved by the planner.
    Ident(String),
    /// `*` (only valid as a call argument, e.g. `count_distinct$(*)`).
    Star,
    /// A function call; `superagg` marks the `$` suffix.
    Call {
        /// Function name.
        name: String,
        /// `true` for `name$(...)`.
        superagg: bool,
        /// Arguments.
        args: Vec<AstExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinAstOp,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
    /// `NOT expr`.
    Not(Box<AstExpr>),
    /// `-expr`.
    Neg(Box<AstExpr>),
}

/// An unresolved expression: an [`ExprKind`] plus its source [`Span`].
///
/// Equality compares only the kind (recursively), never spans.
#[derive(Debug, Clone)]
pub struct AstExpr {
    /// The expression shape.
    pub kind: ExprKind,
    /// Where it appeared in the source.
    pub span: Span,
}

impl AstExpr {
    /// Build an expression at a source location.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        AstExpr { kind, span }
    }
}

impl From<ExprKind> for AstExpr {
    /// Wrap a kind with a placeholder span (programmatic construction
    /// and tests).
    fn from(kind: ExprKind) -> Self {
        AstExpr { kind, span: Span::DUMMY }
    }
}

impl PartialEq for AstExpr {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Int(v) => write!(f, "{v}"),
            ExprKind::Float(v) => {
                if v.fract() == 0.0 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            ExprKind::Str(s) => write!(f, "'{s}'"),
            ExprKind::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            ExprKind::Ident(n) => write!(f, "{n}"),
            ExprKind::Star => write!(f, "*"),
            ExprKind::Call { name, superagg, args } => {
                write!(f, "{name}{}(", if *superagg { "$" } else { "" })?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ExprKind::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            ExprKind::Not(e) => write!(f, "(NOT {e})"),
            ExprKind::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

/// One SELECT-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: AstExpr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

impl SelectItem {
    /// The output column name: the alias, a bare identifier's own name,
    /// or a generated `col<i>`.
    pub fn output_name(&self, index: usize) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr.kind {
            ExprKind::Ident(n) => n.clone(),
            ExprKind::Call { name, superagg, .. } => {
                format!("{name}{}", if *superagg { "$" } else { "" })
            }
            _ => format!("col{index}"),
        }
    }
}

/// One GROUP BY entry: an expression with an optional `AS` name.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupItem {
    /// The grouping expression.
    pub expr: AstExpr,
    /// Optional `AS` name; a bare identifier names itself.
    pub alias: Option<String>,
}

impl GroupItem {
    /// The group-by variable's name.
    pub fn name(&self, index: usize) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr.kind {
            ExprKind::Ident(n) => n.clone(),
            _ => format!("gb{index}"),
        }
    }
}

/// A parsed sampling query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM stream name.
    pub from: Name,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY list.
    pub group_by: Vec<GroupItem>,
    /// SUPERGROUP variable names (empty = the ALL supergroup).
    pub supergroup: Vec<Name>,
    /// HAVING predicate.
    pub having: Option<AstExpr>,
    /// CLEANING WHEN predicate.
    pub cleaning_when: Option<AstExpr>,
    /// CLEANING BY predicate.
    pub cleaning_by: Option<AstExpr>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.expr)?;
            if let Some(a) = &s.alias {
                write!(f, " as {a}")?;
            }
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        write!(f, " GROUP BY ")?;
        for (i, g) in self.group_by.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", g.expr)?;
            if let Some(a) = &g.alias {
                write!(f, " as {a}")?;
            }
        }
        if !self.supergroup.is_empty() {
            let names: Vec<&str> = self.supergroup.iter().map(|n| n.text.as_str()).collect();
            write!(f, " SUPERGROUP {}", names.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if let Some(c) = &self.cleaning_when {
            write!(f, " CLEANING WHEN {c}")?;
        }
        if let Some(c) = &self.cleaning_by {
            write!(f, " CLEANING BY {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(kind: ExprKind) -> AstExpr {
        kind.into()
    }

    #[test]
    fn expr_display() {
        let expr = e(ExprKind::Binary {
            op: BinAstOp::Le,
            lhs: Box::new(e(ExprKind::Ident("HX".into()))),
            rhs: Box::new(e(ExprKind::Call {
                name: "Kth_smallest_value".into(),
                superagg: true,
                args: vec![e(ExprKind::Ident("HX".into())), e(ExprKind::Int(100))],
            })),
        });
        assert_eq!(expr.to_string(), "(HX <= Kth_smallest_value$(HX, 100))");
    }

    #[test]
    fn select_item_names() {
        let item = SelectItem { expr: e(ExprKind::Ident("srcIP".into())), alias: None };
        assert_eq!(item.output_name(0), "srcIP");
        let item = SelectItem {
            expr: e(ExprKind::Call { name: "sum".into(), superagg: false, args: vec![] }),
            alias: Some("total".into()),
        };
        assert_eq!(item.output_name(1), "total");
        let item = SelectItem { expr: e(ExprKind::Int(1)), alias: None };
        assert_eq!(item.output_name(2), "col2");
    }

    #[test]
    fn group_item_names() {
        let g = GroupItem {
            expr: e(ExprKind::Binary {
                op: BinAstOp::Div,
                lhs: Box::new(e(ExprKind::Ident("time".into()))),
                rhs: Box::new(e(ExprKind::Int(60))),
            }),
            alias: Some("tb".into()),
        };
        assert_eq!(g.name(0), "tb");
        let g = GroupItem { expr: e(ExprKind::Ident("srcIP".into())), alias: None };
        assert_eq!(g.name(1), "srcIP");
    }

    #[test]
    fn equality_ignores_spans() {
        let a = AstExpr::new(ExprKind::Int(7), Span::new(3, 4));
        let b = AstExpr::new(ExprKind::Int(7), Span::new(10, 11));
        assert_eq!(a, b);
        let nested_a = AstExpr::new(ExprKind::Not(Box::new(a.clone())), Span::new(0, 4));
        let nested_b = AstExpr::new(ExprKind::Not(Box::new(b)), Span::DUMMY);
        assert_eq!(nested_a, nested_b);
        assert_ne!(AstExpr::from(ExprKind::Int(7)), AstExpr::from(ExprKind::Int(8)));
        assert_eq!(Name::new("tb", Span::new(1, 3)), Name::synthetic("tb"));
        assert_eq!(Name::synthetic("PKT"), "PKT");
    }

    #[test]
    fn span_merge() {
        assert_eq!(Span::new(3, 7).to(Span::new(10, 12)), Span::new(3, 12));
        assert_eq!(Span::new(10, 12).to(Span::new(3, 7)), Span::new(3, 12));
        assert!(Span::DUMMY.is_dummy());
        assert!(!Span::new(0, 1).is_dummy());
    }
}
