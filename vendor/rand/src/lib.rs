//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so this crate provides
//! the slice of `rand` the workspace actually uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`], uniform `gen_range` over
//! integer/float ranges, `gen` for primitives, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded via splitmix64 — deterministic
//! for a given seed, statistically solid for the simulation and
//! property tests in this workspace. It is NOT the upstream `StdRng`
//! stream (ChaCha12), so seeds reproduce within this workspace only.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw a uniform value from the generator.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit source every distribution draws from.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators bundled with the crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline stand-in for the
    /// upstream `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words, for byte-exact persistence.
        /// `gen_range` uses rejection sampling, so the only sound way to
        /// resume a generator mid-stream is to restore these words
        /// exactly — never by replaying a draw count.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from words captured by [`StdRng::state`].
        /// The next draw continues the original stream exactly.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s: if s == [0, 0, 0, 0] { [1, 0, 0, 0] } else { s } }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Rejection-free (modulo-bias-free) draw in `[0, n)` via Lemire's
/// method with a widening multiply.
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let low = m as u64;
        if low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(40..1500u64);
            assert!((40..1500).contains(&v));
            let w: u16 = rng.gen_range(1024..=u16::MAX);
            assert!(w >= 1024);
            let f = rng.gen_range(41.0..1500.0);
            assert!((41.0..1500.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_and_bool() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut heads = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!((4_000..6_000).contains(&heads), "gen_bool(0.5) gave {heads}/10000");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[rng.gen_range(0..16usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&b), "bucket {i}: {b}");
        }
    }
}
