//! Sharded-runtime determinism: every shard-mergeable example query is
//! run through `run_plan_sharded` at 1, 2, and 8 shards over a seeded
//! feed. Exact queries (counts, sums, KMV signatures) must reproduce the
//! single-instance output bit-for-bit at every shard count; sampled
//! queries (dynamic subset-sum, reservoir) must be run-to-run
//! reproducible at a fixed seed and statistically sound.

use std::cmp::Ordering;

use stream_sampler::prelude::*;

const SECONDS: u64 = 6;
const WINDOW: u64 = 2;
const FEED_SEED: u64 = 0xd5;

fn packets() -> Vec<Packet> {
    research_feed(FEED_SEED).take_seconds(SECONDS)
}

/// Single-instance reference over an explicit packet list (see
/// [`reference`] for the canonical ordering).
fn reference_for(spec: OperatorSpec, pkts: &[Packet]) -> Vec<WindowOutput> {
    let tuples: Vec<Tuple> = pkts.iter().map(|p| p.to_tuple()).collect();
    let mut windows =
        SamplingOperator::new(spec).expect("spec").run(tuples.iter()).expect("single run");
    for w in &mut windows {
        w.rows.sort_by(tuple_cmp);
    }
    windows
}

fn sharded_for<F>(make: F, shards: usize, pkts: &[Packet]) -> ShardedRunReport
where
    F: Fn(usize) -> Result<OperatorSpec, stream_sampler::operator::OpError> + Sync,
{
    run_plan_sharded(
        Box::new(SelectionNode::pass_all()),
        make,
        &RuntimeConfig::new(shards),
        pkts.to_vec(),
    )
    .expect("sharded run")
}

/// Single-instance reference run, rows put into the merge's canonical
/// order (the operator emits rows in group-creation order; the sharded
/// merge sorts them by value).
fn reference(spec: OperatorSpec) -> Vec<WindowOutput> {
    let tuples: Vec<Tuple> = packets().iter().map(|p| p.to_tuple()).collect();
    let mut windows =
        SamplingOperator::new(spec).expect("spec").run(tuples.iter()).expect("single run");
    for w in &mut windows {
        w.rows.sort_by(tuple_cmp);
    }
    windows
}

fn tuple_cmp(a: &Tuple, b: &Tuple) -> Ordering {
    for (x, y) in a.values().iter().zip(b.values()) {
        match x.compare(y).unwrap_or(Ordering::Equal) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

fn sharded<F>(make: F, shards: usize) -> ShardedRunReport
where
    F: Fn(usize) -> Result<OperatorSpec, stream_sampler::operator::OpError> + Sync,
{
    run_plan_sharded(
        Box::new(SelectionNode::pass_all()),
        make,
        &RuntimeConfig::new(shards),
        packets(),
    )
    .expect("sharded run")
}

fn assert_windows_equal(single: &[WindowOutput], sharded: &[WindowOutput], what: &str) {
    assert_eq!(single.len(), sharded.len(), "{what}: window count");
    for (a, b) in single.iter().zip(sharded) {
        assert_eq!(a.window, b.window, "{what}: window key");
        assert_eq!(a.rows, b.rows, "{what}: rows for window {:?}", a.window);
    }
}

#[test]
fn exact_sums_and_counts_do_not_drift_at_any_shard_count() {
    let single = reference(queries::total_sum_query(WINDOW));
    for shards in [1, 2, 8] {
        let report = sharded(|_| Ok(queries::total_sum_query(WINDOW)), shards);
        assert_windows_equal(&single, &report.windows, &format!("total_sum x{shards}"));
        assert_eq!(
            report.shards.iter().map(|s| s.tuples()).sum::<u64>(),
            packets().len() as u64,
            "every tuple must reach a shard"
        );
    }
}

#[test]
fn heavy_hitter_counts_merge_exactly() {
    // Bucket width far beyond the stream length: lossy counting never
    // decrements, so per-group counts are exact and must merge exactly.
    let make = |_| queries::heavy_hitters_query(WINDOW, 1 << 20, None);
    let single = reference(make(0).unwrap());
    for shards in [1, 2, 8] {
        let report = sharded(make, shards);
        assert_windows_equal(&single, &report.windows, &format!("heavy_hitters x{shards}"));
    }
}

#[test]
fn minhash_signatures_merge_exactly() {
    let make = |_| queries::minhash_query(WINDOW, 16);
    let single = reference(make(0).unwrap());
    for shards in [1, 2, 8] {
        let report = sharded(make, shards);
        assert_windows_equal(&single, &report.windows, &format!("minhash x{shards}"));
    }
}

#[test]
fn all_tuples_on_one_shard_matches_every_shard_count() {
    // Adversarial skew: the heavy-hitter query partitions on srcIP (its
    // only non-window group key), so a stream with a single source
    // hashes every tuple onto ONE shard — the others spin up, see
    // nothing, and publish empty partials into the merge.
    let make = |_| queries::heavy_hitters_query(WINDOW, 1 << 20, None);
    let pkts: Vec<Packet> = packets()
        .into_iter()
        .map(|mut p| {
            p.src_ip = 0x0a00_0001;
            p
        })
        .collect();
    let single = reference_for(make(0).unwrap(), &pkts);
    for shards in [1, 2, 16] {
        let report = sharded_for(make, shards, &pkts);
        assert_windows_equal(&single, &report.windows, &format!("one-shard skew x{shards}"));
        let busy: Vec<u64> = report.shards.iter().map(|s| s.tuples()).collect();
        assert_eq!(busy.iter().sum::<u64>(), pkts.len() as u64, "no tuple lost to skew");
        assert_eq!(
            busy.iter().filter(|&&t| t > 0).count(),
            1,
            "a single partition key must land on a single shard: {busy:?}"
        );
    }
}

#[test]
fn empty_shards_and_shard_count_leave_results_byte_identical() {
    // Two distinct partition keys fanned out over 16 shards: at least
    // 14 shards process nothing, and the merged output at 1, 2, and 16
    // shards must be byte-identical (not merely statistically close).
    let make = |_| queries::heavy_hitters_query(WINDOW, 1 << 20, None);
    let pkts: Vec<Packet> = packets()
        .into_iter()
        .map(|mut p| {
            p.src_ip = 0x0a00_0001 + (p.len % 2); // exactly two sources
            p
        })
        .collect();
    let single = reference_for(make(0).unwrap(), &pkts);
    let reports: Vec<(usize, ShardedRunReport)> =
        [1, 2, 16].into_iter().map(|shards| (shards, sharded_for(make, shards, &pkts))).collect();
    for (shards, report) in &reports {
        assert_windows_equal(&single, &report.windows, &format!("two-key skew x{shards}"));
    }
    let empty = reports[2].1.shards.iter().filter(|s| s.tuples() == 0).count();
    assert!(empty >= 14, "two keys cannot occupy more than two of 16 shards ({empty} empty)");
    // Cross-compare the shard counts directly: same windows, same rows,
    // same bytes, regardless of how many workers (or idle shards) ran.
    for pair in reports.windows(2) {
        let ((a_n, a), (b_n, b)) = (&pair[0], &pair[1]);
        assert_windows_equal(
            &a.windows,
            &b.windows,
            &format!("shard counts {a_n} vs {b_n} disagree on merged output"),
        );
    }
}

#[test]
fn dynamic_subset_sum_is_reproducible_and_accurate() {
    let make = |_| {
        queries::subset_sum_query(
            WINDOW,
            SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() },
            false,
        )
    };
    let mut truth = std::collections::HashMap::new();
    for p in packets() {
        *truth.entry(p.time() / WINDOW).or_insert(0u64) += p.len as u64;
    }
    for shards in [1, 2, 8] {
        let a = sharded(make, shards);
        let b = sharded(make, shards);
        assert_windows_equal(&a.windows, &b.windows, &format!("subset_sum rerun x{shards}"));
        for w in &a.windows {
            assert!(w.rows.len() <= 110, "{shards} shards: merged sample stays near target");
            let tb = w.window.get(0).as_u64().unwrap();
            let actual = truth[&tb] as f64;
            let est: f64 = w.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
            let err = (est - actual).abs() / actual;
            assert!(err < 0.25, "{shards} shards, window {tb}: estimate off by {err:.3}");
        }
    }
}

#[test]
fn reservoir_sample_is_seed_fixed_per_shard_count() {
    let make = |_| {
        queries::reservoir_query(WINDOW, ReservoirOpConfig { n: 50, seed: 7, ..Default::default() })
    };
    for shards in [1, 2, 8] {
        let a = sharded(make, shards);
        let b = sharded(make, shards);
        assert_windows_equal(&a.windows, &b.windows, &format!("reservoir rerun x{shards}"));
        for w in &a.windows {
            assert!(w.rows.len() <= 50, "reservoir never exceeds n");
            assert!(!w.rows.is_empty(), "reservoir keeps a sample");
        }
    }
}

#[test]
fn fixed_threshold_subset_sum_is_reproducible() {
    let make = |_| queries::basic_subset_sum_query(WINDOW, 400.0);
    for shards in [1, 2, 8] {
        let a = sharded(make, shards);
        let b = sharded(make, shards);
        assert_windows_equal(&a.windows, &b.windows, &format!("basic_ss rerun x{shards}"));
        assert!(a.windows.iter().any(|w| !w.rows.is_empty()));
    }
}

// ---------------------------------------------------------------------
// Injected disorder: reordering and timestamp skew from a fault plan
// must not make the sharded runtime's window assignment drift from a
// single instance fed the same perturbed stream. Exact (Combine-rule)
// queries make the comparison byte-level: both sides' outputs are
// collapsed per window key (disorder can close and reopen a window) and
// must agree exactly.

use proptest::prelude::*;

fn collapse(spec: &OperatorSpec, windows: Vec<WindowOutput>, seed: u64) -> Vec<WindowOutput> {
    let plan = shard_plan(spec).expect("shard-mergeable");
    let mut merged = stream_sampler::runtime::merge_windows(vec![windows], &plan.rule, seed);
    for w in &mut merged {
        w.rows.sort_by(tuple_cmp);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn reordered_and_skewed_streams_window_identically_to_single_shard(
        reorder_window in 2u64..200,
        skew_at in 0u64..2000,
        skew_len in 1u64..400,
        // Straddle window boundaries in both directions, up to ±2 windows.
        offset_ns in (-2i64 * WINDOW as i64 * 1_000_000_000)..(2i64 * WINDOW as i64 * 1_000_000_000),
        plan_seed in 0u64..u64::MAX,
    ) {
        let mut fault = FaultPlan::empty(plan_seed);
        fault.events.push(FaultEvent::SkewTimestamps {
            at_packet: skew_at,
            len: skew_len,
            offset_ns,
        });
        fault.events.push(FaultEvent::Reorder { window: reorder_window });
        let pkts = fault.perturb_packets(packets());

        let spec = queries::total_sum_query(WINDOW);
        let tuples: Vec<Tuple> = pkts.iter().map(|p| p.to_tuple()).collect();
        let raw = SamplingOperator::new(queries::total_sum_query(WINDOW))
            .expect("spec")
            .run(tuples.iter())
            .expect("single run");
        let single = collapse(&spec, raw, 0);

        for shards in [2usize, 8] {
            let report = sharded_for(|_| Ok(queries::total_sum_query(WINDOW)), shards, &pkts);
            prop_assert!(!report.degraded(), "disorder alone must not lose coverage");
            let mut got = report.windows;
            for w in &mut got {
                w.rows.sort_by(tuple_cmp);
            }
            // The sharded merge already collapsed per window key; sort
            // both sides by key for a deterministic comparison order.
            let mut single = single.clone();
            single.sort_by(|a, b| tuple_cmp(&a.window, &b.window));
            got.sort_by(|a, b| tuple_cmp(&a.window, &b.window));
            prop_assert_eq!(single.len(), got.len(), "window count at {} shards", shards);
            for (a, b) in single.iter().zip(&got) {
                prop_assert_eq!(&a.window, &b.window, "window key at {} shards", shards);
                prop_assert_eq!(&a.rows, &b.rows, "rows for window {:?} at {} shards", a.window, shards);
            }
        }

        // Router lanes must be equally invisible under disorder: the
        // same perturbed stream at 2 and 4 router lanes is byte-
        // identical to the single-lane run at the same shard count.
        let lane_run = |routers: usize| {
            run_plan_sharded(
                Box::new(SelectionNode::pass_all()),
                |_| Ok(queries::total_sum_query(WINDOW)),
                &RuntimeConfig::new(4).with_routers(routers),
                pkts.clone(),
            )
            .expect("sharded run")
            .windows
        };
        let one_lane = lane_run(1);
        for routers in [2usize, 4] {
            let got = lane_run(routers);
            prop_assert_eq!(one_lane.len(), got.len(), "window count at {} routers", routers);
            for (a, b) in one_lane.iter().zip(&got) {
                prop_assert_eq!(&a.window, &b.window, "window key at {} routers", routers);
                prop_assert_eq!(
                    &a.rows, &b.rows,
                    "rows for window {:?} at {} routers", a.window, routers
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Multi-router ingestion: the feed is split into per-lane contiguous
// segments and every lane hash-routes its own slice, so the number of
// router lanes must be invisible in the merged output — byte-identical
// at 1, 2, and 4 lanes for every mergeable example query, with and
// without a hoisted shared prefilter in front of the lanes.

fn sharded_routers<F>(make: F, shards: usize, routers: usize, pkts: &[Packet]) -> ShardedRunReport
where
    F: Fn(usize) -> Result<OperatorSpec, stream_sampler::operator::OpError> + Sync,
{
    run_plan_sharded(
        Box::new(SelectionNode::pass_all()),
        make,
        &RuntimeConfig::new(shards).with_routers(routers),
        pkts.to_vec(),
    )
    .expect("sharded run")
}

#[test]
fn router_count_leaves_every_mergeable_query_byte_identical() {
    type MakeSpec =
        Box<dyn Fn(usize) -> Result<OperatorSpec, stream_sampler::operator::OpError> + Sync>;
    let cases: Vec<(&str, MakeSpec)> = vec![
        ("total_sum", Box::new(|_| Ok(queries::total_sum_query(WINDOW)))),
        ("heavy_hitters", Box::new(|_| queries::heavy_hitters_query(WINDOW, 1 << 20, None))),
        ("minhash", Box::new(|_| queries::minhash_query(WINDOW, 16))),
        ("basic_subset_sum", Box::new(|_| queries::basic_subset_sum_query(WINDOW, 400.0))),
        (
            "subset_sum",
            Box::new(|_| {
                queries::subset_sum_query(
                    WINDOW,
                    SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() },
                    false,
                )
            }),
        ),
        (
            "reservoir",
            Box::new(|_| {
                queries::reservoir_query(
                    WINDOW,
                    ReservoirOpConfig { n: 50, seed: 7, ..Default::default() },
                )
            }),
        ),
    ];
    let pkts = packets();
    for (name, make) in &cases {
        let one = sharded_routers(make, 4, 1, &pkts);
        for routers in [2usize, 4] {
            let many = sharded_routers(make, 4, routers, &pkts);
            assert_windows_equal(&one.windows, &many.windows, &format!("{name} x{routers} lanes"));
            assert_eq!(
                many.shards.iter().map(|s| s.tuples()).sum::<u64>(),
                pkts.len() as u64,
                "{name} x{routers} lanes: every tuple must reach a shard"
            );
            assert_eq!(many.router_uncovered(), 0, "{name}: fault-free lanes lose nothing");
            assert_eq!(many.routers.len(), routers, "{name}: one stats block per lane");
        }
    }
}

#[test]
fn router_count_is_invisible_under_a_shared_prefilter() {
    use std::sync::Arc;

    let text = "SELECT tb, sum(len), count(*) FROM PKT WHERE len >= 100 GROUP BY time/2 as tb";
    let schema = stream_sampler::query::base_stream_schema("PKT").unwrap();
    let config = stream_sampler::query::PlannerConfig::standard();
    let spec = || {
        let q = stream_sampler::query::parse_query(text).unwrap();
        stream_sampler::query::plan(&q, &schema, &config).map_err(|e| match e {
            stream_sampler::query::QueryError::Plan(op) => op,
            other => panic!("unexpected: {other}"),
        })
    };
    let pred = stream_sampler::query::parse_query(text).unwrap().where_clause.unwrap();
    let prefilter =
        Arc::new(stream_sampler::query::compile_packet_predicate(&pred, &schema).unwrap());
    let pkts = packets();

    // The prefilter runs on every lane, ahead of routing; lane count
    // must not change which tuples it admits or where they land.
    let run_with = |routers: usize, filtered: bool| {
        let mut cfg = RuntimeConfig::new(4).with_routers(routers);
        if filtered {
            cfg = cfg.with_shared_prefilter(prefilter.clone());
        }
        run_plan_sharded(Box::new(SelectionNode::pass_all()), |_| spec(), &cfg, pkts.clone())
            .expect("sharded run")
    };
    let plain = run_with(1, false);
    for routers in [1usize, 2, 4] {
        let filtered = run_with(routers, true);
        assert_windows_equal(
            &plain.windows,
            &filtered.windows,
            &format!("shared prefilter x{routers} lanes"),
        );
    }
}
