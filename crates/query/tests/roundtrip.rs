//! Round-trip tests over the paper's example queries: parse →
//! pretty-print → re-parse must reproduce the same AST. The texts live
//! in `sso_core::queries::EXAMPLE_QUERIES` next to the programmatic
//! builders they describe, so the two surfaces cannot drift apart.

use proptest::prelude::*;
use sso_core::queries::EXAMPLE_QUERIES;
use sso_query::parse_query;

#[test]
fn every_example_query_round_trips() {
    for (name, text) in EXAMPLE_QUERIES {
        let ast = parse_query(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = ast.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("{name} (re-parse of `{printed}`): {e}"));
        assert_eq!(ast, reparsed, "{name}: AST changed across pretty-print");
    }
}

#[test]
fn pretty_printing_is_a_fixpoint() {
    // Printing the re-parsed AST must give back the same text: the
    // printer emits canonical form on the first round.
    for (name, text) in EXAMPLE_QUERIES {
        let printed = parse_query(text).unwrap().to_string();
        let printed_again = parse_query(&printed).unwrap().to_string();
        assert_eq!(printed, printed_again, "{name}: printer not idempotent");
    }
}

proptest! {
    /// Whitespace between tokens never changes the parsed AST.
    #[test]
    fn whitespace_never_changes_the_ast(
        idx in 0..EXAMPLE_QUERIES.len(),
        seps in proptest::collection::vec(
            prop_oneof![Just(" "), Just("  "), Just("\n"), Just("\t"), Just(" \n ")],
            1..48,
        ),
    ) {
        let (name, text) = EXAMPLE_QUERIES[idx];
        let canonical = parse_query(text).unwrap();
        let mangled: String = text
            .split(' ')
            .enumerate()
            .map(|(i, tok)| {
                if i == 0 { tok.to_string() } else { format!("{}{tok}", seps[i % seps.len()]) }
            })
            .collect();
        let reparsed = parse_query(&mangled)
            .unwrap_or_else(|e| panic!("{name} with mangled whitespace: {e}"));
        prop_assert_eq!(&canonical, &reparsed, "{}: whitespace changed the AST", name);
    }
}
