//! The `sso-rewrite` contract: sharing rewrites change *work*, never
//! *output*, and every applied rewrite is certified.
//!
//! - golden: the example corpus is un-shareable by construction (every
//!   WHERE leads with a stateful sampler), so `sso optimize` over it is
//!   a fixed point — empty certificate, no diagnostics, stable JSON;
//! - property: on generated query pairs, shared execution built from a
//!   verified certificate is `(window, rows)`-identical to unshared;
//! - the certificate is consumed: a tampered trace never yields a
//!   runnable plan;
//! - lint triggers: W103 (check-time duplicate prefilter) and
//!   W301–W304 each fire on a minimal witness, with spans on every
//!   involved statement.

use std::sync::Arc;

use proptest::prelude::*;
use stream_sampler::gigascope::{
    run_fanout, run_fanout_shared, run_plan_sharded, FanoutPlan, FanoutReport, SelectionNode,
    SharedGroup, SharedQueryPlan,
};
use stream_sampler::netgen::research_feed;
use stream_sampler::prelude::*;
use stream_sampler::query::{compile_packet_predicate, Code};
use stream_sampler::rewrite::{
    check_file_prefilters, optimize_file, outcome_to_json, OptimizeOptions, OptimizeOutcome,
};

fn optimize(text: &str) -> OptimizeOutcome {
    optimize_file(text, &OptimizeOptions::default())
}

fn explain(text: &str) -> OptimizeOutcome {
    optimize_file(text, &OptimizeOptions { apply: false, ..OptimizeOptions::default() })
}

fn codes(o: &OptimizeOutcome) -> Vec<Code> {
    o.diagnostics.iter().map(|d| d.code).collect()
}

/// Compile `text` (one query per `;`) and run all consumers unshared.
fn unshared(text: &str, packets: &[Packet]) -> FanoutReport {
    let schema = stream_sampler::query::base_stream_schema("PKT").unwrap();
    let config = PlannerConfig::standard();
    let highs = stream_sampler::analysis::split_statements(text)
        .iter()
        .enumerate()
        .map(|(i, (_, stmt))| {
            let op = stream_sampler::query::compile(stmt, &schema, &config).expect("compile");
            (format!("q{}", i + 1), op)
        })
        .collect();
    run_fanout(FanoutPlan { low: Box::new(SelectionNode::pass_all()), highs }, packets.to_vec())
        .expect("unshared run")
}

/// Build and run the optimizer's shared plan (certificate verified by
/// `build_shared`) for a single-cluster file.
fn shared(outcome: &OptimizeOutcome, packets: &[Packet]) -> FanoutReport {
    let plans = outcome.build_shared().expect("certificate verifies");
    assert_eq!(plans.len(), 1, "expected one cluster");
    let plan = &plans[0];
    let groups = plan
        .groups
        .iter()
        .map(|(spec, consumers)| SharedGroup {
            op: SamplingOperator::new(spec.clone()).expect("instantiate"),
            consumers: consumers.clone(),
        })
        .collect();
    run_fanout_shared(
        Box::new(SelectionNode::pass_all()),
        SharedQueryPlan { prefilter: plan.prefilter.clone(), groups },
        packets.to_vec(),
    )
    .expect("shared run")
}

fn assert_identical(u: &FanoutReport, s: &FanoutReport, queries: usize) {
    for i in 1..=queries {
        let name = format!("q{i}");
        let uq = u.query(&name).expect("unshared consumer");
        let sq = s.query(&name).expect("shared consumer");
        assert_eq!(uq.windows.len(), sq.windows.len(), "{name}: window count");
        for (wu, ws) in uq.windows.iter().zip(&sq.windows) {
            assert_eq!(wu.window, ws.window, "{name}: window key");
            assert_eq!(wu.rows, ws.rows, "{name}: rows");
        }
    }
}

const SHARING: &str = "SELECT tb, count(*) FROM PKT WHERE len >= 100 GROUP BY time/5 as tb;\n\
                       SELECT tb, count(*) FROM PKT WHERE len >= 100 GROUP BY time/5 as tb;\n\
                       SELECT tb, sum(len) FROM PKT WHERE len >= 130 GROUP BY time/5 as tb";

/// `sso optimize` over the example corpus is a fixed point: every WHERE
/// leads with a stateful sampler (nothing is hoistable), no two plans
/// normalize identically, so the certificate stays empty and no
/// diagnostic fires — which is what keeps `--deny-warnings` green in
/// check.sh. The JSON snapshot pins the machine interface.
#[test]
fn golden_example_corpus_is_a_fixed_point() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/queries.sql"))
            .expect("example corpus");
    let outcome = optimize(&text);
    assert_eq!(outcome.statements, 7);
    assert!(outcome.skipped.is_empty(), "skipped: {:?}", outcome.skipped);
    assert!(outcome.diagnostics.is_empty(), "diagnostics: {:?}", outcome.diagnostics);
    assert!(outcome.certificate.is_empty());
    assert!(outcome.shared.is_empty());
    assert!(outcome.reaudit.ok);

    let clusters: Vec<(&str, &[usize])> =
        vec![("PKT", &[0, 5][..]), ("PKTS", &[1, 2][..]), ("TCP", &[3, 4, 6][..])];
    assert_eq!(outcome.clusters.len(), clusters.len());
    for (c, (stream, members)) in outcome.clusters.iter().zip(&clusters) {
        assert_eq!(c.stream, *stream);
        assert_eq!(c.members, *members);
        assert!(c.prefilter.is_empty(), "{stream}: unexpected shared prefilter");
    }

    // Golden JSON shape (not full content — hashes cover that above).
    let json = outcome_to_json(&outcome);
    assert!(
        json.starts_with("{\"report\":{\"statements\":7,\"skipped\":[],\"clusters\":["),
        "{json}"
    );
    assert!(json.contains("\"steps\":[]"));
    assert!(json.contains("\"shared\":[]"));
    assert!(json.ends_with("\"diagnostics\":[]}"), "{json}");
}

/// Applying the rewrites produces a certificate whose steps name the
/// rules and discharge side conditions; `--explain` reports the same
/// opportunities as W301 and leaves the certificate empty.
#[test]
fn sharing_is_certified_and_explainable() {
    let applied = optimize(SHARING);
    let rules: Vec<&str> = applied.certificate.steps.iter().map(|s| s.rule.as_str()).collect();
    assert_eq!(rules, ["dedup-shared-subplan", "hoist-shared-prefilter"]);
    for step in &applied.certificate.steps {
        assert!(!step.side_conditions.is_empty(), "{}: no side conditions", step.rule);
    }
    applied.certificate.verify().expect("sealed certificate verifies");
    assert!(codes(&applied).iter().all(|c| *c != Code::W301));

    let explained = explain(SHARING);
    assert!(explained.certificate.is_empty());
    assert!(explained.shared.is_empty());
    assert!(codes(&explained).contains(&Code::W301));
}

/// A tampered certificate never yields a runnable plan.
#[test]
fn tampered_certificate_is_refused() {
    let mut outcome = optimize(SHARING);
    outcome.build_shared().expect("untampered certificate builds");

    // Erase a discharged side condition: checksum mismatch.
    let mut erased = outcome.clone();
    erased.certificate.steps[0].side_conditions.pop();
    let Err(err) = erased.build_shared() else { panic!("erased side condition must be detected") };
    assert!(err.contains("checksum"), "{err}");

    // Flip a node hash: same failure.
    outcome.certificate.steps[0].after ^= 1;
    assert!(outcome.build_shared().is_err());
}

/// W103: `check_file_prefilters` flags duplicate normalized prefilters
/// across statements, with a span on each, and the JSON line round
/// trips through the stable code.
#[test]
fn w103_duplicate_prefilter_across_statements() {
    let text = "SELECT tb, count(*) FROM PKT WHERE len >= 100 GROUP BY time/5 as tb;\n\
                SELECT tb, sum(len) FROM PKT WHERE len >= 100 GROUP BY time/10 as tb";
    let diags = check_file_prefilters(text);
    assert_eq!(diags.len(), 2);
    let mut spans = Vec::new();
    for d in &diags {
        assert_eq!(d.code, Code::W103);
        assert!(!d.span.is_dummy());
        spans.push(d.span.start);
        let json = d.to_json();
        assert!(json.contains("\"code\":\"W103\""), "{json}");
        assert_eq!("W103".parse::<Code>().unwrap(), Code::W103);
    }
    assert!(spans[1] > spans[0], "second diagnostic must anchor in the second statement");

    // Stateful prefilters are never flagged: nothing is hoistable.
    let stateful = "SELECT tb, count(*) FROM PKT WHERE ssample(len, 100) = TRUE GROUP BY time/5 as tb;\n\
                    SELECT tb, count(*) FROM PKT WHERE ssample(len, 100) = TRUE GROUP BY time/5 as tb";
    assert!(check_file_prefilters(stateful).is_empty());
}

/// W302: same plan modulo constants — both statements flagged.
#[test]
fn w302_equivalent_modulo_constants() {
    let text = "SELECT tb, count(*) FROM PKT WHERE len >= 100 GROUP BY time/5 as tb;\n\
                SELECT tb, count(*) FROM PKT WHERE len >= 250 GROUP BY time/5 as tb";
    let outcome = optimize(text);
    let w302: Vec<_> = outcome.diagnostics.iter().filter(|d| d.code == Code::W302).collect();
    assert_eq!(w302.len(), 2);
    assert!(w302.iter().all(|d| !d.span.is_dummy()));
}

/// W303: identical plans whose sampler is not shard-mergeable refuse
/// the dedup rewrite and explain why (the cause chain from
/// `shard_plan`). Distinct sampling carries a global hash level, so the
/// default `dsample` plan is the canonical witness.
#[test]
fn w303_blocked_by_non_mergeable_sampler() {
    let stmt = "SELECT tb, srcIP, count(*), dscale(), count_distinct$(*) FROM PKT \
                WHERE dsample(srcIP, 256) = TRUE GROUP BY time/60 as tb, srcIP";
    let outcome = optimize(&format!("{stmt};\n{stmt}"));
    assert!(outcome.certificate.is_empty(), "blocked rewrite must not certify");
    let w303: Vec<_> = outcome.diagnostics.iter().filter(|d| d.code == Code::W303).collect();
    assert_eq!(w303.len(), 2);
    for d in &w303 {
        let help = d.help.as_deref().unwrap_or("");
        assert!(help.contains("blocked because:"), "missing cause chain: {help}");
    }
    let group = &outcome.clusters[0].groups[0];
    assert!(!group.mergeable);
    assert!(group.blocked.is_some());
}

/// W304: same group keys, window periods in integer ratio.
#[test]
fn w304_window_periods_integer_multiple() {
    let text =
        "SELECT tb, srcIP, count(*) FROM PKT WHERE len >= 100 GROUP BY time/5 as tb, srcIP;\n\
                SELECT tb, srcIP, sum(len) FROM PKT WHERE len >= 200 GROUP BY time/10 as tb, srcIP";
    let outcome = optimize(text);
    let w304 = codes(&outcome).iter().filter(|c| **c == Code::W304).count();
    assert_eq!(w304, 2);

    // Periods 5 and 7 are not in integer ratio: no lint.
    let coprime = "SELECT tb, srcIP, count(*) FROM PKT WHERE len >= 100 GROUP BY time/5 as tb, srcIP;\n\
                   SELECT tb, srcIP, sum(len) FROM PKT WHERE len >= 200 GROUP BY time/7 as tb, srcIP";
    assert!(!codes(&optimize(coprime)).contains(&Code::W304));
}

/// The sealed sharing plan executes byte-identically to unshared
/// fan-out on the canonical three-statement witness.
#[test]
fn shared_execution_matches_unshared_on_witness() {
    let packets = research_feed(0xbee).take_seconds(8);
    let outcome = optimize(SHARING);
    let u = unshared(SHARING, &packets);
    let s = shared(&outcome, &packets);
    assert_identical(&u, &s, 3);
    // And the saving is real: the deduped consumers share one operator.
    assert!(s.query("q1").unwrap().stats.tuples_in <= u.query("q1").unwrap().stats.tuples_in);
}

/// The sharded runtime honors a hoisted shared prefilter: because the
/// prefilter is implied by the query's own WHERE, pre-router filtering
/// must not change any window.
#[test]
fn sharded_runtime_shared_prefilter_is_transparent() {
    let text = "SELECT tb, sum(len), count(*) FROM PKT WHERE len >= 100 GROUP BY time/2 as tb";
    let schema = stream_sampler::query::base_stream_schema("PKT").unwrap();
    let config = PlannerConfig::standard();
    let spec = || {
        let q = stream_sampler::query::parse_query(text).unwrap();
        stream_sampler::query::plan(&q, &schema, &config).map_err(|e| match e {
            stream_sampler::query::QueryError::Plan(op) => op,
            other => panic!("unexpected: {other}"),
        })
    };
    let packets = research_feed(0xfade).take_seconds(6);

    let pred = stream_sampler::query::parse_query(text).unwrap().where_clause.unwrap();
    let prefilter = Arc::new(compile_packet_predicate(&pred, &schema).unwrap());

    let plain = run_plan_sharded(
        Box::new(SelectionNode::pass_all()),
        |_| spec(),
        &RuntimeConfig::new(4),
        packets.clone(),
    )
    .expect("plain sharded run");
    let filtered = run_plan_sharded(
        Box::new(SelectionNode::pass_all()),
        |_| spec(),
        &RuntimeConfig::new(4).with_shared_prefilter(prefilter),
        packets,
    )
    .expect("prefiltered sharded run");

    assert_eq!(plain.windows.len(), filtered.windows.len());
    for (a, b) in plain.windows.iter().zip(&filtered.windows) {
        assert_eq!(a.window, b.window);
        assert_eq!(a.rows, b.rows);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Shared-vs-unshared byte-identity on generated query pairs: any
    /// two threshold queries over one stream — identical (dedup), or
    /// nested thresholds (prefilter hoist) — produce the same windows
    /// either way.
    #[test]
    fn shared_execution_is_byte_identical(
        a in 40u64..400,
        b in 40u64..400,
        window in 1u64..4,
        seed in 0u64..1000,
    ) {
        let text = format!(
            "SELECT tb, sum(len), count(*) FROM PKT WHERE len >= {a} GROUP BY time/{window} as tb;\n\
             SELECT tb, sum(len), count(*) FROM PKT WHERE len >= {b} GROUP BY time/{window} as tb"
        );
        let outcome = optimize(&text);
        // Two pure threshold queries always share: identical plans
        // dedup, distinct thresholds hoist the weaker bound.
        prop_assert!(!outcome.certificate.is_empty());
        let packets = research_feed(seed).take_seconds(4);
        let u = unshared(&text, &packets);
        let s = shared(&outcome, &packets);
        for name in ["q1", "q2"] {
            let uq = u.query(name).unwrap();
            let sq = s.query(name).unwrap();
            prop_assert_eq!(uq.windows.len(), sq.windows.len());
            for (wu, ws) in uq.windows.iter().zip(&sq.windows) {
                prop_assert_eq!(&wu.window, &ws.window);
                prop_assert_eq!(&wu.rows, &ws.rows);
            }
        }
    }
}
