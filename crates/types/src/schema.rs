//! Stream schemas with Gigascope-style ordered-attribute annotations.

use crate::error::TypeError;
use crate::value::ValueKind;

/// Declared type of a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Unsigned 64-bit integer (timestamps, lengths, IPv4 addresses).
    U64,
    /// Signed 64-bit integer.
    I64,
    /// Double-precision float.
    F64,
    /// Boolean.
    Bool,
    /// String.
    Str,
}

impl FieldType {
    /// The static [`ValueKind`] of values stored in a field of this
    /// type.
    pub fn value_kind(self) -> ValueKind {
        match self {
            FieldType::U64 => ValueKind::UInt,
            FieldType::I64 => ValueKind::Int,
            FieldType::F64 => ValueKind::Float,
            FieldType::Bool => ValueKind::Bool,
            FieldType::Str => ValueKind::Str,
        }
    }
}

/// Monotonicity annotation on a stream attribute.
///
/// Gigascope marks one or more attributes of a stream as *ordered*; query
/// windows close when a group-by expression over an ordered attribute
/// changes value. `PKT(time increasing, ...)` is the canonical example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ordering {
    /// No monotonicity guarantee.
    #[default]
    None,
    /// Values are non-decreasing over the stream.
    Increasing,
    /// Values are non-increasing over the stream.
    Decreasing,
}

/// One named, typed field of a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name, e.g. `srcIP`.
    pub name: String,
    /// Declared type.
    pub ty: FieldType,
    /// Monotonicity annotation.
    pub ordering: Ordering,
}

impl Field {
    /// An unordered field.
    pub fn new(name: &str, ty: FieldType) -> Self {
        Field { name: name.to_string(), ty, ordering: Ordering::None }
    }

    /// A field marked `increasing`.
    pub fn increasing(name: &str, ty: FieldType) -> Self {
        Field { name: name.to_string(), ty, ordering: Ordering::Increasing }
    }
}

/// An ordered list of named fields describing a stream's tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Stream name, e.g. `PKT`.
    pub name: String,
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from a name and field list.
    pub fn new(name: &str, fields: Vec<Field>) -> Self {
        Schema { name: name.to_string(), fields }
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Position of the named field.
    pub fn index_of(&self, name: &str) -> Result<usize, TypeError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| TypeError::UnknownColumn(name.to_string()))
    }

    /// The named field, if present.
    pub fn field(&self, name: &str) -> Result<&Field, TypeError> {
        let idx = self.index_of(name)?;
        Ok(&self.fields[idx])
    }

    /// `true` if the named field carries an ordering annotation.
    pub fn is_ordered(&self, name: &str) -> bool {
        self.field(name).map(|f| f.ordering != Ordering::None).unwrap_or(false)
    }

    /// Indices of all ordered fields.
    pub fn ordered_indices(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ordering != Ordering::None)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Schema {
        Schema::new(
            "PKT",
            vec![
                Field::increasing("time", FieldType::U64),
                Field::new("srcIP", FieldType::U64),
                Field::new("destIP", FieldType::U64),
                Field::new("len", FieldType::U64),
            ],
        )
    }

    #[test]
    fn lookup_by_name() {
        let s = pkt();
        assert_eq!(s.index_of("time").unwrap(), 0);
        assert_eq!(s.index_of("len").unwrap(), 3);
        assert!(matches!(s.index_of("nope"), Err(TypeError::UnknownColumn(_))));
        assert_eq!(s.field("srcIP").unwrap().ty, FieldType::U64);
    }

    #[test]
    fn ordering_annotations() {
        let s = pkt();
        assert!(s.is_ordered("time"));
        assert!(!s.is_ordered("srcIP"));
        assert!(!s.is_ordered("missing"));
        assert_eq!(s.ordered_indices(), vec![0]);
    }

    #[test]
    fn arity() {
        assert_eq!(pkt().arity(), 4);
    }
}
