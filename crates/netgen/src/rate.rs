//! Per-second packet-rate processes for the synthetic feeds.

use rand::rngs::StdRng;
use rand::Rng;

/// A process yielding the target packet rate for each successive second.
pub trait RateProcess {
    /// The packet rate (packets/second) for the next second.
    fn next_rate(&mut self, rng: &mut StdRng) -> u64;
}

/// The research-center link: highly variable.
///
/// Log-rate follows an AR(1) around `ln(base)` with heavy shocks, plus a
/// two-state lull process: with probability `lull_prob` per second the
/// link drops to `lull_scale` of its rate for a geometrically distributed
/// number of seconds. The result swings between a few hundred and ~20k
/// packets/s, with inter-window byte-volume ratios of 10–100×.
#[derive(Debug, Clone)]
pub struct ResearchRate {
    /// Center of the log-AR(1) process, packets/s.
    pub base: f64,
    /// AR(1) persistence in log space (0..1).
    pub phi: f64,
    /// Std-dev of the per-second log shock.
    pub sigma: f64,
    /// Probability of entering a lull each second.
    pub lull_prob: f64,
    /// Probability of leaving a lull each second.
    pub lull_exit_prob: f64,
    /// Rate multiplier during a lull.
    pub lull_scale: f64,
    log_level: f64,
    in_lull: bool,
}

impl ResearchRate {
    /// Paper-shaped defaults: 5k–15k pkt/s typical, occasional deep
    /// lulls lasting tens of seconds (long enough to cover a whole
    /// 20-second evaluation window, which is what exposes the
    /// non-relaxed under-sampling pathology of §7.1).
    pub fn new() -> Self {
        ResearchRate {
            base: 9_000.0,
            phi: 0.85,
            sigma: 0.35,
            lull_prob: 0.02,
            lull_exit_prob: 0.03,
            lull_scale: 0.002,
            log_level: (9_000.0f64).ln(),
            in_lull: false,
        }
    }
}

impl Default for ResearchRate {
    fn default() -> Self {
        Self::new()
    }
}

impl RateProcess for ResearchRate {
    fn next_rate(&mut self, rng: &mut StdRng) -> u64 {
        let mu = self.base.ln();
        // Gaussian-ish shock from the sum of uniforms (Irwin–Hall).
        let shock: f64 = (0..4).map(|_| rng.gen::<f64>() - 0.5).sum::<f64>() * self.sigma * 1.7;
        self.log_level = mu + self.phi * (self.log_level - mu) + shock;
        if self.in_lull {
            if rng.gen::<f64>() < self.lull_exit_prob {
                self.in_lull = false;
            }
        } else if rng.gen::<f64>() < self.lull_prob {
            self.in_lull = true;
        }
        let mut rate = self.log_level.exp();
        if self.in_lull {
            rate *= self.lull_scale;
        }
        rate.clamp(20.0, 25_000.0) as u64
    }
}

/// The data-center tap: ~100k packets/s with small jitter.
#[derive(Debug, Clone)]
pub struct DatacenterRate {
    /// Mean packet rate.
    pub base: f64,
    /// Relative jitter half-width (e.g. 0.02 = ±2%).
    pub jitter: f64,
}

impl DatacenterRate {
    /// Paper-shaped default: 100k pkt/s ± 2%.
    pub fn new() -> Self {
        DatacenterRate { base: 100_000.0, jitter: 0.02 }
    }
}

impl Default for DatacenterRate {
    fn default() -> Self {
        Self::new()
    }
}

impl RateProcess for DatacenterRate {
    fn next_rate(&mut self, rng: &mut StdRng) -> u64 {
        let factor = 1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0);
        (self.base * factor) as u64
    }
}

/// A square-wave rate: `period_secs` busy, `period_secs` quiet, repeat.
///
/// The cleanest way to trigger the paper's §7.1 under-sampling
/// pathology on demand: a threshold carried over from a busy window is
/// 10–100× too high for the quiet window that follows, so a strict
/// (`f = 1`) carry-over admits almost nothing until cleaning catches
/// up, while the relaxed `z_next = z/f` variant recovers within the
/// window.
#[derive(Debug, Clone)]
pub struct BurstRate {
    /// Packets/s during the busy half-period.
    pub busy_rate: f64,
    /// Packets/s during the quiet half-period.
    pub quiet_rate: f64,
    /// Length of each half-period in seconds.
    pub period_secs: u64,
    second: u64,
}

impl BurstRate {
    /// Default burst profile: 20k pkt/s busy, 400 pkt/s quiet (a 50×
    /// drop, inside the paper's 10–100× inter-window swing band),
    /// alternating every 10 seconds.
    pub fn new() -> Self {
        BurstRate { busy_rate: 20_000.0, quiet_rate: 400.0, period_secs: 10, second: 0 }
    }

    /// Whether second `s` falls in a busy half-period.
    pub fn is_busy(&self, s: u64) -> bool {
        (s / self.period_secs).is_multiple_of(2)
    }
}

impl Default for BurstRate {
    fn default() -> Self {
        Self::new()
    }
}

impl RateProcess for BurstRate {
    fn next_rate(&mut self, rng: &mut StdRng) -> u64 {
        let s = self.second;
        self.second += 1;
        let rate = if self.is_busy(s) { self.busy_rate } else { self.quiet_rate };
        (rate * (1.0 + 0.02 * (2.0 * rng.gen::<f64>() - 1.0))) as u64
    }
}

/// A baseline rate with a DDoS burst between two points in time.
#[derive(Debug, Clone)]
pub struct DdosRate {
    /// Baseline packets/s outside the attack.
    pub base: f64,
    /// Packets/s during the attack.
    pub attack_rate: f64,
    /// Second at which the attack starts.
    pub attack_start: u64,
    /// Second at which the attack ends.
    pub attack_end: u64,
    second: u64,
}

impl DdosRate {
    /// Attack of `attack_rate` pkt/s during `[attack_start, attack_end)`
    /// seconds over a `base` pkt/s baseline.
    pub fn new(base: f64, attack_rate: f64, attack_start: u64, attack_end: u64) -> Self {
        DdosRate { base, attack_rate, attack_start, attack_end, second: 0 }
    }

    /// Whether second `s` is inside the attack interval.
    pub fn in_attack(&self, s: u64) -> bool {
        s >= self.attack_start && s < self.attack_end
    }
}

impl RateProcess for DdosRate {
    fn next_rate(&mut self, rng: &mut StdRng) -> u64 {
        let s = self.second;
        self.second += 1;
        let rate = if self.in_attack(s) { self.attack_rate } else { self.base };
        (rate * (1.0 + 0.02 * (2.0 * rng.gen::<f64>() - 1.0))) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn research_rate_is_variable_and_bounded() {
        let mut p = ResearchRate::new();
        let mut rng = StdRng::seed_from_u64(1);
        let rates: Vec<u64> = (0..600).map(|_| p.next_rate(&mut rng)).collect();
        let min = *rates.iter().min().unwrap();
        let max = *rates.iter().max().unwrap();
        assert!(min >= 20 && max <= 25_000);
        // Highly variable: at least a 10x swing over 10 minutes.
        assert!(max as f64 / min as f64 > 10.0, "min {min}, max {max}");
    }

    #[test]
    fn research_rate_has_deep_lulls() {
        let mut p = ResearchRate::new();
        let mut rng = StdRng::seed_from_u64(2);
        let rates: Vec<u64> = (0..1200).map(|_| p.next_rate(&mut rng)).collect();
        let lulls = rates.iter().filter(|&&r| r < 500).count();
        assert!(lulls > 0, "expected at least one deep lull in 20 minutes");
    }

    #[test]
    fn datacenter_rate_is_stable() {
        let mut p = DatacenterRate::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let r = p.next_rate(&mut rng);
            assert!((98_000..=102_000).contains(&r), "rate {r} outside jitter band");
        }
    }

    #[test]
    fn ddos_rate_spikes_during_attack() {
        let mut p = DdosRate::new(5_000.0, 80_000.0, 10, 20);
        let mut rng = StdRng::seed_from_u64(4);
        let rates: Vec<u64> = (0..30).map(|_| p.next_rate(&mut rng)).collect();
        assert!(rates[5] < 10_000);
        assert!(rates[15] > 70_000);
        assert!(rates[25] < 10_000);
    }

    #[test]
    fn burst_rate_alternates_half_periods() {
        let mut p = BurstRate::new();
        let mut rng = StdRng::seed_from_u64(5);
        let rates: Vec<u64> = (0..40).map(|_| p.next_rate(&mut rng)).collect();
        for (s, &r) in rates.iter().enumerate() {
            if (s as u64 / 10) % 2 == 0 {
                assert!(r > 19_000, "second {s}: busy rate {r}");
            } else {
                assert!(r < 500, "second {s}: quiet rate {r}");
            }
        }
    }

    #[test]
    fn processes_are_deterministic_per_seed() {
        let run = || {
            let mut p = ResearchRate::new();
            let mut rng = StdRng::seed_from_u64(99);
            (0..50).map(|_| p.next_rate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
