//! Query-language surface tests: the extended syntax end to end over
//! real tuple streams.

use stream_sampler::prelude::*;

fn mini_stream() -> Vec<Tuple> {
    // 2 seconds, 100 packets/s, 10 sources in two /24 subnets, fixed
    // lengths so aggregates are exactly checkable.
    let mut out = Vec::new();
    for s in 0..2u64 {
        for i in 0..100u64 {
            let src =
                if i % 2 == 0 { 0x0a000000 + (i % 5) as u32 } else { 0x0a000100 + (i % 5) as u32 };
            let p = Packet {
                uts: s * 1_000_000_000 + i * 10_000_000,
                src_ip: src,
                dest_ip: 0xc0a80001,
                src_port: 1,
                dest_port: 80,
                proto: stream_sampler::types::Protocol::Tcp,
                len: 100 + (i % 3) as u32 * 100, // 100/200/300
            };
            out.push(p.to_tuple());
        }
    }
    out
}

fn run(query: &str) -> Vec<stream_sampler::operator::WindowOutput> {
    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();
    op.run(mini_stream().iter()).unwrap()
}

#[test]
fn avg_is_float_exact() {
    let w = run("SELECT tb, avg(len), sum(len), count(*) FROM PKT GROUP BY time/1 as tb");
    assert_eq!(w.len(), 2);
    for win in &w {
        // lens cycle 100,200,300 at weights: i%3==0 34 times, others 33.
        let sum = win.rows[0].get(2).as_f64().unwrap();
        let cnt = win.rows[0].get(3).as_f64().unwrap();
        let avg = win.rows[0].get(1).as_f64().unwrap();
        assert!((avg - sum / cnt).abs() < 1e-9, "avg must be float-exact");
        assert!((150.0..250.0).contains(&avg));
    }
}

#[test]
fn prefix_groups_by_subnet() {
    let w = run("SELECT net, count(*) FROM PKT GROUP BY time/1 as tb, prefix(srcIP, 24) as net");
    for win in &w {
        assert_eq!(win.rows.len(), 2, "two /24 subnets");
        let total: u64 = win.rows.iter().map(|r| r.get(1).as_u64().unwrap()).sum();
        assert_eq!(total, 100);
    }
}

#[test]
fn min_max_superaggregates_bracket_group_values() {
    let w = run("SELECT tb, srcIP, min$(srcIP), max$(srcIP) FROM PKT GROUP BY time/1 as tb, srcIP");
    for win in &w {
        let keys: Vec<u64> = win.rows.iter().map(|r| r.get(1).as_u64().unwrap()).collect();
        let lo = *keys.iter().min().unwrap();
        let hi = *keys.iter().max().unwrap();
        for r in &win.rows {
            assert_eq!(r.get(2).as_u64().unwrap(), lo);
            assert_eq!(r.get(3).as_u64().unwrap(), hi);
        }
    }
}

#[test]
fn sum_superaggregate_equals_total_over_supergroup() {
    let w = run("SELECT tb, srcIP, sum(len), sum$(len) FROM PKT GROUP BY time/1 as tb, srcIP");
    for win in &w {
        let total: u64 = win.rows.iter().map(|r| r.get(2).as_u64().unwrap()).sum();
        for r in &win.rows {
            assert_eq!(r.get(3).as_u64().unwrap(), total, "sum$ = whole-window sum");
        }
    }
}

#[test]
fn distinct_sampling_runs_from_text() {
    let w = run("SELECT tb, srcIP, dscale(), count_distinct$(*) FROM PKT \
         WHERE dsample(srcIP, 4) = TRUE \
         GROUP BY time/1 as tb, srcIP \
         CLEANING WHEN ddo_clean(count_distinct$(*)) = TRUE \
         CLEANING BY dclean_with(srcIP) = TRUE");
    for win in &w {
        assert!(win.rows.len() <= 4, "bounded by capacity");
    }
}

#[test]
fn cli_explain_surface_is_stable() {
    use stream_sampler::query::{explain, parse_query, plan};
    let q = parse_query(
        "SELECT tb, net, sum(len) FROM PKT GROUP BY time/60 as tb, prefix(srcIP, 24) as net",
    )
    .unwrap();
    let spec = plan(&q, &Packet::schema(), &PlannerConfig::standard()).unwrap();
    let text = explain(&spec);
    assert!(text.contains("[window]"));
    assert!(text.contains("Scalar(prefix"));
}

/// Diagnostic codes for the given query text, via the static checker.
fn codes(query: &str) -> Vec<stream_sampler::query::Code> {
    stream_sampler::query::check(query, &Packet::schema(), &PlannerConfig::standard())
        .into_iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn useful_errors_for_common_mistakes() {
    use stream_sampler::query::{Code, QueryError};

    // Aggregate in CLEANING WHEN (tuple phase): stable code E003, and
    // the planner error carries the analyzer's batch.
    let err = compile(
        "SELECT tb FROM PKT GROUP BY time/60 as tb CLEANING WHEN count(*) > 1 CLEANING BY TRUE",
        &Packet::schema(),
        &PlannerConfig::standard(),
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("not allowed"),
        "aggregates in CLEANING WHEN must be rejected: {err}"
    );
    let QueryError::Analysis(diags) = &err else { panic!("expected Analysis, got {err:?}") };
    assert!(diags.iter().any(|d| d.code == Code::E003), "{diags:?}");

    // Wrong avg arity: stable code E006.
    let err = compile(
        "SELECT tb, avg(len, 2) FROM PKT GROUP BY time/60 as tb",
        &Packet::schema(),
        &PlannerConfig::standard(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("one argument"), "{err}");
    assert_eq!(codes("SELECT tb, avg(len, 2) FROM PKT GROUP BY time/60 as tb"), [Code::E006]);
}

#[test]
fn check_reports_every_mistake_in_one_pass() {
    use stream_sampler::query::Code;
    let src = "SELECT len, zap(len) FROM PKT WHERE nope = 3 GROUP BY time/60 as tb, len as tb";
    let diags = stream_sampler::query::check(src, &Packet::schema(), &PlannerConfig::standard());
    let found: Vec<Code> = diags.iter().map(|d| d.code).collect();
    for want in [Code::E001, Code::E002, Code::E003, Code::E004] {
        assert!(found.contains(&want), "missing {want:?} in {found:?}");
    }
    // Each diagnostic points at real source text.
    for d in &diags {
        assert!(d.span.start < d.span.end && d.span.end <= src.len(), "{d:?}");
    }
}

#[test]
fn check_turns_parse_failures_into_coded_diagnostics() {
    use stream_sampler::query::Code;
    assert_eq!(codes("SELECT tb FROM"), [Code::E101]);
    assert_eq!(codes("SELECT # FROM PKT GROUP BY time/60 as tb"), [Code::E100]);
}

#[test]
fn check_diagnostics_round_trip_through_json() {
    use stream_sampler::query::Diagnostic;
    // Real analyzer output — a mix of errors (with help text) and a
    // parse failure — survives `sso check --json`'s wire format.
    for src in [
        "SELECT len, zap(len) FROM PKT WHERE nope = 3 GROUP BY time/60 as tb, len as tb",
        "SELECT tb FROM",
        "SELECT tb, sum(len), sum(len) FROM PKT GROUP BY time/1 as tb",
    ] {
        let diags =
            stream_sampler::query::check(src, &Packet::schema(), &PlannerConfig::standard());
        assert!(!diags.is_empty(), "{src}");
        for d in &diags {
            let line = d.to_json();
            assert!(!line.contains('\n'), "one object per line: {line}");
            assert_eq!(&Diagnostic::from_json(&line).unwrap(), d, "via {line}");
        }
    }
}

#[test]
fn warnings_do_not_block_planning() {
    use stream_sampler::query::Severity;
    // Duplicate output names are a warning (W005): the query still
    // compiles and runs.
    let src = "SELECT tb, sum(len), sum(len) FROM PKT GROUP BY time/1 as tb";
    let diags = stream_sampler::query::check(src, &Packet::schema(), &PlannerConfig::standard());
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.severity == Severity::Warning), "{diags:?}");
    let w = run(src);
    assert_eq!(w.len(), 2);
}
