//! The sharded runtime: R supervised router lanes hash-partition tuples
//! by the plan's partition key and feed per-(router, shard) batched
//! bounded rings; each shard runs its own operator instance draining
//! all R of its rings in lane order; window outputs are merged by the
//! plan's rule after the workers drain.
//!
//! ## Router lanes
//!
//! The materialized input stream is split up front into R *contiguous*
//! segments (one cursor per lane, see [`router_cursors`]); lane `r`
//! routes segment `r` into its own set of SPSC rings. Because the
//! segments are contiguous in stream order, keyed routing is a pure
//! content hash, and round-robin routing is a pure function of the
//! tuple's global stream position, every shard receives exactly the
//! same tuple sequence whatever R is — multi-router runs are
//! byte-identical to single-router runs.
//!
//! ## Fault tolerance
//!
//! Degradation mechanisms keep a run alive — and its samples
//! honest — when a shard *or a router lane* misbehaves (see `DESIGN.md`
//! §"Fault model"):
//!
//! * **Quarantine supervision** ([`Supervision::Quarantine`], the
//!   default): a worker panic is caught with the poisoned operator's
//!   current window key; the shard discards (and counts) that window's
//!   remaining tuples, then respawns a fresh operator instance at the
//!   next window boundary. Merge-finalize re-thresholds the surviving
//!   shards' samples and tags the window's output with its coverage.
//! * **Principled shedding** ([`Backpressure::Shed`]): ring pressure
//!   raises a per-shard threshold z (the §7.1 mechanism driven in
//!   reverse), so overload sheds *below-threshold* tuples with exact
//!   Horvitz–Thompson accounting instead of dropping whole batches.
//! * **Window deadline** ([`RuntimeConfig::window_deadline`]): a
//!   straggler shard cannot stall merge-finalize forever — the barrier
//!   is cut at the deadline, the merge proceeds over the shards that
//!   published, and the lost coverage is accounted and alerted through
//!   the undersample-detector path.
//! * **Router supervision**: each lane routes under a per-segment
//!   `catch_unwind`; a panicked lane is quarantined for the current
//!   window (its unrouted tuples counted as `rt.router_uncovered`
//!   mass, degrading that window exactly like a quarantined shard) and
//!   respawned at the next window boundary from its segment cursor.
//!   Router death is a degraded window, not a dead process.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;
use std::time::Duration;

use rustc_hash::FxHasher;
use sso_core::{
    panic_message, EvalCtx, Expr, OpError, OperatorMetrics, OperatorSpec, SamplingOperator,
    ShardPlan, SizingHints, SpillStats, WindowOutput,
};
use sso_faults::{FaultPlan, WorkerFaultSchedule};
use sso_obs::{
    Counter, Gauge, Histogram, Registry, Stopwatch, UndersampleConfig, UndersampleDetector,
};
use sso_profile::{
    DumpReason, Event as ProfEvent, LaneKind, LaneWriter, Profiler, Stage as ProfStage,
};
use sso_store::{FsyncPolicy, PagedGroupTable, ShardStore, StoreConfig, WindowRecord};
use sso_sync::hint::Backoff;
use sso_sync::{SyncBool, SyncUsize};
use sso_types::Tuple;

use crate::barrier::MergeBarrier;
use crate::merge::ShardPartial;
use crate::ring::{ring, PushError};

/// What the router does when a shard's ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for the worker (lossless; counts a stall per wait).
    Block,
    /// Discard the newest batch (lossy; counts every dropped tuple) —
    /// the behaviour of a real NIC ring under overload. Biases every
    /// downstream estimate; kept for comparison and for workloads where
    /// bias is acceptable.
    DropNewest,
    /// Shed below-threshold tuples (lossy but *principled*): a full ring
    /// raises the shard's shed threshold z, and a tuple of weight `w`
    /// survives if `w > z` or by the deterministic metering rule (one
    /// survivor per z of accumulated small weight — the same rule as the
    /// operator's threshold pass). Every shed tuple and its weight is
    /// counted, so `offered == delivered + shed` exactly, and the kept
    /// stream is an unbiased threshold sample of the offered stream.
    Shed {
        /// Input column holding the tuple's weight. `None` weights every
        /// tuple 1 (count semantics).
        weight_col: Option<usize>,
    },
}

/// What happens when a shard's worker panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Supervision {
    /// Quarantine the shard for the poisoned window and respawn a fresh
    /// operator at the next window boundary; the run completes with
    /// per-window coverage accounting.
    #[default]
    Quarantine,
    /// Abort the run with [`RuntimeError::WorkerPanic`] (the pre-fault
    /// -tolerance behaviour).
    Abort,
}

/// Durable-state configuration (the `sso-store` subsystem): per-shard
/// window-boundary checkpoints plus a carry-over WAL under [`Self::dir`],
/// and an optional resident-state budget that swaps the in-RAM group
/// table for the spill-to-disk pager.
///
/// Recovery contract: a run killed mid-stream loses at most the window
/// that was open at the kill. A resumed run
/// ([`DurabilityConfig::resume`]) re-feeds the same deterministic input,
/// skips every window at or below the recovered watermark (those
/// outputs come from the store), and recomputes the rest — byte
/// -identical to a fault-free run for every window.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Store directory: per-shard checkpoint/WAL/spill files and the
    /// run MANIFEST.
    pub dir: PathBuf,
    /// Windows between checkpoint compactions; `0` = checkpoint only at
    /// end of stream.
    pub checkpoint_every: u64,
    /// WAL fsync policy (checkpoints always sync).
    pub fsync: FsyncPolicy,
    /// Total resident group-state budget in bytes, split evenly across
    /// shards. `None` keeps the in-RAM table (no spilling). After a
    /// quarantine respawn the fresh operator runs in RAM — budget
    /// enforcement covers the fault-free path.
    pub state_budget: Option<u64>,
    /// Resume from the directory's recovered state instead of starting
    /// a fresh run (the `sso recover` path).
    pub resume: bool,
}

impl DurabilityConfig {
    /// Durability under `dir` with the default cadence: checkpoint
    /// every 8 windows, no WAL fsync, no state budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 8,
            fsync: FsyncPolicy::Never,
            state_budget: None,
            resume: false,
        }
    }
}

/// Sharded-runtime tuning knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker shards (operator instances).
    pub shards: usize,
    /// Number of supervised router lanes. `0` (the default) resolves to
    /// `min(shards, cores/4).max(1)` — see [`auto_routers`]. Each lane
    /// owns one ring per shard and routes one contiguous segment of the
    /// input stream; output is byte-identical for every lane count.
    pub routers: usize,
    /// Explicit per-lane segment cursors (0-based start index of each
    /// lane's input segment; must begin at 0 and be non-decreasing).
    /// `None` computes them from the stream length — the only reason to
    /// pass them explicitly is resuming a durable run whose MANIFEST
    /// recorded the original cursors.
    pub router_cursors: Option<Vec<u64>>,
    /// Cap on worker *threads*: `0` (the default) spawns one thread per
    /// shard; `N` multiplexes the shards onto `min(N, shards)` pool
    /// threads, each draining its shards' rings round-robin. Results
    /// are byte-identical either way — every shard's batches are still
    /// consumed in its own ring order by exactly one thread — but on a
    /// host with fewer cores than shards the cap stops idle workers
    /// from burning scheduler quanta the busy ones need.
    pub worker_cap: usize,
    /// Ring depth per (router, shard) ring, in batches.
    pub ring_capacity: usize,
    /// Tuples per batch.
    pub batch_size: usize,
    /// Full-ring policy.
    pub backpressure: Backpressure,
    /// Seed for randomized window merges (reservoir); per-shard sampler
    /// seeds come from the spec factory instead.
    pub seed: u64,
    /// Telemetry registry to record into. `None` = a private disabled
    /// registry: counters still land (so [`ShardStats`] stays exact)
    /// but span tracing is off and nothing is exported.
    pub registry: Option<Registry>,
    /// Worker-panic policy.
    pub supervision: Supervision,
    /// Cut merge-finalize loose from stragglers after this long: once
    /// the router has routed everything, shards that have not published
    /// within the deadline are excluded from the merge (their routed
    /// traffic is accounted as uncovered). `None` waits forever.
    pub window_deadline: Option<Duration>,
    /// Fault-injection plan: worker events fire inside the shard
    /// workers. Feed-level events must be applied by the caller via
    /// [`sso_faults::FaultPlan::perturb_packets`].
    pub faults: Option<Arc<FaultPlan>>,
    /// Pre-sizing hints from the static audit's certified state bounds
    /// (per shard): group/supergroup tables are reserved up front and
    /// `ring_batches` overrides [`Self::ring_capacity`]. `None` keeps
    /// grow-on-demand behaviour.
    pub sizing: Option<SizingHints>,
    /// Durable operator state: `None` runs fully in memory; `Some`
    /// checkpoints every shard's window state under the configured
    /// directory and (optionally) bounds resident group state.
    pub durability: Option<DurabilityConfig>,
    /// Causal stage tracing: every batch leaves lineage stamps (ingest →
    /// route → ring wait → process → barrier → merge → emit) in
    /// per-thread event rings, and panic/straggle/shed/crash triggers
    /// dump them as a flight recording. `None` costs one branch per
    /// batch.
    pub profile: Option<Profiler>,
    /// A shared prefilter from a certified plan rewrite
    /// (`sso-rewrite`): a pure tuple predicate every registered query
    /// implies, evaluated once per tuple *ahead of the router*. Tuples
    /// failing it are dropped before routing; because every consumer
    /// keeps its full residual predicate, window output is unchanged —
    /// only routing and operator work shrinks. An evaluation error
    /// passes the tuple through (hoisted clauses are proven total, so
    /// this is belt-and-braces, never a correctness lever).
    pub shared_prefilter: Option<Arc<Expr>>,
}

impl RuntimeConfig {
    /// A config with `shards` workers and the default ring shape:
    /// 16 batches of 1024 tuples, blocking backpressure. (Same 16K-tuple
    /// ring depth as 64x256, but fewer handoffs per tuple; larger
    /// batches start thrashing cache.)
    pub fn new(shards: usize) -> Self {
        RuntimeConfig {
            shards,
            routers: 0,
            router_cursors: None,
            worker_cap: 0,
            ring_capacity: 16,
            batch_size: 1024,
            backpressure: Backpressure::Block,
            seed: 0x5eed_00d5,
            registry: None,
            supervision: Supervision::default(),
            window_deadline: None,
            faults: None,
            sizing: None,
            durability: None,
            profile: None,
            shared_prefilter: None,
        }
    }

    /// Record this run's telemetry into `registry`.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Route with `routers` supervised lanes (`0` = auto).
    pub fn with_routers(mut self, routers: usize) -> Self {
        self.routers = routers;
        self
    }

    /// Resume with the original run's per-lane segment cursors (the
    /// MANIFEST's `router_cursors`), so a recovered run re-partitions
    /// the regenerated stream identically.
    pub fn with_router_cursors(mut self, cursors: Vec<u64>) -> Self {
        self.routers = cursors.len();
        self.router_cursors = Some(cursors);
        self
    }

    /// The lane count this config runs with: the explicit value, or the
    /// [`auto_routers`] default when `routers == 0`.
    pub fn resolved_routers(&self) -> usize {
        if self.routers == 0 {
            auto_routers(self.shards)
        } else {
            self.routers
        }
    }

    /// Run the shards on at most `cap` pool threads (`0` = one thread
    /// per shard); see [`RuntimeConfig::worker_cap`].
    pub fn with_worker_cap(mut self, cap: usize) -> Self {
        self.worker_cap = cap;
        self
    }

    /// The worker-thread count this config runs with.
    pub fn resolved_workers(&self) -> usize {
        if self.worker_cap == 0 {
            self.shards
        } else {
            self.worker_cap.min(self.shards).max(1)
        }
    }

    /// Inject faults from `plan` (worker panics and stalls).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Finalize without stragglers after `deadline`.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.window_deadline = Some(deadline);
        self
    }

    /// Pre-size per-shard operator tables (and optionally rings) from
    /// the audit's certified bounds.
    pub fn with_sizing(mut self, hints: SizingHints) -> Self {
        self.sizing = Some(hints);
        self
    }

    /// Persist operator state under `durability`'s store directory.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Evaluate `prefilter` once per tuple ahead of the router,
    /// dropping tuples that fail it (see
    /// [`RuntimeConfig::shared_prefilter`]).
    pub fn with_shared_prefilter(mut self, prefilter: Arc<Expr>) -> Self {
        self.shared_prefilter = Some(prefilter);
        self
    }

    /// Record per-batch lineage stamps (and arm the flight recorder)
    /// into `profiler`.
    pub fn with_profile(mut self, profiler: Profiler) -> Self {
        self.profile = Some(profiler);
        self
    }

    /// The effective ring depth: the sizing hint's override when
    /// present, the configured default otherwise.
    fn effective_ring_capacity(&self) -> usize {
        self.sizing.and_then(|h| h.ring_batches).unwrap_or(self.ring_capacity)
    }
}

/// The default router-lane count for `shards` workers:
/// `min(shards, cores/4).max(1)`. Routing is ~4x cheaper per tuple than
/// operator processing, so one lane per four cores keeps ingest off the
/// workers' cores until the shard count itself is the limit.
pub fn auto_routers(shards: usize) -> usize {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    (cores / 4).max(1).min(shards.max(1))
}

/// The per-lane segment cursors for an `n`-tuple stream split across
/// `routers` contiguous segments: lane `r` owns stream positions
/// `[cursors[r], cursors[r+1])` (the last segment ends at `n`). These
/// are the cursors a durable run records in its MANIFEST so `sso
/// recover` re-partitions the regenerated stream identically.
pub fn router_cursors(n: u64, routers: usize) -> Vec<u64> {
    let routers = routers.max(1);
    (0..routers).map(|r| ((n as u128 * r as u128) / routers as u128) as u64).collect()
}

/// Per-shard accounting: a thin view over this shard's registry cells
/// (`rt.*` metrics labeled `shard=N`). The workers and the router write
/// the cells directly, so mid-run snapshots of the shared registry see
/// live values; the accessors here read the same cells and are exact
/// once the run has joined its workers.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    tuples: Counter,
    windows: Counter,
    stalls: Counter,
    dropped: Counter,
    busy_ns: Counter,
    quarantines: Counter,
    uncovered: Counter,
    shed_tuples: Counter,
    shed_weight: Gauge,
    shed_z: Gauge,
}

impl ShardStats {
    fn register(registry: &Registry, shard: usize) -> Self {
        let label = format!("shard={shard}");
        ShardStats {
            shard,
            tuples: registry.counter_labeled("rt.tuples", label.clone()),
            windows: registry.counter_labeled("rt.windows", label.clone()),
            stalls: registry.counter_labeled("rt.stalls", label.clone()),
            dropped: registry.counter_labeled("rt.dropped", label.clone()),
            busy_ns: registry.counter_labeled("rt.busy_ns", label.clone()),
            quarantines: registry.counter_labeled("rt.quarantines", label.clone()),
            uncovered: registry.counter_labeled("rt.uncovered", label.clone()),
            shed_tuples: registry.counter_labeled("rt.shed_tuples", label.clone()),
            shed_weight: registry.gauge_labeled("rt.shed_weight", label.clone()),
            shed_z: registry.gauge_labeled("rt.shed_z", label),
        }
    }

    /// Tuples delivered to the worker (including any it then lost to a
    /// quarantined window; see [`ShardStats::uncovered`]).
    pub fn tuples(&self) -> u64 {
        self.tuples.get()
    }

    /// Windows the worker closed.
    pub fn windows(&self) -> u64 {
        self.windows.get()
    }

    /// Times the router blocked on this shard's full ring (one stall per
    /// full-ring wait, however long the wait).
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }

    /// Tuples dropped at this shard's full ring
    /// ([`Backpressure::DropNewest`] only).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Worker busy time, updated per batch (not only at worker join).
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.get())
    }

    /// Worker panics caught and quarantined on this shard.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.get()
    }

    /// Tuples lost to quarantined windows on this shard.
    pub fn uncovered(&self) -> u64 {
        self.uncovered.get()
    }

    /// Tuples shed below the threshold at this shard's full ring
    /// ([`Backpressure::Shed`] only).
    pub fn shed(&self) -> u64 {
        self.shed_tuples.get()
    }

    /// Total weight shed at this shard's full ring.
    pub fn shed_weight(&self) -> f64 {
        self.shed_weight.get()
    }

    /// The shard's current shed threshold z (0 = not shedding).
    pub fn shed_z(&self) -> f64 {
        self.shed_z.get()
    }
}

/// Per-router-lane accounting: a thin view over the lane's registry
/// cells (`rt.router_*` metrics labeled `router=R`). Exact once the
/// run has joined its lanes.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Router-lane index.
    pub router: usize,
    tuples: Counter,
    quarantines: Counter,
    uncovered: Counter,
    batch_tuples: Histogram,
}

impl RouterStats {
    fn register(registry: &Registry, router: usize) -> Self {
        let label = format!("router={router}");
        RouterStats {
            router,
            tuples: registry.counter_labeled("rt.router_tuples", label.clone()),
            quarantines: registry.counter_labeled("rt.router_quarantines", label.clone()),
            uncovered: registry.counter_labeled("rt.router_uncovered", label.clone()),
            batch_tuples: registry.histogram_labeled("rt.router_batch_tuples", label),
        }
    }

    /// Segment tuples the lane handled (routed plus uncovered).
    pub fn tuples(&self) -> u64 {
        self.tuples.get()
    }

    /// Lane panics caught and quarantined.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.get()
    }

    /// Tuples lost while the lane was quarantined (never routed).
    pub fn uncovered(&self) -> u64 {
        self.uncovered.get()
    }
}

/// Per-shard durable-store telemetry (`store.*` gauges labeled
/// `shard=N`), set from the shard's [`ShardStore`] counters and the
/// pager's [`SpillStats`] after every batch and at worker exit.
struct StoreStats {
    wal_appends: Gauge,
    wal_bytes: Gauge,
    ckpt_writes: Gauge,
    ckpt_bytes: Gauge,
    /// Windows recorded since the last checkpoint — how much WAL replay
    /// a crash right now would cost.
    ckpt_age: Gauge,
    resident_bytes: Gauge,
    peak_resident_bytes: Gauge,
    page_faults: Gauge,
    spilled_pages: Gauge,
}

impl StoreStats {
    fn register(registry: &Registry, shard: usize) -> Self {
        let label = format!("shard={shard}");
        StoreStats {
            wal_appends: registry.gauge_labeled("store.wal_appends", label.clone()),
            wal_bytes: registry.gauge_labeled("store.wal_bytes", label.clone()),
            ckpt_writes: registry.gauge_labeled("store.ckpt_writes", label.clone()),
            ckpt_bytes: registry.gauge_labeled("store.ckpt_bytes", label.clone()),
            ckpt_age: registry.gauge_labeled("store.ckpt_age", label.clone()),
            resident_bytes: registry.gauge_labeled("store.resident_bytes", label.clone()),
            peak_resident_bytes: registry.gauge_labeled("store.peak_resident_bytes", label.clone()),
            page_faults: registry.gauge_labeled("store.page_faults", label.clone()),
            spilled_pages: registry.gauge_labeled("store.spilled_pages", label),
        }
    }

    fn set_from(&self, store: &ShardStore, spill: Option<SpillStats>) {
        self.wal_appends.set(store.wal_appends() as f64);
        self.wal_bytes.set(store.wal_bytes() as f64);
        self.ckpt_writes.set(store.ckpt_writes() as f64);
        self.ckpt_bytes.set(store.ckpt_bytes() as f64);
        self.ckpt_age.set(store.windows_since_ckpt() as f64);
        if let Some(s) = spill {
            self.resident_bytes.set(s.resident_bytes as f64);
            self.peak_resident_bytes.set(s.peak_resident_bytes as f64);
            self.page_faults.set(s.page_faults as f64);
            self.spilled_pages.set(s.spilled_pages as f64);
        }
    }
}

/// Why a sharded run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A shard's operator returned an error.
    Op {
        /// Shard index.
        shard: usize,
        /// The operator error.
        source: OpError,
    },
    /// A shard's worker thread panicked ([`Supervision::Abort`] only;
    /// quarantine supervision converts panics into coverage loss).
    WorkerPanic {
        /// Shard index.
        shard: usize,
        /// Panic payload message.
        message: String,
    },
    /// A router lane panicked ([`Supervision::Abort`] only; quarantine
    /// supervision converts lane panics into coverage loss).
    RouterPanic {
        /// Router-lane index.
        router: usize,
        /// Panic payload message.
        message: String,
    },
    /// The configuration is unusable (zero shards, zero batch size).
    BadConfig(String),
    /// An injected `crash@N` fault fired: routing stopped at the
    /// trigger tuple, the workers abandoned their open windows, and
    /// nothing was merged — the whole-process-death simulation. A
    /// durable run's recorded state survives for `sso recover`.
    Crashed {
        /// The trigger: the 1-based index of the stream tuple whose
        /// arrival killed the run.
        at_tuple: u64,
    },
    /// A durable-store operation failed (I/O or a state codec error).
    Store {
        /// Shard index.
        shard: usize,
        /// What failed.
        message: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Op { shard, source } => write!(f, "shard {shard}: {source}"),
            RuntimeError::WorkerPanic { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
            RuntimeError::RouterPanic { router, message } => {
                write!(f, "router lane {router} panicked: {message}")
            }
            RuntimeError::BadConfig(msg) => write!(f, "bad runtime config: {msg}"),
            RuntimeError::Crashed { at_tuple } => {
                write!(f, "injected crash fired at stream tuple {at_tuple}")
            }
            RuntimeError::Store { shard, message } => {
                write!(f, "shard {shard} durable store: {message}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The result of a sharded run: merged windows plus per-shard accounting.
#[derive(Debug)]
pub struct ShardedReport {
    /// Window outputs after merge-finalize, in window order. Each
    /// carries its own [`sso_core::Degradation`] tag.
    pub windows: Vec<WindowOutput>,
    /// Per-shard accounting, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-router-lane accounting, indexed by lane.
    pub routers: Vec<RouterStats>,
    /// Run-level coverage: fraction of worker-delivered (plus
    /// straggler-routed) tuples represented by the merged output.
    pub coverage: f64,
    /// Shards cut off by the window deadline (their partials were not
    /// published in time and are excluded from the merge).
    pub stragglers: Vec<usize>,
}

impl ShardedReport {
    /// Total tuples dropped at full rings.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Total router stalls on full rings.
    pub fn stalls(&self) -> u64 {
        self.shards.iter().map(|s| s.stalls()).sum()
    }

    /// Total tuples shed below the backpressure threshold.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed()).sum()
    }

    /// Total worker panics caught and quarantined.
    pub fn quarantines(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantines()).sum()
    }

    /// Total router-lane panics caught and quarantined.
    pub fn router_quarantines(&self) -> u64 {
        self.routers.iter().map(|r| r.quarantines()).sum()
    }

    /// Total tuples lost to quarantined router lanes (never routed).
    pub fn router_uncovered(&self) -> u64 {
        self.routers.iter().map(|r| r.uncovered()).sum()
    }

    /// Whether any fault degraded the output (`coverage < 1`).
    pub fn degraded(&self) -> bool {
        self.coverage < 1.0
    }
}

/// Map a partition-key hash to a shard; hot enough on the router thread
/// that the power-of-two mask (vs a 64-bit division) is measurable.
#[inline]
fn pick_shard(hash: u64, shards: usize) -> usize {
    if shards.is_power_of_two() {
        (hash as usize) & (shards - 1)
    } else {
        (hash % shards as u64) as usize
    }
}

/// How a router lane picks a shard for a tuple. Stateless — a routing
/// decision depends only on the tuple's content (keyed routing) or its
/// global stream position (round-robin), never on which lane evaluates
/// it or what was routed before. That is what makes the per-lane
/// segment split invisible: shard sequences are byte-identical for any
/// lane count.
enum Router {
    /// No partition key: deal tuples out cyclically by global stream
    /// position (valid only with a key-free merge rule).
    RoundRobin,
    /// Every partition expression is a plain input column.
    Columns(Vec<usize>),
    /// General tuple-phase expressions.
    Exprs(Vec<Expr>),
}

impl Router {
    fn new(plan: &ShardPlan) -> Router {
        if plan.partition_exprs.is_empty() {
            return Router::RoundRobin;
        }
        let cols: Option<Vec<usize>> = plan
            .partition_exprs
            .iter()
            .map(|e| match e {
                Expr::Column(i) => Some(*i),
                _ => None,
            })
            .collect();
        match cols {
            Some(cols) => Router::Columns(cols),
            None => Router::Exprs(plan.partition_exprs.clone()),
        }
    }

    /// The shard for the tuple at 0-based global stream position
    /// `index`.
    fn route(&self, tuple: &Tuple, index: u64, shards: usize) -> usize {
        match self {
            Router::RoundRobin => (index % shards as u64) as usize,
            Router::Columns(cols) => {
                let mut h = FxHasher::default();
                for &c in cols.iter() {
                    tuple.get(c).hash(&mut h);
                }
                pick_shard(h.finish(), shards)
            }
            Router::Exprs(exprs) => {
                let mut h = FxHasher::default();
                for e in exprs.iter() {
                    let mut ctx = EvalCtx { tuple: Some(tuple), ..EvalCtx::empty("GROUP BY") };
                    match e.eval(&mut ctx) {
                        Ok(v) => v.hash(&mut h),
                        // The worker evaluates the same expression in its
                        // GROUP BY and will surface the error; any shard
                        // will do for the faulty tuple.
                        Err(_) => return 0,
                    }
                }
                pick_shard(h.finish(), shards)
            }
        }
    }
}

/// Replay the router's shard decisions for a tuple sequence — the shard
/// each tuple would land on in a run with `shards` workers. Tests (and
/// fault-plan authors) use this to find which window a planned
/// `(shard, tuple-count)` panic lands in.
pub fn route_stream<'a>(
    plan: &ShardPlan,
    shards: usize,
    tuples: impl IntoIterator<Item = &'a Tuple>,
) -> Vec<usize> {
    let router = Router::new(plan);
    tuples.into_iter().enumerate().map(|(i, t)| router.route(t, i as u64, shards)).collect()
}

/// Evaluate the window-defining expressions against a raw tuple. `None`
/// on evaluation error (the operator will surface the error itself when
/// the tuple is processed live).
fn window_key(wexprs: &[Expr], tuple: &Tuple) -> Option<Tuple> {
    let mut vals = Vec::with_capacity(wexprs.len());
    for e in wexprs {
        let mut ctx = EvalCtx { tuple: Some(tuple), ..EvalCtx::empty("GROUP BY") };
        vals.push(e.eval(&mut ctx).ok()?);
    }
    Some(Tuple::new(vals))
}

/// `a <= b` under pairwise value comparison — the resume-time
/// watermark-skip test. Windows are assumed monotone in stream order
/// (the same assumption the operator's key-change turnover makes).
fn window_le(a: &Tuple, b: &Tuple) -> bool {
    for (x, y) in a.values().iter().zip(b.values()) {
        match x.compare(y).unwrap_or(std::cmp::Ordering::Equal) {
            std::cmp::Ordering::Equal => continue,
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
        }
    }
    a.arity() <= b.arity()
}

/// Per-shard setup built before the workers spawn: the operator, its
/// durable writer (if any), its resume watermark, and the recovered
/// window outputs that seed its partial.
type ShardSetup = (SamplingOperator, Option<ShardStore>, Option<Tuple>, Vec<WindowOutput>);

/// Durably record one closed window: the output plus the carry-over and
/// library-auxiliary bytes the operator captured *at the flush boundary*
/// (see `SamplingOperator::set_capture_flush`) — exactly the restart
/// state, with no per-tuple work in the worker loop.
fn record_window(
    store: &mut ShardStore,
    output: &WindowOutput,
    carry: &[u8],
    aux: &[u8],
    shard: usize,
) -> Result<(), RuntimeError> {
    store
        .record_window(&WindowRecord { output, carry, aux })
        .map_err(|e| RuntimeError::Store { shard, message: e.to_string() })
}

/// One shard's supervised worker state: the live operator (or the
/// window key it is quarantined for), the window outputs accumulated so
/// far, and the per-window uncovered counts.
struct Worker<'a, F> {
    shard: usize,
    op: Option<SamplingOperator>,
    /// `Some(key)` while quarantined: tuples of window `key` are
    /// discarded (and counted); the first tuple of a different window
    /// triggers the respawn.
    quarantined: Option<Tuple>,
    /// Tuples fed into the live operator's current window (the loss if
    /// it panics now).
    window_tuples: u64,
    /// Tuples handed to this worker so far (fault triggers key on this).
    tuple_count: u64,
    windows: Vec<WindowOutput>,
    uncovered: Vec<(Tuple, u64)>,
    wexprs: Vec<Expr>,
    faults: WorkerFaultSchedule,
    supervision: Supervision,
    stats: ShardStats,
    registry: Registry,
    make_spec: &'a F,
    /// Durable writer for this shard (`None` = in-memory run).
    store: Option<ShardStore>,
    /// Resume watermark: tuples whose window key is `<=` this are
    /// skipped (their windows were recovered from the store). Cleared
    /// at the first tuple past it.
    watermark: Option<Tuple>,
    store_stats: Option<StoreStats>,
    /// Flight-recorder handle: a caught panic arms the dump trigger so
    /// the last events before the quarantine survive the run.
    profiler: Option<Profiler>,
}

impl<F> Worker<'_, F>
where
    F: Fn(usize) -> Result<OperatorSpec, OpError>,
{
    fn add_uncovered(&mut self, key: Tuple, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.uncovered.add(n);
        match self.uncovered.iter_mut().find(|(k, _)| *k == key) {
            Some((_, c)) => *c += n,
            None => self.uncovered.push((key, n)),
        }
    }

    /// Catch the aftermath of a panic: take the poisoned operator, mark
    /// its in-flight window (everything fed into it, plus the tuple
    /// that tripped the panic, if any) as uncovered, and quarantine.
    ///
    /// If the panic struck *while flushing* the previous window (the
    /// tripping tuple opened a new one), the operator's current window
    /// is still the old key, so the tripping tuple is attributed there —
    /// a one-tuple misattribution; the totals stay exact.
    fn enter_quarantine(&mut self, tripped_by: Option<&Tuple>) {
        let key = self
            .op
            .take()
            .and_then(|o| o.current_window())
            .or_else(|| tripped_by.and_then(|t| window_key(&self.wexprs, t)))
            .unwrap_or_else(|| Tuple::new(Vec::new()));
        let lost = self.window_tuples + u64::from(tripped_by.is_some());
        self.add_uncovered(key.clone(), lost);
        self.stats.quarantines.inc();
        self.window_tuples = 0;
        self.quarantined = Some(key);
        if let Some(p) = &self.profiler {
            p.trigger(DumpReason::Panic);
        }
    }

    /// Leave quarantine: build a fresh operator instance from the spec
    /// factory. Its sampler state starts clean — cross-window threshold
    /// carry-over is lost for this shard, which only makes the next
    /// window's sample *larger* (lower z), never biased.
    fn revive(&mut self) -> Result<(), OpError> {
        let mut op = SamplingOperator::new((self.make_spec)(self.shard)?)?;
        op.set_metrics(OperatorMetrics::register(&self.registry, format!("shard={}", self.shard)));
        // A durable worker needs the respawned operator capturing
        // boundary snapshots too, or its next window close has nothing
        // to record.
        if self.store.is_some() {
            op.set_capture_flush(true);
        }
        self.op = Some(op);
        self.quarantined = None;
        self.window_tuples = 0;
        Ok(())
    }

    fn run_batch(&mut self, batch: &[Tuple]) -> Result<(), RuntimeError> {
        let mut cursor = 0usize;
        while cursor < batch.len() {
            if let Some(qkey) = self.quarantined.clone() {
                while cursor < batch.len() {
                    let t = &batch[cursor];
                    if window_key(&self.wexprs, t).as_ref() == Some(&qkey) {
                        self.tuple_count += 1;
                        self.add_uncovered(qkey.clone(), 1);
                        cursor += 1;
                    } else {
                        // Window boundary: respawn and resume live.
                        let shard = self.shard;
                        self.revive().map_err(|source| RuntimeError::Op { shard, source })?;
                        break;
                    }
                }
                if self.quarantined.is_some() {
                    return Ok(());
                }
            }
            // Live segment: one catch_unwind per segment, not per tuple,
            // so the fault-free hot path pays (almost) nothing. `cursor`
            // lives outside the closure: after a panic it names the
            // tuple that tripped it.
            let outcome = {
                let op = self.op.as_mut().expect("live worker has an operator");
                let cursor = &mut cursor;
                let tuple_count = &mut self.tuple_count;
                let window_tuples = &mut self.window_tuples;
                let windows = &mut self.windows;
                let faults = &mut self.faults;
                let window_counter = &self.stats.windows;
                let shard = self.shard;
                let store = &mut self.store;
                let watermark = &mut self.watermark;
                let wexprs = &self.wexprs;
                catch_unwind(AssertUnwindSafe(move || -> Result<(), RuntimeError> {
                    let op_err = |source| RuntimeError::Op { shard, source };
                    while *cursor < batch.len() {
                        let tuple = &batch[*cursor];
                        if watermark.is_some() {
                            // Resume prefix: tuples at or below the
                            // watermark are covered by recovered
                            // windows' stored outputs. Only this
                            // prefix pays a per-tuple window-key
                            // evaluation; windows are monotone in
                            // stream order, so the first tuple past
                            // the watermark ends the checking for
                            // good.
                            if let Some(k) = window_key(wexprs, tuple) {
                                let wm = watermark.as_ref().expect("checked above");
                                if window_le(&k, wm) {
                                    *tuple_count += 1;
                                    *cursor += 1;
                                    continue;
                                }
                                *watermark = None;
                            }
                        }
                        *tuple_count += 1;
                        if let Some(f) = faults.check(*tuple_count) {
                            f.trip(shard, *tuple_count);
                        }
                        match op.process(tuple).map_err(op_err)? {
                            Some(w) => {
                                window_counter.inc();
                                if let Some(st) = store.as_mut() {
                                    // The operator captured carry/aux
                                    // at the flush boundary, before
                                    // this tuple touched the new
                                    // window's state — exactly the
                                    // restart state.
                                    let (carry, aux) = op.take_flush_state().ok_or_else(|| {
                                        RuntimeError::Store {
                                            shard,
                                            message: "window closed without a boundary \
                                                          snapshot"
                                                .into(),
                                        }
                                    })?;
                                    record_window(st, &w, &carry, &aux, shard)?;
                                }
                                windows.push(w);
                                // This tuple opened the new window.
                                *window_tuples = 1;
                            }
                            None => *window_tuples += 1,
                        }
                        *cursor += 1;
                    }
                    Ok(())
                }))
            };
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    if self.supervision == Supervision::Abort {
                        resume_unwind(payload);
                    }
                    self.enter_quarantine(Some(&batch[cursor]));
                    cursor += 1;
                }
            }
        }
        Ok(())
    }

    /// End of stream: flush the live operator's final window (a panic
    /// during the flush loses that window, accounted like any other),
    /// then seal a durable run with its final checkpoint.
    fn finish(&mut self) -> Result<(), RuntimeError> {
        let shard = self.shard;
        if let Some(op) = self.op.as_mut() {
            match catch_unwind(AssertUnwindSafe(|| op.finish())) {
                Ok(Ok(Some(w))) => {
                    self.stats.windows.inc();
                    if let Some(store) = self.store.as_mut() {
                        // The final flush captured its boundary
                        // snapshot like any other; fall back to a
                        // direct export if capture was somehow off.
                        let (carry, aux) = match op.take_flush_state() {
                            Some(s) => s,
                            None => {
                                let carry = op
                                    .export_carry()
                                    .map_err(|message| RuntimeError::Store { shard, message })?;
                                (carry, op.export_aux())
                            }
                        };
                        record_window(store, &w, &carry, &aux, shard)?;
                    }
                    self.windows.push(w);
                }
                Ok(Ok(None)) => {}
                Ok(Err(source)) => return Err(RuntimeError::Op { shard, source }),
                Err(payload) => {
                    if self.supervision == Supervision::Abort {
                        resume_unwind(payload);
                    }
                    self.enter_quarantine(None);
                }
            }
        }
        if let Some(store) = self.store.as_mut() {
            store.finalize().map_err(|e| RuntimeError::Store { shard, message: e.to_string() })?;
        }
        self.publish_store_stats();
        Ok(())
    }

    /// Refresh the `store.*` gauges from the live store and pager.
    fn publish_store_stats(&self) {
        if let (Some(store), Some(ss)) = (self.store.as_ref(), self.store_stats.as_ref()) {
            ss.set_from(store, self.op.as_ref().and_then(|o| o.spill_stats()));
        }
    }

    fn into_partial(self) -> ShardPartial {
        ShardPartial { windows: self.windows, uncovered: self.uncovered }
    }
}

thread_local! {
    /// Set on worker and router threads running under
    /// [`Supervision::Quarantine`]:
    /// a caught supervised-lane panic is part of the fault model, not a crash,
    /// so the hook reduces it to one stderr line — the quarantine
    /// accounting is the real report. Every other thread (and every
    /// `Abort`-supervised worker) keeps the previously installed hook.
    static QUIET_WORKER_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install — once per process — a panic hook that quiets supervised
/// worker panics, chaining to the prior hook for all other threads.
fn install_supervised_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET_WORKER_PANICS.with(std::cell::Cell::get) {
                let payload = info.payload();
                let msg = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("<non-string panic payload>");
                eprintln!(
                    "sso-runtime: supervised panic (lane quarantined for this window): {msg}"
                );
            } else {
                prev(info);
            }
        }));
    });
}

/// Per-shard shed state: the threshold z and the small-tuple meter (the
/// deterministic metering rule of the operator's threshold pass, applied
/// at the ring instead).
struct ShedState {
    z: f64,
    /// The z the current pressure episode started at; decaying below it
    /// switches shedding off.
    z0: f64,
    meter: f64,
}

#[inline]
fn tuple_weight(t: &Tuple, weight_col: Option<usize>) -> f64 {
    match weight_col {
        Some(c) => t.values().get(c).and_then(|v| v.as_f64().ok()).unwrap_or(1.0),
        None => 1.0,
    }
}

/// The router thread's tracing state: its event lane plus the end of
/// the previous send, which anchors the next `Ingest` stamp (everything
/// the router did between two sends — feed intake, hashing, batch
/// accumulation — is ingest time).
struct RouterTrace {
    p: Profiler,
    lane: LaneWriter,
    mark_ns: u64,
}

/// Stamp one completed send: `Ingest` since the previous send,
/// `RingWait` if the push had to wait (`wait_from`), and `Route` for
/// the push itself net of the wait. One `Release` publish for the lot.
fn record_router_send(
    t: &mut RouterTrace,
    shard: usize,
    batch_id: u32,
    len: u64,
    t0: u64,
    end: u64,
    wait_from: Option<u64>,
) {
    t.lane.record(
        ProfEvent::new(ProfStage::Ingest, t.mark_ns, t0.saturating_sub(t.mark_ns)).aux(len),
    );
    let mut wait_ns = 0;
    if let Some(w) = wait_from {
        wait_ns = end.saturating_sub(w);
        t.lane.record(
            ProfEvent::new(ProfStage::RingWait, w, wait_ns).shard(shard as u16).batch(batch_id),
        );
    }
    t.lane.record(
        ProfEvent::new(ProfStage::Route, t0, end.saturating_sub(t0).saturating_sub(wait_ns))
            .shard(shard as u16)
            .batch(batch_id)
            .aux(len),
    );
    t.mark_ns = end;
    t.lane.publish();
}

/// One router lane's sending state: its set of per-shard rings, the
/// per-shard batch accumulators and shed state, and its accounting
/// cells. Batch ids start at the lane index and stride by the lane
/// count, so ids stay unique across lanes and lineage stamps stay
/// unambiguous.
struct RouterLane<'a> {
    router: usize,
    shards: usize,
    batch_size: usize,
    backpressure: Backpressure,
    txs: Vec<crate::ring::Producer<(u32, Vec<Tuple>)>>,
    batches: Vec<Vec<Tuple>>,
    shed: Vec<ShedState>,
    routed: Vec<u64>,
    next_batch_id: u32,
    id_stride: u32,
    stats: &'a [ShardStats],
    ring_depths: &'a [Gauge],
    batch_hist: Histogram,
    lane_stats: RouterStats,
    trace: Option<RouterTrace>,
}

impl RouterLane<'_> {
    fn push_tuple(&mut self, shard: usize, tuple: Tuple) {
        self.batches[shard].push(tuple);
        if self.batches[shard].len() >= self.batch_size {
            let batch =
                std::mem::replace(&mut self.batches[shard], Vec::with_capacity(self.batch_size));
            self.send_batch(shard, batch);
        }
    }

    /// End of segment: send every partial batch still buffered.
    fn flush(&mut self) {
        for shard in 0..self.shards {
            let batch = std::mem::take(&mut self.batches[shard]);
            if !batch.is_empty() {
                self.send_batch(shard, batch);
            }
        }
    }

    /// Deliver one batch into the shard's ring under the configured
    /// backpressure policy (the single-router send path, now per lane).
    fn send_batch(&mut self, shard: usize, batch: Vec<Tuple>) {
        let RouterLane {
            txs,
            shed,
            routed,
            next_batch_id,
            id_stride,
            stats,
            ring_depths,
            batch_hist,
            lane_stats,
            trace: router_trace,
            backpressure,
            ..
        } = self;
        let len = batch.len() as u64;
        let batch_id = *next_batch_id;
        *next_batch_id = next_batch_id.wrapping_add(*id_stride);
        let t0 = router_trace.as_ref().map(|t| t.p.now_ns());
        match *backpressure {
            // Worker death closes the ring; pushes then fail with
            // Closed and the join below surfaces the reason.
            Backpressure::Block => {
                let depth = &ring_depths[shard];
                let mut waited = false;
                let mut wait_from = 0u64;
                let res = txs[shard].push_tracked_with((batch_id, batch), || {
                    // The waiting batch counts toward ring depth
                    // from wait *entry*: a full-ring stall
                    // shorter than one batch is visible to a
                    // mid-run snapshot, not only at the next
                    // batch boundary.
                    waited = true;
                    depth.add(1.0);
                    if let Some(t) = router_trace.as_ref() {
                        wait_from = t.p.now_ns();
                    }
                });
                match res {
                    Ok(stalled) => {
                        if stalled {
                            stats[shard].stalls.inc();
                        } else {
                            depth.add(1.0);
                        }
                        routed[shard] += len;
                        batch_hist.record(len);
                        lane_stats.batch_tuples.record(len);
                        if let Some(t) = router_trace.as_mut() {
                            let end = t.p.now_ns();
                            let w = waited.then_some(wait_from);
                            record_router_send(t, shard, batch_id, len, t0.unwrap_or(end), end, w);
                        }
                    }
                    // Closed ring: the batch the wait-entry hook
                    // counted never arrived.
                    Err(_) => {
                        if waited {
                            depth.add(-1.0);
                        }
                    }
                }
            }
            Backpressure::DropNewest => match txs[shard].try_push((batch_id, batch)) {
                Ok(()) => {
                    routed[shard] += len;
                    batch_hist.record(len);
                    lane_stats.batch_tuples.record(len);
                    ring_depths[shard].add(1.0);
                    if let Some(t) = router_trace.as_mut() {
                        let end = t.p.now_ns();
                        record_router_send(t, shard, batch_id, len, t0.unwrap_or(end), end, None);
                    }
                }
                Err(PushError::Full(_)) => {
                    stats[shard].dropped.add(len);
                }
                Err(PushError::Closed(_)) => {}
            },
            Backpressure::Shed { weight_col } => {
                let state = &mut shed[shard];
                match txs[shard].try_push((batch_id, batch)) {
                    Ok(()) => {
                        routed[shard] += len;
                        batch_hist.record(len);
                        lane_stats.batch_tuples.record(len);
                        ring_depths[shard].add(1.0);
                        if let Some(t) = router_trace.as_mut() {
                            let end = t.p.now_ns();
                            record_router_send(
                                t,
                                shard,
                                batch_id,
                                len,
                                t0.unwrap_or(end),
                                end,
                                None,
                            );
                        }
                        if state.z > 0.0 {
                            // Pressure easing: decay toward off.
                            state.z *= 0.5;
                            if state.z < state.z0 {
                                state.z = 0.0;
                                state.meter = 0.0;
                            }
                            stats[shard].shed_z.set(state.z);
                        }
                    }
                    Err(PushError::Full((_, batch))) => {
                        // Ring pressure raises the threshold (the
                        // §7.1 mechanism in reverse): the batch
                        // shrinks by below-threshold rejection
                        // with exact HT accounting, then the
                        // survivors are delivered losslessly.
                        let mean: f64 =
                            batch.iter().map(|t| tuple_weight(t, weight_col)).sum::<f64>()
                                / batch.len().max(1) as f64;
                        if state.z == 0.0 {
                            state.z0 =
                                if mean.is_finite() && mean > 0.0 { 2.0 * mean } else { 2.0 };
                            state.z = state.z0;
                            // Shedding switched on: arm the
                            // flight recorder so the pressure
                            // build-up is preserved.
                            if let Some(t) = router_trace.as_ref() {
                                t.p.trigger(DumpReason::Shed);
                            }
                        } else {
                            state.z *= 2.0;
                        }
                        stats[shard].shed_z.set(state.z);
                        let mut kept = Vec::with_capacity(batch.len());
                        let mut shed_n = 0u64;
                        let mut shed_w = 0.0;
                        for t in batch {
                            let w = tuple_weight(&t, weight_col);
                            if w > state.z {
                                kept.push(t);
                            } else {
                                state.meter += w;
                                if state.meter >= state.z {
                                    state.meter -= state.z;
                                    kept.push(t);
                                } else {
                                    shed_n += 1;
                                    shed_w += w;
                                }
                            }
                        }
                        stats[shard].shed_tuples.add(shed_n);
                        stats[shard].shed_weight.add(shed_w);
                        if !kept.is_empty() {
                            let klen = kept.len() as u64;
                            let depth = &ring_depths[shard];
                            let mut waited = false;
                            let mut wait_from = 0u64;
                            let res = txs[shard].push_tracked_with((batch_id, kept), || {
                                // Same wait-entry depth account
                                // as the Block arm.
                                waited = true;
                                depth.add(1.0);
                                if let Some(t) = router_trace.as_ref() {
                                    wait_from = t.p.now_ns();
                                }
                            });
                            match res {
                                Ok(stalled) => {
                                    if stalled {
                                        stats[shard].stalls.inc();
                                    } else {
                                        depth.add(1.0);
                                    }
                                    routed[shard] += klen;
                                    batch_hist.record(klen);
                                    lane_stats.batch_tuples.record(klen);
                                    if let Some(t) = router_trace.as_mut() {
                                        let end = t.p.now_ns();
                                        let w = waited.then_some(wait_from);
                                        record_router_send(
                                            t,
                                            shard,
                                            batch_id,
                                            klen,
                                            t0.unwrap_or(end),
                                            end,
                                            w,
                                        );
                                    }
                                }
                                Err(_) => {
                                    if waited {
                                        depth.add(-1.0);
                                    }
                                }
                            }
                        }
                    }
                    Err(PushError::Closed(_)) => {}
                }
            }
        }
    }
}

/// What a router lane hands back when its segment is done: tuples
/// delivered per shard, tuples lost to lane quarantine keyed by window,
/// and whether the injected crash trigger fell inside this segment.
struct LaneOutcome {
    routed: Vec<u64>,
    uncovered: Vec<(Tuple, u64)>,
    crash_fired: Option<u64>,
}

#[inline]
fn passes_prefilter(prefilter: Option<&Expr>, tuple: &Tuple) -> bool {
    match prefilter {
        None => true,
        Some(pred) => {
            let mut ctx = EvalCtx { tuple: Some(tuple), ..EvalCtx::empty("shared prefilter") };
            pred.eval_bool(&mut ctx).unwrap_or(true)
        }
    }
}

fn add_lane_uncovered(uncovered: &mut Vec<(Tuple, u64)>, key: Tuple, n: u64) {
    match uncovered.iter_mut().find(|(k, _)| *k == key) {
        Some((_, c)) => *c += n,
        None => uncovered.push((key, n)),
    }
}

/// One router lane's whole run: route the contiguous segment starting
/// at global stream position `seg_start` under the workers' supervision
/// contract — per-segment `catch_unwind`, a panicked lane quarantined
/// for the current window (its unrouted tuples counted, never sent),
/// respawned at the next window boundary from the segment cursor. The
/// injected process-crash fault cuts routing at the trigger position
/// exactly as the single-router loop did: only tuples at global
/// positions `< at` are routed, and buffered batches die unsent.
#[allow(clippy::too_many_arguments)]
fn route_segment(
    lane: &mut RouterLane<'_>,
    router_def: &Router,
    wexprs: &[Expr],
    prefilter: Option<&Expr>,
    supervision: Supervision,
    crash_at: Option<u64>,
    crashed: &SyncBool,
    profiler: Option<&Profiler>,
    mut faults: WorkerFaultSchedule,
    mut seg: Vec<Tuple>,
    seg_start: u64,
) -> LaneOutcome {
    let seg_len = seg.len();
    // The crash trigger is a 1-based global position: tuples strictly
    // before it are routed, the trigger tuple and everything after it
    // is lost.
    let cut_len = match crash_at {
        Some(n) => (n.saturating_sub(1).saturating_sub(seg_start) as usize).min(seg_len),
        None => seg_len,
    };
    let fires = crash_at.filter(|&n| n > seg_start && n <= seg_start + seg_len as u64);
    let mut uncovered: Vec<(Tuple, u64)> = Vec::new();
    let mut quarantined: Option<Tuple> = None;
    let mut local = 0usize;
    // Lane-local 1-based tuple ordinal: router fault triggers
    // (`panic router=R at=N`) key on it, quarantined tuples included —
    // the same counting workers use.
    let mut count = 0u64;
    while local < cut_len {
        if let Some(qkey) = quarantined.clone() {
            while local < cut_len {
                let t = &seg[local];
                if window_key(wexprs, t).as_ref() == Some(&qkey) {
                    count += 1;
                    if passes_prefilter(prefilter, t) {
                        add_lane_uncovered(&mut uncovered, qkey.clone(), 1);
                        lane.lane_stats.uncovered.inc();
                    }
                    local += 1;
                } else {
                    // Window boundary: the lane respawns from its
                    // cursor — routing is stateless, so going live
                    // again *is* the respawn.
                    quarantined = None;
                    break;
                }
            }
            if quarantined.is_some() {
                break;
            }
        }
        // Live segment: one catch_unwind per segment, not per tuple.
        // `local` lives outside the closure: after a panic it names the
        // tuple that tripped it (the injected trip fires before the
        // tuple is taken out of the segment, so it is still intact for
        // window-key attribution).
        let outcome = {
            let local = &mut local;
            let count = &mut count;
            let faults = &mut faults;
            let seg = &mut seg;
            let lane = &mut *lane;
            let router = lane.router;
            catch_unwind(AssertUnwindSafe(move || {
                while *local < cut_len {
                    *count += 1;
                    if let Some(f) = faults.check(*count) {
                        f.trip_router(router, *count);
                    }
                    let tuple = std::mem::replace(&mut seg[*local], Tuple::new(Vec::new()));
                    if !passes_prefilter(prefilter, &tuple) {
                        *local += 1;
                        continue;
                    }
                    let index = seg_start + *local as u64;
                    let shard = router_def.route(&tuple, index, lane.shards);
                    *local += 1;
                    lane.push_tuple(shard, tuple);
                }
            }))
        };
        if let Err(payload) = outcome {
            if supervision == Supervision::Abort {
                resume_unwind(payload);
            }
            // The tripping tuple's window is poisoned for this lane:
            // the tuple itself (if it would have been routed) and every
            // following same-window tuple in the segment are lost.
            let t = &seg[local];
            let key = window_key(wexprs, t).unwrap_or_else(|| Tuple::new(Vec::new()));
            if passes_prefilter(prefilter, t) {
                add_lane_uncovered(&mut uncovered, key.clone(), 1);
                lane.lane_stats.uncovered.inc();
            }
            lane.lane_stats.quarantines.inc();
            if let Some(p) = profiler {
                p.trigger(DumpReason::Panic);
            }
            quarantined = Some(key);
            local += 1;
        }
    }
    if let Some(at) = fires {
        // The arriving trigger tuple kills the "process": everything
        // buffered on this lane dies with it, and the workers see the
        // flag and drain-discard.
        crashed.store(true, AtomicOrdering::Release);
        if let Some(p) = profiler {
            p.trigger(DumpReason::Crash);
        }
        lane.lane_stats.tuples.add(count);
        return LaneOutcome {
            routed: std::mem::take(&mut lane.routed),
            uncovered,
            crash_fired: Some(at),
        };
    }
    lane.flush();
    lane.lane_stats.tuples.add(count);
    LaneOutcome { routed: std::mem::take(&mut lane.routed), uncovered, crash_fired: None }
}

/// Run `tuples` through `cfg.shards` operator instances partitioned and
/// merged per `plan`, returning the merged windows.
///
/// `make_spec` builds one fresh [`OperatorSpec`] per shard (shard index
/// passed in): per-shard specs must not share stateful-function
/// libraries, both so sampler RNG streams stay deterministic per shard
/// and so no state is accidentally shared across threads. It must be
/// `Sync` because quarantine supervision calls it *from the worker
/// threads* to respawn a fresh operator after a panic.
///
/// The stream is materialized on the calling thread, split into
/// [`RuntimeConfig::routers`] contiguous segments, and routed by that
/// many supervised lane threads; workers run under
/// [`std::thread::scope`]. An operator error always aborts the run with
/// the shard index attached; a worker or router-lane panic aborts only
/// under [`Supervision::Abort`] — the default quarantines the shard (or
/// lane) for the poisoned window and completes the run with coverage
/// accounting.
pub fn run_sharded<F, I>(
    plan: &ShardPlan,
    make_spec: F,
    cfg: &RuntimeConfig,
    tuples: I,
) -> Result<ShardedReport, RuntimeError>
where
    F: Fn(usize) -> Result<OperatorSpec, OpError> + Sync,
    I: IntoIterator<Item = Tuple>,
{
    if cfg.shards == 0 {
        return Err(RuntimeError::BadConfig("shards must be positive".into()));
    }
    if cfg.batch_size == 0 || cfg.effective_ring_capacity() == 0 {
        return Err(RuntimeError::BadConfig(
            "batch size and ring capacity must be positive".into(),
        ));
    }

    // Materialize the stream up front: the lane segmentation needs the
    // total length, and a lazily generated feed must be produced on one
    // thread anyway to keep its order deterministic.
    let stream: Vec<Tuple> = tuples.into_iter().collect();
    let total = stream.len() as u64;
    let routers = cfg.resolved_routers();
    let cursors = match &cfg.router_cursors {
        None => router_cursors(total, routers),
        Some(c) => {
            if c.len() != routers
                || c.first() != Some(&0)
                || c.windows(2).any(|w| w[0] > w[1])
                || c.last().copied().unwrap_or(0) > total
            {
                return Err(RuntimeError::BadConfig(format!(
                    "router cursors must be {routers} non-decreasing offsets starting at 0 \
                     within the {total}-tuple stream"
                )));
            }
            c.clone()
        }
    };

    // A run without a caller-supplied registry records into a private
    // disabled one: ShardStats cells still work, spans stay off.
    let registry = cfg.registry.clone().unwrap_or_else(Registry::disabled);
    let mut shard_setups: Vec<ShardSetup> = Vec::with_capacity(cfg.shards);
    for shard in 0..cfg.shards {
        let spec = make_spec(shard).map_err(|source| RuntimeError::Op { shard, source })?;
        let mut op =
            SamplingOperator::new(spec).map_err(|source| RuntimeError::Op { shard, source })?;
        op.set_metrics(OperatorMetrics::register(&registry, format!("shard={shard}")));
        let store_err = |message: String| RuntimeError::Store { shard, message };
        if let Some(d) = &cfg.durability {
            if !op.can_persist() {
                return Err(RuntimeError::BadConfig(
                    "query uses a stateful function without persistence support".into(),
                ));
            }
            // The operator snapshots carry/aux at each window flush; the
            // worker records those bytes when `process` hands it the
            // closed window. Per-tuple cost on the durable path: none.
            op.set_capture_flush(true);
            if let Some(total) = d.state_budget {
                let per_shard = (total / cfg.shards as u64).max(1);
                let table = PagedGroupTable::for_shard(&d.dir, shard, per_shard)
                    .map_err(|e| store_err(e.to_string()))?;
                op.set_group_backend(Box::new(table));
            }
        }
        if let Some(hints) = &cfg.sizing {
            op.reserve(hints);
        }
        let (store, watermark, recovered_windows) = match &cfg.durability {
            None => (None, None, Vec::new()),
            Some(d) => {
                let scfg = StoreConfig {
                    dir: d.dir.clone(),
                    checkpoint_every: d.checkpoint_every,
                    fsync: d.fsync,
                };
                if d.resume {
                    let (store, rec) = ShardStore::open_resumed(&scfg, shard)
                        .map_err(|e| store_err(e.to_string()))?;
                    op.import_carry(&rec.carry).map_err(store_err)?;
                    op.import_aux(&rec.aux).map_err(store_err)?;
                    (Some(store), rec.watermark, rec.outputs)
                } else {
                    let store =
                        ShardStore::create(&scfg, shard).map_err(|e| store_err(e.to_string()))?;
                    (Some(store), None, Vec::new())
                }
            }
        };
        shard_setups.push((op, store, watermark, recovered_windows));
    }

    let stats: Vec<ShardStats> =
        (0..cfg.shards).map(|shard| ShardStats::register(&registry, shard)).collect();
    let router_stats: Vec<RouterStats> =
        (0..routers).map(|r| RouterStats::register(&registry, r)).collect();
    // Ring depth is maintained by hand (inc on enqueue, dec on dequeue):
    // the channel exposes no len(), and per-shard gauge cells sum to the
    // total queued batches at snapshot time.
    let ring_depths: Vec<Gauge> = (0..cfg.shards)
        .map(|shard| registry.gauge_labeled("rt.ring_depth", format!("shard={shard}")))
        .collect();
    let batch_hist = registry.histogram("rt.batch_tuples");

    // Workers deposit their final partials here; the calling thread
    // waits on it after the joins (or cuts it at the window deadline),
    // so the merge observes every published shard's last window through
    // the barrier's Release/Acquire protocol.
    let barrier: Arc<MergeBarrier<ShardPartial>> = MergeBarrier::new(cfg.shards);
    if cfg.supervision == Supervision::Quarantine {
        install_supervised_panic_hook();
    }
    // The process-crash fault: when any lane's global stream position
    // reaches the trigger, this flag flips and the run dies like a
    // kill — no flushes, no merge, no final checkpoints. (`at=0` is
    // clamped to the first tuple.)
    let crash_at = cfg.faults.as_ref().and_then(|p| p.crash_at()).map(|n| n.max(1));
    let crashed = Arc::new(SyncBool::new(false));
    let make_spec = &make_spec;
    // Lane quarantine attributes unrouted tuples to the window they
    // would have landed in; every shard shares the same window shape,
    // so shard 0's expressions serve all lanes.
    let lane_wexprs: Vec<Expr> =
        shard_setups.first().map(|(op, ..)| op.spec().window_exprs()).unwrap_or_default();
    // Routing is stateless, so one definition serves every lane.
    let router_def = Router::new(plan);
    // Lineage tracing: the merge path owns a lane here; router lanes
    // and workers open theirs on their own threads. Everything is
    // `None` (one branch per batch) when profiling is off.
    let mut merge_trace = cfg.profile.as_ref().map(|p| (p.clone(), p.lane(LaneKind::Merge, 0)));
    type ScopeOut = (Vec<Option<ShardPartial>>, Vec<usize>, Vec<(Tuple, u64)>, Vec<u64>);
    let (partials, stragglers, router_uncovered, routed) =
        std::thread::scope(|s| -> Result<ScopeOut, RuntimeError> {
            // One SPSC ring per (router, shard): lane r owns row r of
            // producers, shard k drains column k in lane order. Ring
            // items carry the lane-assigned batch id so worker-side
            // stamps share lineage with the route stamp.
            type BatchTx = crate::ring::Producer<(u32, Vec<Tuple>)>;
            type BatchRx = crate::ring::Consumer<(u32, Vec<Tuple>)>;
            let mut txs_by_router: Vec<Vec<BatchTx>> =
                (0..routers).map(|_| Vec::with_capacity(cfg.shards)).collect();
            let mut rxs_by_shard: Vec<Vec<BatchRx>> =
                (0..cfg.shards).map(|_| Vec::with_capacity(routers)).collect();
            for txs in txs_by_router.iter_mut() {
                for rxs in rxs_by_shard.iter_mut() {
                    let (tx, rx) = ring::<(u32, Vec<Tuple>)>(cfg.effective_ring_capacity());
                    txs.push(tx);
                    rxs.push(rx);
                }
            }
            // The worker pool: `resolved_workers()` threads share the
            // shards contiguously (thread t owns shards
            // [t·S/W, (t+1)·S/W)). With the default cap of one thread
            // per shard each pool thread owns exactly one task and this
            // degenerates to the classic per-shard worker; with a cap
            // below the shard count one thread round-robins its tasks
            // with non-blocking pops, so an oversubscribed host is not
            // forced to context-switch per batch. Byte-identical either
            // way: each shard's batches are consumed in its own ring
            // order by exactly one thread.
            let pool_threads = cfg.resolved_workers();
            let mut shard_inputs: Vec<_> = shard_setups.into_iter().zip(rxs_by_shard).collect();
            // Per pool thread: (last shard it touched, join handle) —
            // the cell attributes an Abort-supervised panic to the
            // shard whose batch was running when the thread died.
            let mut handles = Vec::with_capacity(pool_threads);
            for t in (0..pool_threads).rev() {
                let group: Vec<_> = shard_inputs.split_off(t * cfg.shards / pool_threads);
                let first_shard = t * cfg.shards / pool_threads;
                let stats: &[ShardStats] = &stats;
                let ring_depths: &[Gauge] = &ring_depths;
                let barrier = barrier.clone();
                let cfg_faults = cfg.faults.clone();
                let registry = registry.clone();
                let supervision = cfg.supervision;
                let crashed = Arc::clone(&crashed);
                let wprof = cfg.profile.clone();
                let on_shard = Arc::new(SyncUsize::new(first_shard));
                let shard_cell = Arc::clone(&on_shard);
                let handle = s.spawn(move || -> Result<(), RuntimeError> {
                    if supervision == Supervision::Quarantine {
                        QUIET_WORKER_PANICS.with(|q| q.set(true));
                    }
                    struct Task<'t, F> {
                        shard: usize,
                        rxs: Vec<crate::ring::Consumer<(u32, Vec<Tuple>)>>,
                        /// Lowest unfinished lane; the shard is done
                        /// when it reaches `rxs.len()`.
                        lane: usize,
                        done: bool,
                        worker: Option<Worker<'t, F>>,
                        stats: ShardStats,
                        depth: Gauge,
                        wtrace: Option<(Profiler, LaneWriter)>,
                    }
                    let mut tasks: Vec<Task<'_, F>> = group
                        .into_iter()
                        .enumerate()
                        .map(|(i, ((op, store, watermark, recovered), rxs))| {
                            let shard = first_shard + i;
                            let wexprs = op.spec().window_exprs();
                            let faults = cfg_faults
                                .as_ref()
                                .map(|p| p.worker_schedule(shard))
                                .unwrap_or_default();
                            let store_stats =
                                store.as_ref().map(|_| StoreStats::register(&registry, shard));
                            Task {
                                shard,
                                rxs,
                                lane: 0,
                                done: false,
                                worker: Some(Worker {
                                    shard,
                                    op: Some(op),
                                    quarantined: None,
                                    window_tuples: 0,
                                    tuple_count: 0,
                                    // Recovered windows seed the partial
                                    // so the merge sees them exactly as
                                    // a fault-free run would have
                                    // produced them.
                                    windows: recovered,
                                    uncovered: Vec::new(),
                                    wexprs,
                                    faults,
                                    supervision,
                                    stats: stats[shard].clone(),
                                    registry: registry.clone(),
                                    make_spec,
                                    store,
                                    watermark,
                                    store_stats,
                                    profiler: wprof.clone(),
                                }),
                                stats: stats[shard].clone(),
                                depth: ring_depths[shard].clone(),
                                wtrace: wprof
                                    .as_ref()
                                    .map(|p| (p.clone(), p.lane(LaneKind::Worker, shard as u32))),
                            }
                        })
                        .collect();
                    // Round-robin over unfinished tasks. Within a task,
                    // drain all R rings in lane order: lane r holds the
                    // stream segment starting at cursor r, so
                    // full-drain-per-lane delivers each shard's tuples
                    // in global stream order. Deadlock-free: pops never
                    // block (an empty open ring moves the scan on), so
                    // every lane's pushes always progress somewhere.
                    let mut remaining = tasks.len();
                    let mut backoff = Backoff::new();
                    while remaining > 0 {
                        let mut progressed = false;
                        for task in tasks.iter_mut() {
                            if task.done {
                                continue;
                            }
                            let worker = task.worker.as_mut().expect("live task has a worker");
                            loop {
                                if task.lane == task.rxs.len() {
                                    // Every lane drained and closed:
                                    // the shard is complete.
                                    task.done = true;
                                    remaining -= 1;
                                    if crashed.load(AtomicOrdering::Acquire) {
                                        // Simulated process death:
                                        // routing was cut exactly at
                                        // the trigger position, so what
                                        // was delivered is
                                        // deterministic — but the open
                                        // window dies here. No finish,
                                        // no finalize, no publish:
                                        // exactly what a killed process
                                        // leaves behind.
                                        break;
                                    }
                                    shard_cell.store(task.shard, AtomicOrdering::Relaxed);
                                    let sw = Stopwatch::start();
                                    worker.finish()?;
                                    let busy = sw.elapsed_ns();
                                    task.stats.busy_ns.add(busy);
                                    if let Some((p, lane)) = task.wtrace.as_mut() {
                                        let end = p.now_ns();
                                        lane.record(
                                            ProfEvent::new(
                                                ProfStage::Flush,
                                                end.saturating_sub(busy),
                                                busy,
                                            )
                                            .shard(task.shard as u16)
                                            .window(worker.windows.len().saturating_sub(1) as u32),
                                        );
                                        lane.publish();
                                    }
                                    let worker =
                                        task.worker.take().expect("finishing task has a worker");
                                    barrier.publish(task.shard, worker.into_partial());
                                    break;
                                }
                                match task.rxs[task.lane].try_pop() {
                                    Err(()) => task.lane += 1,
                                    Ok(None) => break,
                                    Ok(Some((batch_id, batch))) => {
                                        progressed = true;
                                        shard_cell.store(task.shard, AtomicOrdering::Relaxed);
                                        task.depth.add(-1.0);
                                        let win = worker.windows.len() as u32;
                                        let sw = Stopwatch::start();
                                        worker.run_batch(&batch)?;
                                        let busy = sw.elapsed_ns();
                                        task.stats.tuples.add(batch.len() as u64);
                                        task.stats.busy_ns.add(busy);
                                        if let Some((p, lane)) = task.wtrace.as_mut() {
                                            let end = p.now_ns();
                                            lane.record(
                                                ProfEvent::new(
                                                    ProfStage::Process,
                                                    end.saturating_sub(busy),
                                                    busy,
                                                )
                                                .shard(task.shard as u16)
                                                .window(win)
                                                .batch(batch_id)
                                                .aux(batch.len() as u64),
                                            );
                                            lane.publish();
                                        }
                                        worker.publish_store_stats();
                                    }
                                }
                            }
                        }
                        if remaining > 0 {
                            if progressed {
                                backoff.reset();
                            } else {
                                backoff.wait();
                            }
                        }
                    }
                    Ok(())
                });
                handles.push((on_shard, handle));
            }
            handles.reverse();

            // Spawn the router lanes: lane r routes segment r through its
            // own row of rings, under the same supervision contract the
            // workers run. Outcomes travel through a per-router
            // MergeBarrier so the calling thread observes every lane's
            // final accounting through one Release/Acquire protocol.
            let lane_barrier: Arc<MergeBarrier<LaneOutcome>> = MergeBarrier::new(routers);
            let mut segments: Vec<Vec<Tuple>> = Vec::with_capacity(routers);
            {
                let mut rest = stream;
                for r in (1..routers).rev() {
                    let at = (cursors[r] as usize).min(rest.len());
                    segments.push(rest.split_off(at));
                }
                segments.push(rest);
                segments.reverse();
            }
            let mut lane_handles = Vec::with_capacity(routers);
            for (r, seg) in segments.into_iter().enumerate() {
                let txs = std::mem::take(&mut txs_by_router[r]);
                let seg_start = cursors[r];
                let lane_stats = router_stats[r].clone();
                let stats: &[ShardStats] = &stats;
                let ring_depths: &[Gauge] = &ring_depths;
                let batch_hist = batch_hist.clone();
                let faults = cfg.faults.as_ref().map(|p| p.router_schedule(r)).unwrap_or_default();
                let crashed = Arc::clone(&crashed);
                let lane_barrier = Arc::clone(&lane_barrier);
                let router_def = &router_def;
                let wexprs: &[Expr] = &lane_wexprs;
                let prefilter = cfg.shared_prefilter.as_deref();
                let supervision = cfg.supervision;
                let profile = cfg.profile.clone();
                lane_handles.push(s.spawn(move || {
                    if supervision == Supervision::Quarantine {
                        QUIET_WORKER_PANICS.with(|q| q.set(true));
                    }
                    let trace = profile.as_ref().map(|p| RouterTrace {
                        p: p.clone(),
                        lane: p.lane(LaneKind::Router, r as u32),
                        mark_ns: p.now_ns(),
                    });
                    let shards = cfg.shards;
                    let mut lane = RouterLane {
                        router: r,
                        shards,
                        batch_size: cfg.batch_size,
                        backpressure: cfg.backpressure,
                        txs,
                        batches: (0..shards).map(|_| Vec::with_capacity(cfg.batch_size)).collect(),
                        shed: (0..shards)
                            .map(|_| ShedState { z: 0.0, z0: 0.0, meter: 0.0 })
                            .collect(),
                        routed: vec![0; shards],
                        next_batch_id: r as u32,
                        id_stride: routers as u32,
                        stats,
                        ring_depths,
                        batch_hist,
                        lane_stats,
                        trace,
                    };
                    let outcome = route_segment(
                        &mut lane,
                        router_def,
                        wexprs,
                        prefilter,
                        supervision,
                        crash_at,
                        &crashed,
                        profile.as_ref(),
                        faults,
                        seg,
                        seg_start,
                    );
                    // Publishing is the lane's last act: rings close
                    // when `lane` (and its producers) drop right after.
                    lane_barrier.publish(r, outcome);
                }));
            }
            drop(txs_by_router);

            // Join the lanes before touching the worker barrier: an
            // Abort-supervised lane panic surfaces here (its unwound
            // producers already closed its rings, so the workers still
            // drain and exit), and a joined lane has published its
            // outcome — `wait_all` below returns immediately.
            for (r, handle) in lane_handles.into_iter().enumerate() {
                if let Err(payload) = handle.join() {
                    return Err(RuntimeError::RouterPanic {
                        router: r,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
            let mut crash_fired: Option<u64> = None;
            let mut router_uncovered: Vec<(Tuple, u64)> = Vec::new();
            // Tuples actually delivered into each shard's rings
            // (post-shed/drop), summed over lanes: a straggler's routed
            // count is the traffic its missing partial would have
            // covered.
            let mut routed: Vec<u64> = vec![0; cfg.shards];
            for outcome in lane_barrier.wait_all() {
                for (shard, n) in outcome.routed.iter().enumerate() {
                    routed[shard] += n;
                }
                for (key, n) in outcome.uncovered {
                    add_lane_uncovered(&mut router_uncovered, key, n);
                }
                crash_fired = crash_fired.or(outcome.crash_fired);
            }
            let bw_start = merge_trace.as_ref().map(|(p, _)| p.now_ns());

            let mut stragglers: Vec<usize> = Vec::new();
            #[allow(clippy::type_complexity)]
            let join_all = |handles: Vec<(
                Arc<SyncUsize>,
                std::thread::ScopedJoinHandle<'_, Result<(), RuntimeError>>,
            )>|
             -> Result<(), RuntimeError> {
                for (on_shard, handle) in handles {
                    match handle.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => return Err(e),
                        Err(payload) => {
                            // The cell tracks the shard whose batch was
                            // running when the pool thread died.
                            return Err(RuntimeError::WorkerPanic {
                                shard: on_shard.load(AtomicOrdering::Relaxed),
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
                Ok(())
            };
            if let Some(at_tuple) = crash_fired {
                // Rings are closed; workers drain-and-discard and exit
                // without publishing. Nothing merges. The joins give the
                // flight-recorder dump its happens-before edge: every
                // lane is quiescent when the last events are read.
                join_all(handles)?;
                if let Some(p) = &cfg.profile {
                    if let Err(e) = p.write_dump_if_triggered() {
                        eprintln!("sso-profile: flight-recorder dump failed: {e}");
                    }
                }
                return Err(RuntimeError::Crashed { at_tuple });
            }
            let partials: Vec<Option<ShardPartial>> = match cfg.window_deadline {
                None => {
                    join_all(handles)?;
                    // Every worker joined cleanly, so every shard
                    // published and this returns immediately.
                    barrier.wait_all().into_iter().map(Some).collect()
                }
                Some(deadline) => {
                    let sw = Stopwatch::start();
                    while barrier.published() < cfg.shards && sw.elapsed() < deadline {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    let taken = barrier.take_ready();
                    for (shard, p) in taken.iter().enumerate() {
                        if p.is_none() {
                            stragglers.push(shard);
                        }
                    }
                    if !stragglers.is_empty() {
                        if let Some(p) = &cfg.profile {
                            p.trigger(DumpReason::Straggle);
                        }
                    }
                    // The cut is made: late partials are discarded. The
                    // joins below still run (rings are closed, so every
                    // worker drains and exits in bounded time) and
                    // surface operator errors; they bound the *threads*,
                    // the deadline bounds the *result*.
                    join_all(handles)?;
                    taken
                }
            };
            if let Some((p, lane)) = merge_trace.as_mut() {
                let end = p.now_ns();
                let start = bw_start.unwrap_or(end);
                lane.record(
                    ProfEvent::new(ProfStage::BarrierWait, start, end.saturating_sub(start))
                        .aux(stragglers.len() as u64),
                );
                lane.publish();
            }
            Ok((partials, stragglers, router_uncovered, routed))
        })?;

    let straggler_routed: u64 = stragglers.iter().map(|&s| routed[s]).sum();
    let router_uncovered_total: u64 = router_uncovered.iter().map(|(_, n)| *n).sum();
    let mut parts: Vec<ShardPartial> = partials.into_iter().flatten().collect();
    if !router_uncovered.is_empty() {
        // Lane-quarantine losses enter the merge as one windows-free
        // partial: merge-finalize folds the per-window counts into each
        // window's Degradation verdict exactly as it does a quarantined
        // shard's.
        parts.push(ShardPartial { windows: Vec::new(), uncovered: router_uncovered });
    }
    let merge_start = merge_trace.as_ref().map(|(p, _)| p.now_ns());
    let windows = crate::merge::merge_shard_partials(parts, &plan.rule, cfg.seed, straggler_routed);
    if let Some((p, lane)) = merge_trace.as_mut() {
        let end = p.now_ns();
        let start = merge_start.unwrap_or(end);
        lane.record(
            ProfEvent::new(ProfStage::Merge, start, end.saturating_sub(start))
                .aux(windows.len() as u64),
        );
        // One Emit stamp per merged window: its end minus the window's
        // earliest Process stamp is the end-to-end latency the collector
        // reports.
        for (i, w) in windows.iter().enumerate() {
            lane.record(
                ProfEvent::new(ProfStage::Emit, end, 0).window(i as u32).aux(w.rows.len() as u64),
            );
        }
        lane.publish();
    }

    // Run-level coverage: delivered tuples the merged output represents,
    // over everything delivered or lost before delivery (stragglers and
    // quarantined router lanes contribute only loss).
    let mut covered = 0u64;
    let mut uncovered_total = straggler_routed + router_uncovered_total;
    for (shard, st) in stats.iter().enumerate() {
        if stragglers.contains(&shard) {
            continue;
        }
        covered += st.tuples().saturating_sub(st.uncovered());
        uncovered_total += st.uncovered();
    }
    let coverage = if uncovered_total == 0 {
        1.0
    } else {
        covered as f64 / (covered + uncovered_total) as f64
    };
    registry.gauge("rt.coverage").set(coverage);
    if !stragglers.is_empty() || router_uncovered_total > 0 {
        // The deadline (or a quarantined lane) cut real traffic out of
        // the result: fire the undersample path so the degradation
        // shows up on the same alert channel as the §7.1 pathology.
        let offered = covered + uncovered_total;
        UndersampleDetector::register(&registry, "rt", UndersampleConfig { ratio: 1.0 })
            .observe(covered, offered, offered);
    }
    // A triggered flight recording (panic, straggle, shed) lands on
    // disk even when the run completes; crash dumps were written on the
    // early-return path above.
    if let Some(p) = &cfg.profile {
        if let Err(e) = p.write_dump_if_triggered() {
            eprintln!("sso-profile: flight-recorder dump failed: {e}");
        }
    }
    Ok(ShardedReport { windows, shards: stats, routers: router_stats, coverage, stragglers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_core::{queries, shard_plan};
    use sso_types::{Packet, Protocol, Value};

    fn stream(secs: u64, per_sec: u64, n_src: u32) -> Vec<Tuple> {
        let mut out = Vec::new();
        let mut i = 0u64;
        for sec in 0..secs {
            for j in 0..per_sec {
                let p = Packet {
                    uts: sec * 1_000_000_000 + j * (1_000_000_000 / per_sec) + 1,
                    src_ip: (i % n_src as u64) as u32,
                    dest_ip: 9,
                    src_port: 1000,
                    dest_port: 80,
                    proto: Protocol::Tcp,
                    len: 100 + (i % 7) as u32 * 100,
                };
                out.push(p.to_tuple());
                i += 1;
            }
        }
        out
    }

    fn run_exact(shards: usize) -> Vec<WindowOutput> {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let cfg = RuntimeConfig::new(shards);
        run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, stream(3, 1000, 16))
            .unwrap()
            .windows
    }

    #[test]
    fn round_robin_combine_is_exact_for_any_shard_count() {
        let single = run_exact(1);
        for shards in [2, 3, 8] {
            let sharded = run_exact(shards);
            assert_eq!(single.len(), sharded.len());
            for (a, b) in single.iter().zip(&sharded) {
                assert_eq!(a.window, b.window);
                assert_eq!(a.rows, b.rows, "{shards} shards must not drift");
                assert_eq!(a.stats.tuples, b.stats.tuples);
                assert!(!b.degradation.degraded, "fault-free run must not be degraded");
            }
        }
    }

    #[test]
    fn key_partitioned_concat_is_exact() {
        let spec = queries::heavy_hitters_query(1, 1 << 20, None).unwrap();
        let plan = shard_plan(&spec).unwrap();
        let make = |_| queries::heavy_hitters_query(1, 1 << 20, None);
        let tuples = stream(2, 2000, 32);
        let single =
            run_sharded(&plan, make, &RuntimeConfig::new(1), tuples.clone()).unwrap().windows;
        let sharded = run_sharded(&plan, make, &RuntimeConfig::new(4), tuples).unwrap().windows;
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!(a.rows, b.rows);
        }
    }

    #[test]
    fn route_stream_replays_router_decisions() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let tuples = stream(1, 30, 4);
        let shards = route_stream(&plan, 3, &tuples);
        // Key-free plans deal round-robin.
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(*s, i % 3);
        }
        let spec = queries::heavy_hitters_query(1, 1 << 20, None).unwrap();
        let plan = shard_plan(&spec).unwrap();
        let shards = route_stream(&plan, 4, &tuples);
        // Keyed routing is a pure function of the key columns.
        assert_eq!(shards, route_stream(&plan, 4, &tuples));
    }

    #[test]
    fn worker_errors_carry_the_shard_index() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let make = |shard: usize| {
            let mut spec = queries::total_sum_query(1);
            if shard == 1 {
                spec.where_clause = Some(Expr::Scalar {
                    name: "BOOM",
                    fun: std::sync::Arc::new(|_: &[Value]| Err("shard fault".to_string())),
                    args: vec![],
                });
            }
            Ok(spec)
        };
        // Round-robin routing guarantees shard 1 receives tuples.
        let err = run_sharded(&plan, make, &RuntimeConfig::new(3), stream(1, 600, 4)).unwrap_err();
        match err {
            RuntimeError::Op { shard, source } => {
                assert_eq!(shard, 1);
                assert!(source.to_string().contains("shard fault"));
            }
            other => panic!("expected Op error, got {other}"),
        }
    }

    #[test]
    fn abort_supervision_reports_worker_panics() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let make = |shard: usize| {
            let mut spec = queries::total_sum_query(1);
            if shard == 0 {
                spec.where_clause = Some(Expr::Scalar {
                    name: "PANIC",
                    fun: std::sync::Arc::new(|_: &[Value]| panic!("injected shard panic")),
                    args: vec![],
                });
            }
            Ok(spec)
        };
        let mut cfg = RuntimeConfig::new(2);
        cfg.supervision = Supervision::Abort;
        let err = run_sharded(&plan, make, &cfg, stream(1, 600, 4)).unwrap_err();
        match err {
            RuntimeError::WorkerPanic { shard: 0, message } => {
                assert!(message.contains("injected shard panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    #[test]
    fn quarantine_supervision_completes_with_accounted_coverage() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        // Shard 0 panics on every tuple: each window quarantines it anew,
        // the respawned operator trips again, and every shard-0 tuple
        // lands in the uncovered ledger.
        let make = |shard: usize| {
            let mut spec = queries::total_sum_query(1);
            if shard == 0 {
                spec.where_clause = Some(Expr::Scalar {
                    name: "PANIC",
                    fun: std::sync::Arc::new(|_: &[Value]| panic!("injected shard panic")),
                    args: vec![],
                });
            }
            Ok(spec)
        };
        let tuples = stream(2, 600, 4);
        let n = tuples.len() as u64;
        let report = run_sharded(&plan, make, &RuntimeConfig::new(2), tuples).unwrap();
        assert!(report.degraded());
        assert!(report.coverage > 0.0 && report.coverage < 1.0, "{}", report.coverage);
        assert!(report.quarantines() >= 1);
        // Conservation: every delivered tuple is either represented in
        // the merged output or in the uncovered ledger.
        let delivered: u64 = report.shards.iter().map(|s| s.tuples()).sum();
        let uncovered: u64 = report.shards.iter().map(|s| s.uncovered()).sum();
        let covered: u64 = report.windows.iter().map(|w| w.stats.tuples).sum();
        assert_eq!(delivered, n);
        assert_eq!(covered + uncovered, n, "coverage accounting must be exact");
        // Every window lost its shard-0 half and is tagged.
        for w in &report.windows {
            assert!(w.degradation.degraded, "window {:?} should be degraded", w.window);
            assert!(w.degradation.coverage < 1.0);
        }
    }

    #[test]
    fn quarantined_shard_respawns_at_window_boundary() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        // A one-shot panic mid-window: the shard loses that window only
        // and the respawned operator covers later windows in full.
        let mut fault = FaultPlan::empty(7);
        fault.events.push(sso_faults::FaultEvent::WorkerPanic { shard: 1, at_tuple: 150 });
        let cfg = RuntimeConfig::new(2).with_faults(fault.into_shared());
        let tuples = stream(3, 600, 4);
        let report = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples).unwrap();
        assert_eq!(report.quarantines(), 1);
        assert!(report.degraded());
        assert_eq!(report.windows.len(), 3);
        // Exactly one window is degraded; the others recovered in full.
        let degraded: Vec<_> = report.windows.iter().filter(|w| w.degradation.degraded).collect();
        assert_eq!(degraded.len(), 1);
        assert!(degraded[0].degradation.coverage < 1.0);
        for w in report.windows.iter().filter(|w| !w.degradation.degraded) {
            assert_eq!(w.degradation.coverage, 1.0);
        }
    }

    #[test]
    fn router_cursors_split_contiguously() {
        assert_eq!(router_cursors(10, 4), vec![0, 2, 5, 7]);
        assert_eq!(router_cursors(0, 3), vec![0, 0, 0]);
        assert_eq!(router_cursors(5, 1), vec![0]);
        assert_eq!(router_cursors(7, 0), vec![0], "zero lanes clamps to one");
    }

    #[test]
    fn multi_router_runs_are_byte_identical() {
        // Key-free (round-robin by stream position) and keyed (content
        // hash) plans: neither routing decision depends on which lane
        // evaluates it, so the lane count must be invisible.
        let tuples = stream(3, 1000, 16);
        let make_sum = |_| Ok(queries::total_sum_query(1));
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let base =
            run_sharded(&plan, make_sum, &RuntimeConfig::new(3).with_routers(1), tuples.clone())
                .unwrap()
                .windows;
        for routers in [2, 4] {
            let cfg = RuntimeConfig::new(3).with_routers(routers);
            let got = run_sharded(&plan, make_sum, &cfg, tuples.clone()).unwrap();
            assert_eq!(got.routers.len(), routers);
            assert_eq!(base.len(), got.windows.len());
            for (a, b) in base.iter().zip(&got.windows) {
                assert_eq!(a.window, b.window);
                assert_eq!(a.rows, b.rows, "{routers} routers must not drift");
            }
        }
        let spec = queries::heavy_hitters_query(1, 1 << 20, None).unwrap();
        let plan = shard_plan(&spec).unwrap();
        let make = |_| queries::heavy_hitters_query(1, 1 << 20, None);
        let single =
            run_sharded(&plan, make, &RuntimeConfig::new(4).with_routers(1), tuples.clone())
                .unwrap()
                .windows;
        let multi = run_sharded(&plan, make, &RuntimeConfig::new(4).with_routers(3), tuples)
            .unwrap()
            .windows;
        assert_eq!(single.len(), multi.len());
        for (a, b) in single.iter().zip(&multi) {
            assert_eq!(a.rows, b.rows);
        }
    }

    #[test]
    fn explicit_cursors_match_the_computed_partition() {
        let tuples = stream(2, 600, 4);
        let cursors = router_cursors(tuples.len() as u64, 3);
        let make = |_| Ok(queries::total_sum_query(1));
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let auto = run_sharded(&plan, make, &RuntimeConfig::new(2).with_routers(3), tuples.clone())
            .unwrap()
            .windows;
        let explicit =
            run_sharded(&plan, make, &RuntimeConfig::new(2).with_router_cursors(cursors), tuples)
                .unwrap()
                .windows;
        assert_eq!(auto.len(), explicit.len());
        for (a, b) in auto.iter().zip(&explicit) {
            assert_eq!(a.rows, b.rows);
        }
    }

    #[test]
    fn rejects_bad_router_cursors() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let make = |_| Ok(queries::total_sum_query(1));
        for cursors in [vec![5, 3], vec![0, 800], vec![0, 10, 5]] {
            let cfg = RuntimeConfig::new(2).with_router_cursors(cursors.clone());
            let err = run_sharded(&plan, make, &cfg, stream(1, 100, 4)).unwrap_err();
            assert!(
                matches!(err, RuntimeError::BadConfig(_)),
                "cursors {cursors:?} should be rejected, got {err}"
            );
        }
    }

    #[test]
    fn router_panic_quarantines_one_window_and_replays_identically() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let make = |_| Ok(queries::total_sum_query(1));
        // 1800 tuples, 3 windows of 600. Lane 1 of 2 owns positions
        // 900..1800; its 150th tuple is global index 1049 — mid-window 2.
        let mut fault = FaultPlan::empty(7);
        fault.events.push(sso_faults::FaultEvent::RouterPanic { router: 1, at_tuple: 150 });
        let fault = fault.into_shared();
        let tuples = stream(3, 600, 4);
        let n = tuples.len() as u64;
        let run = || {
            let cfg =
                RuntimeConfig::new(2).with_routers(2).with_faults(std::sync::Arc::clone(&fault));
            run_sharded(&plan, make, &cfg, tuples.clone()).unwrap()
        };
        let report = run();
        assert_eq!(report.router_quarantines(), 1);
        // The tripping tuple (index 1049) and every following tuple of
        // window 2 (through index 1199) are lost, never routed.
        assert_eq!(report.router_uncovered(), 151);
        assert_eq!(report.quarantines(), 0, "no worker was harmed");
        assert!(report.degraded());
        assert_eq!(report.windows.len(), 3);
        let degraded: Vec<_> = report.windows.iter().filter(|w| w.degradation.degraded).collect();
        assert_eq!(degraded.len(), 1, "exactly one window pays for the lane death");
        assert!(degraded[0].degradation.coverage < 1.0);
        // Conservation: delivered + lane-lost covers the whole stream.
        let delivered: u64 = report.shards.iter().map(|s| s.tuples()).sum();
        assert_eq!(delivered + report.router_uncovered(), n);
        let covered: u64 = report.windows.iter().map(|w| w.stats.tuples).sum();
        assert_eq!(covered, delivered, "every routed tuple is represented");
        assert!((report.coverage - covered as f64 / n as f64).abs() < 1e-12);
        // Same seed, same fault plan: byte-identical replay.
        let replay = run();
        assert_eq!(report.windows.len(), replay.windows.len());
        for (a, b) in report.windows.iter().zip(&replay.windows) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.degradation.degraded, b.degradation.degraded);
        }
    }

    #[test]
    fn abort_supervision_reports_router_panics() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let mut fault = FaultPlan::empty(7);
        fault.events.push(sso_faults::FaultEvent::RouterPanic { router: 1, at_tuple: 10 });
        let mut cfg = RuntimeConfig::new(2).with_routers(2).with_faults(fault.into_shared());
        cfg.supervision = Supervision::Abort;
        let err = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, stream(1, 600, 4))
            .unwrap_err();
        match err {
            RuntimeError::RouterPanic { router: 1, message } => {
                assert!(message.contains("router 1"), "{message}");
            }
            other => panic!("expected RouterPanic, got {other}"),
        }
    }

    #[test]
    fn drop_newest_accounts_every_lost_tuple() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let mut cfg = RuntimeConfig::new(1);
        cfg.ring_capacity = 1;
        cfg.batch_size = 16;
        cfg.backpressure = Backpressure::DropNewest;
        // A worker that can't keep up: every tuple takes a busy-loop hit.
        let make = |_| {
            let mut spec = queries::total_sum_query(1);
            spec.where_clause = Some(Expr::Scalar {
                name: "SLOW",
                fun: std::sync::Arc::new(|_: &[Value]| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    Ok(Value::Bool(true))
                }),
                args: vec![],
            });
            Ok(spec)
        };
        let tuples = stream(1, 5000, 4);
        let n = tuples.len() as u64;
        let report = run_sharded(&plan, make, &cfg, tuples).unwrap();
        let processed: u64 = report.shards.iter().map(|s| s.tuples()).sum();
        assert!(report.dropped() > 0, "1-deep ring must overflow");
        assert_eq!(processed + report.dropped(), n, "drops must be fully accounted");
    }

    #[test]
    fn shed_backpressure_accounts_every_lost_tuple() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let mut cfg = RuntimeConfig::new(1);
        cfg.ring_capacity = 1;
        cfg.batch_size = 16;
        cfg.backpressure = Backpressure::Shed { weight_col: None };
        let make = |_| {
            let mut spec = queries::total_sum_query(1);
            spec.where_clause = Some(Expr::Scalar {
                name: "SLOW",
                fun: std::sync::Arc::new(|_: &[Value]| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    Ok(Value::Bool(true))
                }),
                args: vec![],
            });
            Ok(spec)
        };
        let tuples = stream(1, 5000, 4);
        let n = tuples.len() as u64;
        let report = run_sharded(&plan, make, &cfg, tuples).unwrap();
        let processed: u64 = report.shards.iter().map(|s| s.tuples()).sum();
        assert!(report.shed() > 0, "1-deep ring must force shedding");
        assert_eq!(report.dropped(), 0, "shed mode never whole-batch drops");
        assert_eq!(processed + report.shed(), n, "sheds must be fully accounted");
        // Count-weight shedding with the metering rule keeps 1-in-z:
        // some of every overloaded batch must still get through.
        assert!(processed > 0);
    }

    #[test]
    fn window_deadline_cuts_stragglers_and_accounts_their_traffic() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let mut cfg = RuntimeConfig::new(2).with_deadline(Duration::from_millis(10));
        cfg.batch_size = 32;
        // Shard 1 is a straggler: every tuple sleeps ~1ms, so it cannot
        // publish before the deadline.
        let make = |shard: usize| {
            let mut spec = queries::total_sum_query(1);
            if shard == 1 {
                spec.where_clause = Some(Expr::Scalar {
                    name: "SLOW",
                    fun: std::sync::Arc::new(|_: &[Value]| {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        Ok(Value::Bool(true))
                    }),
                    args: vec![],
                });
            }
            Ok(spec)
        };
        let tuples = stream(1, 400, 4);
        let report = run_sharded(&plan, make, &cfg, tuples).unwrap();
        assert_eq!(report.stragglers, vec![1]);
        assert!(report.degraded());
        assert!(report.coverage < 1.0 && report.coverage > 0.0, "{}", report.coverage);
        // The surviving shard's windows made it into the output, scaled
        // down by the straggler's routed share.
        assert!(!report.windows.is_empty());
        for w in &report.windows {
            assert!(w.degradation.degraded);
        }
    }

    #[test]
    fn blocking_backpressure_is_lossless_and_counts_stalls() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let mut cfg = RuntimeConfig::new(2);
        cfg.ring_capacity = 1;
        cfg.batch_size = 8;
        let tuples = stream(1, 4000, 4);
        let n = tuples.len() as u64;
        let report = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples).unwrap();
        let processed: u64 = report.shards.iter().map(|s| s.tuples()).sum();
        assert_eq!(processed, n, "blocking mode must be lossless");
        assert_eq!(report.dropped(), 0);
    }

    #[test]
    fn supplied_registry_collects_runtime_and_operator_metrics() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let registry = Registry::new();
        let cfg = RuntimeConfig::new(2).with_registry(registry.clone());
        let tuples = stream(2, 1000, 8);
        let n = tuples.len() as f64;
        let report = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples).unwrap();
        let snap = registry.snapshot();
        // Merged across shard labels the totals must match the report.
        let rt_tuples: f64 = report.shards.iter().map(|s| s.tuples() as f64).sum();
        assert_eq!(rt_tuples, n);
        let merged: f64 =
            snap.metrics.iter().filter(|m| m.name == "rt.tuples").map(|m| m.scalar()).sum();
        assert_eq!(merged, n);
        // The per-shard operators flushed their window counters too.
        let op_tuples: f64 =
            snap.metrics.iter().filter(|m| m.name == "op.tuples").map(|m| m.scalar()).sum();
        assert_eq!(op_tuples, n);
        // Busy time was recorded per batch, and rings drained to depth 0.
        assert!(report.shards.iter().all(|s| s.busy() > Duration::ZERO));
        let depth: f64 =
            snap.metrics.iter().filter(|m| m.name == "rt.ring_depth").map(|m| m.scalar()).sum();
        assert_eq!(depth, 0.0);
        // Router batch sizes were recorded.
        let batches = snap.get("rt.batch_tuples").unwrap();
        assert!(batches.hits() > 0);
        // A clean run publishes full coverage.
        let cov = snap.metrics.iter().find(|m| m.name == "rt.coverage").unwrap();
        assert_eq!(cov.scalar(), 1.0);
    }

    fn engine_tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sso-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_run_matches_in_memory_and_resumes_from_the_store() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let tuples = stream(3, 1000, 16);
        let plain = run_sharded(
            &plan,
            |_| Ok(queries::total_sum_query(1)),
            &RuntimeConfig::new(4),
            tuples.clone(),
        )
        .unwrap()
        .windows;
        let dir = engine_tmpdir("durable-match");
        let mut d = DurabilityConfig::new(&dir);
        d.checkpoint_every = 2;
        let cfg = RuntimeConfig::new(4).with_durability(d.clone());
        let durable = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples.clone())
            .unwrap()
            .windows;
        assert_eq!(plain.len(), durable.len());
        for (a, b) in plain.iter().zip(&durable) {
            assert_eq!(a.window, b.window);
            assert_eq!(a.rows, b.rows, "durable run must not perturb results");
        }
        // Resume over the same stream: every window sits at or below the
        // watermark, so the whole output is served from the store.
        d.resume = true;
        let cfg = RuntimeConfig::new(4).with_durability(d);
        let resumed =
            run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples).unwrap().windows;
        assert_eq!(plain.len(), resumed.len());
        for (a, b) in plain.iter().zip(&resumed) {
            assert_eq!(a.rows, b.rows, "recovered windows must round-trip exactly");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_fault_kills_the_run_and_recovery_completes_it() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let tuples = stream(3, 1000, 16);
        let plain = run_sharded(
            &plan,
            |_| Ok(queries::total_sum_query(1)),
            &RuntimeConfig::new(2),
            tuples.clone(),
        )
        .unwrap()
        .windows;
        let dir = engine_tmpdir("crash-recover");
        let mut fault = FaultPlan::empty(7);
        fault.events.push(sso_faults::FaultEvent::Crash { at_tuple: 2500 });
        let cfg = RuntimeConfig::new(2)
            .with_faults(fault.into_shared())
            .with_durability(DurabilityConfig::new(&dir));
        let err = run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples.clone())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Crashed { at_tuple: 2500 }), "{err}");
        // Restart over the same deterministic stream: recovered windows
        // come from the store, the crash window is recomputed, and the
        // result matches the fault-free run row for row.
        let mut d = DurabilityConfig::new(&dir);
        d.resume = true;
        let cfg = RuntimeConfig::new(2).with_durability(d);
        let recovered =
            run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &cfg, tuples).unwrap().windows;
        assert_eq!(plain.len(), recovered.len(), "all three windows survive");
        for (a, b) in plain.iter().zip(&recovered) {
            assert_eq!(a.window, b.window);
            assert_eq!(a.rows, b.rows, "window {:?} must match the fault-free run", a.window);
            assert!(!b.degradation.degraded, "recovery must not report degradation");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_budget_spills_and_stays_under_budget() {
        // High-cardinality keyed count: many groups per window.
        let spec = queries::heavy_hitters_query(1, 1 << 20, None).unwrap();
        let plan = shard_plan(&spec).unwrap();
        let make = |_| queries::heavy_hitters_query(1, 1 << 20, None);
        let tuples = stream(2, 4000, 4000);
        let plain =
            run_sharded(&plan, make, &RuntimeConfig::new(2), tuples.clone()).unwrap().windows;
        let dir = engine_tmpdir("budget");
        let registry = Registry::new();
        let mut d = DurabilityConfig::new(&dir);
        // Small enough to force spilling (~4000 groups/shard model well
        // past 3 pages), large enough to stay useful.
        let budget = 3 * sso_core::snapshot::PAGE_BYTES as u64 * 2;
        d.state_budget = Some(budget);
        let cfg = RuntimeConfig::new(2).with_registry(registry.clone()).with_durability(d);
        let spilled = run_sharded(&plan, make, &cfg, tuples).unwrap().windows;
        assert_eq!(plain.len(), spilled.len());
        for (a, b) in plain.iter().zip(&spilled) {
            assert_eq!(a.rows, b.rows, "spilling must not change results");
        }
        let snap = registry.snapshot();
        let per_shard = budget / 2;
        let peaks: Vec<f64> = snap
            .metrics
            .iter()
            .filter(|m| m.name == "store.peak_resident_bytes")
            .map(|m| m.scalar())
            .collect();
        assert_eq!(peaks.len(), 2, "one peak gauge per shard");
        for p in &peaks {
            assert!(*p > 0.0, "peak resident was recorded");
            assert!(*p <= per_shard as f64, "peak {p} exceeds per-shard budget {per_shard}");
        }
        let faults: f64 =
            snap.metrics.iter().filter(|m| m.name == "store.page_faults").map(|m| m.scalar()).sum();
        assert!(faults > 0.0, "a budget this tight must fault pages back in");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_zero_shards() {
        let spec = queries::total_sum_query(1);
        let plan = shard_plan(&spec).unwrap();
        let err =
            run_sharded(&plan, |_| Ok(queries::total_sum_query(1)), &RuntimeConfig::new(0), [])
                .unwrap_err();
        assert!(matches!(err, RuntimeError::BadConfig(_)));
    }
}
