//! Spin-loop shims.

/// Yield inside a spin/backoff loop.
///
/// Normal builds: `std::thread::yield_now()`. In a model run the thread
/// *blocks* until some other thread performs a write (any store, RMW,
/// cell write, or unlock) — an unbounded spin loop would otherwise make
/// exhaustive exploration diverge, and a spin that can never be
/// released by another thread's write is a livelock, which the
/// scheduler reports as a deadlock.
#[inline]
pub fn spin_yield() {
    #[cfg(feature = "model")]
    if crate::model::ctx::with(|c| c.yield_now()).is_some() {
        return;
    }
    std::thread::yield_now();
}
