//! The durable-run MANIFEST: a `key=value` text file in the store
//! directory recording how the run was launched (feed, seed, query,
//! shard count, …), so `sso recover DIR` can reconstruct and re-drive
//! the same deterministic stream without the original command line.

use std::fs;
use std::io;
use std::path::Path;

const FILE: &str = "MANIFEST";

/// Write the manifest, replacing any existing one. Keys must not
/// contain `=` or newlines.
pub fn write_manifest(dir: &Path, entries: &[(String, String)]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut out = String::from("# sso durable run\n");
    for (k, v) in entries {
        if k.contains('=') || k.contains('\n') || v.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("manifest entry '{k}' contains a reserved character"),
            ));
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
        out.push('\n');
    }
    fs::write(dir.join(FILE), out)
}

/// Read the manifest back as ordered `(key, value)` pairs.
pub fn read_manifest(dir: &Path) -> io::Result<Vec<(String, String)>> {
    let text = fs::read_to_string(dir.join(FILE))?;
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once('=') {
            Some((k, v)) => entries.push((k.to_string(), v.to_string())),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("manifest line without '=': {line}"),
                ))
            }
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let dir = std::env::temp_dir().join(format!("sso-manifest-{}", std::process::id()));
        let entries = vec![
            ("feed".to_string(), "research".to_string()),
            ("seed".to_string(), "42".to_string()),
            ("query".to_string(), "SELECT tb, count(*) FROM PKT GROUP BY time/10 as tb".into()),
        ];
        write_manifest(&dir, &entries).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), entries);
        assert!(write_manifest(&dir, &[("a=b".into(), "c".into())]).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
