//! Pure scalar functions available in queries.
//!
//! The paper's queries use `UMAX(val1, val2)` (e.g. to adjust a sampled
//! weight to the subset-sum threshold at output time) and `H(x)` (the
//! hash used by the min-hash query's `H(destIP) as HX` group-by
//! variable).

use std::sync::Arc;

use sso_types::{Value, ValueKind};

use crate::sfun::Signature;

/// A pure scalar function: values in, value out. Errors are returned as
/// human-readable strings and wrapped by the evaluator.
pub type ScalarFn = dyn Fn(&[Value]) -> Result<Value, String> + Send + Sync;

fn arity(name: &str, args: &[Value], n: usize) -> Result<(), String> {
    if args.len() == n {
        Ok(())
    } else {
        Err(format!("{name} expects {n} arguments, got {}", args.len()))
    }
}

/// `UMAX(a, b)`: the larger of two numeric values.
pub fn umax() -> Arc<ScalarFn> {
    Arc::new(|args| {
        arity("UMAX", args, 2)?;
        let ord = args[0].compare(&args[1]).map_err(|e| e.to_string())?;
        Ok(if ord == std::cmp::Ordering::Less { args[1].clone() } else { args[0].clone() })
    })
}

/// `UMIN(a, b)`: the smaller of two numeric values.
pub fn umin() -> Arc<ScalarFn> {
    Arc::new(|args| {
        arity("UMIN", args, 2)?;
        let ord = args[0].compare(&args[1]).map_err(|e| e.to_string())?;
        Ok(if ord == std::cmp::Ordering::Greater { args[1].clone() } else { args[0].clone() })
    })
}

/// `H(x)`: a strong 64-bit hash of an integer value, used by the
/// min-hash query (`H(destIP) as HX`).
pub fn hash_fn() -> Arc<ScalarFn> {
    Arc::new(|args| {
        arity("H", args, 1)?;
        let k = args[0].as_u64().map_err(|e| e.to_string())?;
        Ok(Value::U64(sso_sampling::hash::splitmix64(k)))
    })
}

/// `prefix(ip, bits)`: mask an IPv4 integer down to its `bits`-bit
/// network prefix — `prefix(srcIP, 24)` groups traffic by /24 subnet.
pub fn prefix_fn() -> Arc<ScalarFn> {
    Arc::new(|args| {
        arity("prefix", args, 2)?;
        let ip = args[0].as_u64().map_err(|e| e.to_string())?;
        let bits = args[1].as_u64().map_err(|e| e.to_string())?;
        if bits > 32 {
            return Err(format!("prefix: bits must be 0..=32, got {bits}"));
        }
        let mask = if bits == 0 { 0u64 } else { (!0u32 << (32 - bits)) as u64 };
        Ok(Value::U64(ip & mask))
    })
}

/// Look up a scalar function by (case-insensitive) name.
pub fn lookup(name: &str) -> Option<(&'static str, Arc<ScalarFn>)> {
    match name.to_ascii_uppercase().as_str() {
        "UMAX" => Some(("UMAX", umax())),
        "UMIN" => Some(("UMIN", umin())),
        "H" => Some(("H", hash_fn())),
        "PREFIX" => Some(("prefix", prefix_fn())),
        _ => None,
    }
}

/// Look up a scalar function's static signature by (case-insensitive)
/// name. `UMAX`/`UMIN` return one of their (numeric) operands, so their
/// result kind is `Num` rather than a concrete kind.
pub fn signature(name: &str) -> Option<Signature> {
    match name.to_ascii_uppercase().as_str() {
        "UMAX" | "UMIN" => Some(Signature::exact(2, ValueKind::Num)),
        "H" => Some(Signature::exact(1, ValueKind::UInt)),
        "PREFIX" => Some(Signature::exact(2, ValueKind::UInt)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn umax_and_umin() {
        let f = umax();
        assert_eq!(f(&[Value::U64(3), Value::U64(9)]).unwrap(), Value::U64(9));
        assert_eq!(f(&[Value::F64(3.5), Value::U64(3)]).unwrap(), Value::F64(3.5));
        let f = umin();
        assert_eq!(f(&[Value::U64(3), Value::U64(9)]).unwrap(), Value::U64(3));
    }

    #[test]
    fn umax_rejects_wrong_arity() {
        let f = umax();
        assert!(f(&[Value::U64(3)]).is_err());
        assert!(f(&[]).is_err());
    }

    #[test]
    fn hash_is_deterministic() {
        let f = hash_fn();
        let a = f(&[Value::U64(42)]).unwrap();
        let b = f(&[Value::U64(42)]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, f(&[Value::U64(43)]).unwrap());
    }

    #[test]
    fn hash_rejects_non_numeric() {
        let f = hash_fn();
        assert!(f(&[Value::str("x")]).is_err());
    }

    #[test]
    fn prefix_masks_to_subnet() {
        let f = prefix_fn();
        let ip = 0x0a01_0203u64; // 10.1.2.3
        assert_eq!(f(&[Value::U64(ip), Value::U64(24)]).unwrap(), Value::U64(0x0a01_0200));
        assert_eq!(f(&[Value::U64(ip), Value::U64(16)]).unwrap(), Value::U64(0x0a01_0000));
        assert_eq!(f(&[Value::U64(ip), Value::U64(32)]).unwrap(), Value::U64(ip));
        assert_eq!(f(&[Value::U64(ip), Value::U64(0)]).unwrap(), Value::U64(0));
        assert!(f(&[Value::U64(ip), Value::U64(33)]).is_err());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(lookup("umax").is_some());
        assert!(lookup("Umin").is_some());
        assert!(lookup("h").is_some());
        assert!(lookup("Prefix").is_some());
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn signatures_match_implementations() {
        for name in ["UMAX", "UMIN", "H", "prefix"] {
            let sig = signature(name).unwrap();
            let (_, f) = lookup(name).unwrap();
            // A call at the declared arity must not fail with an arity
            // error (it may still fail on argument values).
            let args = vec![Value::U64(1); sig.min_args];
            match f(&args) {
                Ok(_) => {}
                Err(e) => assert!(!e.contains("arguments"), "{name}: {e}"),
            }
            // One extra argument must be rejected.
            let too_many = vec![Value::U64(1); sig.max_args + 1];
            assert!(f(&too_many).is_err(), "{name} must reject extra args");
        }
        assert!(signature("nope").is_none());
    }
}
