#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== sharded runtime determinism suite =="
cargo test -q --test sharded

echo "== concurrency model check (exhaustive, bounded <60s) =="
# Exhaustively explores the interleavings of the registry fold, shard
# ring, and merge barrier under the sso-sync `model` feature; the
# configs in tests/model_check.rs are sized so the whole suite stays
# well under a minute.
cargo test -q --test model_check

if [[ "${SSO_CHECK_SANITIZE:-0}" == "1" ]]; then
    echo "== sanitizer pass (opt-in: SSO_CHECK_SANITIZE=1) =="
    # Best-effort: tsan needs a nightly -Z flag and miri needs its
    # component; offline or stable-only toolchains skip gracefully.
    if rustc +nightly --version >/dev/null 2>&1; then
        if RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q -Z build-std \
            --target "$(rustc -vV | sed -n 's/^host: //p')" \
            --test model_check 2>/dev/null; then
            echo "thread sanitizer pass OK"
        else
            echo "thread sanitizer unavailable (needs nightly + rust-src); skipped"
        fi
        if cargo +nightly miri --version >/dev/null 2>&1; then
            cargo +nightly miri test -p sso-runtime -p sso-obs ||
                echo "miri run failed or unsupported; continuing"
        else
            echo "miri not installed; skipped"
        fi
    else
        echo "no nightly toolchain; sanitizer pass skipped"
    fi
fi

echo "== static audit over the example corpus (bounds certified, schema stable) =="
# `sso audit` must certify a finite memory ceiling for every example
# query with zero diagnostics (--deny-warnings), in well under 5s —
# the pass is pure abstract interpretation, nothing executes. The
# python step pins the BoundsReport JSON schema so a renamed or
# dropped field fails CI instead of silently breaking consumers.
time cargo run -q --bin sso -- audit --json --deny-warnings examples/queries.sql \
    | python3 -c '
import json, sys
doc = json.loads(sys.stdin.read())
report, diags = doc["report"], doc["diagnostics"]
assert diags == [], f"audit diagnostics on the example corpus: {diags}"
for key in ("feed", "shards", "budget", "total_state_bytes", "durable", "statements"):
    assert key in report, f"BoundsReport schema drift: missing {key}"
stmt_keys = {
    "name", "stream", "sampler", "window_secs", "rows_per_sec",
    "rows_per_window", "key_cardinality", "supergroup_cardinality",
    "per_supergroup_bound", "groups_bound", "group_entry_bytes",
    "supergroup_entry_bytes", "state_bytes", "skew", "mergeable",
    "deletion_safe",
}
stmts = report["statements"]
assert stmts, "no statements audited"
for s in stmts:
    name = s.get("name", "?")
    assert set(s) == stmt_keys, "StatementBounds schema drift: %s" % (set(s) ^ stmt_keys)
    assert s["state_bytes"] is not None, "%s: unbounded state" % name
total = report["total_state_bytes"]
assert total is not None, "corpus total must be finite"
print("audit OK: %d statements, total ceiling %d bytes" % (len(stmts), total))
'

echo "== plan-rewrite optimizer over the example corpus (certificate schema stable) =="
# `sso optimize` must stay clean on the example corpus (every WHERE
# there leads with a stateful sampler, so nothing is hoistable and no
# W103/W30x may fire), in seconds — the pass is pure static analysis
# plus the re-audit, nothing executes. The python step pins the rewrite-report
# JSON schema so consumers (and the golden tests) never drift silently.
time cargo run -q --bin sso -- optimize --json --deny-warnings examples/queries.sql \
    | python3 -c '
import json, sys
doc = json.loads(sys.stdin.read())
assert set(doc) == {"report", "diagnostics"}, set(doc)
report, diags = doc["report"], doc["diagnostics"]
assert diags == [], f"optimize diagnostics on the example corpus: {diags}"
assert set(report) == {"statements", "skipped", "clusters", "certificate", "shared", "reaudit"}, (
    "rewrite report schema drift: %s" % set(report))
skipped = report["skipped"]
assert skipped == [], f"skipped statements: {skipped}"
for c in report["clusters"]:
    assert set(c) == {"stream", "members", "shared_prefilter", "groups"}, set(c)
    for g in c["groups"]:
        assert set(g) == {"statements", "hash", "canonical", "mergeable", "blocked"}, set(g)
cert = report["certificate"]
assert set(cert) == {"checksum", "steps"}, set(cert)
for s in cert["steps"]:
    assert set(s) == {"rule", "statements", "before", "after", "side_conditions"}, set(s)
assert cert["steps"] == [], "example corpus must not be rewritten (stateful prefilters)"
assert report["shared"] == [], "no shared plans expected on the example corpus"
re = report["reaudit"]
assert set(re) == {"ok", "total_state_bytes", "statements"}, set(re)
assert re["ok"], "re-audit failed on the example corpus"
print("optimize OK: %d statements, %d clusters, re-audit ok"
      % (report["statements"], len(report["clusters"])))
'

echo "== sso --shards smoke run =="
cargo run -q --bin sso -- --feed research --seconds 2 --shards 4 \
    "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/1 as tb" >/dev/null

echo "== sso run --metrics smoke (JSON validity) =="
cargo run -q --bin sso -- run --metrics - --seconds 2 --json \
    "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/1 as tb" \
    | python3 -c '
import json, sys
data = sys.stdin.read()
idx = data.rfind("{\"snapshots\"")
assert idx >= 0, "no snapshots document in --metrics output"
doc = json.loads(data[idx:])
assert doc["snapshots"], "empty snapshot series"
for line in data[:idx].strip().splitlines():
    json.loads(line)  # every window record is one valid JSON line
snaps = doc["snapshots"]
last = len(snaps[-1]["metrics"])
print(f"metrics smoke OK: {len(snaps)} snapshots, last has {last} metrics")
'

echo "== fault-injection matrix (fixed seeds, replayable) =="
# The acceptance suite (16-shard mid-window panic, loss accounting for
# every backpressure mode, plan text round-trip, deadline alerting) —
# fixed seeds throughout, so a failure replays byte-for-byte.
cargo test -q --test faults

echo "== sso router-panic smoke (fixed seed, degraded run completes) =="
# A seeded plan panics one of two router lanes mid-stream (lane-local
# trip index); the run must survive with exactly one coverage-tagged
# degraded window rather than dying with the router.
RSMOKE="$(mktemp -d)"
printf 'panic router=1 at=10000\n' > "$RSMOKE/plan.txt"
cargo run -q --bin sso -- run --feed research --seconds 4 --shards 4 \
    --routers 2 --fault-plan "$RSMOKE/plan.txt" --json \
    "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/1 as tb" \
    2>/dev/null \
    | python3 -c '
import json, sys
rows = [json.loads(l) for l in sys.stdin if l.strip()]
assert rows, "no window records"
deg = [r for r in rows if r["degraded"]]
assert len(deg) == 1, f"expected exactly one degraded window, got {len(deg)}"
assert all(0.0 < r["coverage"] < 1.0 for r in deg), deg
cov = deg[0]["coverage"]
print(f"router-panic smoke OK: {len(rows)} windows, 1 degraded (coverage {cov:.2f})")
'
rm -rf "$RSMOKE"

echo "== sso --fault-seed smoke (degraded run completes) =="
# A seeded plan panics one shard mid-stream; the run must complete and
# report per-window coverage in its JSON output.
cargo run -q --bin sso -- run --feed research --seconds 4 --shards 8 \
    --fault-seed 7 --json \
    "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/1 as tb" \
    | python3 -c '
import json, sys
rows = [json.loads(l) for l in sys.stdin if l.strip()]
assert rows, "no window records"
assert all("coverage" in r and "degraded" in r for r in rows), "missing coverage tags"
deg = sum(1 for r in rows if r["degraded"])
print(f"fault smoke OK: {len(rows)} windows, {deg} degraded")
'

echo "== crash-recovery smoke (durable store, resumed run matches fault-free) =="
# A durable 4-shard run is killed mid-stream by an injected crash
# fault; `sso recover` over the same store must reproduce the
# fault-free run's JSON output byte-for-byte.
STORE="$(mktemp -d)"
SMOKE_QUERY="SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/1 as tb"
cargo run -q --bin sso -- run --feed research --seconds 4 --shards 4 --json \
    "$SMOKE_QUERY" > "$STORE/baseline.json"
printf 'crash at=20000\n' > "$STORE/plan.txt"
if cargo run -q --bin sso -- run --feed research --seconds 4 --shards 4 --json \
    --durable "$STORE/store" --fault-plan "$STORE/plan.txt" \
    "$SMOKE_QUERY" > /dev/null 2> "$STORE/crash.err"; then
    echo "the injected crash did not kill the durable run"; exit 1
fi
grep -q "injected crash fired" "$STORE/crash.err"
cargo run -q --bin sso -- recover --json "$STORE/store" > "$STORE/recovered.json"
diff "$STORE/baseline.json" "$STORE/recovered.json"
echo "recovery smoke OK: recovered output identical to fault-free run"
rm -rf "$STORE"

echo "== fault-tolerance overhead gate (supervision within 5%) =="
cargo run -q --release -p sso-bench --bin fault_overhead -- --json > BENCH_faults.json
python3 -c '
import json
r = json.load(open("BENCH_faults.json"))
pct = r["overhead_pct"]
sup = r["supervised"]["tuples_per_sec"]
base = r["baseline"]["tuples_per_sec"]
print(f"supervision overhead: {pct:.2f}% ({sup:.0f} vs {base:.0f} tuples/s)")
assert pct <= 5.0, f"supervision overhead {pct:.2f}% exceeds the 5% budget"
'

echo "== runtime scaling gate (multi-router, no speedup inversion) =="
# Re-measures the 1/2/4/8-shard curve with `--routers auto` into
# BENCH_runtime.json. While shards fit within the host's cores the
# speedup must be monotonically non-decreasing (the single-router
# inversion this curve used to show is gone); past the host's cores
# the extra shards cannot physically run in parallel, so the gate
# bounds the oversubscription cost instead (each step keeps >= 90% of
# the previous step). The 1-shard sharded run must also beat the
# two-thread pipeline — the ring-sizing fix for the old 1-shard stall
# anomaly is what buys that.
cargo run -q --release -p sso-bench --bin runtime_scaling -- --routers auto --json \
    > BENCH_runtime.json
python3 -c '
import json
r = json.load(open("BENCH_runtime.json"))
cores = r["config"]["host_cores"]
assert r["exact_drift_windows"] == 0, "sharded exact query drifted"
sharded = [run for run in r["runs"] if run["mode"] == "sharded"]
sharded.sort(key=lambda run: run["shards"])
assert [run["shards"] for run in sharded] == [1, 2, 4, 8], sharded
for run in sharded:
    n, err = run["shards"], run["max_estimate_err_pct"]
    assert run["dropped"] == 0, f"{n} shards dropped tuples"
    assert err <= 5.0, f"{n} shards: estimate err {err:.2f}%"
s0 = sharded[0]["speedup_vs_threaded"]
assert s0 >= 1.0, f"1-shard sharded run slower than threaded: {s0:.2f}x"
for prev, cur in zip(sharded, sharded[1:]):
    s_prev, s_cur = prev["speedup_vs_threaded"], cur["speedup_vs_threaded"]
    n_prev, n_cur = prev["shards"], cur["shards"]
    if n_cur <= cores:
        assert s_cur >= s_prev * 0.98, (
            f"speedup inversion inside the parallel range: "
            f"{n_prev}sh {s_prev:.2f}x -> {n_cur}sh {s_cur:.2f}x")
    else:
        assert s_cur >= s_prev * 0.90, (
            f"oversubscription cost beyond {cores} cores exceeds 10%: "
            f"{n_prev}sh {s_prev:.2f}x -> {n_cur}sh {s_cur:.2f}x")
curve = " -> ".join(
    "{}sh {:.2f}x".format(run["shards"], run["speedup_vs_threaded"]) for run in sharded)
print(f"runtime scaling OK ({cores} cores): {curve}")
'

echo "== durable-store overhead gate (checkpoints + WAL within 5%) =="
cargo run -q --release -p sso-bench --bin store_overhead -- --json > BENCH_store.json
python3 -c '
import json
r = json.load(open("BENCH_store.json"))
pct = r["overhead_pct"]
dur = r["durable"]["tuples_per_sec"]
base = r["baseline"]["tuples_per_sec"]
print(f"durable-store overhead: {pct:.2f}% ({dur:.0f} vs {base:.0f} tuples/s)")
assert pct <= 5.0, f"durable-store overhead {pct:.2f}% exceeds the 5% budget"
'

echo "== observability overhead gate (instrumented within 5%) =="
cargo run -q --release -p sso-bench --bin obs_overhead -- --json > BENCH_obs.json
python3 -c '
import json
r = json.load(open("BENCH_obs.json"))
pct = r["overhead_pct"]
instr = r["instrumented"]["tuples_per_sec"]
plain = r["uninstrumented"]["tuples_per_sec"]
print(f"telemetry overhead: {pct:.2f}% ({instr:.0f} vs {plain:.0f} tuples/s)")
assert pct <= 5.0, f"telemetry overhead {pct:.2f}% exceeds the 5% budget"
'

echo "== profiling overhead gate (causal tracing within 5%) =="
# Also records the measured 8-shard stage attribution (ROADMAP item 1:
# where does the time go as shards scale?) alongside the gate numbers.
cargo run -q --release -p sso-bench --bin profile_overhead -- --json > BENCH_profile.json
python3 -c '
import json
r = json.load(open("BENCH_profile.json"))
pct = r["overhead_pct"]
prof = r["profiled"]["tuples_per_sec"]
plain = r["unprofiled"]["tuples_per_sec"]
a = r["attribution_8shard"]
dominant = a["dominant_stage"]
router = a["router_share_pct"]
shares = {s["stage"]: s["share_pct"] for s in a["stages"]}
ing, proc = shares["ingest"], shares["process"]
print(f"profiling overhead: {pct:.2f}% ({prof:.0f} vs {plain:.0f} tuples/s)")
print(f"8-shard attribution: dominant={dominant} router={router:.1f}% "
      f"ingest={ing:.1f}% process={proc:.1f}%")
assert pct <= 5.0, f"profiling overhead {pct:.2f}% exceeds the 5% budget"
assert a["dominant_stage"], "attribution must name a dominant stage"
assert a["dropped_events"] == 0, "trace lanes wrapped during the bench"
# The multi-router restructure moved the wall off the ingest thread:
# routing must cost less than the workers combined operator work.
assert ing < proc, (
    f"ingest share {ing:.1f}% not below workers process share {proc:.1f}%")
'

echo "== multi-query sharing gate (shared never slower, output identical) =="
# The §7.1 simultaneous-query workload: 16 near-identical queries in 4
# share groups. The optimizer's shared plan (one hoisted prefilter + 4
# deduplicated operators) must produce byte-identical windows and must
# never be slower than running all 16 operators unshared.
cargo run -q --release -p sso-bench --bin multiquery_sharing -- --json > BENCH_rewrite.json
python3 -c '
import json
r = json.load(open("BENCH_rewrite.json"))
speedup = r["speedup"]
shared = r["shared"]["tuples_per_sec"]
unshared = r["unshared"]["tuples_per_sec"]
print(f"sharing speedup: {speedup:.2f}x ({shared:.0f} vs {unshared:.0f} tuples/s)")
assert r["identical"], "shared execution output diverged from unshared"
assert speedup >= 1.0, f"shared execution slower than unshared: {speedup:.2f}x"
'

echo "== sso --profile smoke (chrome trace schema) =="
PROF="$(mktemp -d)"
cargo run -q --bin sso -- --feed research --seconds 2 --shards 4 \
    --profile="$PROF/flight.ssoprof" \
    "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/1 as tb" >/dev/null
test -s "$PROF/flight.ssoprof"
cargo run -q --bin sso -- trace --chrome "$PROF/trace.json" "$PROF" >/dev/null
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["displayTimeUnit"] == "ms", "chrome trace must set displayTimeUnit"
evs = doc["traceEvents"]
assert evs, "empty chrome trace"
phases = {e["ph"] for e in evs}
assert phases <= {"M", "X"}, f"unexpected phases: {phases}"
for e in evs:
    for key in ("name", "ph", "pid", "tid"):
        assert key in e, f"trace event missing {key}: {e}"
    if e["ph"] == "X":
        assert "ts" in e and "dur" in e, f"complete event missing ts/dur: {e}"
names = {e["args"]["name"] for e in evs if e["ph"] == "M"}
assert any(n.startswith("router") for n in names), names
assert any(n.startswith("worker") for n in names), names
xs = sum(1 for e in evs if e["ph"] == "X")
print(f"chrome trace OK: {xs} complete events across {len(names)} lanes")
' "$PROF/trace.json"
rm -rf "$PROF"

echo "All checks passed."
