//! `sso` — run sampling queries from the command line against the
//! synthetic feeds.
//!
//! ```sh
//! sso --feed research --seconds 60 \
//!     "SELECT tb, destIP, sum(len), count(*) FROM PKT \
//!      GROUP BY time/20 as tb, destIP \
//!      CLEANING WHEN local_count(1000) = TRUE \
//!      CLEANING BY count(*) + first(current_bucket()) > current_bucket()"
//!
//! sso --explain "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKT ..."
//! ```
//!
//! Options:
//!   --feed research|datacenter|ddos   packet source (default research)
//!   --trace FILE                      read packets from a CSV trace instead
//!   --dump FILE                       also write the packets to a CSV trace
//!   --seconds N                       trace length (default 60)
//!   --seed S                          feed seed (default 1)
//!   --limit R                         print at most R rows per window (default 20)
//!   --explain                         print the plan instead of running
//!   --json                            machine-readable window output

use stream_sampler::prelude::*;
use stream_sampler::query::explain::explain;

struct Options {
    feed: String,
    trace: Option<String>,
    dump: Option<String>,
    seconds: u64,
    seed: u64,
    limit: usize,
    explain: bool,
    json: bool,
    query: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sso [--feed research|datacenter|ddos] [--trace FILE] [--dump FILE] \
         [--seconds N] [--seed S] [--limit R] [--explain] [--json] 'QUERY'"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        feed: "research".to_string(),
        trace: None,
        dump: None,
        seconds: 60,
        seed: 1,
        limit: 20,
        explain: false,
        json: false,
        query: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--feed" => opts.feed = args.next().unwrap_or_else(|| usage()),
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--dump" => opts.dump = Some(args.next().unwrap_or_else(|| usage())),
            "--seconds" => {
                opts.seconds =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--limit" => {
                opts.limit =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--explain" => opts.explain = true,
            "--json" => opts.json = true,
            "--help" | "-h" => usage(),
            q if !q.starts_with("--") && opts.query.is_none() => opts.query = Some(q.to_string()),
            _ => usage(),
        }
    }
    if opts.query.is_none() {
        usage();
    }
    opts
}

fn main() {
    let opts = parse_args();
    let query_text = opts.query.as_deref().expect("query checked in parse_args");

    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let parsed = match parse_query(query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let spec = match stream_sampler::query::plan(&parsed, &schema, &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if opts.explain {
        print!("{}", explain(&spec));
        return;
    }
    let mut op = match SamplingOperator::new(spec) {
        Ok(op) => op,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let packets = if let Some(path) = &opts.trace {
        match std::fs::File::open(path).map_err(Into::into).and_then(|f| {
            stream_sampler::netgen::read_trace(f)
        }) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match opts.feed.as_str() {
            "research" => research_feed(opts.seed).take_seconds(opts.seconds),
            "datacenter" => datacenter_feed(opts.seed).take_seconds(opts.seconds),
            "ddos" => ddos_feed(opts.seed, opts.seconds / 3, 2 * opts.seconds / 3)
                .take_seconds(opts.seconds),
            other => {
                eprintln!("error: unknown feed `{other}` (research | datacenter | ddos)");
                std::process::exit(1);
            }
        }
    };
    if let Some(path) = &opts.dump {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create {path}: {e}");
            std::process::exit(1);
        });
        if let Err(e) = stream_sampler::netgen::write_trace(&packets, std::io::BufWriter::new(file)) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        if !opts.json {
            eprintln!("# wrote {} packets to {path}", packets.len());
        }
    }
    if !opts.json {
        eprintln!(
            "# feed={} seed={} seconds={} packets={}",
            opts.feed,
            opts.seed,
            opts.seconds,
            packets.len()
        );
    }

    let columns: Vec<String> = op.output_columns().iter().map(|s| s.to_string()).collect();
    let mut total_rows = 0u64;
    for pkt in &packets {
        match op.process(&pkt.to_tuple()) {
            Ok(Some(w)) => total_rows += print_window(&w, &columns, &opts),
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    match op.finish() {
        Ok(Some(w)) => total_rows += print_window(&w, &columns, &opts),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    if !opts.json {
        eprintln!("# {total_rows} rows total");
    }
}

fn print_window(
    w: &stream_sampler::operator::WindowOutput,
    columns: &[String],
    opts: &Options,
) -> u64 {
    if opts.json {
        // One JSON object per window, rows as arrays of strings.
        let rows: Vec<Vec<String>> = w
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        println!(
            "{}",
            serde_json_lite(&w.window.to_string(), columns, &rows, &w.stats)
        );
        return w.rows.len() as u64;
    }
    println!(
        "\n== window {} ({} tuples in, {} admitted, {} cleaning phases, {} rows) ==",
        w.window, w.stats.tuples, w.stats.admitted, w.stats.cleaning_phases, w.rows.len()
    );
    println!("{}", columns.join("\t"));
    for row in w.rows.iter().take(opts.limit) {
        let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    if w.rows.len() > opts.limit {
        println!("... ({} more rows)", w.rows.len() - opts.limit);
    }
    w.rows.len() as u64
}

/// Tiny hand-rolled JSON encoder for the window record (values are
/// numbers/strings only; strings contain no quotes).
fn serde_json_lite(
    window: &str,
    columns: &[String],
    rows: &[Vec<String>],
    stats: &stream_sampler::operator::WindowStats,
) -> String {
    let cols = columns.iter().map(|c| format!("\"{c}\"")).collect::<Vec<_>>().join(",");
    let rows = rows
        .iter()
        .map(|r| {
            let cells = r.iter().map(|v| format!("\"{v}\"")).collect::<Vec<_>>().join(",");
            format!("[{cells}]")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"window\":\"{window}\",\"columns\":[{cols}],\"rows\":[{rows}],\
         \"tuples\":{},\"admitted\":{},\"cleaning_phases\":{}}}",
        stats.tuples, stats.admitted, stats.cleaning_phases
    )
}
