//! **Figure 5 — Subset-sum sampling CPU usage.**
//!
//! The per-tuple cost of dynamic subset-sum sampling hosted on the
//! sampling operator (relaxed and non-relaxed) against basic subset-sum
//! sampling expressed as a plain selection-style query, at sample sizes
//! of 100 / 1,000 / 10,000 per 20-second period, on the steady ~100k
//! pkt/s data-center feed. The paper's result: even at 100k+ pkt/s the
//! operator uses a small fraction of a CPU; the dynamic algorithm adds
//! only a few points of CPU over the basic selection, and relaxation
//! adds ~2 points at most over non-relaxed.
//!
//! Measurement: every (shape, N) configuration is rerun in interleaved
//! rounds and the per-configuration minimum busy time is reported, so
//! slow system phases cannot bias one configuration against another.
//!
//! Absolute percentages differ from the paper's 2005 dual-Xeon (and our
//! operator is interpreted, not compiled C); the comparisons are the
//! reproducible object.

use std::time::Duration;

use sso_bench::{cpu_pct, header, maybe_json, measure_operator, stream_span};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::queries;
use sso_core::SamplingOperator;
use sso_netgen::datacenter_feed;
use sso_types::Tuple;

#[derive(serde::Serialize)]
struct Row {
    samples_per_period: usize,
    basic_cpu_pct: f64,
    nonrelaxed_cpu_pct: f64,
    relaxed_cpu_pct: f64,
    relaxed_over_basic_pts: f64,
    relaxed_over_nonrelaxed_pts: f64,
}

fn main() {
    const WINDOW: u64 = 20;
    const SECONDS: u64 = 40; // two full periods
    const ROUNDS: usize = 5;
    const SIZES: [usize; 3] = [100, 1000, 10_000];

    let packets = datacenter_feed(0xf165).take_seconds(SECONDS);
    let span = stream_span(&packets);
    let volume_per_window: u64 =
        packets.iter().filter(|p| p.time() < WINDOW).map(|p| p.len as u64).sum();
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();

    // (shape, N) -> minimum busy time across rounds.
    let mut best = [[Duration::MAX; 3]; 3];
    let make = |shape: usize, n: usize| -> SamplingOperator {
        let z = volume_per_window as f64 / n as f64;
        let cfg = SubsetSumOpConfig { target: n, initial_z: z, ..Default::default() };
        let spec = match shape {
            0 => queries::basic_subset_sum_query(WINDOW, z).unwrap(),
            1 => queries::subset_sum_query(WINDOW, cfg.non_relaxed(), false).unwrap(),
            _ => queries::subset_sum_query(WINDOW, cfg, false).unwrap(),
        };
        SamplingOperator::new(spec).unwrap()
    };

    for round in 0..=ROUNDS {
        for (ni, &n) in SIZES.iter().enumerate() {
            #[allow(clippy::needless_range_loop)]
            for shape in 0..3 {
                let mut op = make(shape, n);
                let (busy, windows) = measure_operator(&mut op, &tuples).unwrap();
                if round == 0 {
                    // Warm-up round: check sample sizes, discard timing.
                    if shape == 0 {
                        let got: usize =
                            windows.iter().map(|w| w.rows.len()).sum::<usize>() / windows.len();
                        assert!(
                            got as f64 > 0.5 * n as f64 && (got as f64) < 2.0 * n as f64,
                            "basic sampled {got}/period for target {n}"
                        );
                    }
                    continue;
                }
                best[shape][ni] = best[shape][ni].min(busy);
            }
        }
    }

    let rows: Vec<Row> = SIZES
        .iter()
        .enumerate()
        .map(|(ni, &n)| {
            let basic = cpu_pct(best[0][ni], span);
            let nr = cpu_pct(best[1][ni], span);
            let rx = cpu_pct(best[2][ni], span);
            Row {
                samples_per_period: n,
                basic_cpu_pct: basic,
                nonrelaxed_cpu_pct: nr,
                relaxed_cpu_pct: rx,
                relaxed_over_basic_pts: rx - basic,
                relaxed_over_nonrelaxed_pts: rx - nr,
            }
        })
        .collect();

    if maybe_json(&rows) {
        return;
    }
    header("Figure 5: subset-sum sampling CPU usage (~100k pkt/s data-center feed)");
    println!(
        "{:>16} {:>12} {:>14} {:>12} {:>14} {:>16}",
        "samples/period",
        "basic SS %",
        "SS nonrelaxed %",
        "SS relaxed %",
        "relaxed-basic",
        "relaxed-nonrel"
    );
    for r in &rows {
        println!(
            "{:>16} {:>12.2} {:>14.2} {:>12.2} {:>13.2}pt {:>15.2}pt",
            r.samples_per_period,
            r.basic_cpu_pct,
            r.nonrelaxed_cpu_pct,
            r.relaxed_cpu_pct,
            r.relaxed_over_basic_pts,
            r.relaxed_over_nonrelaxed_pts
        );
    }
    println!(
        "\npaper's shape: all three use a small fraction of a CPU; the operator's \
         dynamic algorithm costs a few points over the basic selection; relaxation \
         adds the least (≈2 points at most)."
    );
}
