//! **Figure 3 — Samples per period** (1000 samples per period).
//!
//! The number of tuples the dynamic subset-sum algorithm *admits* per
//! 20-second period. The relaxed algorithm starts each window with a
//! deliberately low threshold and therefore occasionally over-samples
//! (cleaning pulls it back); the non-relaxed algorithm frequently
//! under-samples after load drops — the direct cause of Figure 2's
//! under-estimation.

use sso_bench::{header, maybe_json, run_subset_sum};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_netgen::research_feed;

#[derive(serde::Serialize)]
struct Row {
    tb: u64,
    relaxed_admissions: u64,
    nonrelaxed_admissions: u64,
    relaxed_final: usize,
    nonrelaxed_final: usize,
}

fn main() {
    const WINDOW: u64 = 20;
    const N: usize = 1000;
    const SECONDS: u64 = 600;

    let packets = research_feed(0xf162).take_seconds(SECONDS);
    let relaxed = run_subset_sum(
        &packets,
        WINDOW,
        SubsetSumOpConfig { target: N, initial_z: 1.0, ..Default::default() },
    )
    .expect("relaxed run");
    let nonrelaxed = run_subset_sum(
        &packets,
        WINDOW,
        SubsetSumOpConfig { target: N, initial_z: 1.0, ..Default::default() }.non_relaxed(),
    )
    .expect("non-relaxed run");

    let rows: Vec<Row> = relaxed
        .iter()
        .zip(&nonrelaxed)
        .map(|(r, n)| Row {
            tb: r.tb,
            relaxed_admissions: r.admissions,
            nonrelaxed_admissions: n.admissions,
            relaxed_final: r.samples,
            nonrelaxed_final: n.samples,
        })
        .collect();

    if maybe_json(&rows) {
        return;
    }
    header("Figure 3: samples per period (target N = 1000, 20s periods)");
    println!(
        "{:>6} {:>18} {:>18} {:>14} {:>14}",
        "period", "relaxed admitted", "nonrelaxed admitted", "relaxed final", "nonrel final"
    );
    let mut under = 0;
    let mut over = 0;
    for r in rows.iter().skip(1) {
        if r.nonrelaxed_admissions < (0.8 * N as f64) as u64 {
            under += 1;
        }
        if r.relaxed_admissions > N as u64 {
            over += 1;
        }
    }
    for r in &rows {
        println!(
            "{:>6} {:>18} {:>18} {:>14} {:>14}",
            r.tb,
            r.relaxed_admissions,
            r.nonrelaxed_admissions,
            r.relaxed_final,
            r.nonrelaxed_final
        );
    }
    println!(
        "\nafter warm-up: non-relaxed under-samples (<0.8N) on {under} periods; \
         relaxed over-samples (>N, later cleaned) on {over} periods."
    );
    println!(
        "paper's shape: relaxed occasionally over-samples; non-relaxed frequently \
         under-samples, causing the under-estimation of Figure 2."
    );
}
