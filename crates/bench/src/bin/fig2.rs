//! **Figure 2 — Accuracy of summation** (1000 samples per period).
//!
//! Two query sets run over the same bursty feed: an exact per-window sum
//! of packet lengths ("actual"), and dynamic subset-sum sampling
//! collecting 1000 samples per 20-second period, in its relaxed (f = 10)
//! and non-relaxed forms. The paper's result: the non-relaxed estimate
//! collapses on windows following a sharp load drop; the relaxed
//! estimate tracks the actual sum closely everywhere.

use sso_bench::{header, maybe_json, run_subset_sum};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_netgen::research_feed;

#[derive(serde::Serialize)]
struct Row {
    tb: u64,
    actual: u64,
    relaxed: f64,
    nonrelaxed: f64,
}

fn main() {
    const WINDOW: u64 = 20;
    const N: usize = 1000;
    const SECONDS: u64 = 600; // 30 windows, as in the paper's charts

    let packets = research_feed(0xf162).take_seconds(SECONDS);
    let relaxed = run_subset_sum(
        &packets,
        WINDOW,
        SubsetSumOpConfig { target: N, initial_z: 1.0, ..Default::default() },
    )
    .expect("relaxed run");
    let nonrelaxed = run_subset_sum(
        &packets,
        WINDOW,
        SubsetSumOpConfig { target: N, initial_z: 1.0, ..Default::default() }.non_relaxed(),
    )
    .expect("non-relaxed run");

    let rows: Vec<Row> = relaxed
        .iter()
        .zip(&nonrelaxed)
        .map(|(r, n)| Row {
            tb: r.tb,
            actual: r.actual,
            relaxed: r.estimate,
            nonrelaxed: n.estimate,
        })
        .collect();

    if maybe_json(&rows) {
        return;
    }
    header("Figure 2: accuracy of summation (1000 samples per 20s period)");
    println!(
        "{:>6} {:>16} {:>16} {:>8} {:>16} {:>8}",
        "period", "actual", "est(relaxed)", "err%", "est(nonrelaxed)", "err%"
    );
    let (mut worst_rx, mut worst_nr) = (0.0f64, 0.0f64);
    let (mut mean_rx, mut mean_nr) = (0.0, 0.0);
    for r in &rows {
        let e_rx = 100.0 * (r.relaxed - r.actual as f64) / r.actual as f64;
        let e_nr = 100.0 * (r.nonrelaxed - r.actual as f64) / r.actual as f64;
        worst_rx = worst_rx.max(e_rx.abs());
        worst_nr = worst_nr.max(e_nr.abs());
        mean_rx += e_rx.abs();
        mean_nr += e_nr.abs();
        println!(
            "{:>6} {:>16} {:>16.0} {:>7.2}% {:>16.0} {:>7.2}%",
            r.tb, r.actual, r.relaxed, e_rx, r.nonrelaxed, e_nr
        );
    }
    let n = rows.len() as f64;
    println!(
        "\nmean |err|: relaxed {:.2}%  nonrelaxed {:.2}%   worst |err|: relaxed {:.2}%  nonrelaxed {:.2}%",
        mean_rx / n,
        mean_nr / n,
        worst_rx,
        worst_nr
    );
    println!(
        "paper's shape: relaxed tracks the actual sum closely on every period; \
         non-relaxed under-estimates badly after sharp load drops."
    );
}
