//! `sso` — run sampling queries from the command line against the
//! synthetic feeds.
//!
//! ```sh
//! sso --feed research --seconds 60 \
//!     "SELECT tb, destIP, sum(len), count(*) FROM PKT \
//!      GROUP BY time/20 as tb, destIP \
//!      CLEANING WHEN local_count(1000) = TRUE \
//!      CLEANING BY count(*) + first(current_bucket()) > current_bucket()"
//!
//! sso --explain "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKT ..."
//!
//! sso check queries.sql        # static analysis only; exits 1 on errors
//! ```
//!
//! Options:
//!   --feed research|datacenter|ddos   packet source (default research)
//!   --trace FILE                      read packets from a CSV trace instead
//!   --dump FILE                       also write the packets to a CSV trace
//!   --seconds N                       trace length (default 60)
//!   --seed S                          feed seed (default 1)
//!   --limit R                         print at most R rows per window (default 20)
//!   --shards N                        run N partitioned operator shards (default 1);
//!                                     refuses non-shard-mergeable queries with W102
//!   --explain                         print the plan instead of running
//!   --json                            machine-readable window output
//!
//! `sso check FILE` runs the static analyzer over every `;`-separated
//! query in FILE without executing anything, printing rustc-style
//! diagnostics with stable codes (E001.., W001..). A query whose FROM
//! names something other than a base stream (PKT/PKTS/TCP/UDP) is
//! treated as the high level of a Gigascope cascade: it is checked
//! against the previous query's output schema, and the pair gets the
//! partial-aggregation push-down lint (W101).

use std::io::Write;

use stream_sampler::prelude::*;
use stream_sampler::query::explain::explain;
use stream_sampler::query::{diag, Span};

struct Options {
    feed: String,
    trace: Option<String>,
    dump: Option<String>,
    seconds: u64,
    seed: u64,
    limit: usize,
    shards: usize,
    explain: bool,
    json: bool,
    query: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sso [--feed research|datacenter|ddos] [--trace FILE] [--dump FILE] \
         [--seconds N] [--seed S] [--limit R] [--shards N] [--explain] [--json] 'QUERY'\n\
         \x20      sso check QUERY-FILE"
    );
    std::process::exit(2);
}

/// Split a query file into `;`-separated statements, skipping blanks.
/// Returns (byte offset of statement start, statement text) pairs so
/// diagnostics can be re-based onto the whole file.
fn split_statements(text: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    for (i, c) in text.char_indices() {
        match c {
            '\'' => in_string = !in_string,
            ';' if !in_string => {
                out.push((start, &text[start..i]));
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push((start, &text[start..]));
    out.retain(|(_, s)| !s.trim().is_empty());
    out
}

/// `sso check FILE`: statically analyze every query in FILE, printing
/// rustc-style diagnostics. Exits 0 when clean (warnings allowed), 1
/// when any query has errors, 2 on usage or I/O problems.
fn run_check(args: &[String]) -> ! {
    let [path] = args else {
        eprintln!("usage: sso check QUERY-FILE");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let statements = split_statements(&text);
    if statements.is_empty() {
        eprintln!("error: {path} contains no queries");
        std::process::exit(2);
    }

    let config = PlannerConfig::standard();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    // Consecutive queries form a cascade: each one runs over the
    // previous operator's output rows.
    let mut prev: Option<(stream_sampler::query::Query, stream_sampler::operator::OperatorSpec)> =
        None;
    for (base, stmt) in statements {
        let mut diags;
        let mut next = None;
        match parse_query(stmt) {
            Ok(q) => {
                // A conventional base-stream name starts a fresh
                // pipeline; any other FROM name reads the previous
                // query's output (Gigascope highs read a named low).
                let base_stream = matches!(q.from.text.as_str(), "PKT" | "PKTS" | "TCP" | "UDP");
                let schema = match &prev {
                    Some((_, spec)) if !base_stream => spec.output_schema(&q.from.text),
                    _ => Packet::schema(),
                };
                diags = stream_sampler::query::analyze(&q, &schema, &config);
                if let Some((prev_q, _)) = &prev {
                    if !base_stream {
                        diags.extend(stream_sampler::gigascope::check_pushdown(prev_q, &q));
                    }
                }
                if !diag::has_errors(&diags) {
                    if let Ok(spec) = stream_sampler::query::plan(&q, &schema, &config) {
                        next = Some((q, spec));
                    }
                }
            }
            // Re-run through check() to get the E100/E101 diagnostic
            // form of lex/parse failures.
            Err(_) => diags = stream_sampler::query::check(stmt, &Packet::schema(), &config),
        }
        errors += diags.iter().filter(|d| d.is_error()).count();
        warnings += diags.iter().filter(|d| !d.is_error()).count();
        // Re-base spans from the statement onto the whole file so line
        // numbers match the file the user is editing.
        for d in &mut diags {
            if !d.span.is_dummy() {
                d.span = Span::new(d.span.start + base, d.span.end + base);
            }
        }
        // Ignore write errors so `sso check | head` exits quietly on a
        // closed pipe instead of panicking.
        let mut out = std::io::stdout().lock();
        for d in &diags {
            let _ = writeln!(out, "{}", diag::render_one(&text, path, d));
        }
        prev = next;
    }
    let mut out = std::io::stdout().lock();
    let _ = match (errors, warnings) {
        (0, 0) => writeln!(out, "{path}: no problems found"),
        (e, w) => writeln!(out, "{path}: {e} error(s), {w} warning(s)"),
    };
    std::process::exit(if errors > 0 { 1 } else { 0 });
}

fn parse_args() -> Options {
    let mut opts = Options {
        feed: "research".to_string(),
        trace: None,
        dump: None,
        seconds: 60,
        seed: 1,
        limit: 20,
        shards: 1,
        explain: false,
        json: false,
        query: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--feed" => opts.feed = args.next().unwrap_or_else(|| usage()),
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--dump" => opts.dump = Some(args.next().unwrap_or_else(|| usage())),
            "--seconds" => {
                opts.seconds = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--limit" => {
                opts.limit = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--shards" => {
                opts.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--explain" => opts.explain = true,
            "--json" => opts.json = true,
            "--help" | "-h" => usage(),
            q if !q.starts_with("--") && opts.query.is_none() => opts.query = Some(q.to_string()),
            _ => usage(),
        }
    }
    if opts.query.is_none() {
        usage();
    }
    opts
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("check") {
        run_check(&argv[1..]);
    }
    let opts = parse_args();
    let query_text = opts.query.as_deref().expect("query checked in parse_args");

    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let parsed = match parse_query(query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let spec = match stream_sampler::query::plan(&parsed, &schema, &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if opts.explain {
        print!("{}", explain(&spec));
        return;
    }

    let packets = if let Some(path) = &opts.trace {
        match std::fs::File::open(path)
            .map_err(Into::into)
            .and_then(stream_sampler::netgen::read_trace)
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match opts.feed.as_str() {
            "research" => research_feed(opts.seed).take_seconds(opts.seconds),
            "datacenter" => datacenter_feed(opts.seed).take_seconds(opts.seconds),
            "ddos" => ddos_feed(opts.seed, opts.seconds / 3, 2 * opts.seconds / 3)
                .take_seconds(opts.seconds),
            other => {
                eprintln!("error: unknown feed `{other}` (research | datacenter | ddos)");
                std::process::exit(1);
            }
        }
    };
    if let Some(path) = &opts.dump {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create {path}: {e}");
            std::process::exit(1);
        });
        if let Err(e) = stream_sampler::netgen::write_trace(&packets, std::io::BufWriter::new(file))
        {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        if !opts.json {
            eprintln!("# wrote {} packets to {path}", packets.len());
        }
    }
    if !opts.json {
        eprintln!(
            "# feed={} seed={} seconds={} packets={}",
            opts.feed,
            opts.seed,
            opts.seconds,
            packets.len()
        );
    }

    let columns: Vec<String> = spec.select.iter().map(|(n, _)| n.clone()).collect();
    let mut total_rows = 0u64;
    if opts.shards > 1 {
        // Gate on shard-mergeability first so the refusal renders as a
        // proper W102 diagnostic instead of a runtime error.
        if stream_sampler::operator::shard_plan(&spec).is_err() {
            let diags = stream_sampler::query::check_shard_mergeable(query_text, &schema, &config);
            eprint!("{}", diag::render(query_text, "query", &diags));
            eprintln!("error: --shards {} requires a shard-mergeable query", opts.shards);
            std::process::exit(1);
        }
        let make = |_shard: usize| {
            stream_sampler::query::plan(&parsed, &schema, &config)
                .map_err(|e| stream_sampler::operator::OpError::InvalidSpec(e.to_string()))
        };
        let cfg = stream_sampler::runtime::RuntimeConfig::new(opts.shards);
        match stream_sampler::gigascope::run_plan_sharded(
            Box::new(SelectionNode::pass_all()),
            make,
            &cfg,
            packets,
        ) {
            Ok(report) => {
                for w in &report.windows {
                    total_rows += print_window(w, &columns, &opts);
                }
                if !opts.json {
                    for s in &report.shards {
                        eprintln!(
                            "# shard {}: {} tuples, {} windows, {} stalls, {} dropped",
                            s.shard, s.tuples, s.windows, s.stalls, s.dropped
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let mut op = match SamplingOperator::new(spec) {
            Ok(op) => op,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        for pkt in &packets {
            match op.process(&pkt.to_tuple()) {
                Ok(Some(w)) => total_rows += print_window(&w, &columns, &opts),
                Ok(None) => {}
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        match op.finish() {
            Ok(Some(w)) => total_rows += print_window(&w, &columns, &opts),
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if !opts.json {
        eprintln!("# {total_rows} rows total");
    }
}

fn print_window(
    w: &stream_sampler::operator::WindowOutput,
    columns: &[String],
    opts: &Options,
) -> u64 {
    if opts.json {
        // One JSON object per window, rows as arrays of strings.
        let rows: Vec<Vec<String>> =
            w.rows.iter().map(|r| r.values().iter().map(|v| v.to_string()).collect()).collect();
        println!("{}", serde_json_lite(&w.window.to_string(), columns, &rows, &w.stats));
        return w.rows.len() as u64;
    }
    println!(
        "\n== window {} ({} tuples in, {} admitted, {} cleaning phases, {} rows) ==",
        w.window,
        w.stats.tuples,
        w.stats.admitted,
        w.stats.cleaning_phases,
        w.rows.len()
    );
    println!("{}", columns.join("\t"));
    for row in w.rows.iter().take(opts.limit) {
        let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    if w.rows.len() > opts.limit {
        println!("... ({} more rows)", w.rows.len() - opts.limit);
    }
    w.rows.len() as u64
}

/// Tiny hand-rolled JSON encoder for the window record (values are
/// numbers/strings only; strings contain no quotes).
fn serde_json_lite(
    window: &str,
    columns: &[String],
    rows: &[Vec<String>],
    stats: &stream_sampler::operator::WindowStats,
) -> String {
    let cols = columns.iter().map(|c| format!("\"{c}\"")).collect::<Vec<_>>().join(",");
    let rows = rows
        .iter()
        .map(|r| {
            let cells = r.iter().map(|v| format!("\"{v}\"")).collect::<Vec<_>>().join(",");
            format!("[{cells}]")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"window\":\"{window}\",\"columns\":[{cols}],\"rows\":[{rows}],\
         \"tuples\":{},\"admitted\":{},\"cleaning_phases\":{}}}",
        stats.tuples, stats.admitted, stats.cleaning_phases
    )
}
