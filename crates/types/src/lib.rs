//! # sso-types
//!
//! The row model shared by every crate in the `stream-sampler` workspace:
//! dynamically typed [`Value`]s, positional [`Tuple`]s, and named, ordered
//! [`Schema`]s with Gigascope-style *ordered attribute* annotations.
//!
//! The paper's substrate (Gigascope) compiles queries against a packet
//! schema such as `PKT(time increasing, srcIP, destIP, len)`. The `time`
//! attribute being marked `increasing` is what drives window semantics:
//! a query's evaluation window closes whenever an ordered group-by
//! expression changes value. [`Schema`] carries that annotation via
//! [`Ordering`].
//!
//! The concrete packet record used throughout the evaluation lives in
//! [`packet`], together with the canonical `PKT` schema.

pub mod error;
pub mod packet;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod wire;

pub use error::TypeError;
pub use packet::{format_ipv4, parse_ipv4, Packet, Protocol};
pub use schema::{Field, FieldType, Ordering, Schema};
pub use tuple::Tuple;
pub use value::{Value, ValueKind};
