//! Quickstart: compile the paper's dynamic subset-sum sampling query
//! from text and run it over a synthetic bursty feed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stream_sampler::prelude::*;

fn main() {
    // The paper's §6.1 query: collect ~100 weight-aware packet samples
    // per 20-second window, such that sums over any subset of the
    // samples estimate the true subset sums.
    let query = "
        SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
        FROM PKT
        WHERE ssample(len, 100) = TRUE
        GROUP BY time/20 as tb, srcIP, destIP, uts
        HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(len)) = TRUE";

    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard())
        .expect("the paper's query compiles");

    // 60 seconds of the bursty research-center feed (5k-15k pkt/s).
    let packets = research_feed(7).take_seconds(60);
    println!("feed: {} packets over 60s", packets.len());

    // Ground truth, for comparison.
    let mut truth = std::collections::BTreeMap::<u64, u64>::new();
    for p in &packets {
        *truth.entry(p.time() / 20).or_default() += p.len as u64;
    }

    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();

    println!("{:<6} {:>9} {:>14} {:>14} {:>7}", "window", "samples", "estimate", "actual", "err%");
    for w in &windows {
        let tb = w.window.get(0).as_u64().unwrap();
        let estimate: f64 = w.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
        let actual = *truth.get(&tb).unwrap_or(&0) as f64;
        let err = if actual > 0.0 { 100.0 * (estimate - actual) / actual } else { 0.0 };
        println!("{:<6} {:>9} {:>14.0} {:>14.0} {:>6.2}%", tb, w.rows.len(), estimate, actual, err);
    }

    // Show a few sampled packets from the last window.
    if let Some(w) = windows.last() {
        println!("\nsample rows from window {} (srcIP -> destIP, adjusted bytes):", w.window);
        for row in w.rows.iter().take(5) {
            println!(
                "  {} -> {}  {:.0}",
                format_ipv4(row.get(1).as_u64().unwrap() as u32),
                format_ipv4(row.get(2).as_u64().unwrap() as u32),
                row.get(3).as_f64().unwrap()
            );
        }
    }
}
