//! # sso-faults
//!
//! Seeded, replayable fault plans for the stream-sampler runtime.
//!
//! The paper's §7.1 production lesson is that overload and partial
//! failure must degrade the sample *predictably*. Proving that our
//! runtime actually does so requires injecting the failures on demand,
//! deterministically, so a run under faults can be replayed bit-for-bit
//! and compared against a fault-free reference. A [`FaultPlan`] is that
//! injection schedule: a seed plus an explicit event list, serialized in
//! a line-based text format (`sso run --fault-plan FILE`) or generated
//! from a seed alone (`--fault-seed N`).
//!
//! Two classes of event exist, matching the two places a real deployment
//! hurts:
//!
//! * **Worker faults** ([`FaultEvent::WorkerPanic`],
//!   [`FaultEvent::WorkerStall`]) fire inside a shard worker when its
//!   processed-tuple count reaches the event's trigger. Because the
//!   router's hash-partitioning is deterministic, "shard 3's 1500th
//!   tuple" names the same tuple on every run with the same input.
//! * **Feed faults** ([`FaultEvent::Burst`], [`FaultEvent::Reorder`],
//!   [`FaultEvent::SkewTimestamps`], [`FaultEvent::Malformed`]) rewrite
//!   the packet stream before it enters the pipeline:
//!   [`FaultPlan::perturb_packets`] applies them in a fixed order with
//!   RNG state derived only from the plan seed.
//!
//! The crate depends on nothing but `sso-types` and the vendored `rand`,
//! so every layer (runtime, gigascope, CLI, benches) can use it without
//! dependency cycles.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sso_types::Packet;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Panic shard `shard`'s worker when it is handed its `at_tuple`-th
    /// tuple (1-based over the shard's whole run).
    WorkerPanic {
        /// Shard whose worker panics.
        shard: usize,
        /// 1-based processed-tuple trigger.
        at_tuple: u64,
    },
    /// Stall shard `shard`'s worker for `millis` before it processes its
    /// `at_tuple`-th tuple — a slow consumer that backs up its ring.
    WorkerStall {
        /// Shard whose worker sleeps.
        shard: usize,
        /// 1-based processed-tuple trigger.
        at_tuple: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Duplicate the `at_packet`-th packet (0-based) `copies` times in
    /// place — a ring-overflow burst concentrated on one instant.
    Burst {
        /// 0-based packet index to duplicate.
        at_packet: u64,
        /// Number of extra copies inserted.
        copies: u64,
    },
    /// Shuffle packets within consecutive chunks of `window` packets
    /// (seeded) — bounded out-of-order delivery.
    Reorder {
        /// Chunk length within which packets may be reordered.
        window: u64,
    },
    /// Shift the timestamps of `len` packets starting at `at_packet` by
    /// `offset_ns` (saturating) — skewed clocks that straddle window
    /// boundaries.
    SkewTimestamps {
        /// 0-based first packet affected.
        at_packet: u64,
        /// Number of consecutive packets affected.
        len: u64,
        /// Signed nanosecond shift.
        offset_ns: i64,
    },
    /// Zero out the length and ports of every `every`-th packet —
    /// malformed captures the operator must survive (weight-0 tuples).
    Malformed {
        /// Period: packet indices divisible by this are malformed.
        every: u64,
    },
    /// Panic router lane `router` when it is handed its `at_tuple`-th
    /// segment tuple (1-based over the lane's input segment). The
    /// supervisor quarantines the lane for the current window — its
    /// unrouted tuples become `rt.router_uncovered` mass — and respawns
    /// it at the next window boundary.
    RouterPanic {
        /// Router lane that panics.
        router: usize,
        /// 1-based segment-tuple trigger.
        at_tuple: u64,
    },
    /// Stall router lane `router` for `millis` before it routes its
    /// `at_tuple`-th segment tuple — a slow producer that starves its
    /// rings (timing-only: output is unchanged).
    RouterStall {
        /// Router lane that sleeps.
        router: usize,
        /// 1-based segment-tuple trigger.
        at_tuple: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Kill the whole process (equivalent) after the router has
    /// dispatched `at_tuple` tuples: routing stops, workers abandon
    /// their open windows, and nothing is merged or published. Only
    /// durable state (`sso-store` checkpoints + WAL) survives; the run
    /// is then resumed with `sso recover`.
    Crash {
        /// 1-based globally-routed-tuple trigger.
        at_tuple: u64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::WorkerPanic { shard, at_tuple } => {
                write!(f, "panic shard={shard} at={at_tuple}")
            }
            FaultEvent::WorkerStall { shard, at_tuple, millis } => {
                write!(f, "stall shard={shard} at={at_tuple} ms={millis}")
            }
            FaultEvent::RouterPanic { router, at_tuple } => {
                write!(f, "panic router={router} at={at_tuple}")
            }
            FaultEvent::RouterStall { router, at_tuple, millis } => {
                write!(f, "stall router={router} at={at_tuple} ms={millis}")
            }
            FaultEvent::Burst { at_packet, copies } => {
                write!(f, "burst at={at_packet} copies={copies}")
            }
            FaultEvent::Reorder { window } => write!(f, "reorder window={window}"),
            FaultEvent::SkewTimestamps { at_packet, len, offset_ns } => {
                write!(f, "skew at={at_packet} len={len} offset={offset_ns}")
            }
            FaultEvent::Malformed { every } => write!(f, "malformed every={every}"),
            FaultEvent::Crash { at_tuple } => write!(f, "crash at={at_tuple}"),
        }
    }
}

/// A complete, replayable injection schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for every randomized perturbation (reorder shuffles). Two
    /// plans with equal seeds and events perturb identically.
    pub seed: u64,
    /// The events, in declaration order.
    pub events: Vec<FaultEvent>,
}

/// A plan parse failure: line number (1-based) plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line of the offending directive.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

fn field<T: std::str::FromStr>(
    fields: &[(&str, &str)],
    key: &str,
    line: usize,
) -> Result<T, PlanParseError> {
    let raw = fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| PlanParseError { line, message: format!("missing field `{key}=`") })?;
    raw.parse()
        .map_err(|_| PlanParseError { line, message: format!("bad value `{raw}` for `{key}=`") })
}

impl FaultPlan {
    /// A plan with no events (the null injection).
    pub fn empty(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new() }
    }

    /// Generate a deterministic plan from a seed alone: one worker panic,
    /// one worker stall, one burst, one reorder, one timestamp skew —
    /// the matrix the `check.sh` fault stage replays. `shards` bounds the
    /// shard indices drawn.
    pub fn from_seed(seed: u64, shards: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let shards = shards.max(1);
        let events = vec![
            FaultEvent::WorkerPanic {
                shard: rng.gen_range(0..shards),
                at_tuple: rng.gen_range(200..2000u64),
            },
            FaultEvent::WorkerStall {
                shard: rng.gen_range(0..shards),
                at_tuple: rng.gen_range(100..1000u64),
                millis: rng.gen_range(5..40u64),
            },
            FaultEvent::Burst {
                at_packet: rng.gen_range(0..4000u64),
                copies: rng.gen_range(1000..5000u64),
            },
            FaultEvent::Reorder { window: rng.gen_range(2..64u64) },
            FaultEvent::SkewTimestamps {
                at_packet: rng.gen_range(0..4000u64),
                len: rng.gen_range(10..300u64),
                offset_ns: rng.gen_range(0..4_000_000_000i64) - 2_000_000_000,
            },
        ];
        FaultPlan { seed, events }
    }

    /// Parse the line-based text format produced by [`FaultPlan`]'s
    /// `Display`. Blank lines and `#` comments are ignored; a `seed N`
    /// line sets the seed; every other line is one event directive.
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let mut words = stripped.split_whitespace();
            let verb = words.next().expect("non-empty line has a first word");
            let fields: Vec<(&str, &str)> =
                words.filter_map(|w| w.split_once('=')).collect::<Vec<_>>();
            let event = match verb {
                "seed" => {
                    plan.seed = stripped
                        .split_whitespace()
                        .nth(1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| PlanParseError {
                            line,
                            message: "seed needs one integer argument".into(),
                        })?;
                    continue;
                }
                // `panic`/`stall` address either a worker (`shard=S`) or a
                // router lane (`router=R`); the target field picks the arm.
                "panic" if fields.iter().any(|(k, _)| *k == "router") => FaultEvent::RouterPanic {
                    router: field(&fields, "router", line)?,
                    at_tuple: field(&fields, "at", line)?,
                },
                "panic" => FaultEvent::WorkerPanic {
                    shard: field(&fields, "shard", line)?,
                    at_tuple: field(&fields, "at", line)?,
                },
                "stall" if fields.iter().any(|(k, _)| *k == "router") => FaultEvent::RouterStall {
                    router: field(&fields, "router", line)?,
                    at_tuple: field(&fields, "at", line)?,
                    millis: field(&fields, "ms", line)?,
                },
                "stall" => FaultEvent::WorkerStall {
                    shard: field(&fields, "shard", line)?,
                    at_tuple: field(&fields, "at", line)?,
                    millis: field(&fields, "ms", line)?,
                },
                "burst" => FaultEvent::Burst {
                    at_packet: field(&fields, "at", line)?,
                    copies: field(&fields, "copies", line)?,
                },
                "reorder" => FaultEvent::Reorder { window: field(&fields, "window", line)? },
                "skew" => FaultEvent::SkewTimestamps {
                    at_packet: field(&fields, "at", line)?,
                    len: field(&fields, "len", line)?,
                    offset_ns: field(&fields, "offset", line)?,
                },
                "malformed" => FaultEvent::Malformed { every: field(&fields, "every", line)? },
                "crash" => FaultEvent::Crash { at_tuple: field(&fields, "at", line)? },
                other => {
                    return Err(PlanParseError {
                        line,
                        message: format!("unknown directive `{other}`"),
                    })
                }
            };
            plan.events.push(event);
        }
        Ok(plan)
    }

    /// The worker-fault schedule for one shard: triggers sorted by
    /// tuple count, consumed front to back by
    /// [`WorkerFaultSchedule::check`].
    pub fn worker_schedule(&self, shard: usize) -> WorkerFaultSchedule {
        let mut events: Vec<(u64, WorkerFault)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::WorkerPanic { shard: s, at_tuple } if s == shard => {
                    Some((at_tuple, WorkerFault::Panic))
                }
                FaultEvent::WorkerStall { shard: s, at_tuple, millis } if s == shard => {
                    Some((at_tuple, WorkerFault::Stall { millis }))
                }
                _ => None,
            })
            .collect();
        events.sort_by_key(|(at, _)| *at);
        WorkerFaultSchedule { events, next: 0 }
    }

    /// The router-fault schedule for one router lane: triggers sorted
    /// by segment-tuple count, consumed front to back by
    /// [`WorkerFaultSchedule::check`]. Router lanes reuse the worker
    /// schedule machinery — the trigger counter is the lane's 1-based
    /// position within its input segment.
    pub fn router_schedule(&self, router: usize) -> WorkerFaultSchedule {
        let mut events: Vec<(u64, WorkerFault)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RouterPanic { router: r, at_tuple } if r == router => {
                    Some((at_tuple, WorkerFault::Panic))
                }
                FaultEvent::RouterStall { router: r, at_tuple, millis } if r == router => {
                    Some((at_tuple, WorkerFault::Stall { millis }))
                }
                _ => None,
            })
            .collect();
        events.sort_by_key(|(at, _)| *at);
        WorkerFaultSchedule { events, next: 0 }
    }

    /// The process-crash trigger, if the plan has one (the earliest
    /// wins when several are declared).
    pub fn crash_at(&self) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Crash { at_tuple } => Some(at_tuple),
                _ => None,
            })
            .min()
    }

    /// Whether any event targets a worker (cheap gate for the hot loop).
    pub fn has_worker_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::WorkerPanic { .. } | FaultEvent::WorkerStall { .. }))
    }

    /// Whether any event targets a router lane.
    pub fn has_router_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::RouterPanic { .. } | FaultEvent::RouterStall { .. }))
    }

    /// Apply every feed-level event to `packets`, deterministically:
    /// skews first (index-addressed), then malformed marking, then
    /// bursts (which change indexing), then the seeded reorder shuffle.
    pub fn perturb_packets(&self, mut packets: Vec<Packet>) -> Vec<Packet> {
        for e in &self.events {
            if let FaultEvent::SkewTimestamps { at_packet, len, offset_ns } = *e {
                let start = at_packet as usize;
                let end = start.saturating_add(len as usize).min(packets.len());
                for p in packets.get_mut(start..end).unwrap_or_default() {
                    p.uts = if offset_ns >= 0 {
                        p.uts.saturating_add(offset_ns as u64)
                    } else {
                        p.uts.saturating_sub(offset_ns.unsigned_abs())
                    };
                }
            }
        }
        for e in &self.events {
            if let FaultEvent::Malformed { every } = *e {
                let every = (every as usize).max(1);
                for p in packets.iter_mut().step_by(every) {
                    p.len = 0;
                    p.src_port = 0;
                    p.dest_port = 0;
                }
            }
        }
        for e in &self.events {
            if let FaultEvent::Burst { at_packet, copies } = *e {
                let at = at_packet as usize;
                if at < packets.len() {
                    let burst = packets[at];
                    let tail = packets.split_off(at);
                    packets.extend(std::iter::repeat_n(burst, copies as usize));
                    packets.extend(tail);
                }
            }
        }
        for e in &self.events {
            if let FaultEvent::Reorder { window } = *e {
                let window = (window as usize).max(2);
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_fa17);
                for chunk in packets.chunks_mut(window) {
                    // Fisher–Yates within the chunk: bounded reordering.
                    for i in (1..chunk.len()).rev() {
                        let j = rng.gen_range(0..=i);
                        chunk.swap(i, j);
                    }
                }
            }
        }
        packets
    }

    /// Share the plan for the runtime config.
    pub fn into_shared(self) -> Arc<FaultPlan> {
        Arc::new(self)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# sso fault plan")?;
        writeln!(f, "seed {}", self.seed)?;
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// A worker-side fault, delivered by [`WorkerFaultSchedule::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Panic now (the supervisor's quarantine path is exercised).
    Panic,
    /// Sleep before processing the trigger tuple.
    Stall {
        /// Stall length in milliseconds.
        millis: u64,
    },
}

impl WorkerFault {
    /// Trip this fault: sleep for a stall, panic for a panic. Call from
    /// inside the worker's supervised section.
    pub fn trip(self, shard: usize, at_tuple: u64) {
        match self {
            WorkerFault::Stall { millis } => std::thread::sleep(Duration::from_millis(millis)),
            WorkerFault::Panic => {
                panic!("injected fault: shard {shard} panics at tuple {at_tuple}")
            }
        }
    }

    /// Trip this fault inside a router lane's supervised section: sleep
    /// for a stall, panic for a panic.
    pub fn trip_router(self, router: usize, at_tuple: u64) {
        match self {
            WorkerFault::Stall { millis } => std::thread::sleep(Duration::from_millis(millis)),
            WorkerFault::Panic => {
                panic!("injected fault: router {router} panics at tuple {at_tuple}")
            }
        }
    }
}

/// One shard's triggers, consumed in tuple-count order. `check` is one
/// compare when no trigger is pending, so it can sit in the per-tuple
/// hot loop.
#[derive(Debug, Clone, Default)]
pub struct WorkerFaultSchedule {
    events: Vec<(u64, WorkerFault)>,
    next: usize,
}

impl WorkerFaultSchedule {
    /// No pending triggers at all?
    pub fn is_empty(&self) -> bool {
        self.next >= self.events.len()
    }

    /// The fault (if any) scheduled for the `tuple_count`-th tuple.
    /// Triggers whose count has already passed fire immediately (a shard
    /// may receive fewer tuples between triggers than the plan guessed).
    #[inline]
    pub fn check(&mut self, tuple_count: u64) -> Option<WorkerFault> {
        let (at, fault) = *self.events.get(self.next)?;
        if tuple_count >= at {
            self.next += 1;
            Some(fault)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_types::Protocol;

    fn pkts(n: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet {
                uts: i * 1_000_000 + 1,
                src_ip: i as u32,
                dest_ip: 1,
                src_port: 10,
                dest_port: 20,
                proto: Protocol::Udp,
                len: 100,
            })
            .collect()
    }

    #[test]
    fn display_parse_round_trip() {
        let plan = FaultPlan {
            seed: 42,
            events: vec![
                FaultEvent::WorkerPanic { shard: 3, at_tuple: 1500 },
                FaultEvent::WorkerStall { shard: 1, at_tuple: 900, millis: 20 },
                FaultEvent::RouterPanic { router: 1, at_tuple: 700 },
                FaultEvent::RouterStall { router: 0, at_tuple: 350, millis: 15 },
                FaultEvent::Burst { at_packet: 10_000, copies: 3000 },
                FaultEvent::Reorder { window: 64 },
                FaultEvent::SkewTimestamps { at_packet: 5000, len: 200, offset_ns: -2_000_000_000 },
                FaultEvent::Malformed { every: 997 },
                FaultEvent::Crash { at_tuple: 40_000 },
            ],
        };
        let text = plan.to_string();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn crash_at_takes_the_earliest_trigger() {
        let plan = FaultPlan::parse("crash at=900\ncrash at=500\n").unwrap();
        assert_eq!(plan.crash_at(), Some(500));
        assert_eq!(FaultPlan::empty(0).crash_at(), None);
        assert!(!plan.has_worker_faults(), "crash is a router-level fault");
    }

    #[test]
    fn parse_reports_line_and_reason() {
        let err = FaultPlan::parse("seed 1\npanic shard=0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("at="), "{err}");
        let err = FaultPlan::parse("warp speed=9\n").unwrap_err();
        assert!(err.message.contains("warp"), "{err}");
    }

    #[test]
    fn from_seed_is_deterministic_and_in_range() {
        let a = FaultPlan::from_seed(7, 16);
        let b = FaultPlan::from_seed(7, 16);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::from_seed(8, 16));
        for e in &a.events {
            match *e {
                FaultEvent::WorkerPanic { shard, .. } | FaultEvent::WorkerStall { shard, .. } => {
                    assert!(shard < 16)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn worker_schedule_fires_in_order_and_once() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent::WorkerStall { shard: 2, at_tuple: 10, millis: 1 },
                FaultEvent::WorkerPanic { shard: 2, at_tuple: 5 },
                FaultEvent::WorkerPanic { shard: 0, at_tuple: 1 },
            ],
        };
        let mut sched = plan.worker_schedule(2);
        assert!(!sched.is_empty());
        assert_eq!(sched.check(4), None);
        assert_eq!(sched.check(5), Some(WorkerFault::Panic));
        // Triggers already passed fire on the next check.
        assert_eq!(sched.check(12), Some(WorkerFault::Stall { millis: 1 }));
        assert_eq!(sched.check(13), None);
        assert!(sched.is_empty());
        assert!(plan.worker_schedule(1).is_empty());
    }

    #[test]
    fn router_events_parse_by_target_field() {
        let plan = FaultPlan::parse("panic router=2 at=41\nstall router=0 at=9 ms=7\n").unwrap();
        assert_eq!(
            plan.events,
            vec![
                FaultEvent::RouterPanic { router: 2, at_tuple: 41 },
                FaultEvent::RouterStall { router: 0, at_tuple: 9, millis: 7 },
            ]
        );
        assert!(plan.has_router_faults());
        assert!(!plan.has_worker_faults(), "router events are not worker events");
        // A panic with neither target field is rejected at the worker arm.
        let err = FaultPlan::parse("panic at=5\n").unwrap_err();
        assert!(err.message.contains("shard="), "{err}");
    }

    #[test]
    fn router_schedule_fires_in_order_and_once() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent::RouterStall { router: 1, at_tuple: 20, millis: 1 },
                FaultEvent::RouterPanic { router: 1, at_tuple: 6 },
                FaultEvent::RouterPanic { router: 0, at_tuple: 3 },
                FaultEvent::WorkerPanic { shard: 1, at_tuple: 2 },
            ],
        };
        let mut sched = plan.router_schedule(1);
        assert!(!sched.is_empty());
        assert_eq!(sched.check(5), None);
        assert_eq!(sched.check(6), Some(WorkerFault::Panic));
        assert_eq!(sched.check(25), Some(WorkerFault::Stall { millis: 1 }));
        assert!(sched.is_empty());
        assert!(plan.router_schedule(2).is_empty());
        // Worker events never leak into the router schedule and vice versa.
        let mut workers = plan.worker_schedule(1);
        assert_eq!(workers.check(2), Some(WorkerFault::Panic));
        assert!(workers.is_empty());
    }

    proptest::proptest! {
        /// Any event list survives a Display -> parse round trip.
        #[test]
        fn display_parse_round_trip_prop(
            seed in proptest::prelude::any::<u64>(),
            events in proptest::collection::vec(arb_event(), 0..12),
        ) {
            let plan = FaultPlan { seed, events };
            proptest::prop_assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        }
    }

    fn arb_event() -> impl proptest::strategy::Strategy<Value = FaultEvent> {
        use proptest::prelude::*;
        prop_oneof![
            (0usize..64, 1u64..100_000)
                .prop_map(|(shard, at_tuple)| FaultEvent::WorkerPanic { shard, at_tuple }),
            (0usize..64, 1u64..100_000, 1u64..5_000).prop_map(|(shard, at_tuple, millis)| {
                FaultEvent::WorkerStall { shard, at_tuple, millis }
            }),
            (0usize..64, 1u64..100_000)
                .prop_map(|(router, at_tuple)| FaultEvent::RouterPanic { router, at_tuple }),
            (0usize..64, 1u64..100_000, 1u64..5_000).prop_map(|(router, at_tuple, millis)| {
                FaultEvent::RouterStall { router, at_tuple, millis }
            }),
            (0u64..100_000, 1u64..10_000)
                .prop_map(|(at_packet, copies)| FaultEvent::Burst { at_packet, copies }),
            (2u64..1024).prop_map(|window| FaultEvent::Reorder { window }),
            (0u64..100_000, 1u64..10_000, proptest::prelude::any::<i64>()).prop_map(
                |(at_packet, len, offset_ns)| FaultEvent::SkewTimestamps {
                    at_packet,
                    len,
                    offset_ns
                }
            ),
            (1u64..100_000).prop_map(|every| FaultEvent::Malformed { every }),
            (1u64..1_000_000).prop_map(|at_tuple| FaultEvent::Crash { at_tuple }),
        ]
    }

    #[test]
    fn burst_duplicates_in_place() {
        let plan =
            FaultPlan { seed: 0, events: vec![FaultEvent::Burst { at_packet: 2, copies: 3 }] };
        let out = plan.perturb_packets(pkts(5));
        assert_eq!(out.len(), 8);
        assert!(out[2..6].iter().all(|p| p.src_ip == 2), "copies sit at the burst point");
        assert_eq!(out[6].src_ip, 3, "tail preserved");
    }

    #[test]
    fn skew_shifts_and_saturates() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::SkewTimestamps {
                at_packet: 1,
                len: 2,
                offset_ns: -5_000_000_000,
            }],
        };
        let out = plan.perturb_packets(pkts(4));
        assert_eq!(out[0].uts, 1);
        assert_eq!(out[1].uts, 0, "negative shift saturates at zero");
        assert_eq!(out[2].uts, 0);
        assert_eq!(out[3].uts, 3_000_001);
    }

    #[test]
    fn reorder_is_seeded_and_bounded() {
        let plan = FaultPlan { seed: 9, events: vec![FaultEvent::Reorder { window: 4 }] };
        let a = plan.perturb_packets(pkts(16));
        let b = plan.perturb_packets(pkts(16));
        assert_eq!(a, b, "same seed, same shuffle");
        for (chunk_idx, chunk) in a.chunks(4).enumerate() {
            let mut ips: Vec<u32> = chunk.iter().map(|p| p.src_ip).collect();
            ips.sort_unstable();
            let base = chunk_idx as u32 * 4;
            assert_eq!(ips, (base..base + 4).collect::<Vec<_>>(), "reorder escaped its chunk");
        }
        let other = FaultPlan { seed: 10, events: plan.events.clone() };
        assert_ne!(other.perturb_packets(pkts(16)), a, "different seed, different shuffle");
    }

    #[test]
    fn malformed_zeroes_periodically() {
        let plan = FaultPlan { seed: 0, events: vec![FaultEvent::Malformed { every: 3 }] };
        let out = plan.perturb_packets(pkts(7));
        for (i, p) in out.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!((p.len, p.src_port), (0, 0));
            } else {
                assert_eq!(p.len, 100);
            }
        }
    }
}
