//! **§7.1 in-text sweep — sample size.**
//!
//! "We repeated these experiments to collect 100 and 10,000 samples per
//! period, and obtained nearly identical results." This binary runs the
//! Figure 2 accuracy experiment at N ∈ {100, 1000, 10000} and reports
//! the relaxed/non-relaxed accuracy contrast at each size.

use sso_bench::{header, maybe_json, run_subset_sum, SsWindow};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_netgen::research_feed;

#[derive(serde::Serialize)]
struct Row {
    n: usize,
    relaxed_mean_abs_err_pct: f64,
    nonrelaxed_mean_abs_err_pct: f64,
    relaxed_worst_abs_err_pct: f64,
    nonrelaxed_worst_abs_err_pct: f64,
}

fn err_stats(series: &[SsWindow]) -> (f64, f64) {
    let errs: Vec<f64> = series
        .iter()
        .filter(|w| w.actual > 0)
        .map(|w| 100.0 * (w.estimate - w.actual as f64).abs() / w.actual as f64)
        .collect();
    let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    let worst = errs.iter().cloned().fold(0.0, f64::max);
    (mean, worst)
}

fn main() {
    const WINDOW: u64 = 20;
    const SECONDS: u64 = 600;
    let packets = research_feed(0xf162).take_seconds(SECONDS);

    let mut rows = Vec::new();
    for n in [100usize, 1000, 10_000] {
        let relaxed = run_subset_sum(
            &packets,
            WINDOW,
            SubsetSumOpConfig { target: n, initial_z: 1.0, ..Default::default() },
        )
        .unwrap();
        let nonrelaxed = run_subset_sum(
            &packets,
            WINDOW,
            SubsetSumOpConfig { target: n, initial_z: 1.0, ..Default::default() }.non_relaxed(),
        )
        .unwrap();
        let (rx_mean, rx_worst) = err_stats(&relaxed);
        let (nr_mean, nr_worst) = err_stats(&nonrelaxed);
        rows.push(Row {
            n,
            relaxed_mean_abs_err_pct: rx_mean,
            nonrelaxed_mean_abs_err_pct: nr_mean,
            relaxed_worst_abs_err_pct: rx_worst,
            nonrelaxed_worst_abs_err_pct: nr_worst,
        });
    }

    if maybe_json(&rows) {
        return;
    }
    header("§7.1 sweep: accuracy at N ∈ {100, 1000, 10000} (20s periods)");
    println!(
        "{:>8} {:>16} {:>18} {:>16} {:>18}",
        "N", "relaxed mean|e|%", "nonrelaxed mean|e|%", "relaxed worst%", "nonrelaxed worst%"
    );
    for r in &rows {
        println!(
            "{:>8} {:>16.2} {:>18.2} {:>16.2} {:>18.2}",
            r.n,
            r.relaxed_mean_abs_err_pct,
            r.nonrelaxed_mean_abs_err_pct,
            r.relaxed_worst_abs_err_pct,
            r.nonrelaxed_worst_abs_err_pct
        );
    }
    println!(
        "\npaper's claim: the relaxed-vs-non-relaxed picture is nearly identical at \
         every sample size — relaxation fixes accuracy at 100, 1000, and 10000 alike."
    );
}
