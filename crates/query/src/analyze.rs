//! Static semantic analysis: scope resolution, type inference, arity
//! checking, window-safety, and paper-specific lints — all before
//! planning, and without stopping at the first problem.
//!
//! [`analyze`] walks the whole query and returns every finding as a
//! [`Diagnostic`] with a stable code and a byte-offset span:
//!
//! * **Scope resolution** mirrors the planner's clause scopes: GROUP BY
//!   expressions see only columns and scalars; tuple-phase clauses
//!   (WHERE, CLEANING WHEN, aggregate arguments) see columns, group-by
//!   variables, SFUNs and superaggregates; group-phase clauses (SELECT,
//!   HAVING, CLEANING BY) see group-by variables, aggregates,
//!   superaggregates and SFUNs; superaggregate keys must be group-by
//!   variables.
//! * **Type inference** runs over [`ValueKind`]s: column kinds come
//!   from the schema, group-by variable kinds from their defining
//!   expressions, function result kinds from registered
//!   [`Signature`]s.
//! * **Window safety** (§3): a query with CLEANING clauses samples
//!   within a window, so some GROUP BY expression must reference an
//!   *ordered* schema attribute.
//! * **Lints**: constant CLEANING WHEN predicates (W001), cleaning
//!   that never advances its sampling threshold (W002), vacuous
//!   heavy-hitter bounds (W003), truthiness-coerced predicates (W004),
//!   duplicate output columns (W005).

use sso_core::sfun::Signature;
use sso_types::{Schema, ValueKind};

use crate::ast::{AstExpr, BinAstOp, ExprKind, Query, Span};
use crate::diag::{Code, Diagnostic};
use crate::plan::{references_ordered_column, PlannerConfig};

/// Analyze a parsed query against a schema and the registered SFUN
/// libraries. Returns every diagnostic found, in source order per
/// clause; an empty vector means the query is clean.
pub fn analyze(query: &Query, schema: &Schema, config: &PlannerConfig) -> Vec<Diagnostic> {
    let mut a = Analyzer { schema, config, gb: Vec::new(), diags: Vec::new() };
    a.run(query);
    dedupe(a.diags)
}

/// Collapse duplicate `(code, span)` emissions, keeping first-found
/// order. A clause visited by both the scope pass and a lint pass can
/// report the same problem twice; one report is enough.
pub(crate) fn dedupe(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut seen: Vec<(Code, Span)> = Vec::with_capacity(diags.len());
    let mut out = Vec::with_capacity(diags.len());
    for d in diags {
        let key = (d.code, d.span);
        if !seen.contains(&key) {
            seen.push(key);
            out.push(d);
        }
    }
    out
}

/// Which clause an expression appears in; controls name resolution.
/// Mirrors the planner's scopes exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// A GROUP BY expression.
    GroupBy,
    /// WHERE / CLEANING WHEN / aggregate arguments.
    Tuple,
    /// SELECT / HAVING / CLEANING BY.
    Group,
    /// The key expression of a superaggregate.
    SuperKey,
}

impl Scope {
    fn name(self) -> &'static str {
        match self {
            Scope::GroupBy => "GROUP BY",
            Scope::Tuple => "a tuple-phase clause",
            Scope::Group => "a group-phase clause",
            Scope::SuperKey => "a superaggregate key",
        }
    }
}

/// A resolved group-by variable.
struct GbVar {
    name: String,
    kind: ValueKind,
    /// Does its defining expression reference an ordered attribute?
    windowed: bool,
}

struct Analyzer<'a> {
    schema: &'a Schema,
    config: &'a PlannerConfig,
    gb: Vec<GbVar>,
    diags: Vec<Diagnostic>,
}

/// The `do_clean` SFUNs paired with the `clean_with` call that advances
/// their sampling threshold (subset-sum §4.1, reservoir §4.2, distinct
/// §4.3).
const CLEAN_PAIRS: &[(&str, &str)] =
    &[("ssdo_clean", "ssclean_with"), ("rsdo_clean", "rsclean_with"), ("ddo_clean", "dclean_with")];

impl<'a> Analyzer<'a> {
    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    fn run(&mut self, query: &Query) {
        // GROUP BY first: later clauses resolve against its variables.
        if query.group_by.is_empty() {
            self.push(Diagnostic::new(Code::E009, Span::DUMMY, "GROUP BY list is empty"));
        }
        for (i, item) in query.group_by.iter().enumerate() {
            let name = item.name(i);
            if self.gb.iter().any(|v| v.name == name) {
                self.push(
                    Diagnostic::new(
                        Code::E001,
                        item.expr.span,
                        format!("duplicate group-by variable name `{name}`"),
                    )
                    .with_help("rename one of the expressions with `AS <other-name>`"),
                );
            }
            let kind = self.infer(&item.expr, Scope::GroupBy);
            let windowed = references_ordered_column(&item.expr, self.schema);
            self.gb.push(GbVar { name, kind, windowed });
        }

        // SUPERGROUP names must be group-by variables.
        for name in &query.supergroup {
            if !self.gb.iter().any(|v| v.name == name.text) {
                self.push(
                    Diagnostic::new(
                        Code::E011,
                        name.span,
                        format!("SUPERGROUP variable `{name}` is not a group-by variable"),
                    )
                    .with_help("SUPERGROUP lists a subset of the GROUP BY variable names"),
                );
            }
        }

        // Predicates, each in its clause scope.
        if let Some(e) = &query.where_clause {
            self.check_predicate(e, "WHERE", Scope::Tuple);
        }
        if let Some(e) = &query.having {
            self.check_predicate(e, "HAVING", Scope::Group);
        }
        if let Some(e) = &query.cleaning_when {
            self.check_predicate(e, "CLEANING WHEN", Scope::Tuple);
        }
        if let Some(e) = &query.cleaning_by {
            self.check_predicate(e, "CLEANING BY", Scope::Group);
        }

        // SELECT expressions and duplicate output names.
        let mut out_names: Vec<String> = Vec::new();
        for (i, item) in query.select.iter().enumerate() {
            self.infer(&item.expr, Scope::Group);
            let name = item.output_name(i);
            if out_names.contains(&name) {
                self.push(
                    Diagnostic::new(
                        Code::W005,
                        item.expr.span,
                        format!("duplicate output column name `{name}`"),
                    )
                    .with_help("rename with `AS <other-name>` to keep both columns"),
                );
            }
            out_names.push(name);
        }

        self.check_cleaning_pairing(query);
        self.check_window_safety(query);
        self.lint_constant_cleaning(query);
        self.lint_threshold_update(query);
        self.lint_heavy_hitter(query);
    }

    /// E012: CLEANING WHEN and CLEANING BY only make sense together.
    fn check_cleaning_pairing(&mut self, query: &Query) {
        match (&query.cleaning_when, &query.cleaning_by) {
            (Some(when), None) => self.push(
                Diagnostic::new(Code::E012, when.span, "CLEANING WHEN without CLEANING BY")
                    .with_help(
                        "CLEANING WHEN decides *when* to clean; add CLEANING BY to say \
                     which tuples survive",
                    ),
            ),
            (None, Some(by)) => self.push(
                Diagnostic::new(Code::E012, by.span, "CLEANING BY without CLEANING WHEN")
                    .with_help(
                        "CLEANING BY says which tuples survive a cleaning pass; add \
                         CLEANING WHEN to say when cleaning runs",
                    ),
            ),
            _ => {}
        }
    }

    /// E010 (§3): a sampling query cleans within a window, so some
    /// GROUP BY expression must reference an ordered attribute.
    fn check_window_safety(&mut self, query: &Query) {
        let cleans = query.cleaning_when.is_some() || query.cleaning_by.is_some();
        if !cleans || self.gb.iter().any(|v| v.windowed) {
            return;
        }
        let span = query
            .cleaning_when
            .as_ref()
            .or(query.cleaning_by.as_ref())
            .map(|e| e.span)
            .unwrap_or(Span::DUMMY);
        let ordered: Vec<&str> = self
            .schema
            .ordered_indices()
            .into_iter()
            .map(|i| self.schema.fields()[i].name.as_str())
            .collect();
        let help = if ordered.is_empty() {
            format!(
                "stream {} has no ordered attribute, so it cannot host a sampling query",
                self.schema.name
            )
        } else {
            format!(
                "group by an expression over an ordered attribute, e.g. `{}/60 as tb`",
                ordered[0]
            )
        };
        self.push(
            Diagnostic::new(
                Code::E010,
                span,
                format!(
                    "sampling query has no window: no GROUP BY expression references an \
                     ordered attribute of {}",
                    self.schema.name
                ),
            )
            .with_help(help),
        );
    }

    /// W001: a CLEANING WHEN predicate that folds to a constant either
    /// never fires or fires on every tuple.
    fn lint_constant_cleaning(&mut self, query: &Query) {
        let Some(when) = &query.cleaning_when else { return };
        match self.pred_truth(when, Scope::Tuple) {
            Some(false) => self.push(
                Diagnostic::new(
                    Code::W001,
                    when.span,
                    "CLEANING WHEN predicate is always false; cleaning never fires",
                )
                .with_help(
                    "the CLEANING clauses are dead code — gate cleaning on an SFUN \
                     such as `ssdo_clean(...)` or a superaggregate bound",
                ),
            ),
            Some(true) => self.push(
                Diagnostic::new(
                    Code::W001,
                    when.span,
                    "CLEANING WHEN predicate is always true; cleaning runs on every tuple",
                )
                .with_help("cleaning on every tuple defeats sampling; test a size bound instead"),
            ),
            None => {}
        }
    }

    /// W002: CLEANING WHEN asks a library's `do_clean` whether to
    /// clean, but CLEANING BY never calls the paired `clean_with`, so
    /// the sampling threshold never advances and cleaning cannot shrink
    /// the sample.
    fn lint_threshold_update(&mut self, query: &Query) {
        let (Some(when), Some(by)) = (&query.cleaning_when, &query.cleaning_by) else {
            return;
        };
        let when_calls = called_functions(when);
        let by_calls = called_functions(by);
        for (do_clean, clean_with) in CLEAN_PAIRS {
            let fired = when_calls.iter().find(|(n, _)| n == do_clean);
            let updated = by_calls.iter().any(|(n, _)| n == clean_with);
            if let (Some((_, _span)), false) = (fired, updated) {
                self.push(
                    Diagnostic::new(
                        Code::W002,
                        by.span,
                        format!(
                            "CLEANING WHEN fires on `{do_clean}` but CLEANING BY never \
                             calls `{clean_with}`; the sampling threshold never advances \
                             and cleaning cannot shrink the sample"
                        ),
                    )
                    .with_help(format!("call `{clean_with}(...)` in CLEANING BY")),
                );
            }
        }
    }

    /// W003: heavy-hitter configurations whose bounds are vacuous — a
    /// bucket width of one (every tuple closes a bucket, ε ≥ 1) or a
    /// HAVING support threshold every group satisfies.
    fn lint_heavy_hitter(&mut self, query: &Query) {
        let mut exprs: Vec<&AstExpr> = Vec::new();
        exprs.extend(query.cleaning_when.iter());
        exprs.extend(query.cleaning_by.iter());
        exprs.extend(query.where_clause.iter());
        for e in exprs {
            walk(e, &mut |node| {
                if let ExprKind::Call { name, superagg: false, args } = &node.kind {
                    if name == "local_count" && args.len() == 1 {
                        if let Some(Const::I(w)) = fold(&args[0]) {
                            if w <= 1 {
                                self.diags.push(
                                    Diagnostic::new(
                                        Code::W003,
                                        node.span,
                                        format!(
                                            "heavy-hitter bucket width {w} is vacuous: \
                                             every tuple closes its own bucket, so the \
                                             frequency-error bound ε = 1/width is useless"
                                        ),
                                    )
                                    .with_help(
                                        "use a bucket width well above 1, e.g. `local_count(100)`",
                                    ),
                                );
                            }
                        }
                    }
                }
            });
        }
        if let Some(having) = &query.having {
            self.lint_vacuous_support(having);
        }
    }

    /// Recurse through the AND branches of a HAVING predicate looking
    /// for `count(*) >= k` comparisons that no group can fail.
    fn lint_vacuous_support(&mut self, e: &AstExpr) {
        if let ExprKind::Binary { op, lhs, rhs } = &e.kind {
            if *op == BinAstOp::And {
                self.lint_vacuous_support(lhs);
                self.lint_vacuous_support(rhs);
                return;
            }
            let vacuous = match (is_count_call(lhs), fold(rhs), fold(lhs), is_count_call(rhs)) {
                // count(*) >= k / count(*) > k
                (true, Some(Const::I(k)), _, _) => match op {
                    BinAstOp::Ge => k <= 1,
                    BinAstOp::Gt => k <= 0,
                    _ => false,
                },
                // k <= count(*) / k < count(*)
                (_, _, Some(Const::I(k)), true) => match op {
                    BinAstOp::Le => k <= 1,
                    BinAstOp::Lt => k <= 0,
                    _ => false,
                },
                _ => false,
            };
            if vacuous {
                self.push(
                    Diagnostic::new(
                        Code::W003,
                        e.span,
                        "support threshold is vacuous: every group has at least one \
                         tuple, so this HAVING comparison filters nothing",
                    )
                    .with_help("raise the count threshold above 1 to select frequent groups"),
                );
            }
        }
    }

    /// Infer a clause predicate and warn (W004) if its type is not
    /// boolean — the runtime coerces via C-style truthiness.
    fn check_predicate(&mut self, e: &AstExpr, clause: &str, scope: Scope) {
        let kind = self.infer(e, scope);
        if !matches!(kind, ValueKind::Bool | ValueKind::Any | ValueKind::Null) {
            self.push(
                Diagnostic::new(
                    Code::W004,
                    e.span,
                    format!(
                        "{clause} predicate has type {kind}; non-boolean values are \
                         coerced (nonzero/non-empty means true)"
                    ),
                )
                .with_help("write an explicit comparison, e.g. `... <> 0`"),
            );
        }
    }

    fn gb_kind(&self, name: &str) -> Option<ValueKind> {
        self.gb.iter().find(|v| v.name == name).map(|v| v.kind)
    }

    /// Infer the kind of an expression in a scope, pushing diagnostics
    /// for every problem found on the way. Returns [`ValueKind::Any`]
    /// where a problem makes the kind unknowable, so one mistake does
    /// not cascade.
    fn infer(&mut self, e: &AstExpr, scope: Scope) -> ValueKind {
        match &e.kind {
            ExprKind::Int(_) => ValueKind::UInt,
            ExprKind::Float(_) => ValueKind::Float,
            ExprKind::Str(_) => ValueKind::Str,
            ExprKind::Bool(_) => ValueKind::Bool,
            ExprKind::Star => {
                self.push(Diagnostic::new(
                    Code::E007,
                    e.span,
                    "`*` is only valid as the argument of count(*) or count_distinct$(*)",
                ));
                ValueKind::Any
            }
            ExprKind::Neg(inner) => {
                let k = self.infer(inner, scope);
                if k == ValueKind::Str {
                    self.push(Diagnostic::new(
                        Code::E008,
                        inner.span,
                        "cannot negate a string value",
                    ));
                    return ValueKind::Any;
                }
                if k == ValueKind::Float {
                    ValueKind::Float
                } else {
                    ValueKind::Int
                }
            }
            ExprKind::Not(inner) => {
                self.infer(inner, scope);
                ValueKind::Bool
            }
            ExprKind::Binary { op, lhs, rhs } => self.infer_binary(e, *op, lhs, rhs, scope),
            ExprKind::Ident(name) => self.infer_ident(e, name, scope),
            ExprKind::Call { name, superagg: true, args } => {
                self.infer_superagg(e, name, args, scope)
            }
            ExprKind::Call { name, superagg: false, args } => self.infer_call(e, name, args, scope),
        }
    }

    fn infer_binary(
        &mut self,
        whole: &AstExpr,
        op: BinAstOp,
        lhs: &AstExpr,
        rhs: &AstExpr,
        scope: Scope,
    ) -> ValueKind {
        let lk = self.infer(lhs, scope);
        let rk = self.infer(rhs, scope);
        if op.is_logical() {
            return ValueKind::Bool;
        }
        if op.is_comparison() {
            // Comparing a string with a definitely-non-string is a
            // type error; Any/Null stay quiet (unknown side).
            let mixed = (lk == ValueKind::Str) != (rk == ValueKind::Str)
                && lk != ValueKind::Any
                && rk != ValueKind::Any
                && lk != ValueKind::Null
                && rk != ValueKind::Null;
            if mixed {
                self.push(
                    Diagnostic::new(
                        Code::E008,
                        whole.span,
                        format!("cannot compare {lk} with {rk}"),
                    )
                    .with_help("string values only compare against other strings"),
                );
            }
            return ValueKind::Bool;
        }
        // Arithmetic: strings never participate.
        for (k, side) in [(lk, lhs), (rk, rhs)] {
            if k == ValueKind::Str {
                self.push(Diagnostic::new(
                    Code::E008,
                    side.span,
                    format!(
                        "operand of `{}` has type str; arithmetic needs numeric operands",
                        op.symbol()
                    ),
                ));
                return ValueKind::Any;
            }
        }
        if lk == ValueKind::Float || rk == ValueKind::Float {
            ValueKind::Float
        } else if lk == ValueKind::UInt && rk == ValueKind::UInt && op != BinAstOp::Sub {
            ValueKind::UInt
        } else {
            ValueKind::Num
        }
    }

    fn infer_ident(&mut self, e: &AstExpr, name: &str, scope: Scope) -> ValueKind {
        // Group-by variables shadow columns outside GROUP BY.
        if scope != Scope::GroupBy {
            if let Some(k) = self.gb_kind(name) {
                return k;
            }
        }
        match scope {
            Scope::GroupBy | Scope::Tuple => match self.schema.field(name) {
                Ok(f) => f.ty.value_kind(),
                Err(_) => {
                    let columns: Vec<&str> =
                        self.schema.fields().iter().map(|f| f.name.as_str()).collect();
                    self.push(
                        Diagnostic::new(
                            Code::E002,
                            e.span,
                            format!(
                                "unknown name `{name}` (not a column of {} or a group-by \
                                 variable)",
                                self.schema.name
                            ),
                        )
                        .with_help(format!(
                            "columns of {}: {}",
                            self.schema.name,
                            columns.join(", ")
                        )),
                    );
                    ValueKind::Any
                }
            },
            Scope::Group => {
                self.push(
                    Diagnostic::new(
                        Code::E003,
                        e.span,
                        format!(
                            "`{name}` referenced in {} but is not a group-by variable or \
                             aggregate",
                            scope.name()
                        ),
                    )
                    .with_help(format!(
                        "group-phase clauses see group results, not raw tuples; add \
                         `{name}` to GROUP BY or wrap it in an aggregate"
                    )),
                );
                ValueKind::Any
            }
            Scope::SuperKey => {
                self.push(Diagnostic::new(
                    Code::E003,
                    e.span,
                    format!("superaggregate key `{name}` must be a group-by variable"),
                ));
                ValueKind::Any
            }
        }
    }

    fn infer_superagg(
        &mut self,
        whole: &AstExpr,
        name: &str,
        args: &[AstExpr],
        scope: Scope,
    ) -> ValueKind {
        if scope == Scope::GroupBy {
            self.push(Diagnostic::new(
                Code::E003,
                whole.span,
                format!("superaggregate `{name}$` is not allowed in GROUP BY"),
            ));
        }
        match name.to_ascii_lowercase().as_str() {
            "count_distinct" => {
                if !(args.is_empty() || is_star_arg(args)) {
                    self.push(Diagnostic::new(
                        Code::E006,
                        whole.span,
                        "count_distinct$ takes no argument or `*`",
                    ));
                }
                ValueKind::UInt
            }
            "kth_smallest_value" => {
                if args.len() != 2 {
                    self.push(Diagnostic::new(
                        Code::E006,
                        whole.span,
                        "Kth_smallest_value$ expects (expr, k)",
                    ));
                    return ValueKind::Any;
                }
                let kind = self.infer(&args[0], Scope::SuperKey);
                match args[1].kind {
                    ExprKind::Int(k) if k > 0 => {}
                    _ => self.push(
                        Diagnostic::new(
                            Code::E013,
                            args[1].span,
                            "Kth_smallest_value$'s second argument must be a positive \
                             integer literal",
                        )
                        .with_help(
                            "k is the fixed sample-size bound, e.g. `Kth_smallest_value$(HX, 100)`",
                        ),
                    ),
                }
                kind
            }
            "min" | "max" => {
                if args.len() != 1 {
                    self.push(Diagnostic::new(
                        Code::E006,
                        whole.span,
                        format!("{name}$ expects one argument"),
                    ));
                    return ValueKind::Any;
                }
                self.infer(&args[0], Scope::SuperKey)
            }
            "sum" => {
                if args.len() != 1 {
                    self.push(Diagnostic::new(Code::E006, whole.span, "sum$ expects one argument"));
                    return ValueKind::Num;
                }
                let k = self.infer(&args[0], Scope::Tuple);
                if k == ValueKind::Str {
                    self.push(Diagnostic::new(
                        Code::E008,
                        args[0].span,
                        "sum$ needs a numeric argument, got str",
                    ));
                    return ValueKind::Num;
                }
                if k.is_numeric() && k != ValueKind::Any {
                    k
                } else {
                    ValueKind::Num
                }
            }
            other => {
                self.push(
                    Diagnostic::new(
                        Code::E005,
                        whole.span,
                        format!("unknown superaggregate `{other}$`"),
                    )
                    .with_help(
                        "superaggregates: count_distinct$, Kth_smallest_value$, min$, \
                         max$, sum$",
                    ),
                );
                ValueKind::Any
            }
        }
    }

    fn infer_call(
        &mut self,
        whole: &AstExpr,
        name: &str,
        args: &[AstExpr],
        scope: Scope,
    ) -> ValueKind {
        let lower = name.to_ascii_lowercase();
        // Aggregates (avg included: it rewrites to sum/count).
        if matches!(lower.as_str(), "avg" | "count" | "sum" | "min" | "max" | "first" | "last") {
            if scope != Scope::Group {
                self.push(
                    Diagnostic::new(
                        Code::E003,
                        whole.span,
                        format!("aggregate `{name}` is not allowed in {}", scope.name()),
                    )
                    .with_help(
                        "aggregates summarize a finished group; they belong in SELECT, \
                         HAVING, or CLEANING BY",
                    ),
                );
            }
            if lower == "count" {
                if !(args.is_empty() || is_star_arg(args)) {
                    self.push(Diagnostic::new(
                        Code::E006,
                        whole.span,
                        "count takes `*` or nothing",
                    ));
                }
                return ValueKind::UInt;
            }
            if args.len() != 1 {
                self.push(Diagnostic::new(
                    Code::E006,
                    whole.span,
                    format!("aggregate `{name}` expects exactly one argument"),
                ));
                return if lower == "avg" { ValueKind::Float } else { ValueKind::Any };
            }
            // Aggregate arguments are evaluated per tuple.
            let k = self.infer(&args[0], Scope::Tuple);
            if matches!(lower.as_str(), "avg" | "sum") && k == ValueKind::Str {
                self.push(Diagnostic::new(
                    Code::E008,
                    args[0].span,
                    format!("{lower} needs a numeric argument, got str"),
                ));
            }
            return match lower.as_str() {
                "avg" => ValueKind::Float,
                "sum" => {
                    if k.is_numeric() && k != ValueKind::Any {
                        k
                    } else {
                        ValueKind::Num
                    }
                }
                _ => k, // min / max / first / last carry the argument kind
            };
        }
        // Scalar functions (allowed in every scope).
        if let Some(sig) = sso_core::scalar::signature(name) {
            self.check_arity(whole, name, &sig, args.len());
            for a in args {
                let k = self.infer(a, scope);
                if k == ValueKind::Str {
                    self.push(Diagnostic::new(
                        Code::E008,
                        a.span,
                        format!("`{name}` needs numeric arguments, got str"),
                    ));
                }
            }
            return sig.returns;
        }
        // Stateful functions from the configured libraries.
        for lib in &self.config.libraries {
            if let Some(sig) = lib.signature(name) {
                if scope == Scope::GroupBy {
                    self.push(Diagnostic::new(
                        Code::E003,
                        whole.span,
                        format!("stateful function `{name}` is not allowed in GROUP BY"),
                    ));
                }
                self.check_arity(whole, name, &sig, args.len());
                for a in args {
                    let k = self.infer(a, scope);
                    if k == ValueKind::Str {
                        self.push(Diagnostic::new(
                            Code::E008,
                            a.span,
                            format!("`{name}` needs numeric arguments, got str"),
                        ));
                    }
                }
                return sig.returns;
            }
        }
        let mut known: Vec<&str> = vec!["UMAX", "UMIN", "H", "prefix"];
        for lib in &self.config.libraries {
            known.extend(lib.function_names());
        }
        known.sort_unstable();
        self.push(
            Diagnostic::new(Code::E004, whole.span, format!("unknown function `{name}`"))
                .with_help(format!("known functions: {}", known.join(", "))),
        );
        ValueKind::Any
    }

    fn check_arity(&mut self, whole: &AstExpr, name: &str, sig: &Signature, n: usize) {
        if !sig.accepts_arity(n) {
            self.push(Diagnostic::new(
                Code::E006,
                whole.span,
                format!("`{name}` expects {}, got {n}", sig.arity_text()),
            ));
        }
    }

    /// Infer without emitting diagnostics (for lint probes that must
    /// not duplicate findings from the main pass).
    fn kind_quiet(&mut self, e: &AstExpr, scope: Scope) -> ValueKind {
        let saved = std::mem::take(&mut self.diags);
        let k = self.infer(e, scope);
        self.diags = saved;
        k
    }

    /// Can this predicate's truth value be decided statically? Handles
    /// constant folding plus the unsigned-vs-negative-constant cases
    /// (`len < 0` over a `u64` column can never hold).
    fn pred_truth(&mut self, e: &AstExpr, scope: Scope) -> Option<bool> {
        if let Some(c) = fold(e) {
            return Some(c.truthy());
        }
        match &e.kind {
            ExprKind::Not(inner) => self.pred_truth(inner, scope).map(|b| !b),
            ExprKind::Binary { op: BinAstOp::And, lhs, rhs } => {
                match (self.pred_truth(lhs, scope), self.pred_truth(rhs, scope)) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }
            }
            ExprKind::Binary { op: BinAstOp::Or, lhs, rhs } => {
                match (self.pred_truth(lhs, scope), self.pred_truth(rhs, scope)) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                }
            }
            ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
                // u64 expression compared against a negative constant.
                if let Some(Const::I(k)) = fold(rhs) {
                    if k < 0 && self.kind_quiet(lhs, scope) == ValueKind::UInt {
                        return Some(matches!(op, BinAstOp::Gt | BinAstOp::Ge | BinAstOp::Ne));
                    }
                }
                if let Some(Const::I(k)) = fold(lhs) {
                    if k < 0 && self.kind_quiet(rhs, scope) == ValueKind::UInt {
                        return Some(matches!(op, BinAstOp::Lt | BinAstOp::Le | BinAstOp::Ne));
                    }
                }
                None
            }
            _ => None,
        }
    }
}

/// Is the argument list the single `*` of `count(*)`?
fn is_star_arg(args: &[AstExpr]) -> bool {
    matches!(args, [a] if matches!(a.kind, ExprKind::Star))
}

/// Is this expression a `count(*)` / `count()` aggregate call?
fn is_count_call(e: &AstExpr) -> bool {
    matches!(&e.kind, ExprKind::Call { name, superagg: false, .. }
             if name.eq_ignore_ascii_case("count"))
}

/// Depth-first visit of every node in an expression.
fn walk<'e>(e: &'e AstExpr, f: &mut impl FnMut(&'e AstExpr)) {
    f(e);
    match &e.kind {
        ExprKind::Binary { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
        ExprKind::Not(inner) | ExprKind::Neg(inner) => walk(inner, f),
        ExprKind::Call { args, .. } => {
            for a in args {
                walk(a, f);
            }
        }
        _ => {}
    }
}

/// Every non-superaggregate function called anywhere in an expression.
fn called_functions(e: &AstExpr) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    walk(e, &mut |node| {
        if let ExprKind::Call { name, superagg: false, .. } = &node.kind {
            out.push((name.clone(), node.span));
        }
    });
    out
}

/// A folded constant.
#[derive(Debug, Clone, PartialEq)]
enum Const {
    I(i128),
    F(f64),
    B(bool),
    S(String),
}

impl Const {
    fn truthy(&self) -> bool {
        match self {
            Const::I(v) => *v != 0,
            Const::F(v) => *v != 0.0,
            Const::B(b) => *b,
            Const::S(s) => !s.is_empty(),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Const::I(v) => Some(*v as f64),
            Const::F(v) => Some(*v),
            _ => None,
        }
    }
}

/// Constant-fold an expression, mirroring runtime semantics closely
/// enough for lints (returns `None` whenever unsure, e.g. division by
/// zero or any non-literal leaf).
fn fold(e: &AstExpr) -> Option<Const> {
    match &e.kind {
        ExprKind::Int(v) => Some(Const::I(*v as i128)),
        ExprKind::Float(v) => Some(Const::F(*v)),
        ExprKind::Bool(b) => Some(Const::B(*b)),
        ExprKind::Str(s) => Some(Const::S(s.clone())),
        ExprKind::Neg(inner) => match fold(inner)? {
            Const::I(v) => Some(Const::I(-v)),
            Const::F(v) => Some(Const::F(-v)),
            _ => None,
        },
        ExprKind::Not(inner) => Some(Const::B(!fold(inner)?.truthy())),
        ExprKind::Binary { op, lhs, rhs } => fold_bin(*op, fold(lhs)?, fold(rhs)?),
        _ => None,
    }
}

fn fold_bin(op: BinAstOp, l: Const, r: Const) -> Option<Const> {
    use BinAstOp::*;
    if matches!(op, And) {
        return Some(Const::B(l.truthy() && r.truthy()));
    }
    if matches!(op, Or) {
        return Some(Const::B(l.truthy() || r.truthy()));
    }
    if op.is_comparison() {
        let ord = match (&l, &r) {
            (Const::S(a), Const::S(b)) => a.cmp(b),
            _ => l.as_f64()?.partial_cmp(&r.as_f64()?)?,
        };
        let b = match op {
            Eq => ord.is_eq(),
            Ne => !ord.is_eq(),
            Lt => ord.is_lt(),
            Le => ord.is_le(),
            Gt => ord.is_gt(),
            Ge => ord.is_ge(),
            _ => unreachable!("comparison ops only"),
        };
        return Some(Const::B(b));
    }
    // Arithmetic.
    match (l, r) {
        (Const::I(a), Const::I(b)) => {
            let v = match op {
                Add => a.checked_add(b)?,
                Sub => a.checked_sub(b)?,
                Mul => a.checked_mul(b)?,
                Div => a.checked_div(b)?,
                Rem => a.checked_rem(b)?,
                _ => return None,
            };
            Some(Const::I(v))
        }
        (l, r) => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return None;
                    }
                    a / b
                }
                Rem => {
                    if b == 0.0 {
                        return None;
                    }
                    a % b
                }
                _ => return None,
            };
            Some(Const::F(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use sso_types::Packet;

    fn diags_for(text: &str) -> Vec<Diagnostic> {
        let q = parse_query(text).unwrap();
        analyze(&q, &Packet::schema(), &PlannerConfig::standard())
    }

    fn codes(text: &str) -> Vec<Code> {
        diags_for(text).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn duplicate_code_span_pairs_collapse() {
        // Two passes reporting the same (code, span) must render once;
        // a same-code diagnostic at a different span survives.
        let twice = vec![
            Diagnostic::new(Code::W004, Span::new(3, 7), "from the scope pass"),
            Diagnostic::new(Code::W004, Span::new(3, 7), "from the lint pass"),
            Diagnostic::new(Code::W004, Span::new(9, 12), "different span"),
            Diagnostic::new(Code::E002, Span::new(3, 7), "different code"),
        ];
        let out = dedupe(twice);
        assert_eq!(out.len(), 3, "{out:?}");
        assert_eq!(out[0].message, "from the scope pass", "first emission wins");

        // And end-to-end: no analyze() batch may contain duplicates.
        for q in [
            "SELECT tb, nope, nope FROM PKT WHERE nope > 1 GROUP BY time/60 as tb",
            "SELECT tb, len AS x, len AS x FROM PKT GROUP BY time/60 as tb",
        ] {
            let parsed = parse_query(q).unwrap();
            let d = analyze(&parsed, &Packet::schema(), &PlannerConfig::standard());
            for (i, a) in d.iter().enumerate() {
                for b in &d[i + 1..] {
                    assert!(!(a.code == b.code && a.span == b.span), "duplicate in {d:?}");
                }
            }
        }
    }

    #[test]
    fn e009_empty_group_by() {
        // The grammar requires at least one GROUP BY item, so this only
        // arises for programmatically built ASTs.
        let mut q = parse_query("SELECT tb FROM PKT GROUP BY time/60 as tb").unwrap();
        q.group_by.clear();
        let d = analyze(&q, &Packet::schema(), &PlannerConfig::standard());
        assert!(d.iter().any(|d| d.code == Code::E009), "{d:?}");
        assert_eq!(codes("SELECT tb FROM PKT GROUP BY time/60 as tb"), []);
    }

    /// The full subset-sum / min-hash / heavy-hitter / reservoir
    /// queries from the paper are clean.
    #[test]
    fn paper_queries_are_clean() {
        for q in [
            "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKT \
             WHERE ssample(len, 100) = TRUE \
             GROUP BY time/20 as tb, srcIP, destIP, uts \
             HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE \
             CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY ssclean_with(sum(len)) = TRUE",
            "SELECT tb, srcIP, HX FROM PKT \
             WHERE HX <= Kth_smallest_value$(HX, 100) \
             GROUP_BY time/60 as tb, srcIP, H(destIP) as HX \
             SUPERGROUP BY tb, srcIP \
             HAVING HX <= Kth_smallest_value$(HX, 100) \
             CLEANING WHEN count_distinct$(*) > 100 \
             CLEANING BY HX <= Kth_smallest_value$(HX, 100)",
            "SELECT tb, srcIP, sum(len), count(*) FROM PKT \
             GROUP BY time/60 as tb, srcIP \
             CLEANING WHEN local_count(100) = TRUE \
             CLEANING BY count(*) + first(current_bucket()) > current_bucket()",
            "SELECT tb, srcIP, destIP FROM PKT \
             WHERE rsample(100) = TRUE \
             GROUP_BY time/60 as tb, srcIP, destIP \
             HAVING rsfinal_clean(count_distinct$(*)) = TRUE \
             CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY rsclean_with() = TRUE",
        ] {
            assert_eq!(diags_for(q), vec![], "query should be clean: {q}");
        }
    }

    #[test]
    fn e001_duplicate_group_by_name() {
        assert_eq!(codes("SELECT tb FROM PKT GROUP BY time/60 as tb, len as tb"), [Code::E001]);
        assert_eq!(codes("SELECT tb FROM PKT GROUP BY time/60 as tb, len as l"), []);
    }

    #[test]
    fn e002_unknown_name() {
        let d = diags_for("SELECT tb FROM PKT WHERE nope > 1 GROUP BY time/60 as tb");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E002);
        assert!(d[0].message.contains("nope"));
        // The span points at `nope` in the source.
        let src = "SELECT tb FROM PKT WHERE nope > 1 GROUP BY time/60 as tb";
        assert_eq!(&src[d[0].span.start..d[0].span.end], "nope");
        assert_eq!(codes("SELECT tb FROM PKT WHERE len > 1 GROUP BY time/60 as tb"), []);
    }

    #[test]
    fn e003_scope_violations() {
        // Aggregate in WHERE (tuple phase).
        let d = diags_for("SELECT tb FROM PKT WHERE sum(len) > 1 GROUP BY time/60 as tb");
        assert!(d.iter().any(|d| d.code == Code::E003 && d.message.contains("not allowed")));
        // Raw column in SELECT (group phase).
        let d = diags_for("SELECT len FROM PKT GROUP BY time/60 as tb");
        assert!(d.iter().any(|d| d.code == Code::E003 && d.message.contains("group-by variable")));
        // Superaggregate key must be a group-by variable.
        let d = diags_for(
            "SELECT tb FROM PKT WHERE len <= Kth_smallest_value$(len, 10) GROUP BY time/60 as tb",
        );
        assert!(d.iter().any(|d| d.code == Code::E003 && d.message.contains("group-by variable")));
        // SFUN in GROUP BY.
        let d = diags_for("SELECT tb FROM PKT GROUP BY ssthreshold() as tb");
        assert!(d.iter().any(|d| d.code == Code::E003));
        assert_eq!(codes("SELECT tb, sum(len) FROM PKT GROUP BY time/60 as tb"), []);
    }

    #[test]
    fn e004_unknown_function() {
        let d = diags_for("SELECT tb, zap(len) FROM PKT GROUP BY time/60 as tb");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E004);
        assert!(d[0].help.as_deref().unwrap_or("").contains("ssample"));
        assert_eq!(codes("SELECT tb, UMAX(sum(len), 9) FROM PKT GROUP BY time/60 as tb"), []);
    }

    #[test]
    fn e005_unknown_superaggregate() {
        assert_eq!(codes("SELECT tb, weird$(*) FROM PKT GROUP BY time/60 as tb"), [Code::E005]);
        assert_eq!(codes("SELECT tb, count_distinct$(*) FROM PKT GROUP BY time/60 as tb"), []);
    }

    #[test]
    fn e006_arity_mismatches() {
        assert_eq!(codes("SELECT tb, avg(len, 2) FROM PKT GROUP BY time/60 as tb"), [Code::E006]);
        assert_eq!(codes("SELECT tb, H(tb, 2) FROM PKT GROUP BY time/60 as tb"), [Code::E006]);
        assert_eq!(
            codes("SELECT tb FROM PKT WHERE ssample(len, 100, 9) = TRUE GROUP BY time/60 as tb"),
            [Code::E006]
        );
        assert_eq!(codes("SELECT tb, count(len) FROM PKT GROUP BY time/60 as tb"), [Code::E006]);
        assert_eq!(codes("SELECT tb, avg(len) FROM PKT GROUP BY time/60 as tb"), []);
    }

    #[test]
    fn e007_bare_star() {
        let d = diags_for("SELECT * FROM PKT GROUP BY time/60 as tb");
        assert_eq!(d[0].code, Code::E007);
        assert!(d[0].message.contains("only valid"));
        assert_eq!(codes("SELECT count(*) FROM PKT GROUP BY time/60 as tb"), []);
    }

    #[test]
    fn e008_type_mismatches() {
        assert_eq!(
            codes("SELECT tb, sum(len) FROM PKT WHERE len + 'x' > 1 GROUP BY time/60 as tb"),
            [Code::E008]
        );
        let d = diags_for("SELECT tb FROM PKT WHERE len = 'x' GROUP BY time/60 as tb");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::E008);
        assert!(d[0].message.contains("compare"));
        assert_eq!(codes("SELECT tb FROM PKT WHERE len + 1 > 2 GROUP BY time/60 as tb"), []);
    }

    #[test]
    fn e010_window_safety() {
        // Cleaning but no ordered group-by expression: unsafe.
        let d = diags_for(
            "SELECT srcIP, count(*) FROM PKT GROUP BY srcIP \
             CLEANING WHEN local_count(100) = TRUE CLEANING BY count(*) > 2",
        );
        assert!(d.iter().any(|d| d.code == Code::E010), "{d:?}");
        // Same query windowed by time/60: safe.
        let d = diags_for(
            "SELECT tb, srcIP, count(*) FROM PKT GROUP BY time/60 as tb, srcIP \
             CLEANING WHEN local_count(100) = TRUE CLEANING BY count(*) > 2",
        );
        assert!(!d.iter().any(|d| d.code == Code::E010), "{d:?}");
        // No cleaning: windowless aggregation is fine.
        assert_eq!(codes("SELECT srcIP, count(*) FROM PKT GROUP BY srcIP"), []);
    }

    #[test]
    fn e011_supergroup_not_a_gb_var() {
        let d = diags_for("SELECT tb FROM PKT GROUP BY time/60 as tb SUPERGROUP bogus");
        assert_eq!(d[0].code, Code::E011);
        assert!(d[0].message.contains("bogus"));
        assert_eq!(
            codes("SELECT tb, srcIP FROM PKT GROUP BY time/60 as tb, srcIP SUPERGROUP srcIP"),
            []
        );
    }

    #[test]
    fn e012_cleaning_clauses_pair() {
        let d = diags_for(
            "SELECT tb FROM PKT GROUP BY time/60 as tb \
             CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE",
        );
        assert!(d.iter().any(|d| d.code == Code::E012), "{d:?}");
        let d = diags_for(
            "SELECT tb FROM PKT GROUP BY time/60 as tb CLEANING BY rsclean_with() = TRUE",
        );
        assert!(d.iter().any(|d| d.code == Code::E012), "{d:?}");
    }

    #[test]
    fn e013_kth_needs_positive_literal_k() {
        let d = diags_for(
            "SELECT tb FROM PKT WHERE tb <= Kth_smallest_value$(tb, 0) GROUP BY time/60 as tb",
        );
        assert_eq!(d[0].code, Code::E013);
        assert!(d[0].message.contains("positive integer"));
        assert_eq!(
            codes(
                "SELECT tb FROM PKT WHERE tb <= Kth_smallest_value$(tb, 5) GROUP BY time/60 as tb"
            ),
            []
        );
    }

    #[test]
    fn w001_constant_cleaning_when() {
        let d = diags_for(
            "SELECT tb FROM PKT GROUP BY time/60 as tb \
             CLEANING WHEN 1 > 2 CLEANING BY rsclean_with() = TRUE",
        );
        assert!(
            d.iter().any(|d| d.code == Code::W001 && d.message.contains("always false")),
            "{d:?}"
        );
        // A u64 column compared against a negative constant can never
        // hold.
        let d = diags_for(
            "SELECT tb FROM PKT GROUP BY time/60 as tb \
             CLEANING WHEN len < 0 - 5 CLEANING BY rsclean_with() = TRUE",
        );
        assert!(d.iter().any(|d| d.code == Code::W001), "{d:?}");
        let d = diags_for(
            "SELECT tb FROM PKT GROUP BY time/60 as tb \
             CLEANING WHEN TRUE CLEANING BY rsclean_with() = TRUE",
        );
        assert!(
            d.iter().any(|d| d.code == Code::W001 && d.message.contains("always true")),
            "{d:?}"
        );
        // Data-dependent predicate: no lint.
        let d = diags_for(
            "SELECT tb FROM PKT GROUP BY time/60 as tb \
             CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY rsclean_with() = TRUE",
        );
        assert!(!d.iter().any(|d| d.code == Code::W001), "{d:?}");
    }

    #[test]
    fn w002_threshold_never_updates() {
        // ssdo_clean fires, but CLEANING BY keeps tuples with a plain
        // comparison — ssclean_with is never called, so the subset-sum
        // threshold never rises.
        let d = diags_for(
            "SELECT tb, sum(len) FROM PKT WHERE ssample(len, 100) = TRUE \
             GROUP BY time/60 as tb \
             CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY sum(len) > 1000",
        );
        assert!(d.iter().any(|d| d.code == Code::W002), "{d:?}");
        // The correct pairing is clean.
        let d = diags_for(
            "SELECT tb, sum(len) FROM PKT WHERE ssample(len, 100) = TRUE \
             GROUP BY time/60 as tb \
             CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE \
             CLEANING BY ssclean_with(sum(len)) = TRUE",
        );
        assert!(!d.iter().any(|d| d.code == Code::W002), "{d:?}");
    }

    #[test]
    fn w003_vacuous_heavy_hitter_bounds() {
        let d = diags_for(
            "SELECT tb, srcIP, count(*) FROM PKT GROUP BY time/60 as tb, srcIP \
             CLEANING WHEN local_count(1) = TRUE \
             CLEANING BY count(*) + first(current_bucket()) > current_bucket()",
        );
        assert!(d.iter().any(|d| d.code == Code::W003), "{d:?}");
        let d = diags_for(
            "SELECT tb, srcIP, count(*) FROM PKT GROUP BY time/60 as tb, srcIP \
             HAVING count(*) >= 1",
        );
        assert!(d.iter().any(|d| d.code == Code::W003), "{d:?}");
        // Meaningful bounds are clean.
        let d = diags_for(
            "SELECT tb, srcIP, count(*) FROM PKT GROUP BY time/60 as tb, srcIP \
             HAVING count(*) >= 50",
        );
        assert!(!d.iter().any(|d| d.code == Code::W003), "{d:?}");
    }

    #[test]
    fn w004_truthy_predicate() {
        let d = diags_for("SELECT tb FROM PKT WHERE len GROUP BY time/60 as tb");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::W004);
        assert_eq!(codes("SELECT tb FROM PKT WHERE len > 0 GROUP BY time/60 as tb"), []);
    }

    #[test]
    fn w005_duplicate_output_columns() {
        let d = diags_for("SELECT tb, sum(len), sum(len) FROM PKT GROUP BY time/60 as tb");
        assert_eq!(d.iter().filter(|d| d.code == Code::W005).count(), 1);
        assert_eq!(
            codes("SELECT tb, sum(len), sum(len) as total FROM PKT GROUP BY time/60 as tb"),
            []
        );
    }

    /// The headline behavior: one pass reports *all* mistakes, not
    /// just the first.
    #[test]
    fn multiple_mistakes_reported_in_one_pass() {
        let src = "SELECT len, zap(len), weird$(*) FROM PKT \
                   WHERE sum(len) > 1 AND nope = 3 \
                   GROUP BY time/60 as tb, len as tb";
        let d = diags_for(src);
        let found: Vec<Code> = d.iter().map(|d| d.code).collect();
        for want in [Code::E001, Code::E002, Code::E003, Code::E004, Code::E005] {
            assert!(found.contains(&want), "missing {want:?} in {found:?}");
        }
        // Every diagnostic carries a real span into the source.
        for diag in &d {
            assert!(diag.span.end <= src.len());
            assert!(diag.span.start < diag.span.end, "{diag:?}");
        }
    }

    #[test]
    fn folding_knows_arithmetic_and_division_by_zero() {
        let q = parse_query(
            "SELECT tb FROM PKT GROUP BY time/60 as tb CLEANING WHEN 3 * 2 - 6 \
             CLEANING BY rsclean_with() = TRUE",
        )
        .unwrap();
        let d = analyze(&q, &Packet::schema(), &PlannerConfig::standard());
        assert!(d.iter().any(|d| d.code == Code::W001 && d.message.contains("always false")));
        // Division by zero folds to "unknown", not a crash or a lint.
        let q = parse_query(
            "SELECT tb FROM PKT GROUP BY time/60 as tb CLEANING WHEN len % 0 = 1 \
             CLEANING BY rsclean_with() = TRUE",
        )
        .unwrap();
        let d = analyze(&q, &Packet::schema(), &PlannerConfig::standard());
        assert!(!d.iter().any(|d| d.code == Code::W001));
    }
}
