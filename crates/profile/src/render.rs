//! Dump renderers: the human timeline (`sso trace DUMP`) and Chrome
//! trace-event JSON (`sso trace DUMP --chrome out.json`), loadable in
//! chrome://tracing and Perfetto.

use crate::collect::fmt_ns;
use crate::dump::Dump;
use crate::event::{Event, BATCH_NONE, SHARD_NONE, WINDOW_NONE};
use crate::lane::LaneKind;

fn lane_name(kind: LaneKind, index: u32) -> String {
    match kind {
        LaneKind::Worker => format!("worker/{index}"),
        LaneKind::Router => format!("router/{index}"),
        _ => kind.name().to_string(),
    }
}

fn ids(e: &Event) -> String {
    let mut s = String::new();
    if e.batch != BATCH_NONE {
        s.push_str(&format!(" b={}", e.batch));
    }
    if e.shard != SHARD_NONE {
        s.push_str(&format!(" s={}", e.shard));
    }
    if e.window != WINDOW_NONE {
        s.push_str(&format!(" w={}", e.window));
    }
    s
}

/// Render a dump as a time-sorted human timeline, most recent last.
/// `limit` keeps only the final N events (0 = all).
pub fn render_timeline(dump: &Dump, limit: usize) -> String {
    let mut rows: Vec<(u64, String)> = Vec::with_capacity(dump.event_count());
    for lane in &dump.lanes {
        let lname = lane_name(lane.kind, lane.index);
        for e in &lane.events {
            let line = format!(
                "{:>14} {:<9} {:<12}{:<16} {:>10} aux={}",
                format!("+{}", fmt_ns(e.t_ns)),
                lname,
                e.stage.name(),
                ids(e),
                format!("[{}]", fmt_ns(e.dur_ns)),
                e.aux,
            );
            rows.push((e.t_ns, line));
        }
    }
    rows.sort_by_key(|(t, _)| *t);
    let skip = if limit > 0 && rows.len() > limit { rows.len() - limit } else { 0 };

    let mut out = format!(
        "flight recorder: reason={}, {} lanes, {} events ({} dropped to wrap-around)\n",
        dump.reason.as_str(),
        dump.lanes.len(),
        dump.event_count(),
        dump.dropped(),
    );
    if skip > 0 {
        out.push_str(&format!("  ... {skip} earlier events elided (--limit)\n"));
    }
    for (_, line) in rows.into_iter().skip(skip) {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Stable numeric thread id per lane for the trace viewer.
fn tid(kind: LaneKind, index: u32) -> u32 {
    match kind {
        LaneKind::Merge => 1,
        LaneKind::Low => 2,
        // Workers from 10, routers from 1000: each multi-router lane
        // gets its own track, and the two families never collide.
        LaneKind::Worker => 10 + index,
        LaneKind::Router => 1000 + index,
    }
}

/// Render a dump as Chrome trace-event JSON: thread-name metadata
/// (`ph:"M"`) plus one complete event (`ph:"X"`, microsecond `ts`/`dur`)
/// per stamp.
pub fn chrome_trace_json(dump: &Dump) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };

    for lane in &dump.lanes {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                tid(lane.kind, lane.index),
                lane_name(lane.kind, lane.index),
            ),
            &mut first,
        );
    }
    for lane in &dump.lanes {
        let t = tid(lane.kind, lane.index);
        for e in &lane.events {
            let mut args = format!("\"aux\":{}", e.aux);
            if e.shard != SHARD_NONE {
                args.push_str(&format!(",\"shard\":{}", e.shard));
            }
            if e.window != WINDOW_NONE {
                args.push_str(&format!(",\"window\":{}", e.window));
            }
            if e.batch != BATCH_NONE {
                args.push_str(&format!(",\"batch\":{}", e.batch));
            }
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"sso\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
                    e.stage.name(),
                    e.t_ns as f64 / 1_000.0,
                    e.dur_ns as f64 / 1_000.0,
                    t,
                    args,
                ),
                &mut first,
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::LaneDump;
    use crate::event::{Event, Stage};
    use crate::profiler::DumpReason;

    fn dump() -> Dump {
        Dump {
            reason: DumpReason::Panic,
            lanes: vec![
                LaneDump {
                    kind: LaneKind::Router,
                    index: 0,
                    dropped: 1,
                    events: vec![Event::new(Stage::Route, 2_000, 500).shard(1).batch(4).aux(64)],
                },
                LaneDump {
                    kind: LaneKind::Worker,
                    index: 1,
                    dropped: 0,
                    events: vec![Event::new(Stage::Process, 3_000, 900)
                        .shard(1)
                        .window(0)
                        .batch(4)
                        .aux(64)],
                },
            ],
        }
    }

    #[test]
    fn timeline_is_time_sorted_and_labeled() {
        let text = render_timeline(&dump(), 0);
        assert!(text.starts_with("flight recorder: reason=panic, 2 lanes, 2 events (1 dropped"));
        let route = text.find("route").unwrap();
        let process = text.find("process").unwrap();
        assert!(route < process, "earlier event first");
        assert!(text.contains("worker/1"));
        assert!(text.contains("router/0"));
        assert!(text.contains("b=4 s=1 w=0"));
    }

    #[test]
    fn timeline_limit_keeps_tail() {
        let text = render_timeline(&dump(), 1);
        assert!(text.contains("1 earlier events elided"));
        assert!(!text.contains(" route "), "older event elided");
        assert!(text.contains("process"));
    }

    #[test]
    fn chrome_json_shape() {
        let json = chrome_trace_json(&dump());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"worker/1\""));
        // Router lanes are per-index tracks on their own tid block.
        assert!(json.contains("\"name\":\"router/0\""));
        assert!(json.contains("\"tid\":1000"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":2.000"));
        assert!(json.contains("\"dur\":0.900"));
        assert!(json.ends_with("]}"));
        // Balanced braces — cheap well-formedness check without a parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
