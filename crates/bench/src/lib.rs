//! # sso-bench
//!
//! The evaluation harness: one binary per figure of the paper's §7, plus
//! the in-text parameter sweeps and our own ablations. Each binary
//! prints the same rows/series the paper charts (and, with `--json`,
//! machine-readable output).
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2` | accuracy of summation: actual vs estimated (relaxed / non-relaxed) |
//! | `fig3` | samples collected per period, relaxed vs non-relaxed |
//! | `fig4` | cleaning phases per period, relaxed vs non-relaxed |
//! | `fig5` | CPU cost vs samples/period: operator (relaxed / non-relaxed) vs basic SS selection |
//! | `fig6` | low-level node choice: selection subquery vs basic-SS prefilter |
//! | `sweep_n` | §7.1 in-text: accuracy at N ∈ {100, 1000, 10000} |
//! | `sweep_gamma` | §7.2 in-text: CPU vs cleaning trigger γ |
//! | `sweep_relaxation` | ablation: relaxation factor f ∈ {1..20} |

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{OpError, SamplingOperator, WindowOutput};
use sso_types::{Packet, Tuple};

/// Per-window record of one subset-sum run (the quantities Figures 2–4
/// chart).
#[derive(Debug, Clone, serde::Serialize)]
pub struct SsWindow {
    /// Window id (time bucket).
    pub tb: u64,
    /// True byte volume of the window.
    pub actual: u64,
    /// Subset-sum estimate of the volume.
    pub estimate: f64,
    /// Final sample size.
    pub samples: usize,
    /// Tuples admitted during the window (Figure 3's metric).
    pub admissions: u64,
    /// Cleaning phases, including the final one (Figure 4's metric).
    pub cleanings: u64,
}

/// Build the paper's dynamic subset-sum query (§6.1) with stats columns.
pub fn subset_sum_operator(
    window_secs: u64,
    cfg: SubsetSumOpConfig,
) -> Result<SamplingOperator, OpError> {
    SamplingOperator::new(sso_core::queries::subset_sum_query(window_secs, cfg, true)?)
}

/// Run the dynamic subset-sum query over a packet trace and join each
/// window with the exact volume.
pub fn run_subset_sum(
    packets: &[Packet],
    window_secs: u64,
    cfg: SubsetSumOpConfig,
) -> Result<Vec<SsWindow>, OpError> {
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for p in packets {
        *truth.entry(p.time() / window_secs).or_default() += p.len as u64;
    }
    let mut op = subset_sum_operator(window_secs, cfg)?;
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter())?;
    Ok(windows
        .iter()
        .map(|w| {
            let tb = w.window.get(0).as_u64().expect("tb");
            SsWindow {
                tb,
                actual: truth.get(&tb).copied().unwrap_or(0),
                estimate: w.rows.iter().map(|r| r.get(3).as_f64().expect("adj")).sum(),
                samples: w.rows.len(),
                admissions: row_stat(w, 5),
                cleanings: row_stat(w, 4),
            }
        })
        .collect())
}

fn row_stat(w: &WindowOutput, idx: usize) -> u64 {
    w.rows.first().map(|r| r.get(idx).as_u64().unwrap_or(0)).unwrap_or(0)
}

/// Measure an operator's per-tuple busy time over a tuple stream:
/// returns (busy, windows).
pub fn measure_operator(
    op: &mut SamplingOperator,
    tuples: &[Tuple],
) -> Result<(Duration, Vec<WindowOutput>), OpError> {
    let mut windows = Vec::new();
    let t0 = Instant::now();
    for t in tuples {
        if let Some(w) = op.process(t)? {
            windows.push(w);
        }
    }
    if let Some(w) = op.finish()? {
        windows.push(w);
    }
    Ok((t0.elapsed(), windows))
}

/// Best-of-`reps` busy time for an operator built by `make` (fresh per
/// repetition), over the same tuple stream. Taking the minimum filters
/// scheduler noise out of single-shot wall-clock measurements.
pub fn measure_best_of(
    reps: usize,
    mut make: impl FnMut() -> SamplingOperator,
    tuples: &[Tuple],
) -> Result<(Duration, Vec<WindowOutput>), OpError> {
    let mut best: Option<(Duration, Vec<WindowOutput>)> = None;
    for _ in 0..reps.max(1) {
        let mut op = make();
        let (busy, windows) = measure_operator(&mut op, tuples)?;
        if best.as_ref().map(|(b, _)| busy < *b).unwrap_or(true) {
            best = Some((busy, windows));
        }
    }
    Ok(best.expect("at least one repetition"))
}

/// The stream's wall-clock span at line rate: last uts − first uts.
pub fn stream_span(packets: &[Packet]) -> Duration {
    match (packets.first(), packets.last()) {
        (Some(a), Some(b)) => Duration::from_nanos(b.uts - a.uts),
        _ => Duration::ZERO,
    }
}

/// Busy time as "% of a CPU" at line rate.
pub fn cpu_pct(busy: Duration, span: Duration) -> f64 {
    if span.is_zero() {
        0.0
    } else {
        100.0 * busy.as_secs_f64() / span.as_secs_f64()
    }
}

/// `true` if `--json` was passed on the command line.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Print a section header (suppressed in JSON mode).
pub fn header(title: &str) {
    if !json_mode() {
        println!("\n=== {title} ===");
    }
}

/// Emit a serializable result set as JSON if requested.
pub fn maybe_json<T: serde::Serialize>(value: &T) -> bool {
    if json_mode() {
        println!("{}", serde_json::to_string_pretty(value).expect("serialize"));
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sso_netgen::research_feed;

    #[test]
    fn run_subset_sum_produces_joined_series() {
        let packets = research_feed(1).take_seconds(10);
        let cfg = SubsetSumOpConfig { target: 100, initial_z: 1.0, ..Default::default() };
        let series = run_subset_sum(&packets, 5, cfg).unwrap();
        assert_eq!(series.len(), 2);
        for w in &series {
            assert!(w.actual > 0);
            assert!(w.estimate > 0.0);
            assert!(w.samples <= 110);
        }
    }

    #[test]
    fn stream_span_and_cpu_pct() {
        let packets = research_feed(2).take_seconds(2);
        let span = stream_span(&packets);
        assert!(span > Duration::from_secs(1) && span <= Duration::from_secs(2));
        assert!((cpu_pct(Duration::from_millis(100), Duration::from_secs(1)) - 10.0).abs() < 1e-9);
        assert_eq!(cpu_pct(Duration::from_secs(1), Duration::ZERO), 0.0);
    }

    #[test]
    fn measure_operator_counts_windows() {
        let packets = research_feed(3).take_seconds(4);
        let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
        let mut op = SamplingOperator::new(sso_core::queries::total_sum_query(2)).unwrap();
        let (busy, windows) = measure_operator(&mut op, &tuples).unwrap();
        assert!(busy > Duration::ZERO);
        assert_eq!(windows.len(), 2);
    }
}
