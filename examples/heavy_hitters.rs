//! Heavy hitters: report the top traffic destinations per minute with the
//! Manku–Motwani lossy-counting algorithm expressed on the sampling
//! operator (§6.6), and cross-check against exact counts.
//!
//! ```sh
//! cargo run --release --example heavy_hitters
//! ```

use std::collections::HashMap;

use stream_sampler::prelude::*;

fn main() {
    // Bucket width w = 1/epsilon = 1000 (epsilon = 0.1%); support: report
    // destinations receiving at least ~1% of the window's packets.
    let query = "
        SELECT tb, destIP, sum(len), count(*)
        FROM PKT
        GROUP BY time/60 as tb, destIP
        HAVING count(*) >= 60000
        CLEANING WHEN local_count(1000) = TRUE
        CLEANING BY count(*) + first(current_bucket()) > current_bucket()";

    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard())
        .expect("heavy-hitters query compiles");

    let packets = datacenter_feed(11).take_seconds(120);
    println!("feed: {} packets over 120s (~100k pkt/s)", packets.len());

    // Exact per-window per-source counts for verification.
    let mut exact: HashMap<(u64, u64), u64> = HashMap::new();
    for p in &packets {
        *exact.entry((p.time() / 60, p.dest_ip as u64)).or_default() += 1;
    }

    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();

    for w in &windows {
        let tb = w.window.get(0).as_u64().unwrap();
        println!(
            "\nwindow {tb}: {} heavy hitters, {} cleaning phases",
            w.rows.len(),
            w.stats.cleaning_phases
        );
        let mut rows: Vec<_> = w.rows.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.get(3).as_u64().unwrap()));
        println!("{:<18} {:>12} {:>10} {:>10}", "destIP", "bytes", "pkts~", "pkts exact");
        for row in rows.iter().take(10) {
            let dst = row.get(1).as_u64().unwrap();
            let est = row.get(3).as_u64().unwrap();
            let exact_count = exact.get(&(tb, dst)).copied().unwrap_or(0);
            println!(
                "{:<18} {:>12} {:>10} {:>10}",
                format_ipv4(dst as u32),
                row.get(2).as_u64().unwrap(),
                est,
                exact_count
            );
            // Lossy counting never overcounts and undercounts by <= eps*N.
            assert!(est <= exact_count, "lossy counting must not overcount");
        }
    }
}
