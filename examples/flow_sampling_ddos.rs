//! The conclusion's stress scenario (§8): sampled flow aggregation
//! under a DDoS of tiny flows.
//!
//! A naive flow-aggregation query needs one group per flow; a storm of
//! single-packet spoofed flows explodes its group table and (in the real
//! system) exhausts memory. Integrating subset-sum sampling *into* the
//! aggregation query bounds the table: small flows are quickly sampled
//! and purged by cleaning phases, so the group table stays at ~γ·N
//! entries regardless of the attack, while byte-volume estimates stay
//! accurate.
//!
//! ```sh
//! cargo run --release --example flow_sampling_ddos
//! ```

use stream_sampler::prelude::*;

fn main() {
    let attack = (10u64, 20u64);
    let packets = ddos_feed(47, attack.0, attack.1).take_seconds(30);
    println!(
        "feed: {} packets over 30s; DDoS of tiny spoofed flows during seconds {}..{}",
        packets.len(),
        attack.0,
        attack.1
    );
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();

    // Naive flow aggregation: one group per 5-tuple flow per 10s window.
    let naive = "
        SELECT tb, srcIP, destIP, sum(len), count(*)
        FROM PKT
        GROUP BY time/10 as tb, srcIP, destIP, srcPort, destPort, proto";
    let mut naive_op =
        compile(naive, &Packet::schema(), &PlannerConfig::empty()).expect("naive query");

    // Sampled flow aggregation: the same grouping, with dynamic
    // subset-sum sampling keeping ~500 flow samples.
    // Estimator note: the paper sketches this integrated query but
    // defers its details ("we will report on the details and our
    // experience elsewhere", §8). The subtlety: repeated admissions of
    // the same flow collapse into one group, so the per-packet
    // estimator under-counts while the threshold is still converging
    // (the bootstrap window below); once z carries over at the right
    // scale, the steady-state windows are accurate.
    let sampled = "
        SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
        FROM PKT
        WHERE ssample(len, 500) = TRUE
        GROUP BY time/10 as tb, srcIP, destIP, srcPort, destPort, proto
        HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(len)) = TRUE";
    // Warm-start the threshold: with z = 0 the bootstrap window admits
    // every flow and then evicts most of them while they are still
    // accumulating bytes, under-counting their remainders. A rough
    // per-flow-volume guess avoids that; later windows carry z over.
    let cfg = stream_sampler::query::PlannerConfig::with_configs(
        stream_sampler::prelude::SubsetSumOpConfig {
            target: 0, // from the query text
            initial_z: 50_000.0,
            ..Default::default()
        },
        Default::default(),
    );
    let mut sampled_op = compile(sampled, &Packet::schema(), &cfg).expect("sampled query");

    // Track peak group-table sizes while streaming.
    let mut naive_peak = 0usize;
    let mut sampled_peak = 0usize;
    let mut naive_windows = Vec::new();
    let mut sampled_windows = Vec::new();
    for t in &tuples {
        if let Some(w) = naive_op.process(t).unwrap() {
            naive_windows.push(w);
        }
        if let Some(w) = sampled_op.process(t).unwrap() {
            sampled_windows.push(w);
        }
        naive_peak = naive_peak.max(naive_op.group_count());
        sampled_peak = sampled_peak.max(sampled_op.group_count());
    }
    naive_windows.extend(naive_op.finish().unwrap());
    sampled_windows.extend(sampled_op.finish().unwrap());

    println!("\npeak group-table size:");
    println!("  naive flow aggregation : {naive_peak:>8} groups (grows with the attack)");
    println!("  sampled flow query     : {sampled_peak:>8} groups (bounded by cleaning)");
    assert!(sampled_peak < naive_peak / 10, "sampling must bound the table");

    println!("\nper-window byte volume, naive (exact) vs sampled (estimate);");
    println!("(the first window is the threshold bootstrap — see the note above)");
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>7}",
        "window", "flows", "exact bytes", "estimated", "err%"
    );
    for (nw, sw) in naive_windows.iter().zip(&sampled_windows) {
        let exact: u64 = nw.rows.iter().map(|r| r.get(3).as_u64().unwrap()).sum();
        let est: f64 = sw.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
        let err = 100.0 * (est - exact as f64) / exact as f64;
        println!(
            "{:<8} {:>8} {:>14} {:>14.0} {:>6.2}%",
            nw.window.get(0).as_u64().unwrap(),
            nw.rows.len(),
            exact,
            est,
            err
        );
    }
}
