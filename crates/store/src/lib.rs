//! # sso-store
//!
//! Durable operator state for the stream-sampling runtime:
//!
//! * **window-boundary checkpoints** — at every window close the
//!   operator's persistent state is exactly its cross-window carry-over
//!   (the group and supergroup tables are empty at the boundary), so a
//!   shard snapshot is the emitted window outputs plus the carry-over
//!   SFUN states and library-auxiliary records, written as a versioned,
//!   checksummed, length-prefixed file per shard;
//! * **a carry-over WAL** — between checkpoints, each closed window
//!   appends one framed record (output + carry + aux) to an append-only
//!   log, so a restarted worker resumes from the last *recorded* window
//!   and loses at most the window that was open when the process died;
//! * **a spill-to-disk paged group table** — when a query's certified
//!   live state exceeds the configured `--state-budget`, the group
//!   table pages entries to a spill file under clock (second-chance)
//!   eviction, keeping resident bytes under the budget.
//!
//! Recovery reads the newest valid checkpoint (falling back to the
//! previous one on checksum mismatch), replays WAL records that chain
//! onto it by sequence number, and hands the runtime a watermark: the
//! window key of the last durable window. The restarted run re-feeds
//! the deterministic input and skips every window at or below the
//! watermark, so surviving windows are byte-identical to a fault-free
//! run.

mod manifest;
mod pager;
mod wal;

pub use manifest::{read_manifest, write_manifest};
pub use pager::PagedGroupTable;
pub use wal::{recover_shard, FsyncPolicy, RecoveredShard, ShardStore, StoreConfig, WindowRecord};
