//! **Observability overhead** — throughput cost of full telemetry.
//!
//! Runs the `runtime_scaling` workload (the paper's dynamic subset-sum
//! query, 1000 samples per period, over the steady ~100k pkt/s
//! data-center feed) on the 4-way sharded runtime twice per repetition:
//! once uninstrumented (no registry: spans disabled, operator metrics
//! absent) and once with a live [`sso_obs::Registry`] attached (every
//! counter, gauge, histogram, sampled span, and the under-sampling
//! detector active). Repetitions alternate the two modes so clock drift
//! and cache warming hit both equally; best-of-reps is reported.
//!
//! The acceptance gate (enforced by `scripts/check.sh` over
//! `BENCH_obs.json`) is ≤ 5% throughput overhead: telemetry must be
//! cheap enough to leave on in production, which is the point of the
//! sharded-handle registry and the one-branch disabled path.

use std::time::Instant;

use sso_bench::{header, maybe_json};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{queries, shard_plan, OpError, OperatorSpec};
use sso_gigascope::{run_plan_sharded_with, SelectionNode};
use sso_netgen::datacenter_feed;
use sso_obs::Registry;
use sso_runtime::RuntimeConfig;
use sso_types::Packet;

const SEED: u64 = 0x5ca1e;
const SECONDS: u64 = 20;
const WINDOW: u64 = 5;
const TARGET: usize = 1000;
const SHARDS: usize = 4;
const REPS: usize = 7;

#[derive(serde::Serialize)]
struct Config {
    feed: &'static str,
    seed: u64,
    seconds: u64,
    packets: usize,
    window_secs: u64,
    target_samples: usize,
    shards: usize,
    reps: usize,
}

#[derive(serde::Serialize)]
struct Mode {
    instrumented: bool,
    secs: f64,
    tuples_per_sec: f64,
    windows: usize,
}

#[derive(serde::Serialize)]
struct Report {
    config: Config,
    uninstrumented: Mode,
    instrumented: Mode,
    /// Throughput lost to telemetry, percent (negative = noise in the
    /// instrumented run's favor).
    overhead_pct: f64,
    metrics_in_final_snapshot: usize,
}

fn spec(shards: usize) -> impl Fn(usize) -> Result<OperatorSpec, OpError> {
    move |_shard| {
        let cfg = SubsetSumOpConfig {
            target: TARGET.div_ceil(shards),
            initial_z: 1.0,
            ..Default::default()
        };
        queries::subset_sum_query(WINDOW, cfg, false)
    }
}

fn run_once(packets: &[Packet], registry: Option<&Registry>) -> (f64, usize) {
    let full = SubsetSumOpConfig { target: TARGET, initial_z: 1.0, ..Default::default() };
    let plan = shard_plan(&queries::subset_sum_query(WINDOW, full, false).unwrap())
        .expect("subset-sum is shard-mergeable");
    let mut cfg = RuntimeConfig::new(SHARDS);
    if let Some(reg) = registry {
        cfg = cfg.with_registry(reg.clone());
    }
    let t0 = Instant::now();
    let report = run_plan_sharded_with(
        Box::new(SelectionNode::pass_all()),
        &plan,
        spec(SHARDS),
        &cfg,
        packets.iter().cloned(),
    )
    .expect("sharded run");
    (t0.elapsed().as_secs_f64(), report.windows.len())
}

fn main() {
    let packets = datacenter_feed(SEED).take_seconds(SECONDS);
    let n = packets.len();
    if !sso_bench::json_mode() {
        eprintln!("# {n} packets, {REPS} alternating reps per mode");
    }

    let mut plain_best = (f64::INFINITY, 0usize);
    let mut instr_best = (f64::INFINITY, 0usize);
    let mut metrics_in_final_snapshot = 0usize;
    for _ in 0..REPS {
        let plain = run_once(&packets, None);
        if plain.0 < plain_best.0 {
            plain_best = plain;
        }
        let registry = Registry::new();
        let instr = run_once(&packets, Some(&registry));
        if instr.0 < instr_best.0 {
            instr_best = instr;
        }
        metrics_in_final_snapshot = registry.snapshot().metrics.len();
    }

    let plain_tps = n as f64 / plain_best.0;
    let instr_tps = n as f64 / instr_best.0;
    let report = Report {
        config: Config {
            feed: "datacenter",
            seed: SEED,
            seconds: SECONDS,
            packets: n,
            window_secs: WINDOW,
            target_samples: TARGET,
            shards: SHARDS,
            reps: REPS,
        },
        uninstrumented: Mode {
            instrumented: false,
            secs: plain_best.0,
            tuples_per_sec: plain_tps,
            windows: plain_best.1,
        },
        instrumented: Mode {
            instrumented: true,
            secs: instr_best.0,
            tuples_per_sec: instr_tps,
            windows: instr_best.1,
        },
        overhead_pct: 100.0 * (plain_tps - instr_tps) / plain_tps,
        metrics_in_final_snapshot,
    };

    if maybe_json(&report) {
        return;
    }
    header("Observability overhead: instrumented vs uninstrumented sharded subset-sum");
    println!("{:>14} {:>8} {:>12} {:>8}", "mode", "secs", "tuples/s", "windows");
    for m in [&report.uninstrumented, &report.instrumented] {
        println!(
            "{:>14} {:>8.3} {:>12.0} {:>8}",
            if m.instrumented { "instrumented" } else { "uninstrumented" },
            m.secs,
            m.tuples_per_sec,
            m.windows,
        );
    }
    println!(
        "overhead: {:.2}% ({} metrics in final snapshot)",
        report.overhead_pct, report.metrics_in_final_snapshot
    );
}
