//! The lock-free metrics registry.
//!
//! A [`Registry`] hands out writer handles — [`Counter`], [`Gauge`],
//! [`Histogram`](crate::Histogram) — each backed by its own *cell* of
//! atomics. Handles are cheap `Arc` clones; writers update their cell
//! with `Relaxed` operations and never contend with other shards.
//! [`Registry::snapshot`] walks the cell table and merges cells sharing
//! a `(name, label)` key, so per-shard handles registered under the same
//! name read back as one metric.
//!
//! The registry itself is `Clone` (shared interior), `Send`, and `Sync`.
//! A [`Registry::disabled`] registry still hands out working handles —
//! writes land in the cells as usual so callers need no branches — but
//! marks span tracing off so [`SampledSpan`](crate::SampledSpan) guards
//! are never taken, and `is_enabled()` lets exporters skip work.

use std::sync::Arc;

use sso_sync::Ordering::Relaxed;
use sso_sync::{SyncBool, SyncMutex, SyncU64};

use crate::hist::{HistCore, HistSnapshot, Histogram};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<SyncU64>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value of this cell (not merged across shards).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge handle holding an `f64` (stored as bits in a `SyncU64`).
///
/// `set` overwrites; `add` does a CAS loop, so per-shard gauge cells
/// registered under one name sum to a meaningful total at snapshot time
/// (e.g. ring depth contributions).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<SyncU64>);

impl Gauge {
    /// Overwrite the gauge value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Add `delta` (may be negative) to the gauge value.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value of this cell (not merged across shards).
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// What kind of metric a cell holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// The merged value of a metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Sum of all counter cells.
    Counter(u64),
    /// Sum of all gauge cells (per-shard contributions add up).
    Gauge(f64),
    /// Element-wise merged histogram.
    Histogram(HistSnapshot),
}

/// One merged metric: `(name, label)` plus its merged value.
#[derive(Debug, Clone)]
pub struct Metric {
    pub name: &'static str,
    /// Distinguishes instances of the same metric (e.g. `shard=3`).
    /// Empty for unlabeled metrics.
    pub label: String,
    pub kind: MetricKind,
    pub value: MetricValue,
}

impl Metric {
    /// The merged value as a single `f64` — counters and gauges as-is,
    /// histograms as their sum (e.g. total nanoseconds).
    pub fn scalar(&self) -> f64 {
        match &self.value {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.sum as f64,
        }
    }

    /// Observation count: 1 for counters/gauges, `count` for histograms.
    pub fn hits(&self) -> u64 {
        match &self.value {
            MetricValue::Histogram(h) => h.count,
            _ => 1,
        }
    }
}

/// A point-in-time merged view of every metric in a registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot sequence number, increasing per `Registry::snapshot` call.
    pub seq: u64,
    /// Merged metrics, sorted by `(name, label)`.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Look up a merged metric by name (first label match wins).
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Look up a merged metric by name and label.
    pub fn get_labeled(&self, name: &str, label: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name && m.label == label)
    }

    /// Scalar value of a metric, or 0 when absent.
    pub fn value(&self, name: &str) -> f64 {
        self.get(name).map(|m| m.scalar()).unwrap_or(0.0)
    }
}

enum CellValue {
    Counter(Arc<SyncU64>),
    Gauge(Arc<SyncU64>),
    Histogram(Arc<HistCore>),
}

struct Cell {
    name: &'static str,
    label: String,
    value: CellValue,
}

struct Inner {
    /// Span tracing on/off; `false` for `Registry::disabled()`.
    enabled: SyncBool,
    cells: SyncMutex<Vec<Cell>>,
    seq: SyncU64,
}

/// Shared handle to the metrics registry. Cloning shares state.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .field("cells", &self.inner.cells.lock().len())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A live registry: handles record, spans sample.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Inner {
                enabled: SyncBool::new(true),
                cells: SyncMutex::new(Vec::new()),
                seq: SyncU64::new(0),
            }),
        }
    }

    /// A disabled registry: handles still work (no branches for
    /// callers) but span tracing is off and `is_enabled()` is false.
    pub fn disabled() -> Self {
        let r = Registry::new();
        r.inner.enabled.store(false, Relaxed);
        r
    }

    /// Whether span tracing / live export is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Relaxed)
    }

    fn register(&self, name: &'static str, label: String, value: CellValue) {
        self.inner.cells.lock().push(Cell { name, label, value });
    }

    /// Register a new counter cell under `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_labeled(name, String::new())
    }

    /// Register a new counter cell under `(name, label)`.
    pub fn counter_labeled(&self, name: &'static str, label: impl Into<String>) -> Counter {
        let cell = Arc::new(SyncU64::new(0));
        self.register(name, label.into(), CellValue::Counter(cell.clone()));
        Counter(cell)
    }

    /// Register a new gauge cell under `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_labeled(name, String::new())
    }

    /// Register a new gauge cell under `(name, label)`.
    pub fn gauge_labeled(&self, name: &'static str, label: impl Into<String>) -> Gauge {
        let cell = Arc::new(SyncU64::new(0f64.to_bits()));
        self.register(name, label.into(), CellValue::Gauge(cell.clone()));
        Gauge(cell)
    }

    /// Register a new histogram cell under `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_labeled(name, String::new())
    }

    /// Register a new histogram cell under `(name, label)`.
    pub fn histogram_labeled(&self, name: &'static str, label: impl Into<String>) -> Histogram {
        let h = Histogram::new();
        self.register(name, label.into(), CellValue::Histogram(h.0.clone()));
        h
    }

    /// Merge all cells into a sorted snapshot and bump the sequence
    /// number. Reads are `Relaxed`: a snapshot is a statistical view
    /// and may miss increments still in flight on other cores.
    pub fn snapshot(&self) -> Snapshot {
        let cells = self.inner.cells.lock();
        let mut metrics: Vec<Metric> = Vec::new();
        for cell in cells.iter() {
            let existing =
                metrics.iter_mut().find(|m| m.name == cell.name && m.label == cell.label);
            match (&cell.value, existing) {
                (CellValue::Counter(c), Some(m)) => {
                    if let MetricValue::Counter(v) = &mut m.value {
                        *v += c.load(Relaxed);
                    }
                }
                (CellValue::Counter(c), None) => metrics.push(Metric {
                    name: cell.name,
                    label: cell.label.clone(),
                    kind: MetricKind::Counter,
                    value: MetricValue::Counter(c.load(Relaxed)),
                }),
                (CellValue::Gauge(g), Some(m)) => {
                    if let MetricValue::Gauge(v) = &mut m.value {
                        *v += f64::from_bits(g.load(Relaxed));
                    }
                }
                (CellValue::Gauge(g), None) => metrics.push(Metric {
                    name: cell.name,
                    label: cell.label.clone(),
                    kind: MetricKind::Gauge,
                    value: MetricValue::Gauge(f64::from_bits(g.load(Relaxed))),
                }),
                (CellValue::Histogram(h), Some(m)) => {
                    if let MetricValue::Histogram(s) = &mut m.value {
                        s.merge_from(h);
                    }
                }
                (CellValue::Histogram(h), None) => {
                    let mut s = HistSnapshot::default();
                    s.merge_from(h);
                    metrics.push(Metric {
                        name: cell.name,
                        label: cell.label.clone(),
                        kind: MetricKind::Histogram,
                        value: MetricValue::Histogram(s),
                    });
                }
            }
        }
        drop(cells);
        metrics.sort_by(|a, b| (a.name, &a.label).cmp(&(b.name, &b.label)));
        Snapshot { seq: self.inner.seq.fetch_add(1, Relaxed), metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_by_name() {
        let r = Registry::new();
        let a = r.counter("rt.tuples");
        let b = r.counter("rt.tuples");
        a.add(10);
        b.add(32);
        let snap = r.snapshot();
        let m = snap.get("rt.tuples").unwrap();
        assert_eq!(m.value, MetricValue::Counter(42));
        assert_eq!(snap.metrics.len(), 1);
    }

    #[test]
    fn labels_keep_cells_apart() {
        let r = Registry::new();
        r.counter_labeled("rt.tuples", "shard=0").add(1);
        r.counter_labeled("rt.tuples", "shard=1").add(2);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        assert_eq!(snap.get_labeled("rt.tuples", "shard=1").unwrap().scalar(), 2.0);
    }

    #[test]
    fn gauges_sum_and_add_cas() {
        let r = Registry::new();
        let g0 = r.gauge("rt.ring_depth");
        let g1 = r.gauge("rt.ring_depth");
        g0.set(3.0);
        g1.add(2.0);
        g1.add(-0.5);
        assert_eq!(g1.get(), 1.5);
        assert_eq!(r.snapshot().value("rt.ring_depth"), 4.5);
    }

    #[test]
    fn histograms_merge_elementwise() {
        let r = Registry::new();
        let h0 = r.histogram("op.process_ns");
        let h1 = r.histogram("op.process_ns");
        h0.record(100);
        h1.record(100);
        h1.record(1 << 30);
        let snap = r.snapshot();
        let m = snap.get("op.process_ns").unwrap();
        match &m.value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.buckets[6], 2);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(m.hits(), 3);
    }

    #[test]
    fn seq_increases_per_snapshot() {
        let r = Registry::new();
        assert_eq!(r.snapshot().seq, 0);
        assert_eq!(r.snapshot().seq, 1);
        assert_eq!(r.snapshot().seq, 2);
    }

    #[test]
    fn disabled_registry_still_counts() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        c.inc();
        assert_eq!(r.snapshot().value("x"), 1.0);
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        r.counter_labeled("a", "shard=1").inc();
        let names: Vec<_> =
            r.snapshot().metrics.iter().map(|m| (m.name, m.label.clone())).collect();
        assert_eq!(
            names,
            vec![("a", String::new()), ("a", "shard=1".into()), ("b", String::new())]
        );
    }
}
