//! Flow-level traffic structure: 5-tuples, heavy-tailed flow lengths,
//! and per-flow packet-size profiles.

use rand::rngs::StdRng;
use rand::Rng;
use sso_types::{Packet, Protocol};

/// The packet-size character of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowProfile {
    /// Bulk transfer: mostly MTU-sized data packets plus small ACKs.
    Bulk,
    /// Interactive / request-response: small packets.
    Interactive,
    /// Attack traffic: minimum-size packets.
    Tiny,
}

/// One active flow emitting packets.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dest_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dest_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
    /// Packets this flow has left to send.
    pub remaining: u32,
    /// Size profile.
    pub profile: FlowProfile,
}

impl Flow {
    /// Draw one packet length according to the flow's profile.
    pub fn packet_len(&self, rng: &mut StdRng) -> u32 {
        match self.profile {
            FlowProfile::Bulk => {
                let r: f64 = rng.gen();
                if r < 0.62 {
                    1500
                } else if r < 0.87 {
                    40
                } else {
                    rng.gen_range(100..1400)
                }
            }
            FlowProfile::Interactive => {
                let r: f64 = rng.gen();
                if r < 0.5 {
                    40
                } else {
                    rng.gen_range(41..576)
                }
            }
            FlowProfile::Tiny => 40,
        }
    }

    /// Emit one packet at `uts`, decrementing the remaining count.
    pub fn emit(&mut self, uts: u64, rng: &mut StdRng) -> Packet {
        debug_assert!(self.remaining > 0);
        self.remaining -= 1;
        Packet {
            uts,
            src_ip: self.src_ip,
            dest_ip: self.dest_ip,
            src_port: self.src_port,
            dest_port: self.dest_port,
            proto: self.proto,
            len: self.packet_len(rng),
        }
    }

    /// `true` when the flow has sent all its packets.
    pub fn done(&self) -> bool {
        self.remaining == 0
    }
}

/// Draw a Pareto-distributed flow length: `min · U^(-1/alpha)`, capped.
///
/// `alpha ≈ 1.2` gives the classic elephant/mice internet mix: most flows
/// are a handful of packets; a few carry most of the volume.
pub fn pareto_flow_len(rng: &mut StdRng, min: u32, alpha: f64, cap: u32) -> u32 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let len = min as f64 * u.powf(-1.0 / alpha);
    (len as u32).clamp(min, cap)
}

/// Parameters of the address/port space packets are drawn from.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// Number of distinct client (source) addresses.
    pub clients: u32,
    /// Number of distinct server (destination) addresses.
    pub servers: u32,
    /// Zipf skew for destination popularity (0 = uniform).
    pub dest_skew: f64,
}

impl AddressSpace {
    /// Defaults: 4k clients, 512 servers, strong skew so heavy hitters
    /// exist.
    pub fn new() -> Self {
        AddressSpace { clients: 4096, servers: 512, dest_skew: 1.1 }
    }

    /// Draw a client address (uniform over `10.0.0.0/16`-ish space).
    pub fn client(&self, rng: &mut StdRng) -> u32 {
        0x0a00_0000 | rng.gen_range(0..self.clients)
    }

    /// Draw a server address with Zipf-like popularity: server rank `k`
    /// has probability ~ `1/(k+1)^skew`.
    pub fn server(&self, rng: &mut StdRng) -> u32 {
        // Inverse-CDF approximation for a Zipf-ish rank draw.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let n = self.servers as f64;
        let rank = if self.dest_skew <= 0.0 {
            (u * n) as u32
        } else {
            // rank ~ n * u^(1/(1-s)) degenerates at s=1; use exponentiated
            // inverse: rank = floor(n^u) - 1 gives a heavy head.
            (n.powf(u) - 1.0) as u32
        };
        0xc0a8_0000 | rank.min(self.servers - 1)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// Spawn a new flow in the given address space.
///
/// `tiny` forces the attack profile (single-packet flows from spoofed
/// sources) used by the DDoS scenario.
pub fn spawn_flow(rng: &mut StdRng, space: &AddressSpace, tiny: bool) -> Flow {
    if tiny {
        return Flow {
            // Spoofed, effectively unique sources.
            src_ip: rng.gen(),
            dest_ip: 0xc0a8_0001,
            src_port: rng.gen_range(1024..u16::MAX),
            dest_port: 80,
            proto: Protocol::Udp,
            remaining: rng.gen_range(1..=2),
            profile: FlowProfile::Tiny,
        };
    }
    let remaining = pareto_flow_len(rng, 2, 1.2, 20_000);
    let profile = if remaining >= 20 { FlowProfile::Bulk } else { FlowProfile::Interactive };
    let proto = if rng.gen::<f64>() < 0.9 { Protocol::Tcp } else { Protocol::Udp };
    Flow {
        src_ip: space.client(rng),
        dest_ip: space.server(rng),
        src_port: rng.gen_range(1024..u16::MAX),
        dest_port: *[80u16, 443, 443, 443, 22, 53, 8080].get(rng.gen_range(0..7usize)).unwrap(),
        proto,
        remaining,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn pareto_lengths_are_heavy_tailed() {
        let mut g = rng(1);
        let lens: Vec<u32> = (0..20_000).map(|_| pareto_flow_len(&mut g, 2, 1.2, 20_000)).collect();
        let small = lens.iter().filter(|&&l| l <= 10).count() as f64 / lens.len() as f64;
        let huge = lens.iter().filter(|&&l| l >= 1000).count();
        assert!(small > 0.6, "most flows should be mice: {small}");
        assert!(huge > 0, "some flows should be elephants");
        assert!(lens.iter().all(|&l| (2..=20_000).contains(&l)));
    }

    #[test]
    fn flow_emits_exactly_remaining_packets() {
        let mut g = rng(2);
        let space = AddressSpace::new();
        let mut f = spawn_flow(&mut g, &space, false);
        let n = f.remaining;
        let mut emitted = 0;
        while !f.done() {
            let p = f.emit(emitted as u64, &mut g);
            assert_eq!(p.src_ip, f.src_ip);
            emitted += 1;
        }
        assert_eq!(emitted, n);
    }

    #[test]
    fn bulk_flows_carry_mtu_packets() {
        let mut g = rng(3);
        let f = Flow {
            src_ip: 1,
            dest_ip: 2,
            src_port: 3,
            dest_port: 4,
            proto: Protocol::Tcp,
            remaining: 1000,
            profile: FlowProfile::Bulk,
        };
        let lens: Vec<u32> = (0..1000).map(|_| f.packet_len(&mut g)).collect();
        let mtu = lens.iter().filter(|&&l| l == 1500).count() as f64 / 1000.0;
        assert!((0.5..0.75).contains(&mtu), "MTU fraction {mtu}");
        assert!(lens.iter().all(|&l| (40..=1500).contains(&l)));
    }

    #[test]
    fn interactive_flows_stay_small() {
        let mut g = rng(4);
        let f = Flow {
            src_ip: 1,
            dest_ip: 2,
            src_port: 3,
            dest_port: 4,
            proto: Protocol::Tcp,
            remaining: 1000,
            profile: FlowProfile::Interactive,
        };
        for _ in 0..1000 {
            assert!(f.packet_len(&mut g) < 576);
        }
    }

    #[test]
    fn destination_popularity_is_skewed() {
        let mut g = rng(5);
        let space = AddressSpace::new();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(space.server(&mut g)).or_insert(0u32) += 1;
        }
        let max = *counts.values().max().unwrap() as f64 / 50_000.0;
        assert!(max > 0.05, "top destination should be a heavy hitter: {max}");
        assert!(counts.len() > 50, "but many destinations should appear: {}", counts.len());
    }

    #[test]
    fn tiny_flows_are_single_packet_spoofed() {
        let mut g = rng(6);
        let space = AddressSpace::new();
        let mut srcs = std::collections::HashSet::new();
        for _ in 0..1000 {
            let f = spawn_flow(&mut g, &space, true);
            assert!(f.remaining <= 2);
            assert_eq!(f.profile, FlowProfile::Tiny);
            assert_eq!(f.dest_ip, 0xc0a8_0001);
            srcs.insert(f.src_ip);
        }
        assert!(srcs.len() > 990, "attack sources should be ~unique: {}", srcs.len());
    }

    #[test]
    fn client_addresses_in_expected_prefix() {
        let mut g = rng(7);
        let space = AddressSpace::new();
        for _ in 0..100 {
            let ip = space.client(&mut g);
            assert_eq!(ip >> 24, 0x0a);
        }
    }
}
