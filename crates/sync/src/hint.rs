//! Spin-loop shims.

/// Yield inside a spin/backoff loop.
///
/// Normal builds: `std::thread::yield_now()`. In a model run the thread
/// *blocks* until some other thread performs a write (any store, RMW,
/// cell write, or unlock) — an unbounded spin loop would otherwise make
/// exhaustive exploration diverge, and a spin that can never be
/// released by another thread's write is a livelock, which the
/// scheduler reports as a deadlock.
#[inline]
pub fn spin_yield() {
    #[cfg(feature = "model")]
    if crate::model::ctx::with(|c| c.yield_now()).is_some() {
        return;
    }
    std::thread::yield_now();
}

/// Escalating wait for loops that may stay blocked for a while: a run
/// of plain [`spin_yield`]s first (short waits stay cheap and a model
/// run sees nothing but blocking yields), then exponentially growing
/// micro-sleeps capped well under a batch's worth of work. The sleep
/// escalation is what keeps an oversubscribed host healthy: when every
/// worker shares one core, N idle waiters yield-looping consume N/(N+1)
/// of the scheduler's quanta and the single busy thread crawls —
/// parking the waiters gives the core back. Callers re-create (or
/// [`Backoff::reset`]) after progress so the next wait starts cheap.
#[derive(Default)]
pub struct Backoff {
    rounds: u32,
}

impl Backoff {
    /// Plain yields before the first sleep.
    const YIELDS: u32 = 32;
    /// Sleep ceiling; doubling stops here (~¼ of a 1 ms batch).
    const MAX_SLEEP_MICROS: u64 = 64;

    pub const fn new() -> Self {
        Backoff { rounds: 0 }
    }

    /// Wait one round, escalating. In a model run every round is a
    /// blocking [`spin_yield`] — exploration semantics are unchanged.
    pub fn wait(&mut self) {
        #[cfg(feature = "model")]
        if crate::model::ctx::with(|c| c.yield_now()).is_some() {
            return;
        }
        if self.rounds < Self::YIELDS {
            self.rounds += 1;
            std::thread::yield_now();
        } else {
            let exp = (self.rounds - Self::YIELDS).min(8);
            self.rounds = self.rounds.saturating_add(1);
            let micros = (1u64 << exp).min(Self::MAX_SLEEP_MICROS);
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
    }

    /// Forget the escalation; the next [`Backoff::wait`] yields again.
    pub fn reset(&mut self) {
        self.rounds = 0;
    }
}
