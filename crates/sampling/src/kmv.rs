//! K-minimum-values (KMV) min-hash signatures (§4.3).
//!
//! A min-hash signature compresses a set so that the *resemblance*
//! `ρ(A,B) = |A∩B| / |A∪B|` of two sets can be estimated from the
//! signatures alone. Following Broder (and the paper), instead of the
//! minimum of `k` hash functions we keep the `k` minimum values of a
//! single hash function over the set's elements.
//!
//! The sketch also supports the Datar–Muthukrishnan estimators the paper
//! cites: **distinct count** (from the k-th minimum) and **rarity** (the
//! fraction of distinct elements appearing exactly once), the latter by
//! tracking a multiplicity counter per retained hash value.

use std::collections::BTreeMap;

use crate::hash::{splitmix64, to_unit};

/// A KMV sketch: the `k` smallest distinct hash values seen, each with a
/// multiplicity count (for rarity estimation).
#[derive(Debug, Clone)]
pub struct KmvSketch {
    k: usize,
    /// hash value -> number of times an element with this hash was seen
    /// while the hash was retained.
    mins: BTreeMap<u64, u64>,
}

impl KmvSketch {
    /// Create a sketch retaining the `k` smallest hash values.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "kmv signature size must be positive");
        KmvSketch { k, mins: BTreeMap::new() }
    }

    /// Signature size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Observe an element by its 64-bit key (hashed internally).
    pub fn insert(&mut self, key: u64) {
        self.insert_hash(splitmix64(key));
    }

    /// Observe a pre-hashed value. Returns `true` if the value is (now)
    /// part of the signature.
    pub fn insert_hash(&mut self, h: u64) -> bool {
        if let Some(count) = self.mins.get_mut(&h) {
            *count += 1;
            return true;
        }
        if self.mins.len() < self.k {
            self.mins.insert(h, 1);
            return true;
        }
        let &max = self.mins.last_key_value().expect("non-empty").0;
        if h < max {
            self.mins.remove(&max);
            self.mins.insert(h, 1);
            true
        } else {
            false
        }
    }

    /// The current number of retained values (≤ k).
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// `true` if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// The k-th smallest hash value seen so far, or `u64::MAX` while fewer
    /// than `k` values are retained (so `h <= kth_smallest()` admits
    /// everything during warm-up, matching the operator's WHERE clause).
    pub fn kth_smallest(&self) -> u64 {
        if self.mins.len() < self.k {
            u64::MAX
        } else {
            *self.mins.last_key_value().expect("non-empty").0
        }
    }

    /// The retained hash values in increasing order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.mins.keys().copied()
    }

    /// Estimate of the number of distinct elements: `(k-1) / U(h_k)` where
    /// `U` maps hashes to the unit interval. Exact when fewer than `k`
    /// distinct values were seen.
    pub fn distinct_estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            return self.mins.len() as f64;
        }
        let kth = to_unit(self.kth_smallest());
        if kth == 0.0 {
            return self.mins.len() as f64;
        }
        (self.k as f64 - 1.0) / kth
    }

    /// Estimate of the rarity: the fraction of *distinct* elements that
    /// appeared exactly once, estimated over the min-wise sample.
    pub fn rarity_estimate(&self) -> f64 {
        if self.mins.is_empty() {
            return 0.0;
        }
        let singletons = self.mins.values().filter(|&&c| c == 1).count();
        singletons as f64 / self.mins.len() as f64
    }

    /// Merge with another sketch of the same `k`: the signature of the
    /// union of the two underlying sets.
    ///
    /// # Panics
    /// Panics if the signature sizes differ.
    pub fn merge(&self, other: &KmvSketch) -> KmvSketch {
        assert_eq!(self.k, other.k, "cannot merge sketches of different k");
        let mut out = KmvSketch::new(self.k);
        let mut merged: BTreeMap<u64, u64> = self.mins.clone();
        for (&h, &c) in &other.mins {
            *merged.entry(h).or_insert(0) += c;
        }
        out.mins = merged.into_iter().take(self.k).collect();
        out
    }

    /// Estimate the resemblance `|A∩B| / |A∪B|` from two signatures:
    /// among the `k` smallest hashes of the union, the fraction present in
    /// both signatures.
    ///
    /// # Panics
    /// Panics if the signature sizes differ.
    pub fn resemblance(&self, other: &KmvSketch) -> f64 {
        assert_eq!(self.k, other.k, "cannot compare sketches of different k");
        let union = self.merge(other);
        if union.is_empty() {
            return 0.0;
        }
        let in_both = union
            .mins
            .keys()
            .filter(|h| self.mins.contains_key(h) && other.mins.contains_key(h))
            .count();
        in_both as f64 / union.mins.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "signature size must be positive")]
    fn zero_k_panics() {
        let _ = KmvSketch::new(0);
    }

    #[test]
    fn retains_k_smallest_distinct() {
        let mut s = KmvSketch::new(3);
        for h in [50u64, 10, 40, 20, 30] {
            s.insert_hash(h);
        }
        assert_eq!(s.values().collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(s.kth_smallest(), 30);
    }

    #[test]
    fn kth_smallest_is_max_while_filling() {
        let mut s = KmvSketch::new(3);
        assert_eq!(s.kth_smallest(), u64::MAX);
        s.insert_hash(5);
        s.insert_hash(6);
        assert_eq!(s.kth_smallest(), u64::MAX);
        s.insert_hash(7);
        assert_eq!(s.kth_smallest(), 7);
    }

    #[test]
    fn duplicates_increment_multiplicity_not_size() {
        let mut s = KmvSketch::new(4);
        s.insert(1);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.len(), 2);
        // One of {1,2} appeared twice, the other once.
        assert!((s.rarity_estimate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_estimate_exact_when_small() {
        let mut s = KmvSketch::new(100);
        for key in 0..37u64 {
            s.insert(key);
        }
        assert_eq!(s.distinct_estimate(), 37.0);
    }

    #[test]
    fn distinct_estimate_accuracy() {
        let mut s = KmvSketch::new(256);
        let true_distinct = 50_000u64;
        for key in 0..true_distinct {
            s.insert(key);
            s.insert(key); // duplicates must not matter
        }
        let est = s.distinct_estimate();
        let rel = (est - true_distinct as f64).abs() / true_distinct as f64;
        // Standard error ~ 1/sqrt(k) ~ 6%; allow 4 sigma.
        assert!(rel < 0.25, "estimate {est} vs {true_distinct} (rel {rel:.3})");
    }

    #[test]
    fn resemblance_of_identical_sets_is_one() {
        let mut a = KmvSketch::new(64);
        let mut b = KmvSketch::new(64);
        for key in 0..1000u64 {
            a.insert(key);
            b.insert(key);
        }
        assert_eq!(a.resemblance(&b), 1.0);
    }

    #[test]
    fn resemblance_of_disjoint_sets_is_zero() {
        let mut a = KmvSketch::new(64);
        let mut b = KmvSketch::new(64);
        for key in 0..1000u64 {
            a.insert(key);
            b.insert(key + 1_000_000);
        }
        assert_eq!(a.resemblance(&b), 0.0);
    }

    #[test]
    fn resemblance_estimates_overlap() {
        // |A| = |B| = 3000, |A ∩ B| = 1500, |A ∪ B| = 4500 -> rho = 1/3.
        let mut a = KmvSketch::new(400);
        let mut b = KmvSketch::new(400);
        for key in 0..3000u64 {
            a.insert(key);
            b.insert(key + 1500);
        }
        let rho = a.resemblance(&b);
        assert!((rho - 1.0 / 3.0).abs() < 0.1, "rho = {rho}");
    }

    #[test]
    fn merge_equals_sketch_of_union() {
        let mut a = KmvSketch::new(32);
        let mut b = KmvSketch::new(32);
        let mut ab = KmvSketch::new(32);
        for key in 0..500u64 {
            a.insert(key);
            ab.insert(key);
        }
        for key in 400..900u64 {
            b.insert(key);
            ab.insert(key);
        }
        let merged = a.merge(&b);
        assert_eq!(
            merged.values().collect::<Vec<_>>(),
            ab.values().collect::<Vec<_>>(),
            "merged signature must equal the union's signature"
        );
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn merging_different_k_panics() {
        let a = KmvSketch::new(4);
        let b = KmvSketch::new(8);
        let _ = a.merge(&b);
    }

    #[test]
    fn rarity_estimate_tracks_singleton_fraction() {
        // 100 distinct keys; keys 0..50 appear once, keys 50..100 appear 3x.
        let mut s = KmvSketch::new(100);
        for key in 0..50u64 {
            s.insert(key);
        }
        for key in 50..100u64 {
            for _ in 0..3 {
                s.insert(key);
            }
        }
        // Sketch holds all 100 distinct keys, so the estimate is exact.
        assert!((s.rarity_estimate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sketch_estimates() {
        let s = KmvSketch::new(8);
        assert!(s.is_empty());
        assert_eq!(s.distinct_estimate(), 0.0);
        assert_eq!(s.rarity_estimate(), 0.0);
        assert_eq!(s.resemblance(&KmvSketch::new(8)), 0.0);
    }
}
