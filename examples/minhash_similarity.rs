//! Min-hash sampling on the operator: per-source min-hash signatures of
//! destination sets (§6.6), used to estimate *resemblance* between the
//! destination sets of pairs of sources — plus rarity estimation with
//! the reference KMV sketch.
//!
//! ```sh
//! cargo run --release --example minhash_similarity
//! ```

use std::collections::{HashMap, HashSet};

use stream_sampler::prelude::*;
use stream_sampler::sampling::KmvSketch;

fn main() {
    const K: usize = 100;
    let query = format!(
        "SELECT tb, srcIP, HX
         FROM PKT
         WHERE HX <= Kth_smallest_value$(HX, {K})
         GROUP BY time/60 as tb, srcIP, H(destIP) as HX
         SUPERGROUP tb, srcIP
         HAVING HX <= Kth_smallest_value$(HX, {K})
         CLEANING WHEN count_distinct$(*) > {K}
         CLEANING BY HX <= Kth_smallest_value$(HX, {K})"
    );
    let mut op = compile(&query, &Packet::schema(), &PlannerConfig::empty())
        .expect("min-hash query compiles");

    let packets = research_feed(23).take_seconds(60);
    println!("feed: {} packets over 60s", packets.len());

    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();
    let windows = op.run(tuples.iter()).unwrap();

    // Collect each source's signature from the operator output.
    let w = windows.last().expect("one window");
    let mut signatures: HashMap<u64, Vec<u64>> = HashMap::new();
    for row in &w.rows {
        signatures
            .entry(row.get(1).as_u64().unwrap())
            .or_default()
            .push(row.get(2).as_u64().unwrap());
    }
    println!("window {}: signatures for {} sources", w.window, signatures.len());

    // Exact destination sets for verification.
    let tb = w.window.get(0).as_u64().unwrap();
    let mut dests: HashMap<u64, HashSet<u32>> = HashMap::new();
    for p in packets.iter().filter(|p| p.time() / 60 == tb) {
        dests.entry(p.src_ip as u64).or_default().insert(p.dest_ip);
    }

    // Compare the busiest pairs: estimated vs exact resemblance.
    let mut sources: Vec<u64> = signatures.keys().copied().collect();
    sources.sort_by_key(|s| std::cmp::Reverse(dests.get(s).map_or(0, |d| d.len())));
    println!("\n{:<34} {:>10} {:>10}", "source pair", "rho (est)", "rho exact");
    for pair in sources.windows(2).take(8) {
        let (a, b) = (pair[0], pair[1]);
        let rho_est = resemblance(&signatures[&a], &signatures[&b], K);
        let (da, db) = (&dests[&a], &dests[&b]);
        let inter = da.intersection(db).count() as f64;
        let union = da.union(db).count() as f64;
        let rho_exact = if union > 0.0 { inter / union } else { 0.0 };
        println!(
            "{:<16} ~ {:<16} {:>9.3} {:>9.3}",
            format_ipv4(a as u32),
            format_ipv4(b as u32),
            rho_est,
            rho_exact
        );
    }

    // Rarity of the destination-IP stream, via the reference KMV sketch.
    let mut kmv = KmvSketch::new(256);
    for p in &packets {
        kmv.insert(p.dest_ip as u64);
    }
    println!(
        "\ndestination IPs: ~{:.0} distinct, rarity ~{:.3} (fraction seen exactly once)",
        kmv.distinct_estimate(),
        kmv.rarity_estimate()
    );
}

/// Resemblance from two k-minimum-value signatures: among the k smallest
/// of the union, the fraction present in both.
fn resemblance(a: &[u64], b: &[u64], k: usize) -> f64 {
    let sa: HashSet<u64> = a.iter().copied().collect();
    let sb: HashSet<u64> = b.iter().copied().collect();
    let mut union: Vec<u64> = sa.union(&sb).copied().collect();
    union.sort_unstable();
    union.truncate(k);
    if union.is_empty() {
        return 0.0;
    }
    let both = union.iter().filter(|h| sa.contains(h) && sb.contains(h)).count();
    both as f64 / union.len() as f64
}
