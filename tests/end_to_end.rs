//! End-to-end integration: query text → parser → planner → operator →
//! results, on synthetic feeds, cross-checked against the reference
//! algorithms in `sso-sampling` and exact computation.

use std::collections::{HashMap, HashSet};

use stream_sampler::prelude::*;
use stream_sampler::sampling::{KmvSketch, LossyCounter};

fn tuples_of(packets: &[Packet]) -> Vec<Tuple> {
    packets.iter().map(|p| p.to_tuple()).collect()
}

#[test]
fn subset_sum_text_query_tracks_exact_sums() {
    let query = "
        SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
        FROM PKT
        WHERE ssample(len, 200) = TRUE
        GROUP BY time/10 as tb, srcIP, destIP, uts
        HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(len)) = TRUE";
    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();

    let packets = datacenter_feed(101).take_seconds(30);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for p in &packets {
        *truth.entry(p.time() / 10).or_default() += p.len as u64;
    }
    let windows = op.run(tuples_of(&packets).iter()).unwrap();
    assert_eq!(windows.len(), 3);
    for w in &windows {
        let tb = w.window.get(0).as_u64().unwrap();
        let estimate: f64 = w.rows.iter().map(|r| r.get(3).as_f64().unwrap()).sum();
        let actual = truth[&tb] as f64;
        let rel = (estimate - actual).abs() / actual;
        assert!(rel < 0.2, "window {tb}: estimate {estimate:.0} vs {actual:.0} (rel {rel:.3})");
        assert!(w.rows.len() <= 220, "sample bounded near target: {}", w.rows.len());
    }
}

#[test]
fn subset_sum_subset_queries_are_estimable() {
    // The whole point of subset-sum sampling: sums over arbitrary
    // "colors" (here: per destination IP) estimated from one sample.
    let query = "
        SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
        FROM PKT
        WHERE ssample(len, 2000) = TRUE
        GROUP BY time/30 as tb, srcIP, destIP, uts
        HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(len)) = TRUE";
    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();

    let packets = datacenter_feed(102).take_seconds(30);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for p in &packets {
        *truth.entry(p.dest_ip as u64).or_default() += p.len as u64;
    }
    let windows = op.run(tuples_of(&packets).iter()).unwrap();
    let w = &windows[0];
    let mut est: HashMap<u64, f64> = HashMap::new();
    for r in &w.rows {
        *est.entry(r.get(2).as_u64().unwrap()).or_default() += r.get(3).as_f64().unwrap();
    }
    // Check the largest destinations (small ones have high variance).
    let mut biggest: Vec<(&u64, &u64)> = truth.iter().collect();
    biggest.sort_by_key(|(_, v)| std::cmp::Reverse(**v));
    for (dest, &actual) in biggest.into_iter().take(5) {
        let e = est.get(dest).copied().unwrap_or(0.0);
        let rel = (e - actual as f64).abs() / actual as f64;
        assert!(rel < 0.35, "dest {dest}: estimate {e:.0} vs {actual} (rel {rel:.3})");
    }
}

#[test]
fn heavy_hitter_query_agrees_with_lossy_counter_reference() {
    let packets = datacenter_feed(103).take_seconds(10);
    // Operator-hosted lossy counting over destIP, one 10s window.
    let query = "
        SELECT tb, destIP, sum(len), count(*)
        FROM PKT
        GROUP BY time/10 as tb, destIP
        CLEANING WHEN local_count(1000) = TRUE
        CLEANING BY count(*) + first(current_bucket()) > current_bucket()";
    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();
    let windows = op.run(tuples_of(&packets).iter()).unwrap();
    let w = &windows[0];
    let op_counts: HashMap<u64, u64> =
        w.rows.iter().map(|r| (r.get(1).as_u64().unwrap(), r.get(3).as_u64().unwrap())).collect();

    // Reference sketch over the same stream (same epsilon = 1/1000).
    let mut reference = LossyCounter::new(0.001);
    let mut exact: HashMap<u64, u64> = HashMap::new();
    for p in &packets {
        reference.insert(p.dest_ip as u64);
        *exact.entry(p.dest_ip as u64).or_default() += 1;
    }

    let n = packets.len() as f64;
    let eps_n = (0.001 * n).ceil() as u64;
    let support = 0.01;
    let ref_hits: HashSet<u64> = reference.query(support).into_iter().map(|(k, _)| k).collect();
    for (&dest, &f) in &exact {
        // Both must satisfy lossy counting's guarantees against exact.
        if (f as f64) >= support * n {
            assert!(ref_hits.contains(&dest), "reference missed {dest}");
            let op_f = op_counts.get(&dest).copied().unwrap_or(0);
            assert!(op_f > 0, "operator pruned a true heavy hitter {dest}");
            assert!(op_f <= f, "operator overcounted {dest}: {op_f} > {f}");
            assert!(f - op_f <= eps_n, "operator undercount too large for {dest}");
        }
    }
}

#[test]
fn minhash_query_matches_kmv_reference_signature() {
    const K: usize = 64;
    let packets = research_feed(104).take_seconds(20);
    let query = format!(
        "SELECT tb, srcIP, HX FROM PKT
         WHERE HX <= Kth_smallest_value$(HX, {K})
         GROUP BY time/30 as tb, srcIP, H(destIP) as HX
         SUPERGROUP srcIP
         HAVING HX <= Kth_smallest_value$(HX, {K})
         CLEANING WHEN count_distinct$(*) > {K}
         CLEANING BY HX <= Kth_smallest_value$(HX, {K})"
    );
    let mut op = compile(&query, &Packet::schema(), &PlannerConfig::empty()).unwrap();
    let windows = op.run(tuples_of(&packets).iter()).unwrap();
    let w = &windows[0];

    // Operator signature per source.
    let mut op_sigs: HashMap<u64, Vec<u64>> = HashMap::new();
    for r in &w.rows {
        op_sigs.entry(r.get(1).as_u64().unwrap()).or_default().push(r.get(2).as_u64().unwrap());
    }

    // Reference KMV per source (same hash function).
    let mut ref_sigs: HashMap<u64, KmvSketch> = HashMap::new();
    for p in &packets {
        ref_sigs
            .entry(p.src_ip as u64)
            .or_insert_with(|| KmvSketch::new(K))
            .insert(p.dest_ip as u64);
    }

    assert!(!op_sigs.is_empty());
    for (src, mut sig) in op_sigs {
        sig.sort_unstable();
        let expected: Vec<u64> = ref_sigs[&src].values().collect();
        assert_eq!(sig, expected, "signature mismatch for source {src}");
    }
}

#[test]
fn reservoir_query_sample_is_plausibly_uniform() {
    // Uniformity over *packets* needs every packet to be its own group
    // (add uts to GROUP BY, as the subset-sum query does). The paper's
    // plain (srcIP, destIP) grouping samples distinct keys, whose
    // candidacy is any-packet-admitted and therefore not uniform over
    // keys — see reservoir_query_returns_exactly_n_when_enough_input
    // for that variant.
    let query = "
        SELECT tb, srcIP, destIP
        FROM PKT
        WHERE rsample(20) = TRUE
        GROUP BY time/1 as tb, srcIP, destIP, uts
        HAVING rsfinal_clean(count_distinct$(*)) = TRUE
        CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY rsclean_with() = TRUE";
    let mut op = compile(query, &Packet::schema(), &PlannerConfig::standard()).unwrap();

    // Build a synthetic regular stream: 100 flows x 50 packets/second,
    // round robin, 40 seconds.
    let mut packets = Vec::new();
    for s in 0..40u64 {
        for i in 0..5000u64 {
            packets.push(Packet {
                uts: s * 1_000_000_000 + i * 200_000,
                src_ip: (i % 100) as u32,
                dest_ip: 1000 + (i % 100) as u32,
                src_port: 1,
                dest_port: 2,
                proto: stream_sampler::types::Protocol::Udp,
                len: 100,
            });
        }
    }
    let windows = op.run(tuples_of(&packets).iter()).unwrap();
    assert_eq!(windows.len(), 40);
    let mut counts = vec![0u32; 100];
    for w in &windows {
        assert_eq!(w.rows.len(), 20, "exactly n samples per window");
        for r in &w.rows {
            counts[r.get(1).as_u64().unwrap() as usize] += 1;
        }
    }
    // Every flow has expectation 40 * 20/100 = 8 inclusions. Check the
    // distribution's shape rather than each Poisson-8 tail individually.
    let zeros = counts.iter().filter(|&&c| c == 0).count();
    let max = *counts.iter().max().unwrap();
    let mean = counts.iter().sum::<u32>() as f64 / counts.len() as f64;
    assert!(zeros <= 2, "{zeros} flows never sampled (P ~ 3e-4 each)");
    assert!(max <= 25, "a flow was sampled {max} times; expected ~8");
    assert!((6.0..=10.0).contains(&mean), "mean inclusion {mean}, expected 8");
}

#[test]
fn queries_compile_against_builders_equivalently() {
    // The text front end and the programmatic builders must agree on
    // output for the deterministic (non-randomized) heavy-hitter query.
    let packets = datacenter_feed(105).take_seconds(5);
    let tuples = tuples_of(&packets);

    let text = "
        SELECT tb, srcIP, sum(len), count(*)
        FROM PKT
        GROUP BY time/5 as tb, srcIP
        CLEANING WHEN local_count(500) = TRUE
        CLEANING BY count(*) + first(current_bucket()) > current_bucket()";
    let mut from_text = compile(text, &Packet::schema(), &PlannerConfig::standard()).unwrap();
    let spec = queries::heavy_hitters_query(5, 500, None).unwrap();
    let mut from_builder = SamplingOperator::new(spec).unwrap();

    let a = from_text.run(tuples.iter()).unwrap();
    let b = from_builder.run(tuples.iter()).unwrap();
    assert_eq!(a.len(), b.len());
    for (wa, wb) in a.iter().zip(&b) {
        assert_eq!(wa.rows, wb.rows);
    }
}

#[test]
fn threaded_and_single_threaded_plans_agree_on_text_queries() {
    let packets = research_feed(106).take_seconds(5);
    let make = || {
        compile(
            "SELECT tb, destIP, sum(len), count(*) FROM PKT GROUP BY time/2 as tb, destIP",
            &Packet::schema(),
            &PlannerConfig::empty(),
        )
        .unwrap()
    };
    let single =
        run_plan(TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), make()), packets.clone())
            .unwrap();
    let threaded =
        run_plan_threaded(TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), make()), packets)
            .unwrap();
    assert_eq!(single.windows.len(), threaded.windows.len());
    for (a, b) in single.windows.iter().zip(&threaded.windows) {
        assert_eq!(a.rows, b.rows);
    }
}
