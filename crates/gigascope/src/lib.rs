//! # sso-gigascope
//!
//! A miniature Gigascope-style DSMS runtime (§3) hosting the sampling
//! operator:
//!
//! * a fixed-size [`ring::RingBuffer`] standing in for the NIC ring that
//!   feeds low-level queries without copying;
//! * **low-level query nodes** ([`nodes`]) that perform early data
//!   reduction directly on packet records — plain selection, or the
//!   §7.2 trick of running *basic* subset-sum sampling as a prefilter at
//!   a tenth of the dynamic algorithm's threshold. Only packets that
//!   survive the low-level node are copied into tuples (the copy is the
//!   dominant low-level cost, as in the paper's Figure 6);
//! * **high-level nodes**: a [`sso_core::SamplingOperator`] consuming
//!   the low-level node's tuple stream;
//! * an [`engine`] that wires one low-level and one high-level node into
//!   a two-level plan, runs it over a packet source (single-threaded, or
//!   with the two levels on separate threads connected by a bounded
//!   channel), and accounts each node's busy time so the benchmark
//!   harness can report the paper's "%CPU at line rate" figures.

pub mod cascade;
pub mod engine;
pub mod fanout;
pub mod lint;
pub mod network;
pub mod nodes;
pub mod partial;
pub mod ring;
pub mod sharded;
pub mod shared;

pub use cascade::Cascade;
pub use engine::{run_plan, run_plan_threaded, NodeStats, RunReport, TwoLevelPlan};
pub use fanout::{run_fanout, FanoutPlan, FanoutReport, QueryResult};
pub use lint::{cascade_output_rate, check_pushdown, check_reaggregation};
pub use network::{Input, NetworkReport, QueryNetwork};
pub use nodes::{LowLevelQuery, PrefilterNode, SelectionNode};
pub use partial::PartialAggNode;
pub use ring::RingBuffer;
pub use sharded::{run_plan_sharded, run_plan_sharded_with, ShardedRunError, ShardedRunReport};
pub use shared::{run_fanout_shared, SharedGroup, SharedQueryPlan};
