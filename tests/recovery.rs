//! Crash-recovery acceptance for the durable store (`sso-store`): a
//! 16-shard run killed mid-stream by an injected `crash@N` fault,
//! restarted against the same store over the same deterministic input,
//! must produce per-window results byte-identical to a fault-free run —
//! for the paper's subset-sum, reservoir, and lossy-counting samplers.
//! A second resume replays every window straight from the finalized
//! store, still byte-identical. Plus the spill pager: a huge-cardinality
//! lossy-counting query completes under a `--state-budget` well below
//! its certified in-RAM ceiling, with observed peak resident state
//! under the per-shard budget.

use std::path::PathBuf;

use stream_sampler::gigascope::ShardedRunError;
use stream_sampler::operator::{OpError, OperatorSpec, WindowOutput};
use stream_sampler::prelude::*;
use stream_sampler::runtime::{DurabilityConfig, RuntimeError};

const WINDOW: u64 = 2;
const SHARDS: usize = 16;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sso-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn packets() -> Vec<Packet> {
    research_feed(0xd1).take_seconds(8)
}

fn run<F>(make: F, cfg: &RuntimeConfig, pkts: Vec<Packet>) -> ShardedRunReport
where
    F: Fn(usize) -> Result<OperatorSpec, OpError> + Sync,
{
    run_plan_sharded(Box::new(SelectionNode::pass_all()), make, cfg, pkts).expect("run completes")
}

fn assert_windows_equal(a: &[WindowOutput], b: &[WindowOutput], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: window count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.window, y.window, "{what}: window key");
        assert_eq!(x.rows, y.rows, "{what}: rows for {:?}", x.window);
    }
}

/// The shared acceptance harness: fault-free reference, crashed durable
/// run, resumed run compared window-for-window, and a second resume
/// served entirely from the finalized store.
fn crash_then_recover<F>(make: F, tag: &str)
where
    F: Fn(usize) -> Result<OperatorSpec, OpError> + Sync,
{
    let pkts = packets();
    let reference = run(&make, &RuntimeConfig::new(SHARDS), pkts.clone());
    assert!(reference.windows.len() >= 3, "{tag}: need several windows to lose one");

    // Kill the run at ~60% of the stream: past the first checkpoint,
    // mid-way through a later window.
    let dir = tmpdir(tag);
    let at_tuple = (pkts.len() as u64 * 3) / 5;
    let mut fault = FaultPlan::empty(7);
    fault.events.push(FaultEvent::Crash { at_tuple });
    let mut durability = DurabilityConfig::new(&dir);
    durability.checkpoint_every = 2;
    let cfg =
        RuntimeConfig::new(SHARDS).with_durability(durability).with_faults(fault.into_shared());
    let err = run_plan_sharded(Box::new(SelectionNode::pass_all()), &make, &cfg, pkts.clone())
        .expect_err("the injected crash must kill the run");
    assert!(
        matches!(
            err,
            ShardedRunError::Runtime(RuntimeError::Crashed { at_tuple: t }) if t == at_tuple
        ),
        "{tag}: unexpected failure: {err}"
    );

    // Restart against the same store over the same deterministic
    // input: recorded windows are served back, the crash window is
    // recomputed, and nothing is degraded.
    let resume = |what: &str| {
        let mut durability = DurabilityConfig::new(&dir);
        durability.checkpoint_every = 2;
        durability.resume = true;
        let cfg = RuntimeConfig::new(SHARDS).with_durability(durability);
        let report = run(&make, &cfg, pkts.clone());
        assert_eq!(report.coverage, 1.0, "{tag}: {what} must not be a degraded run");
        report
    };
    let recovered = resume("recovery");
    assert_windows_equal(
        &reference.windows,
        &recovered.windows,
        &format!("{tag}: recovery vs fault-free"),
    );

    // Same-seed replay: the finalized store now holds every window, so
    // a second resume serves them all from disk — still byte-identical.
    let replayed = resume("replay");
    assert_windows_equal(
        &recovered.windows,
        &replayed.windows,
        &format!("{tag}: replay vs recovery"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subset_sum_crash_recovery_matches_fault_free() {
    crash_then_recover(|_| queries::basic_subset_sum_query(WINDOW, 400.0), "subset-sum");
}

#[test]
fn reservoir_crash_recovery_matches_fault_free() {
    crash_then_recover(
        |_| {
            queries::reservoir_query(
                WINDOW,
                ReservoirOpConfig { n: 40, seed: 11, ..Default::default() },
            )
        },
        "reservoir",
    );
}

#[test]
fn lossy_counting_crash_recovery_matches_fault_free() {
    crash_then_recover(|_| queries::heavy_hitters_query(WINDOW, 200, None), "lossy-counting");
}

/// The CLI recover path with multi-router ingestion: a durable
/// `--routers 2` run killed mid-stream by `crash at=N` leaves a
/// MANIFEST whose `routers` and `router_cursors` keys pin the lane
/// partition (schema-pinned here, value for value), and `sso recover
/// DIR` restores every cursor and resumes with window output
/// byte-identical to a fault-free run of the same query.
#[test]
fn cli_recover_restores_router_cursors_from_manifest() {
    let sso = env!("CARGO_BIN_EXE_sso");
    let dir = tmpdir("cli-routers");
    let seed = 9u64;
    let seconds = 4u64;
    let query = "SELECT tb, srcIP, sum(len) FROM PKT GROUP BY time/2 as tb, srcIP";
    let n = research_feed(seed).take_seconds(seconds).len() as u64;
    let at_tuple = (n * 3) / 5;
    let plan_path =
        std::env::temp_dir().join(format!("sso-recovery-cli-routers-{}.fault", std::process::id()));
    std::fs::write(&plan_path, format!("crash at={at_tuple}\n")).expect("plan file");
    let base = |extra: &[&str]| {
        let mut cmd = std::process::Command::new(sso);
        cmd.args(["run", "--feed", "research"])
            .args(["--seed", &seed.to_string()])
            .args(["--seconds", &seconds.to_string()])
            .args(["--shards", "4", "--routers", "2", "--json"])
            .args(extra)
            .arg(query);
        cmd.output().expect("sso runs")
    };

    // The fault-free reference: same query, same lane shape, no store.
    let reference = base(&[]);
    assert!(reference.status.success(), "{}", String::from_utf8_lossy(&reference.stderr));

    // The durable run dies at the injected crash, after the MANIFEST
    // (written before execution) has pinned the lane partition.
    let dir_s = dir.to_str().expect("utf-8 tempdir");
    let crashed = base(&["--durable", dir_s, "--fault-plan", plan_path.to_str().unwrap()]);
    assert!(!crashed.status.success(), "the injected crash must kill the run");
    let stderr = String::from_utf8_lossy(&crashed.stderr);
    assert!(stderr.contains("sso recover"), "crash output points at recovery:\n{stderr}");

    // Schema pin: exactly these keys, exactly these values.
    let manifest = stream_sampler::store::read_manifest(&dir).expect("MANIFEST survives");
    let get = |k: &str| {
        manifest.iter().find(|(key, _)| key == k).map(|(_, v)| v.as_str()).unwrap_or_else(|| {
            panic!("MANIFEST must carry `{k}`: {manifest:?}");
        })
    };
    assert_eq!(get("shards"), "4");
    assert_eq!(get("routers"), "2");
    assert_eq!(
        get("router_cursors"),
        format!("0,{}", n / 2),
        "two lanes split the {n}-tuple stream at its midpoint"
    );

    // Recovery restores the cursors and converges on the fault-free
    // output, byte for byte on the machine-readable channel.
    let recovered = std::process::Command::new(sso)
        .args(["recover", "--json", dir_s])
        .output()
        .expect("sso recover runs");
    assert!(recovered.status.success(), "{}", String::from_utf8_lossy(&recovered.stderr));
    assert_eq!(
        String::from_utf8_lossy(&recovered.stdout),
        String::from_utf8_lossy(&reference.stdout),
        "recovered windows must equal the fault-free run's"
    );
    let _ = std::fs::remove_file(&plan_path);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The spill pager acceptance: a lossy-counting query whose certified
/// in-RAM ceiling is megabytes completes under a state budget of three
/// pages per shard, pages cold groups through the spill file, and never
/// holds more resident state than the budget allows — with output
/// byte-identical to the unconstrained run.
#[test]
fn heavy_hitter_completes_under_budget_below_certified_ceiling() {
    use stream_sampler::analysis::{audit_file, AuditOptions};

    // A huge bucket width keeps lossy counting from pruning groups
    // inside the window, so live state genuinely approaches the
    // certified ceiling instead of being cleaned down under the budget.
    let text = "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKT \
                GROUP BY time/4 as tb, srcIP, destIP \
                CLEANING WHEN local_count(1048576) = TRUE \
                CLEANING BY count(*) + first(current_bucket()) > current_bucket()";
    let shards = 4usize;
    let page = stream_sampler::operator::snapshot::PAGE_BYTES as u64;

    // The static audit certifies the in-RAM ceiling; the budget we run
    // under must genuinely undercut it.
    let out = audit_file(text, &AuditOptions { shards, ..AuditOptions::default() });
    let certified = out.report.total_state_bytes().finite().expect("certified finite ceiling");
    let budget = 3 * page * shards as u64;
    assert!(budget < certified, "budget {budget} must undercut the certified ceiling {certified}");
    // And the certificate already prices the spill file for it.
    let durable = out.report.durable();
    assert_eq!(durable.spill_pages.finite(), Some(certified.div_ceil(page)));

    let schema = Packet::schema();
    let config = PlannerConfig::standard();
    let parsed = parse_query(text).expect("example parses");
    let make = |_shard: usize| {
        stream_sampler::query::plan(&parsed, &schema, &config)
            .map_err(|e| OpError::InvalidSpec(e.to_string()))
    };
    let pkts = research_feed(0xbeef).take_seconds(12);

    let plain = run(make, &RuntimeConfig::new(shards), pkts.clone());

    let dir = tmpdir("spill");
    let registry = Registry::new();
    let mut durability = DurabilityConfig::new(&dir);
    durability.state_budget = Some(budget);
    let cfg =
        RuntimeConfig::new(shards).with_registry(registry.clone()).with_durability(durability);
    let spilled = run(make, &cfg, pkts);
    assert_windows_equal(&plain.windows, &spilled.windows, "spill vs unconstrained");

    let snap = registry.snapshot();
    let per_shard = budget / shards as u64;
    let peaks: Vec<f64> = snap
        .metrics
        .iter()
        .filter(|m| m.name == "store.peak_resident_bytes")
        .map(|m| m.scalar())
        .collect();
    assert_eq!(peaks.len(), shards, "one peak gauge per shard");
    for p in &peaks {
        assert!(*p > 0.0, "peak resident state was recorded");
        assert!(*p <= per_shard as f64, "peak {p} exceeds the per-shard budget {per_shard}");
    }
    let faults: f64 =
        snap.metrics.iter().filter(|m| m.name == "store.page_faults").map(|m| m.scalar()).sum();
    assert!(faults > 0.0, "a budget this tight must fault pages back in");
    let _ = std::fs::remove_dir_all(&dir);
}
