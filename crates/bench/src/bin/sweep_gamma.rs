//! **§7.2 in-text sweep — the cleaning trigger γ.**
//!
//! "Increasing (decreasing) γ decreases (increases) the number of times
//! cleaning is done, but increases (decreases) its cost. We found little
//! dependence of CPU load on γ." This binary sweeps γ and reports
//! cleaning phases per period and operator CPU at line rate.

use sso_bench::{cpu_pct, header, maybe_json, measure_operator, stream_span};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::{queries, SamplingOperator};
use sso_netgen::datacenter_feed;
use sso_types::Tuple;

#[derive(serde::Serialize)]
struct Row {
    gamma: f64,
    cleanings_per_period: f64,
    cpu_pct: f64,
}

fn main() {
    const WINDOW: u64 = 20;
    const SECONDS: u64 = 40;
    const N: usize = 1000;

    let packets = datacenter_feed(0xf167).take_seconds(SECONDS);
    let span = stream_span(&packets);
    let tuples: Vec<Tuple> = packets.iter().map(|p| p.to_tuple()).collect();

    let mut rows = Vec::new();
    for gamma in [1.25f64, 1.5, 2.0, 3.0, 4.0] {
        let cfg = SubsetSumOpConfig { target: N, initial_z: 1.0, gamma, relax_factor: 10.0 };
        let mut op =
            SamplingOperator::new(queries::subset_sum_query(WINDOW, cfg, true).unwrap()).unwrap();
        let (busy, windows) = measure_operator(&mut op, &tuples).unwrap();
        let cleanings: u64 = windows
            .iter()
            .map(|w| w.rows.first().map(|r| r.get(4).as_u64().unwrap_or(0)).unwrap_or(0))
            .sum();
        rows.push(Row {
            gamma,
            cleanings_per_period: cleanings as f64 / windows.len().max(1) as f64,
            cpu_pct: cpu_pct(busy, span),
        });
    }

    if maybe_json(&rows) {
        return;
    }
    header("§7.2 sweep: cleaning trigger γ (N = 1000, data-center feed)");
    println!("{:>8} {:>22} {:>10}", "gamma", "cleanings per period", "CPU %");
    for r in &rows {
        println!("{:>8.2} {:>22.1} {:>10.2}", r.gamma, r.cleanings_per_period, r.cpu_pct);
    }
    let min = rows.iter().map(|r| r.cpu_pct).fold(f64::MAX, f64::min);
    let max = rows.iter().map(|r| r.cpu_pct).fold(0.0, f64::max);
    println!(
        "\nCPU spread across γ: {:.2}%..{:.2}% — {}",
        min,
        max,
        if max < 2.0 * min.max(1e-9) {
            "little dependence, as the paper found"
        } else {
            "larger than the paper's 'little dependence' (see EXPERIMENTS.md)"
        }
    );
    println!(
        "paper's claim: smaller γ cleans more often but each pass is cheaper; \
         the products roughly cancel, so CPU barely depends on γ."
    );
}
