//! Stateful functions (§6.2).
//!
//! A *stateful function* (SFUN) is like a UDAF except that (a) it can
//! produce output many times during execution and (b) a whole family of
//! functions shares one state structure. The paper declares them as
//!
//! ```text
//! STATE char[50] subsetsum_sampling_state;
//! SFUN int subsetsum_sampling_state ssample(int, CONST int);
//! ```
//!
//! and implicitly passes every function a `void*` to the state. Our Rust
//! model is [`SfunLibrary`]: a named state constructor (with the paper's
//! `_sfun_state_init_<state>(new, old)` carry-over semantics — the `old`
//! pointer is the equivalent state from the previous time window), an
//! optional window-end hook (the paper's `final_init()` signal), and a
//! map of functions `fn(&mut dyn Any, &[Value]) -> Value` sharing that
//! state.
//!
//! One state instance lives in each supergroup's superaggregate
//! structure, exactly as in §6.2.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use sso_types::{Value, ValueKind};

/// Static call signature of a registered function: accepted argument
/// count range and the kind of value it returns. This is the paper's
/// `SFUN int subsetsum_sampling_state ssample(int, CONST int)`
/// declaration line, kept as data so the query analyzer can check
/// calls without executing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Minimum number of arguments.
    pub min_args: usize,
    /// Maximum number of arguments.
    pub max_args: usize,
    /// Kind of the returned value.
    pub returns: ValueKind,
}

impl Signature {
    /// A signature taking exactly `n` arguments.
    pub const fn exact(n: usize, returns: ValueKind) -> Self {
        Signature { min_args: n, max_args: n, returns }
    }

    /// A signature taking between `min` and `max` arguments.
    pub const fn range(min: usize, max: usize, returns: ValueKind) -> Self {
        Signature { min_args: min, max_args: max, returns }
    }

    /// `true` if a call with `n` arguments satisfies this signature.
    pub fn accepts_arity(&self, n: usize) -> bool {
        (self.min_args..=self.max_args).contains(&n)
    }

    /// Human-readable arity, e.g. `exactly 2 arguments` or
    /// `1 to 2 arguments`.
    pub fn arity_text(&self) -> String {
        match (self.min_args, self.max_args) {
            (n, m) if n == m && n == 1 => "exactly one argument".to_string(),
            (n, m) if n == m => format!("exactly {n} arguments"),
            (n, m) => format!("{n} to {m} arguments"),
        }
    }
}

/// A stateful function implementation: mutable shared state + evaluated
/// arguments in, value out. Errors are strings, wrapped into
/// [`crate::OpError::BadSfunCall`] by the evaluator.
pub type SfunFn = dyn Fn(&mut dyn Any, &[Value]) -> Result<Value, String> + Send + Sync;

/// State-constructor: receives the equivalent state from the previous
/// time window (if the supergroup existed then) for carry-over.
pub type SfunInit = dyn Fn(Option<&dyn Any>) -> Box<dyn Any + Send> + Send + Sync;

/// Window-end hook, invoked on every live state when the window closes,
/// before the HAVING clause runs (the paper's `final_init()`).
pub type SfunWindowEnd = dyn Fn(&mut dyn Any) + Send + Sync;

/// Per-window sampling telemetry a library can expose for observability:
/// the numbers behind the paper's bursty-load diagnosis (threshold
/// trajectory, achieved vs. target sample size).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SfunTelemetry {
    /// Current sampling threshold `z`.
    pub threshold: f64,
    /// Samples kept by the final window pass.
    pub achieved: u64,
    /// Configured target sample size.
    pub target: u64,
    /// Tuples offered to the admission test this window.
    pub offered: u64,
    /// Cleaning phases this window.
    pub cleanings: u64,
}

/// Telemetry probe: reads a state snapshot without mutating it.
pub type SfunProbe = dyn Fn(&dyn Any) -> Option<SfunTelemetry> + Send + Sync;

/// Persistence encoder: serializes one state to bytes (`None` if the
/// boxed value has an unexpected type).
pub type SfunEncode = dyn Fn(&dyn Any) -> Option<Vec<u8>> + Send + Sync;

/// Persistence decoder: rebuilds a state from encoded bytes (`None` on
/// malformed input).
pub type SfunDecode = dyn Fn(&[u8]) -> Option<Box<dyn Any + Send>> + Send + Sync;

/// Library-auxiliary encoder: serializes state the *library itself*
/// holds outside any supergroup (e.g. the reservoir library's instance
/// counter that derives per-supergroup RNG seeds).
pub type SfunAuxEncode = dyn Fn() -> Vec<u8> + Send + Sync;

/// Library-auxiliary decoder: restores what [`SfunAuxEncode`] captured.
pub type SfunAuxDecode = dyn Fn(&[u8]) -> bool + Send + Sync;

/// The per-supergroup states of all libraries used by a query, one per
/// library slot.
pub type SfunStates = Vec<Box<dyn Any + Send>>;

/// A family of stateful functions sharing one state type.
pub struct SfunLibrary {
    name: &'static str,
    init: Box<SfunInit>,
    window_end: Option<Box<SfunWindowEnd>>,
    telemetry: Option<Box<SfunProbe>>,
    persist: Option<(Box<SfunEncode>, Box<SfunDecode>)>,
    persist_aux: Option<(Box<SfunAuxEncode>, Box<SfunAuxDecode>)>,
    functions: HashMap<&'static str, (Signature, Arc<SfunFn>)>,
}

impl std::fmt::Debug for SfunLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<_> = self.functions.keys().collect();
        names.sort();
        f.debug_struct("SfunLibrary").field("name", &self.name).field("functions", &names).finish()
    }
}

impl SfunLibrary {
    /// Create a library with the given state constructor.
    pub fn new(
        name: &'static str,
        init: impl Fn(Option<&dyn Any>) -> Box<dyn Any + Send> + Send + Sync + 'static,
    ) -> Self {
        SfunLibrary {
            name,
            init: Box::new(init),
            window_end: None,
            telemetry: None,
            persist: None,
            persist_aux: None,
            functions: HashMap::new(),
        }
    }

    /// Install the window-end hook.
    pub fn with_window_end(mut self, hook: impl Fn(&mut dyn Any) + Send + Sync + 'static) -> Self {
        self.window_end = Some(Box::new(hook));
        self
    }

    /// Install the telemetry probe.
    pub fn with_telemetry(
        mut self,
        probe: impl Fn(&dyn Any) -> Option<SfunTelemetry> + Send + Sync + 'static,
    ) -> Self {
        self.telemetry = Some(Box::new(probe));
        self
    }

    /// Install the persistence codec for this library's state type.
    /// Checkpointing requires it: a spec whose libraries all have a
    /// codec can have its cross-window carry-over exported and restored
    /// byte-identically.
    pub fn with_persist(
        mut self,
        encode: impl Fn(&dyn Any) -> Option<Vec<u8>> + Send + Sync + 'static,
        decode: impl Fn(&[u8]) -> Option<Box<dyn Any + Send>> + Send + Sync + 'static,
    ) -> Self {
        self.persist = Some((Box::new(encode), Box::new(decode)));
        self
    }

    /// Install the library-auxiliary codec (state held by the library
    /// outside any supergroup, e.g. an instance counter feeding seeds).
    pub fn with_persist_aux(
        mut self,
        encode: impl Fn() -> Vec<u8> + Send + Sync + 'static,
        decode: impl Fn(&[u8]) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.persist_aux = Some((Box::new(encode), Box::new(decode)));
        self
    }

    /// Register one function with its call signature.
    pub fn register(
        mut self,
        name: &'static str,
        sig: Signature,
        f: impl Fn(&mut dyn Any, &[Value]) -> Result<Value, String> + Send + Sync + 'static,
    ) -> Self {
        self.functions.insert(name, (sig, Arc::new(f)));
        self
    }

    /// Library name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<Arc<SfunFn>> {
        self.functions.get(name).map(|(_, f)| Arc::clone(f))
    }

    /// Look up a function's declared signature.
    pub fn signature(&self, name: &str) -> Option<Signature> {
        self.functions.get(name).map(|(sig, _)| *sig)
    }

    /// Look up a function by name, returning the library's canonical
    /// `'static` name alongside the implementation (the planner stores
    /// this in compiled expressions).
    pub fn function_entry(&self, name: &str) -> Option<(&'static str, Arc<SfunFn>)> {
        self.functions.get_key_value(name).map(|(k, (_, f))| (*k, Arc::clone(f)))
    }

    /// Names of all registered functions.
    pub fn function_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.functions.keys().copied()
    }

    /// Construct a state, carrying over from the previous window's
    /// equivalent state if provided.
    pub fn init_state(&self, prev: Option<&dyn Any>) -> Box<dyn Any + Send> {
        (self.init)(prev)
    }

    /// Signal the end of the sampling window to a state.
    pub fn on_window_end(&self, state: &mut dyn Any) {
        if let Some(hook) = &self.window_end {
            hook(state);
        }
    }

    /// Read a state's sampling telemetry, if this library exposes any.
    pub fn probe_telemetry(&self, state: &dyn Any) -> Option<SfunTelemetry> {
        self.telemetry.as_ref().and_then(|p| p(state))
    }

    /// Does this library support state persistence?
    pub fn can_persist(&self) -> bool {
        self.persist.is_some()
    }

    /// Serialize one state (`None` if no codec is installed or the
    /// state has an unexpected type).
    pub fn encode_state(&self, state: &dyn Any) -> Option<Vec<u8>> {
        self.persist.as_ref().and_then(|(enc, _)| enc(state))
    }

    /// Rebuild a state from bytes produced by [`Self::encode_state`].
    pub fn decode_state(&self, bytes: &[u8]) -> Option<Box<dyn Any + Send>> {
        self.persist.as_ref().and_then(|(_, dec)| dec(bytes))
    }

    /// Serialize the library-auxiliary state (empty when none exists).
    pub fn encode_aux(&self) -> Vec<u8> {
        self.persist_aux.as_ref().map(|(enc, _)| enc()).unwrap_or_default()
    }

    /// Restore library-auxiliary state; `false` on malformed input.
    /// Empty input is the "nothing was captured" case and succeeds.
    pub fn decode_aux(&self, bytes: &[u8]) -> bool {
        match (&self.persist_aux, bytes.is_empty()) {
            (_, true) => true,
            (Some((_, dec)), false) => dec(bytes),
            (None, false) => false,
        }
    }
}

/// Downcast helper for SFUN implementations.
pub fn state_mut<'a, T: 'static>(state: &'a mut dyn Any, fname: &str) -> Result<&'a mut T, String> {
    state
        .downcast_mut::<T>()
        .ok_or_else(|| format!("{fname}: state has unexpected type (library misconfigured)"))
}

/// Argument-extraction helpers shared by the SFUN libraries.
pub mod args {
    use sso_types::Value;

    /// The `idx`-th argument as `u64`.
    pub fn u64_arg(fname: &str, argv: &[Value], idx: usize) -> Result<u64, String> {
        argv.get(idx)
            .ok_or_else(|| format!("{fname}: missing argument {idx}"))?
            .as_u64()
            .map_err(|e| format!("{fname}: argument {idx}: {e}"))
    }

    /// The `idx`-th argument as `f64`.
    pub fn f64_arg(fname: &str, argv: &[Value], idx: usize) -> Result<f64, String> {
        argv.get(idx)
            .ok_or_else(|| format!("{fname}: missing argument {idx}"))?
            .as_f64()
            .map_err(|e| format!("{fname}: argument {idx}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CounterState {
        count: u64,
        carried: bool,
    }

    fn counter_library() -> SfunLibrary {
        SfunLibrary::new("counter", |prev| {
            let carried = prev.and_then(|p| p.downcast_ref::<CounterState>()).is_some();
            Box::new(CounterState { count: 0, carried })
        })
        .register("bump", Signature::exact(0, ValueKind::UInt), |state, _argv| {
            let s = state_mut::<CounterState>(state, "bump")?;
            s.count += 1;
            Ok(Value::U64(s.count))
        })
        .register("carried", Signature::exact(0, ValueKind::Bool), |state, _argv| {
            let s = state_mut::<CounterState>(state, "carried")?;
            Ok(Value::Bool(s.carried))
        })
    }

    #[test]
    fn functions_share_state() {
        let lib = counter_library();
        let mut state = lib.init_state(None);
        let bump = lib.function("bump").unwrap();
        assert_eq!(bump(state.as_mut(), &[]).unwrap(), Value::U64(1));
        assert_eq!(bump(state.as_mut(), &[]).unwrap(), Value::U64(2));
    }

    #[test]
    fn init_receives_previous_state() {
        let lib = counter_library();
        let old = lib.init_state(None);
        let carried = lib.function("carried").unwrap();
        let mut fresh = lib.init_state(None);
        assert_eq!(carried(fresh.as_mut(), &[]).unwrap(), Value::Bool(false));
        let mut next = lib.init_state(Some(old.as_ref()));
        assert_eq!(carried(next.as_mut(), &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unknown_function_is_none() {
        let lib = counter_library();
        assert!(lib.function("nope").is_none());
        assert!(lib.function("bump").is_some());
    }

    #[test]
    fn wrong_state_type_is_a_clean_error() {
        let lib = counter_library();
        let bump = lib.function("bump").unwrap();
        let mut wrong: Box<dyn Any + Send> = Box::new(42u32);
        let err = bump(wrong.as_mut(), &[]).unwrap_err();
        assert!(err.contains("unexpected type"));
    }

    #[test]
    fn window_end_hook_runs() {
        let lib = SfunLibrary::new("w", |_| Box::new(CounterState { count: 0, carried: false }))
            .with_window_end(|state| {
                if let Some(s) = state.downcast_mut::<CounterState>() {
                    s.count = 999;
                }
            });
        let mut state = lib.init_state(None);
        lib.on_window_end(state.as_mut());
        assert_eq!(state.downcast_ref::<CounterState>().unwrap().count, 999);
    }

    #[test]
    fn arg_helpers() {
        use super::args::*;
        assert_eq!(u64_arg("f", &[Value::U64(5)], 0).unwrap(), 5);
        assert!(u64_arg("f", &[], 0).unwrap_err().contains("missing argument"));
        assert!(u64_arg("f", &[Value::str("x")], 0).unwrap_err().contains("argument 0"));
        assert_eq!(f64_arg("f", &[Value::F64(2.5)], 0).unwrap(), 2.5);
    }

    #[test]
    fn debug_lists_functions() {
        let lib = counter_library();
        let s = format!("{lib:?}");
        assert!(s.contains("counter") && s.contains("bump"));
    }

    #[test]
    fn signatures_are_queryable() {
        let lib = counter_library();
        let sig = lib.signature("bump").unwrap();
        assert_eq!(sig, Signature::exact(0, ValueKind::UInt));
        assert!(sig.accepts_arity(0));
        assert!(!sig.accepts_arity(1));
        assert!(lib.signature("nope").is_none());
        assert_eq!(Signature::exact(1, ValueKind::Bool).arity_text(), "exactly one argument");
        assert_eq!(Signature::exact(2, ValueKind::Bool).arity_text(), "exactly 2 arguments");
        assert_eq!(Signature::range(1, 2, ValueKind::Bool).arity_text(), "1 to 2 arguments");
    }
}
