//! The two-level query engine: NIC ring → low-level node → high-level
//! sampling operator, with per-node busy-time accounting.
//!
//! The paper's performance figures report "% of a CPU" while keeping up
//! with a live feed. Our equivalent: each node's accumulated busy time
//! divided by the *stream's own span* (the time the live feed would
//! have taken to deliver the same packets). The comparisons Figures 5–6
//! make — operator vs. plain selection, relaxed vs. non-relaxed,
//! selection subquery vs. basic-subset-sum prefilter — are ratios of
//! these, and survive the hardware change.

use std::time::Duration;

use sso_core::{panic_message, OpError, OperatorMetrics, SamplingOperator, WindowOutput};
use sso_obs::{Registry, Stopwatch};
use sso_types::Packet;

use crate::nodes::LowLevelQuery;
use crate::ring::RingBuffer;

/// A two-level query plan: one low-level reduction node feeding one
/// high-level sampling operator.
pub struct TwoLevelPlan {
    /// The low-level (packet-side) node.
    pub low: Box<dyn LowLevelQuery>,
    /// The high-level node.
    pub high: SamplingOperator,
    /// NIC ring capacity (single-threaded mode) / channel bound
    /// (threaded mode).
    pub ring_capacity: usize,
    /// Telemetry registry; `None` = run unobserved (NodeStats only).
    pub registry: Option<Registry>,
}

impl TwoLevelPlan {
    /// Build a plan with the default 4096-slot ring.
    pub fn new(low: Box<dyn LowLevelQuery>, high: SamplingOperator) -> Self {
        TwoLevelPlan { low, high, ring_capacity: 4096, registry: None }
    }

    /// Record the run's telemetry (node handoff counters, ring occupancy,
    /// operator metrics) into `registry`.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.high.set_metrics(OperatorMetrics::register(&registry, ""));
        self.registry = Some(registry);
        self
    }
}

/// Registry handles for the cascade-level metrics of one plan run.
struct CascadeMetrics {
    low_tuples_in: sso_obs::Counter,
    low_tuples_out: sso_obs::Counter,
    low_busy_ns: sso_obs::Counter,
    high_tuples_in: sso_obs::Counter,
    high_busy_ns: sso_obs::Counter,
    ring_occupancy: sso_obs::Gauge,
}

impl CascadeMetrics {
    fn register(registry: &Registry) -> Self {
        CascadeMetrics {
            low_tuples_in: registry.counter("low.tuples_in"),
            low_tuples_out: registry.counter("low.tuples_out"),
            low_busy_ns: registry.counter("low.busy_ns"),
            high_tuples_in: registry.counter("high.tuples_in"),
            high_busy_ns: registry.counter("high.busy_ns"),
            ring_occupancy: registry.gauge("gigascope.ring_occupancy"),
        }
    }
}

/// Per-node run accounting.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Node display name.
    pub name: String,
    /// Records entering the node.
    pub tuples_in: u64,
    /// Records leaving the node.
    pub tuples_out: u64,
    /// Accumulated processing time.
    pub busy: Duration,
}

impl NodeStats {
    /// Busy time as a percentage of the stream span — the paper's
    /// "% CPU" at line rate.
    pub fn cpu_pct(&self, stream_span: Duration) -> f64 {
        if stream_span.is_zero() {
            return 0.0;
        }
        100.0 * self.busy.as_secs_f64() / stream_span.as_secs_f64()
    }
}

/// The result of running a plan over a packet stream.
#[derive(Debug)]
pub struct RunReport {
    /// Low-level node accounting.
    pub low: NodeStats,
    /// High-level node accounting.
    pub high: NodeStats,
    /// Every closed window's output, in order.
    pub windows: Vec<WindowOutput>,
    /// The span the live feed would have taken to deliver the packets
    /// (last uts − first uts).
    pub stream_span: Duration,
    /// Packets dropped at the ring (single-threaded mode only).
    pub ring_dropped: u64,
    /// Producer stalls on a full ring (threaded mode only; one stall per
    /// full-ring wait, however long the wait).
    pub ring_stalls: u64,
}

impl RunReport {
    /// Low-level node CPU percentage at line rate.
    pub fn low_cpu_pct(&self) -> f64 {
        self.low.cpu_pct(self.stream_span)
    }

    /// High-level node CPU percentage at line rate.
    pub fn high_cpu_pct(&self) -> f64 {
        self.high.cpu_pct(self.stream_span)
    }

    /// Whole-plan CPU percentage at line rate.
    pub fn total_cpu_pct(&self) -> f64 {
        self.low_cpu_pct() + self.high_cpu_pct()
    }
}

/// Run a plan single-threaded: packets are staged through the NIC ring
/// in batches (as a polling low-level query would see them), reduced,
/// and fed to the operator.
pub fn run_plan(
    mut plan: TwoLevelPlan,
    packets: impl IntoIterator<Item = Packet>,
) -> Result<RunReport, OpError> {
    let mut ring: RingBuffer<Packet> = RingBuffer::new(plan.ring_capacity);
    let mut low = NodeStats { name: plan.low.name().to_string(), ..Default::default() };
    let mut high = NodeStats { name: "sampling-operator".to_string(), ..Default::default() };
    let metrics = plan.registry.as_ref().map(CascadeMetrics::register);
    let mut windows = Vec::new();
    let mut first_uts = None;
    let mut last_uts = 0u64;

    // Timing is per drained batch, not per packet: at 100k+ pkt/s a
    // per-packet clock pair costs as much as the work being measured
    // and would wash out the low-level node comparison of Figure 6.
    let mut forwarded: Vec<sso_types::Tuple> = Vec::with_capacity(plan.ring_capacity);
    let mut drain = |ring: &mut RingBuffer<Packet>,
                     plan: &mut TwoLevelPlan,
                     low: &mut NodeStats,
                     high: &mut NodeStats,
                     windows: &mut Vec<WindowOutput>|
     -> Result<(), OpError> {
        if let Some(m) = &metrics {
            // Occupancy is read at drain entry: the high-water moment.
            m.ring_occupancy.set(ring.len() as f64);
        }
        forwarded.clear();
        let sw = Stopwatch::start();
        while let Some(pkt) = ring.pop() {
            low.tuples_in += 1;
            if let Some(tuple) = plan.low.process(&pkt) {
                forwarded.push(tuple);
            }
        }
        let low_ns = sw.elapsed_ns();
        low.busy += Duration::from_nanos(low_ns);
        low.tuples_out += forwarded.len() as u64;
        high.tuples_in += forwarded.len() as u64;
        let sw = Stopwatch::start();
        for tuple in forwarded.drain(..) {
            if let Some(w) = plan.high.process(&tuple)? {
                high.tuples_out += w.rows.len() as u64;
                windows.push(w);
            }
        }
        let high_ns = sw.elapsed_ns();
        high.busy += Duration::from_nanos(high_ns);
        if let Some(m) = &metrics {
            m.low_busy_ns.add(low_ns);
            m.high_busy_ns.add(high_ns);
        }
        Ok(())
    };

    for pkt in packets {
        first_uts.get_or_insert(pkt.uts);
        last_uts = pkt.uts;
        if !ring.push(pkt) {
            // Full: drain then retry once (a dropped retry stays dropped,
            // like a real ring overwrite).
            drain(&mut ring, &mut plan, &mut low, &mut high, &mut windows)?;
            ring.push(pkt);
        }
        if ring.is_full() {
            drain(&mut ring, &mut plan, &mut low, &mut high, &mut windows)?;
        }
    }
    drain(&mut ring, &mut plan, &mut low, &mut high, &mut windows)?;
    // Flush any output the low-level node buffered (partial aggregation).
    let sw = Stopwatch::start();
    let tail = plan.low.finish();
    let tail_low_ns = sw.elapsed_ns();
    low.busy += Duration::from_nanos(tail_low_ns);
    low.tuples_out += tail.len() as u64;
    let sw = Stopwatch::start();
    for tuple in tail {
        high.tuples_in += 1;
        if let Some(w) = plan.high.process(&tuple)? {
            high.tuples_out += w.rows.len() as u64;
            windows.push(w);
        }
    }
    if let Some(w) = plan.high.finish()? {
        high.tuples_out += w.rows.len() as u64;
        windows.push(w);
    }
    let tail_high_ns = sw.elapsed_ns();
    high.busy += Duration::from_nanos(tail_high_ns);

    if let Some(m) = &metrics {
        m.low_busy_ns.add(tail_low_ns);
        m.high_busy_ns.add(tail_high_ns);
        // Handoff counters are flushed once per run: they back the
        // meta-stream's view of the cascade, not per-batch decisions.
        m.low_tuples_in.add(low.tuples_in);
        m.low_tuples_out.add(low.tuples_out);
        m.high_tuples_in.add(high.tuples_in);
        m.ring_occupancy.set(0.0);
    }

    let stream_span = Duration::from_nanos(last_uts.saturating_sub(first_uts.unwrap_or(0)));
    Ok(RunReport { low, high, windows, stream_span, ring_dropped: ring.dropped(), ring_stalls: 0 })
}

/// Run a plan with the two levels on separate threads connected by a
/// bounded SPSC ring ([`sso_runtime::ring`]) — the deployment shape of
/// the real system. Produces
/// the same windows as [`run_plan`] (the operator is deterministic given
/// tuple order, which the channel preserves).
pub fn run_plan_threaded(
    mut plan: TwoLevelPlan,
    packets: impl IntoIterator<Item = Packet> + Send,
) -> Result<RunReport, OpError> {
    let (mut tx, mut rx) = sso_runtime::ring::<sso_types::Tuple>(plan.ring_capacity);
    let mut low = NodeStats { name: plan.low.name().to_string(), ..Default::default() };
    let high = NodeStats { name: "sampling-operator".to_string(), ..Default::default() };
    let mut first_uts = None;
    let mut last_uts = 0u64;
    let mut ring_stalls = 0u64;

    let result: Result<(NodeStats, Vec<WindowOutput>), OpError> = std::thread::scope(|s| {
        let consumer = s.spawn(move || -> Result<(NodeStats, Vec<WindowOutput>), OpError> {
            let mut windows = Vec::new();
            let mut stats = high;
            while let Some(tuple) = rx.pop() {
                stats.tuples_in += 1;
                let sw = Stopwatch::start();
                let out = plan.high.process(&tuple)?;
                stats.busy += sw.elapsed();
                if let Some(w) = out {
                    stats.tuples_out += w.rows.len() as u64;
                    windows.push(w);
                }
            }
            if let Some(w) = plan.high.finish()? {
                stats.tuples_out += w.rows.len() as u64;
                windows.push(w);
            }
            Ok((stats, windows))
        });
        for pkt in packets {
            first_uts.get_or_insert(pkt.uts);
            last_uts = pkt.uts;
            low.tuples_in += 1;
            let sw = Stopwatch::start();
            let forwarded = plan.low.process(&pkt);
            low.busy += sw.elapsed();
            if let Some(tuple) = forwarded {
                low.tuples_out += 1;
                match tx.push_tracked(tuple) {
                    Ok(stalled) => ring_stalls += u64::from(stalled),
                    Err(_) => break, // consumer died; its error is surfaced below
                }
            }
        }
        for tuple in plan.low.finish() {
            low.tuples_out += 1;
            match tx.push_tracked(tuple) {
                Ok(stalled) => ring_stalls += u64::from(stalled),
                Err(_) => break,
            }
        }
        drop(tx);
        match consumer.join() {
            Ok(result) => result,
            Err(payload) => Err(OpError::WorkerPanic(panic_message(payload.as_ref()))),
        }
    });
    let (high, windows) = result?;
    let stream_span = Duration::from_nanos(last_uts.saturating_sub(first_uts.unwrap_or(0)));
    Ok(RunReport { low, high, windows, stream_span, ring_dropped: 0, ring_stalls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodes::{PrefilterNode, SelectionNode};
    use sso_core::queries;
    use sso_netgen::datacenter_feed;
    use sso_types::Value;

    fn agg_operator(window_secs: u64) -> SamplingOperator {
        SamplingOperator::new(queries::total_sum_query(window_secs)).unwrap()
    }

    #[test]
    fn selection_plan_counts_every_packet() {
        let pkts = sso_netgen::research_feed(1).take_seconds(3);
        let n = pkts.len() as u64;
        let plan = TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), agg_operator(1));
        let report = run_plan(plan, pkts).unwrap();
        assert_eq!(report.low.tuples_in, n);
        assert_eq!(report.low.tuples_out, n);
        assert_eq!(report.high.tuples_in, n);
        assert_eq!(report.ring_dropped, 0);
        assert!(!report.windows.is_empty());
    }

    #[test]
    fn aggregation_totals_match_feed() {
        let pkts = sso_netgen::research_feed(2).take_seconds(4);
        let truth: u64 = pkts.iter().map(|p| p.len as u64).sum();
        let plan = TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), agg_operator(2));
        let report = run_plan(plan, pkts).unwrap();
        let total: u64 =
            report.windows.iter().flat_map(|w| &w.rows).map(|r| r.get(1).as_u64().unwrap()).sum();
        assert_eq!(total, truth);
    }

    #[test]
    fn prefilter_forwards_far_fewer_tuples() {
        let pkts = datacenter_feed(3).take_seconds(1);
        let n = pkts.len() as u64;
        let plan = TwoLevelPlan::new(Box::new(PrefilterNode::new(50_000.0)), agg_operator(1));
        let report = run_plan(plan, pkts).unwrap();
        assert_eq!(report.low.tuples_in, n);
        assert!(
            report.low.tuples_out < n / 20,
            "prefilter should forward ~1-2%: {} of {}",
            report.low.tuples_out,
            n
        );
    }

    #[test]
    fn threaded_run_matches_single_threaded() {
        let pkts = sso_netgen::research_feed(4).take_seconds(3);
        let single = run_plan(
            TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), agg_operator(1)),
            pkts.clone(),
        )
        .unwrap();
        let threaded = run_plan_threaded(
            TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), agg_operator(1)),
            pkts,
        )
        .unwrap();
        assert_eq!(single.windows.len(), threaded.windows.len());
        for (a, b) in single.windows.iter().zip(&threaded.windows) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.window, b.window);
        }
    }

    #[test]
    fn cpu_accounting_is_positive_and_span_matches_feed() {
        let pkts = datacenter_feed(5).take_seconds(1);
        let plan = TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), agg_operator(1));
        let report = run_plan(plan, pkts).unwrap();
        assert!(report.stream_span > Duration::from_millis(900));
        assert!(report.low_cpu_pct() > 0.0);
        assert!(report.high_cpu_pct() > 0.0);
        assert!(
            (report.total_cpu_pct() - report.low_cpu_pct() - report.high_cpu_pct()).abs() < 1e-9
        );
    }

    #[test]
    fn subset_sum_plan_runs_end_to_end() {
        use sso_core::libs::subset_sum::SubsetSumOpConfig;
        let pkts = sso_netgen::research_feed(6).take_seconds(5);
        let cfg = SubsetSumOpConfig { target: 50, initial_z: 1.0, ..Default::default() };
        let spec = queries::subset_sum_query(1, cfg, false).unwrap();
        let plan = TwoLevelPlan::new(
            Box::new(SelectionNode::pass_all()),
            SamplingOperator::new(spec).unwrap(),
        );
        let report = run_plan(plan, pkts).unwrap();
        assert!(report.windows.len() >= 4);
        for w in &report.windows {
            assert!(w.rows.len() <= 60, "window sample size {}", w.rows.len());
            // Output schema: tb, srcIP, destIP, adjusted length.
            assert!(matches!(
                w.rows.first().map(|r| r.get(3)),
                Some(Value::F64(_) | Value::U64(_)) | None
            ));
        }
    }

    /// Plan whose WHERE clause runs an arbitrary scalar closure — the
    /// hook for injecting consumer-side failures.
    fn faulty_plan(
        fun: impl Fn() -> Result<Value, String> + Send + Sync + 'static,
    ) -> TwoLevelPlan {
        use sso_core::Expr;
        use std::sync::Arc;
        let mut spec = queries::total_sum_query(1);
        spec.where_clause = Some(Expr::Scalar {
            name: "FAULT",
            fun: Arc::new(move |_args: &[Value]| fun()),
            args: vec![],
        });
        TwoLevelPlan::new(Box::new(SelectionNode::pass_all()), SamplingOperator::new(spec).unwrap())
    }

    #[test]
    fn threaded_run_surfaces_consumer_errors() {
        let pkts = sso_netgen::research_feed(8).take_seconds(1);
        let plan = faulty_plan(|| Err("deliberate failure".to_string()));
        match run_plan_threaded(plan, pkts) {
            Err(OpError::BadScalarCall { function, reason }) => {
                assert_eq!(function, "FAULT");
                assert_eq!(reason, "deliberate failure");
            }
            other => panic!("expected BadScalarCall, got {other:?}"),
        }
    }

    #[test]
    fn threaded_run_reports_consumer_panics_instead_of_aborting() {
        let pkts = sso_netgen::research_feed(9).take_seconds(1);
        let plan = faulty_plan(|| panic!("injected operator panic"));
        match run_plan_threaded(plan, pkts) {
            Err(OpError::WorkerPanic(msg)) => {
                assert!(msg.contains("injected operator panic"), "payload lost: {msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn predicate_selection_reduces_stream() {
        let pkts = sso_netgen::research_feed(7).take_seconds(2);
        let plan = TwoLevelPlan::new(
            Box::new(SelectionNode::with_predicate(|p| p.len >= 1000)),
            agg_operator(1),
        );
        let report = run_plan(plan, pkts).unwrap();
        assert!(report.low.tuples_out < report.low.tuples_in);
        assert!(report.low.tuples_out > 0);
    }
}
