//! Microbenches of the reference algorithms in `sso-sampling` — the
//! per-record costs that bound what any operator hosting them can
//! achieve.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sso_sampling::subset_sum::{BasicSubsetSum, DynamicSubsetSum, SubsetSumConfig};
use sso_sampling::{KmvSketch, LossyCounter, Reservoir, SkipReservoir};

const N: usize = 100_000;

fn weights() -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..N).map(|_| rng.gen_range(40..1500)).collect()
}

fn keys() -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(2);
    (0..N).map(|_| rng.gen_range(0..5000)).collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let ws = weights();
    let ks = keys();
    let mut group = c.benchmark_group("reference_algorithms");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    group.bench_function("reservoir_algorithm_r", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut r = Reservoir::new(1000);
            for &k in &ks {
                r.offer(std::hint::black_box(k), &mut rng);
            }
            r.items().len()
        })
    });

    group.bench_function("reservoir_skip_based", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut r = SkipReservoir::new(1000);
            for &k in &ks {
                r.offer(std::hint::black_box(k), &mut rng);
            }
            r.items().len()
        })
    });

    group.bench_function("lossy_counting", |b| {
        b.iter(|| {
            let mut lc = LossyCounter::new(0.001);
            for &k in &ks {
                lc.insert(std::hint::black_box(k));
            }
            lc.tracked()
        })
    });

    group.bench_function("kmv_minhash", |b| {
        b.iter(|| {
            let mut s = KmvSketch::new(256);
            for &k in &ks {
                s.insert(std::hint::black_box(k));
            }
            s.kth_smallest()
        })
    });

    group.bench_function("basic_subset_sum", |b| {
        b.iter(|| {
            let mut ss = BasicSubsetSum::new(20_000.0);
            let mut sampled = 0u64;
            for &w in &ws {
                sampled += ss.offer(std::hint::black_box(w)) as u64;
            }
            sampled
        })
    });

    group.bench_function("dynamic_subset_sum", |b| {
        b.iter(|| {
            let cfg = SubsetSumConfig::new(1000).with_initial_z(1.0);
            let mut ss = DynamicSubsetSum::new(cfg);
            for &w in &ws {
                ss.offer((), std::hint::black_box(w));
            }
            ss.end_window().samples.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
