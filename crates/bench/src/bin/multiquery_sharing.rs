//! **Multi-query sharing** — what the `sso-rewrite` optimizer buys on
//! the paper's §7.1 simultaneous-query workload.
//!
//! Sixteen near-identical registered queries tap one TCP stream: four
//! share groups of four byte-identical plans each, at prefilter
//! thresholds `len >= 100/110/120/130` (every one of which implies
//! `len >= 100`). Unshared execution runs all sixteen operators behind
//! the fan-out, the §7.2 worst case. Shared execution runs the plan the
//! optimizer actually emits — [`optimize_file`] over the query file,
//! certificate verified by [`OptimizeOutcome::build_shared`] — so the
//! stream crosses one hoisted prefilter and four deduplicated
//! operators whose windows fan out to their consumers.
//!
//! Both modes are timed best-of-reps (alternating), and every
//! consumer's `(window, rows)` output is compared byte-for-byte: the
//! rewrite must change work, never output. The acceptance gate
//! (`scripts/check.sh` over `BENCH_rewrite.json`) is `identical` and
//! shared never slower than unshared.

use std::time::Instant;

use sso_bench::{header, maybe_json};
use sso_core::SamplingOperator;
use sso_gigascope::{
    run_fanout, run_fanout_shared, FanoutPlan, FanoutReport, SelectionNode, SharedGroup,
    SharedQueryPlan,
};
use sso_netgen::research_feed;
use sso_query::{base_stream_schema, compile, PlannerConfig};
use sso_rewrite::{optimize_file, OptimizeOptions};
use sso_types::Packet;

const SEED: u64 = 0x5a3e;
const SECONDS: u64 = 20;
const GROUPS: usize = 4;
const COPIES: usize = 4;
const REPS: usize = 5;

fn query_text(threshold: u64) -> String {
    format!("SELECT tb, sum(len), count(*) FROM TCP WHERE len >= {threshold} GROUP BY time/5 as tb")
}

fn thresholds() -> Vec<u64> {
    (0..GROUPS).map(|g| 100 + 10 * g as u64).collect()
}

/// The sixteen `(name, text)` registered queries, group-major.
fn workload() -> Vec<(String, String)> {
    let mut qs = Vec::new();
    for t in thresholds() {
        for c in 0..COPIES {
            qs.push((format!("t{t}c{c}"), query_text(t)));
        }
    }
    qs
}

fn unshared_plan() -> FanoutPlan {
    let schema = base_stream_schema("TCP").expect("TCP schema");
    let config = PlannerConfig::standard();
    FanoutPlan {
        low: Box::new(SelectionNode::pass_all()),
        highs: workload()
            .into_iter()
            .map(|(name, text)| (name, compile(&text, &schema, &config).expect("compile")))
            .collect(),
    }
}

/// Build the shared plan the optimizer emits for the workload file,
/// then rename its `qN` consumers to the workload's names (statement
/// order and workload order coincide).
fn shared_plan() -> SharedQueryPlan {
    let file: Vec<String> = workload().into_iter().map(|(_, text)| text).collect();
    let outcome = optimize_file(&file.join(";\n"), &OptimizeOptions::default());
    assert!(!outcome.certificate.is_empty(), "optimizer found no rewrites on the sharing workload");
    let plans = outcome.build_shared().expect("certificate verifies");
    let [plan] = &plans[..] else { panic!("expected one TCP cluster, got {}", plans.len()) };
    let names: Vec<String> = workload().into_iter().map(|(name, _)| name).collect();
    SharedQueryPlan {
        prefilter: plan.prefilter.clone(),
        groups: plan
            .groups
            .iter()
            .map(|(spec, consumers)| SharedGroup {
                op: SamplingOperator::new(spec.clone()).expect("instantiate"),
                consumers: consumers
                    .iter()
                    .map(|q| {
                        // `qN` is 1-based statement N == workload index N-1.
                        let n: usize = q[1..].parse().expect("consumer name");
                        names[n - 1].clone()
                    })
                    .collect(),
            })
            .collect(),
    }
}

fn run_unshared(packets: &[Packet]) -> (FanoutReport, f64) {
    let plan = unshared_plan();
    let start = Instant::now();
    let report = run_fanout(plan, packets.iter().cloned()).expect("unshared run");
    (report, start.elapsed().as_secs_f64())
}

fn run_shared(packets: &[Packet]) -> (FanoutReport, f64) {
    let plan = shared_plan();
    let start = Instant::now();
    let report =
        run_fanout_shared(Box::new(SelectionNode::pass_all()), plan, packets.iter().cloned())
            .expect("shared run");
    (report, start.elapsed().as_secs_f64())
}

/// Byte-identity per consumer: same windows, same rows, in order.
fn identical(unshared: &FanoutReport, shared: &FanoutReport) -> bool {
    workload().iter().all(|(name, _)| {
        let (Some(u), Some(s)) = (unshared.query(name), shared.query(name)) else {
            return false;
        };
        u.windows.len() == s.windows.len()
            && u.windows
                .iter()
                .zip(&s.windows)
                .all(|(wu, ws)| wu.window == ws.window && wu.rows == ws.rows)
    })
}

#[derive(serde::Serialize)]
struct Mode {
    elapsed_ms: f64,
    tuples_per_sec: f64,
}

#[derive(serde::Serialize)]
struct Report {
    queries: usize,
    share_groups: usize,
    packets: usize,
    unshared: Mode,
    shared: Mode,
    /// Unshared elapsed / shared elapsed; >= 1.0 means sharing won.
    speedup: f64,
    /// Every consumer's `(window, rows)` output matched byte-for-byte.
    identical: bool,
}

fn main() {
    let packets: Vec<Packet> = research_feed(SEED).take_seconds(SECONDS);

    let mut best_unshared = f64::INFINITY;
    let mut best_shared = f64::INFINITY;
    let mut all_identical = true;
    for _ in 0..REPS {
        let (u_report, u_secs) = run_unshared(&packets);
        let (s_report, s_secs) = run_shared(&packets);
        best_unshared = best_unshared.min(u_secs);
        best_shared = best_shared.min(s_secs);
        all_identical &= identical(&u_report, &s_report);
    }

    let n = packets.len() as f64;
    let report = Report {
        queries: GROUPS * COPIES,
        share_groups: GROUPS,
        packets: packets.len(),
        unshared: Mode { elapsed_ms: best_unshared * 1e3, tuples_per_sec: n / best_unshared },
        shared: Mode { elapsed_ms: best_shared * 1e3, tuples_per_sec: n / best_shared },
        speedup: best_unshared / best_shared,
        identical: all_identical,
    };
    if maybe_json(&report) {
        return;
    }
    header("multi-query sharing: 16 registered queries, shared vs unshared");
    println!(
        "  unshared: {:8.1} ms  ({:9.0} tuples/s)",
        report.unshared.elapsed_ms, report.unshared.tuples_per_sec
    );
    println!(
        "  shared:   {:8.1} ms  ({:9.0} tuples/s)  [prefilter + {} deduped ops]",
        report.shared.elapsed_ms, report.shared.tuples_per_sec, report.share_groups
    );
    println!("  speedup:  {:.2}x   output identical: {}", report.speedup, report.identical);
}
