//! Superaggregates: aggregates of the *supergroup* rather than the group
//! (§6.3).
//!
//! The paper's convention is a `$` suffix: `count_distinct$(*)` is the
//! number of groups currently in the supergroup, `Kth_smallest_value$(HX,
//! 100)` the 100th-smallest value of the group-by variable `HX` over the
//! supergroup's groups, `sum$(x)` the sum over all tuples of the
//! supergroup.
//!
//! Maintenance follows §6.3: "when a new group is added or deleted (as a
//! result of the cleaning phase), we need to update the supergroup
//! aggregate by adding or subtracting the group aggregate value". Each
//! spec therefore implements three hooks: per-tuple update, group
//! addition, and group removal.

use std::collections::BTreeMap;

use sso_types::Value;

use crate::agg::AggState;
use crate::error::OpError;
use crate::expr::{EvalCtx, Expr};

/// A totally ordered wrapper over [`Value`] (via [`Value::compare`],
/// which is total), so values can key a `BTreeMap`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.compare(&other.0).unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Specification of one superaggregate slot.
#[derive(Debug, Clone)]
pub enum SuperAggSpec {
    /// `count_distinct$(*)`: the number of groups in the supergroup.
    CountDistinct,
    /// `Kth_smallest_value$(expr, k)`: the k-th smallest value of a
    /// group-by expression over the supergroup's groups; `u64::MAX` while
    /// fewer than `k` groups exist (so `x <= kth` admits during warm-up).
    KthSmallest {
        /// Expression over group-by variables, evaluated on group
        /// add/remove.
        expr: Expr,
        /// Rank `k ≥ 1`.
        k: usize,
    },
    /// `sum$(expr)`: sum over all tuples of the supergroup. Removal of a
    /// group subtracts the paired group aggregate (`agg_slot` must be a
    /// `sum` over the same expression).
    Sum {
        /// Tuple-phase expression added on every admitted tuple.
        expr: Expr,
        /// Group aggregate slot subtracted when a group is evicted.
        agg_slot: usize,
    },
    /// `min$(expr)` / `max$(expr)`: the extreme value of a group-by
    /// expression over the supergroup's live groups (maintained exactly
    /// under group eviction via a multiset, like `Kth_smallest_value$`).
    Extreme {
        /// Expression over group-by variables, evaluated on group
        /// add/remove.
        expr: Expr,
        /// `true` = maximum, `false` = minimum.
        max: bool,
    },
}

/// Runtime state of one superaggregate slot.
#[derive(Debug, Clone)]
pub enum SuperAggState {
    /// Group count.
    CountDistinct(u64),
    /// Multiset of per-group values with rank queries.
    KthSmallest {
        /// Rank being queried.
        k: usize,
        /// value -> multiplicity.
        tracker: BTreeMap<OrdValue, u32>,
        /// Total multiplicity.
        len: usize,
    },
    /// Running sum.
    Sum(Value),
    /// Multiset of per-group values with min/max queries.
    Extreme {
        /// `true` = maximum.
        max: bool,
        /// value -> multiplicity.
        tracker: BTreeMap<OrdValue, u32>,
    },
}

impl SuperAggSpec {
    /// Fresh state for a new supergroup.
    pub fn init(&self) -> SuperAggState {
        match self {
            SuperAggSpec::CountDistinct => SuperAggState::CountDistinct(0),
            SuperAggSpec::KthSmallest { k, .. } => {
                SuperAggState::KthSmallest { k: *k, tracker: BTreeMap::new(), len: 0 }
            }
            SuperAggSpec::Sum { .. } => SuperAggState::Sum(Value::Null),
            SuperAggSpec::Extreme { max, .. } => {
                SuperAggState::Extreme { max: *max, tracker: BTreeMap::new() }
            }
        }
    }

    /// Per-tuple update (runs for every tuple passing WHERE).
    pub fn on_tuple(
        &self,
        state: &mut SuperAggState,
        ctx: &mut EvalCtx<'_>,
    ) -> Result<(), OpError> {
        if let (SuperAggSpec::Sum { expr, .. }, SuperAggState::Sum(acc)) = (self, state) {
            let v = expr.eval(ctx)?;
            *acc = if acc.is_null() { v } else { acc.add(&v)? };
        }
        Ok(())
    }

    /// A new group with key `group_key` joined the supergroup.
    pub fn on_group_add(
        &self,
        state: &mut SuperAggState,
        group_key: &[Value],
    ) -> Result<(), OpError> {
        match (self, state) {
            (SuperAggSpec::CountDistinct, SuperAggState::CountDistinct(n)) => {
                *n += 1;
            }
            (
                SuperAggSpec::KthSmallest { expr, .. },
                SuperAggState::KthSmallest { tracker, len, .. },
            ) => {
                let mut ctx = EvalCtx { group_vars: Some(group_key), ..EvalCtx::empty("SUPERAGG") };
                let v = expr.eval(&mut ctx)?;
                *tracker.entry(OrdValue(v)).or_insert(0) += 1;
                *len += 1;
            }
            (SuperAggSpec::Sum { .. }, SuperAggState::Sum(_)) => {}
            (SuperAggSpec::Extreme { expr, .. }, SuperAggState::Extreme { tracker, .. }) => {
                let mut ctx = EvalCtx { group_vars: Some(group_key), ..EvalCtx::empty("SUPERAGG") };
                let v = expr.eval(&mut ctx)?;
                *tracker.entry(OrdValue(v)).or_insert(0) += 1;
            }
            _ => {
                return Err(OpError::InvalidSpec(
                    "superaggregate state does not match its spec".to_string(),
                ))
            }
        }
        Ok(())
    }

    /// A group was evicted (cleaning phase or failed HAVING).
    pub fn on_group_remove(
        &self,
        state: &mut SuperAggState,
        group_key: &[Value],
        aggs: &[AggState],
    ) -> Result<(), OpError> {
        match (self, state) {
            (SuperAggSpec::CountDistinct, SuperAggState::CountDistinct(n)) => {
                *n = n.saturating_sub(1);
            }
            (
                SuperAggSpec::KthSmallest { expr, .. },
                SuperAggState::KthSmallest { tracker, len, .. },
            ) => {
                let mut ctx = EvalCtx { group_vars: Some(group_key), ..EvalCtx::empty("SUPERAGG") };
                let v = OrdValue(expr.eval(&mut ctx)?);
                if let Some(count) = tracker.get_mut(&v) {
                    *count -= 1;
                    if *count == 0 {
                        tracker.remove(&v);
                    }
                    *len -= 1;
                }
            }
            (SuperAggSpec::Extreme { expr, .. }, SuperAggState::Extreme { tracker, .. }) => {
                let mut ctx = EvalCtx { group_vars: Some(group_key), ..EvalCtx::empty("SUPERAGG") };
                let v = OrdValue(expr.eval(&mut ctx)?);
                if let Some(count) = tracker.get_mut(&v) {
                    *count -= 1;
                    if *count == 0 {
                        tracker.remove(&v);
                    }
                }
            }
            (SuperAggSpec::Sum { agg_slot, .. }, SuperAggState::Sum(acc)) => {
                let gv = aggs
                    .get(*agg_slot)
                    .ok_or_else(|| {
                        OpError::InvalidSpec(format!("sum$ paired agg slot {agg_slot} missing"))
                    })?
                    .value();
                if !gv.is_null() && !acc.is_null() {
                    *acc = acc.sub(&gv)?;
                }
            }
            _ => {
                return Err(OpError::InvalidSpec(
                    "superaggregate state does not match its spec".to_string(),
                ))
            }
        }
        Ok(())
    }
}

impl SuperAggState {
    /// The superaggregate's current value.
    pub fn value(&self) -> Value {
        match self {
            SuperAggState::CountDistinct(n) => Value::U64(*n),
            SuperAggState::KthSmallest { k, tracker, len } => {
                if *len < *k {
                    return Value::U64(u64::MAX);
                }
                let mut remaining = *k;
                for (v, count) in tracker {
                    let c = *count as usize;
                    if remaining <= c {
                        return v.0.clone();
                    }
                    remaining -= c;
                }
                Value::U64(u64::MAX)
            }
            SuperAggState::Sum(v) => v.clone(),
            SuperAggState::Extreme { max, tracker } => {
                let entry = if *max { tracker.last_key_value() } else { tracker.first_key_value() };
                entry.map(|(v, _)| v.0.clone()).unwrap_or(Value::Null)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: Vec<Value>) -> Vec<Value> {
        vals
    }

    #[test]
    fn count_distinct_tracks_adds_and_removes() {
        let spec = SuperAggSpec::CountDistinct;
        let mut s = spec.init();
        spec.on_group_add(&mut s, &key(vec![Value::U64(1)])).unwrap();
        spec.on_group_add(&mut s, &key(vec![Value::U64(2)])).unwrap();
        assert_eq!(s.value(), Value::U64(2));
        spec.on_group_remove(&mut s, &key(vec![Value::U64(1)]), &[]).unwrap();
        assert_eq!(s.value(), Value::U64(1));
        // Saturates rather than underflows.
        spec.on_group_remove(&mut s, &key(vec![Value::U64(2)]), &[]).unwrap();
        spec.on_group_remove(&mut s, &key(vec![Value::U64(3)]), &[]).unwrap();
        assert_eq!(s.value(), Value::U64(0));
    }

    #[test]
    fn kth_smallest_warmup_returns_max() {
        let spec = SuperAggSpec::KthSmallest { expr: Expr::GroupVar(0), k: 3 };
        let mut s = spec.init();
        assert_eq!(s.value(), Value::U64(u64::MAX));
        spec.on_group_add(&mut s, &key(vec![Value::U64(10)])).unwrap();
        spec.on_group_add(&mut s, &key(vec![Value::U64(20)])).unwrap();
        assert_eq!(s.value(), Value::U64(u64::MAX), "still warming up");
        spec.on_group_add(&mut s, &key(vec![Value::U64(30)])).unwrap();
        assert_eq!(s.value(), Value::U64(30));
    }

    #[test]
    fn kth_smallest_rank_query() {
        let spec = SuperAggSpec::KthSmallest { expr: Expr::GroupVar(0), k: 2 };
        let mut s = spec.init();
        for v in [50u64, 10, 40, 20] {
            spec.on_group_add(&mut s, &key(vec![Value::U64(v)])).unwrap();
        }
        assert_eq!(s.value(), Value::U64(20));
        spec.on_group_remove(&mut s, &key(vec![Value::U64(10)]), &[]).unwrap();
        assert_eq!(s.value(), Value::U64(40));
    }

    #[test]
    fn kth_smallest_handles_duplicates() {
        let spec = SuperAggSpec::KthSmallest { expr: Expr::GroupVar(0), k: 3 };
        let mut s = spec.init();
        for v in [5u64, 5, 5, 9] {
            spec.on_group_add(&mut s, &key(vec![Value::U64(v)])).unwrap();
        }
        assert_eq!(s.value(), Value::U64(5));
        spec.on_group_remove(&mut s, &key(vec![Value::U64(5)]), &[]).unwrap();
        assert_eq!(s.value(), Value::U64(9));
        // Removing a value that is not tracked is a no-op.
        spec.on_group_remove(&mut s, &key(vec![Value::U64(77)]), &[]).unwrap();
        assert_eq!(s.value(), Value::U64(9));
    }

    #[test]
    fn sum_super_adds_tuples_and_subtracts_groups() {
        use sso_types::Tuple;
        let spec = SuperAggSpec::Sum { expr: Expr::Column(0), agg_slot: 0 };
        let mut s = spec.init();
        for v in [10u64, 20, 30] {
            let t = Tuple::new(vec![Value::U64(v)]);
            let mut ctx = EvalCtx { tuple: Some(&t), ..EvalCtx::empty("WHERE") };
            spec.on_tuple(&mut s, &mut ctx).unwrap();
        }
        assert_eq!(s.value(), Value::U64(60));
        // Evict a group whose sum aggregate is 30.
        let aggs = vec![AggState::Sum(Value::U64(30))];
        spec.on_group_remove(&mut s, &[], &aggs).unwrap();
        assert_eq!(s.value(), Value::U64(30));
    }

    #[test]
    fn extreme_super_tracks_min_and_max_under_eviction() {
        let min_spec = SuperAggSpec::Extreme { expr: Expr::GroupVar(0), max: false };
        let max_spec = SuperAggSpec::Extreme { expr: Expr::GroupVar(0), max: true };
        let mut smin = min_spec.init();
        let mut smax = max_spec.init();
        assert_eq!(smin.value(), Value::Null);
        for v in [30u64, 10, 50, 10] {
            min_spec.on_group_add(&mut smin, &[Value::U64(v)]).unwrap();
            max_spec.on_group_add(&mut smax, &[Value::U64(v)]).unwrap();
        }
        assert_eq!(smin.value(), Value::U64(10));
        assert_eq!(smax.value(), Value::U64(50));
        // Evict one 10: a duplicate remains, min unchanged.
        min_spec.on_group_remove(&mut smin, &[Value::U64(10)], &[]).unwrap();
        assert_eq!(smin.value(), Value::U64(10));
        // Evict the other: min moves to 30.
        min_spec.on_group_remove(&mut smin, &[Value::U64(10)], &[]).unwrap();
        assert_eq!(smin.value(), Value::U64(30));
        // Evict the max: max moves down.
        max_spec.on_group_remove(&mut smax, &[Value::U64(50)], &[]).unwrap();
        assert_eq!(smax.value(), Value::U64(30));
    }

    #[test]
    fn ord_value_total_order() {
        let mut vals = [OrdValue(Value::U64(5)), OrdValue(Value::Null), OrdValue(Value::I64(-1))];
        vals.sort();
        assert_eq!(vals[0], OrdValue(Value::Null));
        assert_eq!(vals[1], OrdValue(Value::I64(-1)));
        assert_eq!(vals[2], OrdValue(Value::U64(5)));
    }

    #[test]
    fn mismatched_state_errors() {
        let spec = SuperAggSpec::CountDistinct;
        let mut s = SuperAggState::Sum(Value::Null);
        assert!(spec.on_group_add(&mut s, &[]).is_err());
    }
}
