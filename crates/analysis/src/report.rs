//! Machine-readable audit output.
//!
//! A [`BoundsReport`] is the certificate the audit emits: per-statement
//! state ceilings plus the verdicts (skew class, mergeability, deletion
//! safety) the runtime and CI consume. The JSON rendering is hand-rolled
//! and field-stable — `scripts/check.sh` validates the schema, so adding
//! or renaming a key is a deliberate, reviewed change.

use sso_core::SizingHints;

use crate::bounds::SamplerKind;
use crate::domain::{Card, DeletionSafety, SkewClass};

/// Certified bounds for one audited statement.
#[derive(Debug, Clone)]
pub struct StatementBounds {
    /// Statement label (`stmt0`, `stmt1`, … in file order).
    pub name: String,
    /// The FROM stream.
    pub stream: String,
    /// The classified sampling family.
    pub sampler: SamplerKind,
    /// Tumbling-window length from `GROUP BY <ordered>/n`, when the
    /// query has that canonical shape.
    pub window_secs: Option<u64>,
    /// Peak input rate from the feed envelope.
    pub rows_per_sec: Card,
    /// Rows per window: rate × window length.
    pub rows_per_window: Card,
    /// Product of group-by key cardinalities.
    pub key_cardinality: Card,
    /// Product of supergroup key cardinalities.
    pub supergroup_cardinality: Card,
    /// The sampler's per-supergroup live-group cap.
    pub per_supergroup_bound: Card,
    /// Certified ceiling on simultaneously live groups.
    pub groups_bound: Card,
    /// Estimated bytes per group-table entry.
    pub group_entry_bytes: u64,
    /// Estimated bytes per supergroup-state entry.
    pub supergroup_entry_bytes: u64,
    /// Certified ceiling on operator state bytes.
    pub state_bytes: Card,
    /// Router-skew verdict at the audited shard count.
    pub skew: SkewClass,
    /// Whether the plan shards/merges (`shard_plan` succeeds).
    pub mergeable: bool,
    /// Whether the state survives turnstile deletions.
    pub deletion_safety: DeletionSafety,
}

impl StatementBounds {
    /// Pre-sizing hints for the runtime: reserve the certified group
    /// and supergroup ceilings up front (capped at
    /// [`SizingHints::MAX_RESERVE`]), and size each shard's ring for
    /// about a second of batches at the certified input rate. Unbounded
    /// dimensions reserve nothing and keep the configured ring.
    pub fn sizing_hints(&self, shards: usize, batch_size: usize) -> SizingHints {
        let cap = |c: Card| -> usize {
            c.finite().map(|n| (n as usize).min(SizingHints::MAX_RESERVE)).unwrap_or(0)
        };
        let supergroups = self.supergroup_cardinality.min(self.rows_per_window);
        let ring_batches = self.rows_per_sec.finite().map(|r| {
            let per_shard = r / (batch_size.max(1) as u64) / (shards.max(1) as u64);
            (per_shard as usize).clamp(16, 256)
        });
        SizingHints { groups: cap(self.groups_bound), supergroups: cap(supergroups), ring_batches }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"stream\":{},\"sampler\":{},\"window_secs\":{},",
                "\"rows_per_sec\":{},\"rows_per_window\":{},\"key_cardinality\":{},",
                "\"supergroup_cardinality\":{},\"per_supergroup_bound\":{},",
                "\"groups_bound\":{},\"group_entry_bytes\":{},",
                "\"supergroup_entry_bytes\":{},\"state_bytes\":{},\"skew\":{},",
                "\"mergeable\":{},\"deletion_safe\":{}}}"
            ),
            json_str(&self.name),
            json_str(&self.stream),
            json_str(&self.sampler.label()),
            self.window_secs.map(|w| w.to_string()).unwrap_or_else(|| "null".into()),
            self.rows_per_sec.to_json(),
            self.rows_per_window.to_json(),
            self.key_cardinality.to_json(),
            self.supergroup_cardinality.to_json(),
            self.per_supergroup_bound.to_json(),
            self.groups_bound.to_json(),
            self.group_entry_bytes,
            self.supergroup_entry_bytes,
            self.state_bytes.to_json(),
            json_str(self.skew.as_str()),
            self.mergeable,
            self.deletion_safety.is_safe(),
        )
    }
}

/// The audit's certificate for one file: every statement's bounds under
/// one feed envelope and shard count.
#[derive(Debug, Clone)]
pub struct BoundsReport {
    /// Feed envelope the bounds were certified against.
    pub feed: String,
    /// Shard count the skew/mergeability verdicts assume.
    pub shards: usize,
    /// The `--budget` limit, if one was given.
    pub budget: Option<u64>,
    /// Per-statement bounds, in file order.
    pub statements: Vec<StatementBounds>,
}

impl BoundsReport {
    /// Certified ceiling on total state bytes across all statements
    /// (unbounded if any statement is).
    pub fn total_state_bytes(&self) -> Card {
        self.statements.iter().fold(Card::Finite(0), |acc, s| acc + s.state_bytes)
    }

    /// Field-stable JSON rendering.
    pub fn to_json(&self) -> String {
        let stmts: Vec<String> = self.statements.iter().map(|s| s.to_json()).collect();
        format!(
            concat!(
                "{{\"feed\":{},\"shards\":{},\"budget\":{},",
                "\"total_state_bytes\":{},\"statements\":[{}]}}"
            ),
            json_str(&self.feed),
            self.shards,
            self.budget.map(|b| b.to_string()).unwrap_or_else(|| "null".into()),
            self.total_state_bytes().to_json(),
            stmts.join(","),
        )
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_statement() -> StatementBounds {
        StatementBounds {
            name: "stmt0".into(),
            stream: "PKT".into(),
            sampler: SamplerKind::Reservoir { n: 25, cleaning: true },
            window_secs: Some(60),
            rows_per_sec: Card::Finite(25_000),
            rows_per_window: Card::Finite(1_500_000),
            key_cardinality: Card::Unbounded,
            supergroup_cardinality: Card::Finite(61),
            per_supergroup_bound: Card::Finite(626),
            groups_bound: Card::Finite(38_186),
            group_entry_bytes: 160,
            supergroup_entry_bytes: 256,
            state_bytes: Card::Finite(6_125_376),
            skew: SkewClass::Spread,
            mergeable: true,
            deletion_safety: DeletionSafety::Safe,
        }
    }

    #[test]
    fn json_is_field_stable() {
        let report = BoundsReport {
            feed: "research".into(),
            shards: 4,
            budget: Some(8_000_000),
            statements: vec![sample_statement()],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"feed\":\"research\",\"shards\":4,\"budget\":8000000,"));
        assert!(json.contains("\"sampler\":\"reservoir(n=25)\""));
        assert!(json.contains("\"key_cardinality\":null"), "unbounded renders as null");
        assert!(json.contains("\"total_state_bytes\":6125376"));
        assert!(json.contains("\"deletion_safe\":true"));
    }

    #[test]
    fn sizing_hints_cap_and_ring() {
        let s = sample_statement();
        let hints = s.sizing_hints(4, 1024);
        assert_eq!(hints.groups, 38_186);
        assert_eq!(hints.supergroups, 61);
        // 25k rows/s ÷ 1024 batch ÷ 4 shards ≈ 6 → clamped up to 16.
        assert_eq!(hints.ring_batches, Some(16));

        let mut unbounded = sample_statement();
        unbounded.groups_bound = Card::Unbounded;
        unbounded.rows_per_sec = Card::Unbounded;
        let hints = unbounded.sizing_hints(4, 1024);
        assert_eq!(hints.groups, 0, "unbounded reserves nothing");
        assert_eq!(hints.ring_batches, None);
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
