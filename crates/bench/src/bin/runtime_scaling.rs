//! **Runtime scaling** — throughput of the sharded runtime vs the
//! two-thread pipeline.
//!
//! The workload is the paper's dynamic subset-sum query (1000 samples
//! per period) over a steady ~100k pkt/s data-center feed. The baseline
//! is `run_plan_threaded` (one producer thread, one operator thread);
//! against it we run `run_plan_sharded` at 1, 2, 4, and 8 shards and
//! report wall-clock tuples/sec per configuration.
//!
//! The speedup curve is gated in `check.sh` against the recorded
//! `host_cores`: while shards fit within the host's cores, speedup
//! must be monotonically non-decreasing (the multi-router restructure
//! removed the single-router inversion); once shards exceed cores the
//! extra shards cannot run in parallel, so the gate instead bounds the
//! oversubscription cost (each step keeps ≥ 90% of the previous
//! step's speedup — the `worker_busy_secs` column shows the operator
//! floor behind the residual: split samplers at 8× smaller budgets do
//! ~10% more per-tuple work, and the router pays an 8-way scatter).
//!
//! Two correctness gates run alongside the timing:
//!
//! * **exact drift** — an exact per-window `sum(len)`/`count(*)` query
//!   is run single-instance and 4-way sharded over the same packets;
//!   any difference in any window is reported as drift (must be zero —
//!   hash-partitioned groups are disjoint, so Concat/Combine merges are
//!   exact).
//! * **estimate sanity** — the subset-sum volume estimate at every
//!   shard count must stay within a few percent of the true byte
//!   volume, window by window (the merged sample is a valid threshold
//!   sample, so its Horvitz-Thompson estimate stays unbiased).

use std::collections::HashMap;
use std::time::Instant;

use sso_analysis::{audit_file, AuditOptions};
use sso_bench::{header, maybe_json};
use sso_core::libs::subset_sum::SubsetSumOpConfig;
use sso_core::shard_plan;
use sso_core::{queries, OpError, OperatorSpec, SamplingOperator, WindowOutput};
use sso_gigascope::{
    run_plan_sharded, run_plan_sharded_with, run_plan_threaded, SelectionNode, TwoLevelPlan,
};
use sso_netgen::datacenter_feed;
use sso_runtime::RuntimeConfig;
use sso_types::Packet;

const SEED: u64 = 0x5ca1e;
const SECONDS: u64 = 20;
const WINDOW: u64 = 5;
const TARGET: usize = 1000;
const REPS: usize = 7;

#[derive(serde::Serialize)]
struct Config {
    feed: &'static str,
    seed: u64,
    seconds: u64,
    packets: usize,
    window_secs: u64,
    target_samples: usize,
    reps: usize,
    routers: String,
    /// Cores the host could actually run in parallel: the scaling gate
    /// demands non-decreasing speedup only while shards fit in cores,
    /// and bounded oversubscription cost beyond them.
    host_cores: usize,
}

#[derive(serde::Serialize)]
struct Run {
    mode: String,
    shards: usize,
    routers: usize,
    ring_batches: usize,
    secs: f64,
    /// Summed worker busy time: the operator-work floor under `secs`.
    /// The gap between them is routing + hand-off + scheduling.
    worker_busy_secs: f64,
    tuples_per_sec: f64,
    speedup_vs_threaded: f64,
    windows: usize,
    stalls: u64,
    dropped: u64,
    max_estimate_err_pct: f64,
}

#[derive(serde::Serialize)]
struct Report {
    config: Config,
    exact_drift_windows: usize,
    runs: Vec<Run>,
}

fn spec(with: SubsetSumOpConfig) -> Result<OperatorSpec, OpError> {
    queries::subset_sum_query(WINDOW, with, false)
}

fn ss_config() -> SubsetSumOpConfig {
    SubsetSumOpConfig { target: TARGET, initial_z: 1.0, ..Default::default() }
}

/// Worst per-window relative error of the subset-sum volume estimate.
fn max_estimate_err_pct(windows: &[WindowOutput], truth: &HashMap<u64, u64>) -> f64 {
    windows
        .iter()
        .map(|w| {
            let tb = w.window.get(0).as_u64().expect("tb");
            let actual = truth.get(&tb).copied().unwrap_or(0) as f64;
            let est: f64 = w.rows.iter().map(|r| r.get(3).as_f64().expect("adj")).sum();
            if actual == 0.0 {
                0.0
            } else {
                100.0 * (est - actual).abs() / actual
            }
        })
        .fold(0.0, f64::max)
}

/// Exact-query drift check: windows that differ between the single
/// instance and the 4-way sharded run (must be none).
fn exact_drift_windows(packets: &[Packet]) -> usize {
    let single = run_plan_threaded(
        TwoLevelPlan::new(
            Box::new(SelectionNode::pass_all()),
            SamplingOperator::new(queries::total_sum_query(WINDOW)).unwrap(),
        ),
        packets.iter().cloned(),
    )
    .expect("exact single run");
    let sharded = run_plan_sharded(
        Box::new(SelectionNode::pass_all()),
        |_| Ok(queries::total_sum_query(WINDOW)),
        &RuntimeConfig::new(4),
        packets.iter().cloned(),
    )
    .expect("exact sharded run");
    if single.windows.len() != sharded.windows.len() {
        return single.windows.len().max(sharded.windows.len());
    }
    single
        .windows
        .iter()
        .zip(&sharded.windows)
        .filter(|(a, b)| a.window != b.window || a.rows != b.rows)
        .count()
}

/// The audited form of the workload: the paper's dynamic subset-sum
/// query, window matching [`spec`] and budget matching the *per-shard*
/// split each worker actually runs, under the data-center feed
/// envelope. Its certified bounds pre-size the group tables and the
/// per-(router, shard) rings exactly as the CLI does — auditing the
/// full budget here would make every shard reserve the full-query
/// table and pay for the empty capacity on each cleaning scan.
fn audit_query(per_shard_target: usize) -> String {
    format!(
        "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()) FROM PKTS \
         WHERE ssample(len, {per_shard_target}) = TRUE \
         GROUP BY time/{WINDOW} as tb, srcIP, destIP, uts \
         HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE \
         CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE \
         CLEANING BY ssclean_with(sum(len)) = TRUE"
    )
}

/// `--routers auto|N` from the command line (0 = auto, the default).
fn routers_arg() -> (String, usize) {
    let args: Vec<String> = std::env::args().collect();
    let value = args
        .iter()
        .position(|a| a == "--routers")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "auto".to_string());
    let requested = match value.as_str() {
        "auto" => 0,
        n => n.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("usage: runtime_scaling [--routers N|auto] [--json]");
            std::process::exit(2);
        }),
    };
    (value, requested)
}

fn main() {
    let packets = datacenter_feed(SEED).take_seconds(SECONDS);
    let n = packets.len();
    let (routers_label, requested_routers) = routers_arg();
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for p in &packets {
        *truth.entry(p.time() / WINDOW).or_default() += p.len as u64;
    }

    if !sso_bench::json_mode() {
        eprintln!("# {n} packets, {REPS} reps per configuration (interleaved)");
    }

    // One sharded configuration per shard count: the plan is classified
    // from the full-budget query (so the merge re-thresholds to the
    // full 1000-sample target), while each shard samples with a
    // 1000/shards budget — the union of per-partition threshold samples
    // merged at the max shard threshold is the same estimator, and
    // total sampling state stays shard-count-invariant. Rings and group
    // tables are pre-sized from the static audit's certified envelope,
    // per (router, shard) lane, exactly as `sso run` does.
    let plan = shard_plan(&spec(ss_config()).unwrap()).expect("subset-sum is shard-mergeable");
    let shard_counts = [1usize, 2, 4, 8];
    let configs: Vec<(usize, SubsetSumOpConfig, RuntimeConfig)> = shard_counts
        .iter()
        .map(|&shards| {
            let split = SubsetSumOpConfig {
                target: TARGET.div_ceil(shards),
                initial_z: 1.0,
                ..Default::default()
            };
            // Worker threads are capped at the host's cores: beyond
            // that, extra shard threads only add scheduling overhead.
            let cores =
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
            let cfg =
                RuntimeConfig::new(shards).with_routers(requested_routers).with_worker_cap(cores);
            let audit_opts =
                AuditOptions { feed: "datacenter".into(), shards, ..AuditOptions::default() };
            let outcome = audit_file(&audit_query(split.target), &audit_opts);
            let bounds = outcome.report.statements.first().expect("workload audits");
            let hints = bounds.sizing_hints(shards, cfg.resolved_routers(), cfg.batch_size);
            (shards, split, cfg.with_sizing(hints))
        })
        .collect();

    // Interleave the repetitions round-robin across every configuration
    // (threaded baseline included) instead of running each one's reps
    // back to back: background noise arrives in bursts, so consecutive
    // reps of one configuration can all land in the same slow patch and
    // best-of-N never sees its quiet-machine time. Round-robin spreads
    // each configuration's reps across the full measurement span.
    let mut base_secs = f64::INFINITY;
    let mut base_windows = Vec::new();
    let mut best: Vec<Option<(f64, sso_gigascope::ShardedRunReport)>> =
        configs.iter().map(|_| None).collect();
    for _ in 0..REPS {
        let plan_t = TwoLevelPlan::new(
            Box::new(SelectionNode::pass_all()),
            SamplingOperator::new(spec(ss_config()).unwrap()).unwrap(),
        );
        let t0 = Instant::now();
        let report = run_plan_threaded(plan_t, packets.iter().cloned()).expect("threaded run");
        let secs = t0.elapsed().as_secs_f64();
        if secs < base_secs {
            base_secs = secs;
            base_windows = report.windows;
        }

        for (slot, (_, split, cfg)) in configs.iter().enumerate() {
            let t0 = Instant::now();
            let report = run_plan_sharded_with(
                Box::new(SelectionNode::pass_all()),
                &plan,
                |_| spec(split.clone()),
                cfg,
                packets.iter().cloned(),
            )
            .expect("sharded run");
            let secs = t0.elapsed().as_secs_f64();
            if best[slot].as_ref().map(|(b, _)| secs < *b).unwrap_or(true) {
                best[slot] = Some((secs, report));
            }
        }
    }
    let base_tps = n as f64 / base_secs;

    let mut runs = vec![Run {
        mode: "threaded".into(),
        shards: 1,
        routers: 0,
        ring_batches: 0,
        secs: base_secs,
        worker_busy_secs: 0.0,
        tuples_per_sec: base_tps,
        speedup_vs_threaded: 1.0,
        windows: base_windows.len(),
        stalls: 0,
        dropped: 0,
        max_estimate_err_pct: max_estimate_err_pct(&base_windows, &truth),
    }];
    for ((shards, _, cfg), best) in configs.iter().zip(best) {
        let (secs, report) = best.expect("at least one rep");
        runs.push(Run {
            mode: "sharded".into(),
            shards: *shards,
            routers: cfg.resolved_routers(),
            ring_batches: cfg.sizing.and_then(|h| h.ring_batches).unwrap_or(cfg.ring_capacity),
            secs,
            worker_busy_secs: report.shards.iter().map(|s| s.busy().as_secs_f64()).sum(),
            tuples_per_sec: n as f64 / secs,
            speedup_vs_threaded: base_secs / secs,
            windows: report.windows.len(),
            stalls: report.shards.iter().map(|s| s.stalls()).sum(),
            dropped: report.dropped(),
            max_estimate_err_pct: max_estimate_err_pct(&report.windows, &truth),
        });
    }

    let report = Report {
        config: Config {
            feed: "datacenter",
            seed: SEED,
            seconds: SECONDS,
            packets: n,
            window_secs: WINDOW,
            target_samples: TARGET,
            reps: REPS,
            routers: routers_label,
            host_cores: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        },
        exact_drift_windows: exact_drift_windows(&packets),
        runs,
    };

    if maybe_json(&report) {
        return;
    }
    header("Runtime scaling: dynamic subset-sum (1000 samples/period), data-center feed");
    println!(
        "{:>9} {:>7} {:>8} {:>5} {:>8} {:>8} {:>12} {:>9} {:>8} {:>8} {:>10}",
        "mode",
        "shards",
        "routers",
        "ring",
        "secs",
        "busy",
        "tuples/s",
        "speedup",
        "stalls",
        "dropped",
        "max err%"
    );
    for r in &report.runs {
        println!(
            "{:>9} {:>7} {:>8} {:>5} {:>8.3} {:>8.3} {:>12.0} {:>8.2}x {:>8} {:>8} {:>9.2}%",
            r.mode,
            r.shards,
            r.routers,
            r.ring_batches,
            r.secs,
            r.worker_busy_secs,
            r.tuples_per_sec,
            r.speedup_vs_threaded,
            r.stalls,
            r.dropped,
            r.max_estimate_err_pct,
        );
    }
    println!(
        "exact drift: {} window(s) differ between single and 4-shard runs",
        report.exact_drift_windows
    );
}
